//! Offline no-op stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as inert
//! annotations (nothing in-tree actually serialises through serde, and
//! crates.io is unreachable in this build environment), so this shim provides
//! derive macros that expand to nothing. Swap back to real serde by restoring
//! the crates.io entry in `[workspace.dependencies]`.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
