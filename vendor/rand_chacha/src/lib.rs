//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`], [`ChaCha12Rng`] and
//! [`ChaCha20Rng`] built on a genuine ChaCha block function (IETF variant,
//! 32-byte key, zero nonce, 64-bit block counter).
//!
//! Determinism-per-seed and statistical quality match upstream; the exact
//! word stream is not guaranteed identical (no in-tree consumer depends on
//! upstream's stream).

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (8, 12 or 20).
fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CHACHA_CONST);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;
    let initial = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial.iter()) {
        *s = s.wrapping_add(*i);
    }
    state
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buffer = chacha_block(&self.key, self.counter, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                let mut rng = $name {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                };
                rng.refill();
                rng
            }
        }

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let w = self.buffer[self.index];
                self.index += 1;
                w
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                let lo = u64::from(self.next_u32());
                let hi = u64::from(self.next_u32());
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds — the workspace's default deterministic RNG."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2 test vector (20 rounds, counter 1, nonce 0 differs —
        // so check the zero-key zero-counter ChaCha20 block against the
        // well-known keystream first word instead: just sanity-check
        // determinism and diffusion here.)
        let a = chacha_block(&[0; 8], 0, 20);
        let b = chacha_block(&[0; 8], 1, 20);
        assert_ne!(a, b);
        assert_eq!(a, chacha_block(&[0; 8], 0, 20));
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut ones = 0usize;
        let n = 100_000;
        for _ in 0..n {
            ones += usize::from(rng.gen_range(0..=1u8));
        }
        let ratio = ones as f64 / n as f64;
        assert!((0.49..0.51).contains(&ratio), "bit bias {ratio}");
    }
}
