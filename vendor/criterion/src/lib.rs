//! Offline mini re-implementation of [criterion](https://docs.rs/criterion).
//!
//! Implements the workspace's benchmark API surface — `criterion_group!`,
//! `criterion_main!`, [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with
//! `iter`/`iter_batched`, [`Throughput`], [`BatchSize`] — over plain
//! `std::time::Instant` timing. Statistics are deliberately simple: per
//! sample the median of `sample_size` timed batches is reported, plus
//! min/max, in a single console line per benchmark.
//!
//! When invoked by `cargo test` (`--test` flag present) each benchmark runs a
//! single iteration as a smoke check, as upstream criterion does.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration, folded into the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost (ignored by this shim beyond
/// batch sizing).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Upstream parses CLI flags here; the shim already did in `default()`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_one(id, None, sample_size, test_mode, f);
        self
    }

    /// Upstream finalises reports here; nothing to do in the shim.
    pub fn final_summary(&mut self) {}
}

/// A named group sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&full, self.throughput, n, self.criterion.test_mode, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; owns the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine` over the chosen number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let iters = if self.test_mode { 1 } else { self.iters };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with fresh input from `setup` each iteration, setup
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let iters = if self.test_mode { 1 } else { self.iters };
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    mut f: impl FnMut(&mut Bencher),
) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            test_mode: true,
        };
        f(&mut b);
        println!("test bench {id} ... ok (smoke)");
        return;
    }
    // Calibrate the per-sample iteration count towards ~5 ms per sample.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
        test_mode: false,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            test_mode: false,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];
    let thr = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 * 1e3 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 * 1e9 / median / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!("{id:<50} time: [{min:>12.1} ns {median:>12.1} ns {max:>12.1} ns]{thr}");
}

/// Declares a group runner function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(2).throughput(Throughput::Elements(4));
            g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
            g.finish();
        }
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
            ran += 1;
        });
        assert!(ran >= 1);
    }
}
