//! Offline mini re-implementation of [proptest](https://docs.rs/proptest).
//!
//! Supports the subset the workspace uses: the [`proptest!`] macro (with an
//! optional `#![proptest_config(...)]` header), [`any`], integer/float range
//! strategies, [`collection::vec`], [`array::uniform5`], and the
//! `prop_assert*` macros. No shrinking: a failing case panics immediately
//! with the sampled inputs in the message.
//!
//! Determinism: each generated test derives its RNG seed from the test
//! function name, so runs are reproducible without a persistence file.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Deterministically seeds from a test-identifying string.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a — stable across runs and platforms, unlike `DefaultHasher`.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Strategy for a whole type domain (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Sizes accepted by [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a fixed or ranged length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::*;

    macro_rules! uniform_array {
        ($($fname:ident => $n:literal),* $(,)?) => {$(
            /// Strategy producing arrays whose elements all come from `element`.
            pub fn $fname<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }

    /// Strategy for `[S::Value; N]`.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    uniform_array!(
        uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5,
        uniform6 => 6, uniform8 => 8, uniform16 => 16, uniform32 => 32,
    );
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a proptest body (panics — no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Generates `#[test]` functions that run their body over random samples of
/// each declared strategy.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    // Entry without a header: default config.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()); $(#[$meta])* fn $($rest)*);
    };
    (@expand ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __desc = String::new();
                $(
                    let __sampled = $crate::Strategy::sample(&($strat), &mut __rng);
                    __desc.push_str(&format!(
                        "{} = {:?}; ",
                        stringify!($arg),
                        &__sampled
                    ));
                    let $arg = __sampled;
                )+
                let __outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if __outcome.is_err() {
                    panic!(
                        "proptest case {}/{} failed for inputs: {}",
                        __case + 1,
                        __cfg.cases,
                        __desc
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 3u8..=9, y in 0usize..17, f in -3.0..3.0) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 17);
            prop_assert!((-3.0..3.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
        }

        #[test]
        fn arrays_fixed(a in crate::array::uniform5(any::<u8>())) {
            prop_assert_eq!(a.len(), 5);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            let mut rng = crate::TestRng::from_name("report");
            let strat = 0u8..=255;
            let v = crate::Strategy::sample(&strat, &mut rng);
            let _ = v;
            panic!("boom");
        });
        assert!(result.is_err());
    }
}
