//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the (small) slice of the `rand` 0.8 API the workspace
//! actually uses: [`RngCore`], [`SeedableRng`] (with the PCG32-based
//! `seed_from_u64` expansion of `rand_core` 0.6), and the [`Rng`] extension
//! trait with `gen`, `gen_range` and `gen_bool`.
//!
//! Uniform sampling is unbiased (rejection sampling from the widened range)
//! but is **not** guaranteed to be stream-identical to upstream `rand`; all
//! in-tree consumers only rely on determinism-per-seed and statistical
//! quality, both of which hold.

use std::ops::{Range, RangeInclusive};

/// Core of every random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the same PCG32 expansion
    /// `rand_core` 0.6 uses, then seeds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64,
);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (as upstream).
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (sample_below_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return <$t as Standard>::sample(rng);
                }
                lo + (sample_below_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty : $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(sample_below_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return <$t as Standard>::sample(rng);
                }
                lo.wrapping_add(sample_below_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = <f64 as Standard>::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = <f32 as Standard>::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `[0, bound)` via rejection sampling (`bound > 0`).
#[inline]
fn sample_below_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Reject the biased tail of the modulo mapping.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Extension methods on every [`RngCore`] (the user-facing API).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        <f64 as Standard>::sample(self) < p
    }

    /// Fills a byte slice (mirror of [`RngCore::fill_bytes`]).
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` placeholder module for API compatibility.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u64);
    impl RngCore for Counting {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counting(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(0usize..17);
            assert!(w < 17);
            let f = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&f));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = Counting(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_range_inclusive_does_not_overflow() {
        let mut rng = Counting(1);
        let _: u8 = rng.gen_range(0u8..=u8::MAX);
        let _: i8 = rng.gen_range(i8::MIN..=i8::MAX);
    }
}
