#!/usr/bin/env bash
# Offline CI for the wazabee workspace. Run from the repo root.
#
# Steps:
#   1. release build, telemetry on (default features)
#   2. release build, telemetry off (--no-default-features) — proves the
#      probes compile away
#   3. full test suite
#   4. clippy, warnings as errors
#   5. rustfmt check
#   6. telemetry-overhead smoke: the Criterion bench compiles and runs in
#      test mode in both feature states
#   7. flight-recorder smoke: WAZABEE_CAPTURE_DIR produces PCAP + JSONL
#      artifacts with default features and none with --no-default-features
#   8. packed-kernel micro-bench smoke: packed-vs-scalar despread/correlate
#      bench compiles and runs in test mode
#   9. rx-throughput smoke: the bin emits a well-formed
#      BENCH_rx_throughput.json and the packed despreading kernel is at
#      least 3x faster than the scalar reference
#  10. stream-throughput smoke: the streaming receiver emits a well-formed
#      BENCH_stream_throughput.json and recovers >= 2 frames behind a decoy
#      sync hit, in both feature states
#  11. netsim smoke: the network-scale spectrum-sim sweep emits a well-formed
#      BENCH_netsim.json whose no-attacker ideal cells deliver 100% and whose
#      attacked cells show waveform-level collisions, in both feature states
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "=== $* ==="
    "$@"
}

run cargo build --release --workspace --offline
run cargo build --release --workspace --offline --no-default-features
run cargo test -q --workspace --offline
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo fmt --all -- --check
run cargo bench -p wazabee-bench --bench telemetry_overhead --offline -- --test
run cargo bench -p wazabee-bench --bench telemetry_overhead --offline --no-default-features -- --test

capture_dir="$(mktemp -d)"
trap 'rm -rf "$capture_dir"' EXIT
run env WAZABEE_CAPTURE_DIR="$capture_dir" \
    cargo run --release -q -p wazabee-examples --bin zigbee_sniffer --offline > /dev/null
for f in frames.pcap frames.jsonl; do
    if ! [ -s "$capture_dir/$f" ]; then
        echo "ci.sh: expected non-empty $f in WAZABEE_CAPTURE_DIR" >&2
        exit 1
    fi
done
echo "flight-recorder artifacts present: $(ls "$capture_dir")"

rm -rf "$capture_dir"/*
run env WAZABEE_CAPTURE_DIR="$capture_dir" \
    cargo run --release -q -p wazabee-examples --bin zigbee_sniffer --offline \
    --no-default-features > /dev/null
if [ -n "$(ls -A "$capture_dir")" ]; then
    echo "ci.sh: --no-default-features build must not write capture artifacts" >&2
    exit 1
fi
echo "flight-recorder compiled out: no artifacts written"

run cargo bench -p wazabee-bench --bench packed_kernels --offline -- --test

bench_json="$capture_dir/BENCH_rx_throughput.json"
run cargo run --release -q -p wazabee-bench --bin rx_throughput --offline -- \
    --smoke --out "$bench_json"
if ! [ -s "$bench_json" ]; then
    echo "ci.sh: rx_throughput did not write $bench_json" >&2
    exit 1
fi
run python3 - "$bench_json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rx, despread = doc["rx"], doc["despread"]
assert rx["frames_per_sec"] > 0, "frames/sec missing"
assert despread["packed_msymbols_per_sec"] > 0, "Msym/s missing"
speedup = despread["speedup"]
assert speedup >= 3.0, f"packed despread only {speedup:.2f}x faster than scalar (need >= 3x)"
print(f"BENCH_rx_throughput.json well-formed: "
      f"{rx['frames_per_sec']:.0f} frames/s, "
      f"{despread['packed_msymbols_per_sec']:.1f} Msym/s packed, "
      f"{speedup:.1f}x over scalar")
EOF

check_stream_json() {
    run python3 - "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
stream, fixture = doc["stream"], doc["fixture"]
assert stream["frames_per_sec"] > 0, "frames/sec missing"
assert stream["recovered"] == stream["frames"], (
    f"streaming lost frames: {stream['recovered']}/{stream['frames']}")
got = fixture["recovered_with_resync"]
assert got >= 2, f"only {got} frames recovered behind the decoy (need >= 2)"
print(f"BENCH_stream_throughput.json well-formed: "
      f"{stream['frames_per_sec']:.0f} frames/s streaming, "
      f"{got}/{fixture['frames']} recovered behind the decoy "
      f"(vs {fixture['recovered_without_resync']} without resync)")
EOF
}

stream_json="$capture_dir/BENCH_stream_throughput.json"
run cargo run --release -q -p wazabee-bench --bin stream_throughput --offline -- \
    --smoke --out "$stream_json"
check_stream_json "$stream_json"

rm -f "$stream_json"
run cargo run --release -q -p wazabee-bench --bin stream_throughput --offline \
    --no-default-features -- --smoke --out "$stream_json"
check_stream_json "$stream_json"

check_netsim_json() {
    run python3 - "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cells = doc["cells"]
assert cells, "no sweep cells"
for c in cells:
    assert c["sim_wall_ratio"] > 0, "sim/wall ratio missing"
    if not c["attacker"]:
        assert c["delivery_ratio"] == 1.0, (
            f"no-attacker ideal cell n={c['nodes']} delivered "
            f"{c['delivery_ratio']:.3f} (expected 1.0)")
attacked = [c for c in cells if c["attacker"]]
assert any(c["collisions"] > 0 for c in attacked), "injector never collided"
print(f"BENCH_netsim.json well-formed: {len(cells)} cells, "
      f"no-attacker delivery 100%, "
      f"attacked-cell collisions up to {max(c['collisions'] for c in attacked)}")
EOF
}

netsim_json="$capture_dir/BENCH_netsim.json"
run cargo run --release -q -p wazabee-bench --bin netsim_scale --offline -- \
    --smoke --out "$netsim_json"
check_netsim_json "$netsim_json"

rm -f "$netsim_json"
run cargo run --release -q -p wazabee-bench --bin netsim_scale --offline \
    --no-default-features -- --smoke --out "$netsim_json"
check_netsim_json "$netsim_json"

echo
echo "ci.sh: all checks passed"
