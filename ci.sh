#!/usr/bin/env bash
# Offline CI for the wazabee workspace. Run from the repo root.
#
# Steps:
#   1. release build, telemetry on (default features)
#   2. release build, telemetry off (--no-default-features) — proves the
#      probes compile away
#   3. full test suite
#   4. clippy, warnings as errors
#   5. rustfmt check
#   6. telemetry-overhead smoke: the Criterion bench compiles and runs in
#      test mode in both feature states
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "=== $* ==="
    "$@"
}

run cargo build --release --workspace --offline
run cargo build --release --workspace --offline --no-default-features
run cargo test -q --workspace --offline
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo fmt --all -- --check
run cargo bench -p wazabee-bench --bench telemetry_overhead --offline -- --test
run cargo bench -p wazabee-bench --bench telemetry_overhead --offline --no-default-features -- --test

echo
echo "ci.sh: all checks passed"
