#!/usr/bin/env bash
# Offline CI for the wazabee workspace. Run from the repo root.
#
# Steps:
#   1. release build, telemetry on (default features)
#   2. release build, telemetry off (--no-default-features) — proves the
#      probes compile away
#   3. full test suite
#   4. clippy, warnings as errors
#   5. rustfmt check
#   6. telemetry-overhead smoke: the Criterion bench compiles and runs in
#      test mode in both feature states
#   7. flight-recorder smoke: WAZABEE_CAPTURE_DIR produces PCAP + JSONL
#      artifacts with default features and none with --no-default-features
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "=== $* ==="
    "$@"
}

run cargo build --release --workspace --offline
run cargo build --release --workspace --offline --no-default-features
run cargo test -q --workspace --offline
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo fmt --all -- --check
run cargo bench -p wazabee-bench --bench telemetry_overhead --offline -- --test
run cargo bench -p wazabee-bench --bench telemetry_overhead --offline --no-default-features -- --test

capture_dir="$(mktemp -d)"
trap 'rm -rf "$capture_dir"' EXIT
run env WAZABEE_CAPTURE_DIR="$capture_dir" \
    cargo run --release -q -p wazabee-examples --bin zigbee_sniffer --offline > /dev/null
for f in frames.pcap frames.jsonl; do
    if ! [ -s "$capture_dir/$f" ]; then
        echo "ci.sh: expected non-empty $f in WAZABEE_CAPTURE_DIR" >&2
        exit 1
    fi
done
echo "flight-recorder artifacts present: $(ls "$capture_dir")"

rm -rf "$capture_dir"/*
run env WAZABEE_CAPTURE_DIR="$capture_dir" \
    cargo run --release -q -p wazabee-examples --bin zigbee_sniffer --offline \
    --no-default-features > /dev/null
if [ -n "$(ls -A "$capture_dir")" ]; then
    echo "ci.sh: --no-default-features build must not write capture artifacts" >&2
    exit 1
fi
echo "flight-recorder compiled out: no artifacts written"

echo
echo "ci.sh: all checks passed"
