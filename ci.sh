#!/usr/bin/env bash
# Offline CI for the wazabee workspace. Run from the repo root.
#
# Steps:
#   1. release build, telemetry on (default features)
#   2. release build, telemetry off (--no-default-features) — proves the
#      probes compile away
#   3. full test suite
#   4. clippy, warnings as errors
#   5. rustfmt check
#   6. telemetry-overhead smoke: the Criterion bench compiles and runs in
#      test mode in both feature states
#   7. flight-recorder smoke: WAZABEE_CAPTURE_DIR produces PCAP + JSONL
#      artifacts with default features and none with --no-default-features
#   8. packed-kernel micro-bench smoke: packed-vs-scalar despread/correlate
#      bench compiles and runs in test mode
#   9. iq-kernel micro-bench smoke: the planar SIMD sample-domain kernels
#      run in test mode in both feature states, and every kernel's scalar
#      reference is still exercised (bench cases plus the bitwise parity
#      proptests in tests/tests/iq_simd.rs)
#  10. rx-throughput smoke: the bin emits a well-formed
#      BENCH_rx_throughput.json and the packed despreading kernel is at
#      least 3x faster than the scalar reference
#  11. stream-throughput smoke: the streaming receiver emits a well-formed
#      BENCH_stream_throughput.json and recovers >= 2 frames behind a decoy
#      sync hit, in both feature states
#  12. netsim smoke: the network-scale spectrum-sim sweep emits a well-formed
#      BENCH_netsim.json whose no-attacker ideal cells deliver 100% and whose
#      attacked cells show waveform-level collisions, in both feature states
#  13. live snapshot poll: the default-features netsim run is polled over
#      WAZABEE_TELEMETRY_ADDR and must answer with a well-formed snapshot
#      (labeled metrics + per-stage profile + alerts); the
#      --no-default-features run must never start the endpoint
#  14. health + causal trace: during the attacked netsim run /healthz must
#      answer 503 with the collisions rule latched (and the delivery-ratio
#      rule armed), /trace must serve live Chrome Trace JSON, and the
#      WAZABEE_TRACE_OUT dump must hold rx.decode spans with frame args and
#      resolvable parents; a --no-attacker run must answer /healthz 200;
#      the --no-default-features run must write no trace file
#  15. shard-equivalence gate: a 256-node / 8-channel attacked cell is run
#      under WAZABEE_THREADS=1 and =4 in both feature states; the committed
#      event log and timeline JSONL must be byte-identical — the parallel
#      channel-sharded simulator may not perturb any committed artifact
#  16. serve-plane smoke: 8 paced loopback client sessions (cf32 and u8
#      offset-128 wire formats alternating) stream through the multi-tenant
#      decode service in both feature states; every frame must be recovered
#      with zero CRC failures and zero dropped chunks, and the emitted
#      BENCH_serve.json must be well-formed with a per-session fairness
#      ratio >= 0.5
#  17. perf regression gate: fresh smoke-run BENCH figures — including the
#      streaming and discriminator simd_speedup rows, the 1024-node
#      multi-channel sim/wall ratio, and the serve plane's per-session
#      paced decode rate — must stay within WAZABEE_PERF_TOLERANCE
#      (default 50%) of the committed artifacts/ baselines, failing loudly
#      on regressions; the committed serve baseline itself must show 100%
#      recovery at 64 sessions and fairness >= 0.5
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "=== $* ==="
    "$@"
}

run cargo build --release --workspace --offline
run cargo build --release --workspace --offline --no-default-features
run cargo test -q --workspace --offline
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo fmt --all -- --check
run cargo bench -p wazabee-bench --bench telemetry_overhead --offline -- --test
run cargo bench -p wazabee-bench --bench telemetry_overhead --offline --no-default-features -- --test

capture_dir="$(mktemp -d)"
trap 'rm -rf "$capture_dir"' EXIT
run env WAZABEE_CAPTURE_DIR="$capture_dir" \
    cargo run --release -q -p wazabee-examples --bin zigbee_sniffer --offline > /dev/null
for f in frames.pcap frames.jsonl; do
    if ! [ -s "$capture_dir/$f" ]; then
        echo "ci.sh: expected non-empty $f in WAZABEE_CAPTURE_DIR" >&2
        exit 1
    fi
done
echo "flight-recorder artifacts present: $(ls "$capture_dir")"

rm -rf "$capture_dir"/*
run env WAZABEE_CAPTURE_DIR="$capture_dir" \
    cargo run --release -q -p wazabee-examples --bin zigbee_sniffer --offline \
    --no-default-features > /dev/null
if [ -n "$(ls -A "$capture_dir")" ]; then
    echo "ci.sh: --no-default-features build must not write capture artifacts" >&2
    exit 1
fi
echo "flight-recorder compiled out: no artifacts written"

run cargo bench -p wazabee-bench --bench packed_kernels --offline -- --test

# The planar SIMD kernels must run in both feature states, and the scalar
# references they are parity-pinned to must still be exercised: the bench
# carries one *_scalar case per kernel, and the integration suite carries the
# bitwise scalar-parity proptests.
iq_bench_log="$capture_dir/iq_kernels_bench.log"
run cargo bench -p wazabee-bench --bench iq_kernels --offline -- --test
cargo bench -p wazabee-bench --bench iq_kernels --offline -- --test >"$iq_bench_log" 2>&1
run cargo bench -p wazabee-bench --bench iq_kernels --offline --no-default-features -- --test
for kernel in discriminate_scalar window_sums_scalar axpy_scalar \
    superpose_accumulate_scalar fir_planar_scalar; do
    if ! grep -q "$kernel" "$iq_bench_log"; then
        echo "ci.sh: iq_kernels bench no longer exercises $kernel" >&2
        exit 1
    fi
done
scalar_props="$(cargo test -q -p wazabee-integration --offline --test iq_simd -- --list \
    | grep -c "match.*_scalar")"
if [ "$scalar_props" -lt 5 ]; then
    echo "ci.sh: expected >= 5 scalar-parity proptests in iq_simd, found $scalar_props" >&2
    exit 1
fi
echo "scalar references exercised: 5 bench cases + $scalar_props parity proptests"

bench_json="$capture_dir/BENCH_rx_throughput.json"
run cargo run --release -q -p wazabee-bench --bin rx_throughput --offline -- \
    --smoke --out "$bench_json"
if ! [ -s "$bench_json" ]; then
    echo "ci.sh: rx_throughput did not write $bench_json" >&2
    exit 1
fi
run python3 - "$bench_json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rx, despread = doc["rx"], doc["despread"]
assert rx["frames_per_sec"] > 0, "frames/sec missing"
assert despread["packed_msymbols_per_sec"] > 0, "Msym/s missing"
speedup = despread["speedup"]
assert speedup >= 3.0, f"packed despread only {speedup:.2f}x faster than scalar (need >= 3x)"
print(f"BENCH_rx_throughput.json well-formed: "
      f"{rx['frames_per_sec']:.0f} frames/s, "
      f"{despread['packed_msymbols_per_sec']:.1f} Msym/s packed, "
      f"{speedup:.1f}x over scalar")
EOF

check_stream_json() {
    run python3 - "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
stream, fixture = doc["stream"], doc["fixture"]
assert stream["frames_per_sec"] > 0, "frames/sec missing"
assert stream["recovered"] == stream["frames"], (
    f"streaming lost frames: {stream['recovered']}/{stream['frames']}")
got = fixture["recovered_with_resync"]
assert got >= 2, f"only {got} frames recovered behind the decoy (need >= 2)"
print(f"BENCH_stream_throughput.json well-formed: "
      f"{stream['frames_per_sec']:.0f} frames/s streaming, "
      f"{got}/{fixture['frames']} recovered behind the decoy "
      f"(vs {fixture['recovered_without_resync']} without resync)")
EOF
}

stream_json="$capture_dir/BENCH_stream_throughput.json"
run cargo run --release -q -p wazabee-bench --bin stream_throughput --offline -- \
    --smoke --out "$stream_json"
check_stream_json "$stream_json"
stream_live_json="$capture_dir/BENCH_stream_live.json"
cp "$stream_json" "$stream_live_json"

rm -f "$stream_json"
run cargo run --release -q -p wazabee-bench --bin stream_throughput --offline \
    --no-default-features -- --smoke --out "$stream_json"
check_stream_json "$stream_json"

check_netsim_json() {
    run python3 - "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cells = doc["cells"]
assert cells, "no sweep cells"
for c in cells:
    assert c["sim_wall_ratio"] > 0, "sim/wall ratio missing"
    if not c["attacker"]:
        assert c["delivery_ratio"] == 1.0, (
            f"no-attacker ideal cell n={c['nodes']} delivered "
            f"{c['delivery_ratio']:.3f} (expected 1.0)")
attacked = [c for c in cells if c["attacker"]]
assert any(c["collisions"] > 0 for c in attacked), "injector never collided"
print(f"BENCH_netsim.json well-formed: {len(cells)} cells, "
      f"no-attacker delivery 100%, "
      f"attacked-cell collisions up to {max(c['collisions'] for c in attacked)}")
EOF
}

# Waits until the backgrounded sweep announces "lingering" on stderr, then
# echoes the snapshot server address it bound (empty if the process died).
wait_for_linger() {
    local log="$1" pid="$2" addr=""
    for _ in $(seq 1 1200); do
        if grep -q "^lingering" "$log" 2>/dev/null; then
            addr="$(sed -n 's/^telemetry snapshot server on //p' "$log" | head -1)"
            break
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            break
        fi
        sleep 0.1
    done
    echo "$addr"
}

netsim_json="$capture_dir/BENCH_netsim.json"
netsim_log="$capture_dir/netsim_stderr.log"
netsim_trace="$capture_dir/netsim_trace.json"
echo
echo "=== netsim_scale --smoke with live snapshot server ==="
env WAZABEE_TELEMETRY_ADDR=127.0.0.1:0 WAZABEE_TRACE_OUT="$netsim_trace" \
    cargo run --release -q -p wazabee-bench --bin netsim_scale --offline -- \
    --smoke --out "$netsim_json" --linger-ms 120000 2>"$netsim_log" &
netsim_pid=$!
# The sweep announces its ephemeral port on stderr and lingers after the
# sweep so this poller can attach while the process is still running.
snapshot_addr="$(wait_for_linger "$netsim_log" "$netsim_pid")"
if [ -z "$snapshot_addr" ]; then
    cat "$netsim_log" >&2
    echo "ci.sh: netsim_scale never brought up the snapshot server" >&2
    exit 1
fi
run python3 - "$snapshot_addr" <<'EOF'
import json, sys, urllib.request
addr = sys.argv[1]
body = urllib.request.urlopen(f"http://{addr}/", timeout=10).read()
snap = json.loads(body)
assert snap["schema"] == "wazabee.telemetry.snapshot/1", snap.get("schema")
assert snap["enabled"] is True, "snapshot reports telemetry disabled"
families = {f["name"]: f for f in snap["labeled_counters"]}
assert "sim.tx" in families, f"sim.tx family missing: {sorted(families)}"
cells = families["sim.tx"]["cells"]
assert cells and all("node" in c["labels"] for c in cells), "sim.tx cells unlabeled"
stages = {s["name"]: s for s in snap["stages"]}
assert stages, "stage profile empty"
for s in stages.values():
    assert s["count"] > 0 and s["self_ns"] <= s["total_ns"], s
assert isinstance(snap["alerts"], list), "snapshot has no alerts section"
print(f"live snapshot from {addr} well-formed: "
      f"{sum(len(f['cells']) for f in families.values())} labeled cells, "
      f"{len(stages)} profiled stages, {len(snap['alerts'])} alert rules")
EOF
run python3 - "$snapshot_addr" <<'EOF'
import json, sys, urllib.error, urllib.request
addr = sys.argv[1]
# The run keyed up carrier-sense-free injections, so the watchdog must
# have latched the injection rule: /healthz answers 503 with the alert
# body, and stays 503 for pollers arriving after the sweep finished.
try:
    urllib.request.urlopen(f"http://{addr}/healthz", timeout=10)
    raise SystemExit("ci.sh: /healthz answered 200 during an attacked run")
except urllib.error.HTTPError as e:
    assert e.code == 503, f"expected 503 from /healthz, got {e.code}"
    health = json.loads(e.read())
assert health["status"] == "alert", health
alerts = {a["name"]: a for a in health["alerts"]}
assert alerts["netsim.injection"]["latched"] is True, alerts
assert alerts["netsim.injection"]["value"] > 0, alerts
# The delivery-ratio floor is armed and watching the worst cell; smoke-size
# ideal cells deliver 100%, so it reports a value without firing.
degraded = alerts["netsim.delivery.degraded"]
assert degraded["value"] is not None, "delivery gauge never fed the rule"
# /trace serves the live causal ring as Chrome Trace JSON.
trace = json.loads(
    urllib.request.urlopen(f"http://{addr}/trace", timeout=10).read())
assert trace["traceEvents"], "live /trace document is empty"
print(f"/healthz 503 with netsim.injection latched "
      f"(value {alerts['netsim.injection']['value']:.0f}); "
      f"live /trace holds {len(trace['traceEvents'])} events")
EOF
kill "$netsim_pid" 2>/dev/null || true
wait "$netsim_pid" 2>/dev/null || true
check_netsim_json "$netsim_json"
run python3 - "$netsim_trace" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "WAZABEE_TRACE_OUT dump is empty"
spans = {e["args"]["span_id"] for e in events
         if e.get("args", {}).get("span_id") is not None}
decodes = [e for e in events if e.get("name") == "rx.decode"]
assert decodes, "no rx.decode spans in the trace dump"
for d in decodes:
    args = d["args"]
    for key in ("frame", "bit", "lane", "sync_errors"):
        assert key in args, f"rx.decode span missing {key}: {args}"
    parent = args.get("parent")
    assert parent is None or parent in spans or args.get("parent_evicted"), (
        f"unresolvable parent {parent} without an eviction marker: {args}")
nested = sum(1 for d in decodes if d["args"].get("parent") in spans)
print(f"netsim trace dump well-formed: {len(events)} events, "
      f"{len(decodes)} rx.decode spans ({nested} with resolvable parents)")
EOF

# Without the injector no rule trips: /healthz must answer 200 "ok".
netsim_ok_log="$capture_dir/netsim_ok_stderr.log"
echo
echo "=== netsim_scale --smoke --no-attacker: /healthz stays 200 ==="
env WAZABEE_TELEMETRY_ADDR=127.0.0.1:0 \
    cargo run --release -q -p wazabee-bench --bin netsim_scale --offline -- \
    --smoke --no-attacker --out "$capture_dir/BENCH_netsim_ok.json" \
    --linger-ms 120000 2>"$netsim_ok_log" &
netsim_ok_pid=$!
ok_addr="$(wait_for_linger "$netsim_ok_log" "$netsim_ok_pid")"
if [ -z "$ok_addr" ]; then
    cat "$netsim_ok_log" >&2
    echo "ci.sh: no-attacker netsim_scale never brought up the snapshot server" >&2
    exit 1
fi
run python3 - "$ok_addr" <<'EOF'
import json, sys, urllib.request
addr = sys.argv[1]
resp = urllib.request.urlopen(f"http://{addr}/healthz", timeout=10)
assert resp.status == 200, f"expected 200 from /healthz, got {resp.status}"
health = json.loads(resp.read())
assert health["status"] == "ok", health
assert all(not a["latched"] for a in health["alerts"]), health
print(f"/healthz 200 OK without the injector ({len(health['alerts'])} rules calm)")
EOF
kill "$netsim_ok_pid" 2>/dev/null || true
wait "$netsim_ok_pid" 2>/dev/null || true
netsim_live_json="$capture_dir/BENCH_netsim_live.json"
cp "$netsim_json" "$netsim_live_json"

rm -f "$netsim_json"
netsim_off_log="$capture_dir/netsim_off_stderr.log"
netsim_off_trace="$capture_dir/netsim_trace_off.json"
run env WAZABEE_TELEMETRY_ADDR=127.0.0.1:0 WAZABEE_TRACE_OUT="$netsim_off_trace" \
    cargo run --release -q -p wazabee-bench --bin netsim_scale --offline \
    --no-default-features -- --smoke --out "$netsim_json" 2>"$netsim_off_log"
cat "$netsim_off_log"
if grep -q "telemetry snapshot server on" "$netsim_off_log"; then
    echo "ci.sh: snapshot server must be compiled out under --no-default-features" >&2
    exit 1
fi
if [ -e "$netsim_off_trace" ]; then
    echo "ci.sh: --no-default-features build must not write a Chrome trace" >&2
    exit 1
fi
echo "snapshot server and trace dump compiled out under --no-default-features"
check_netsim_json "$netsim_json"

# Shard-equivalence gate: the channel-sharded simulator must commit
# byte-identical artifacts at any worker count, with and without telemetry.
echo
echo "=== shard-equivalence gate: WAZABEE_THREADS=1 vs 4, both feature states ==="
for features in default no-default; do
    flags=()
    if [ "$features" = "no-default" ]; then
        flags=(--no-default-features)
    fi
    p1="$capture_dir/shard_${features}_t1"
    p4="$capture_dir/shard_${features}_t4"
    run env WAZABEE_THREADS=1 \
        cargo run --release -q -p wazabee-bench --bin netsim_scale --offline \
        "${flags[@]}" -- --shard-check "$p1"
    run env WAZABEE_THREADS=4 \
        cargo run --release -q -p wazabee-bench --bin netsim_scale --offline \
        "${flags[@]}" -- --shard-check "$p4"
    for ext in log jsonl; do
        if ! cmp -s "$p1.$ext" "$p4.$ext"; then
            echo "ci.sh: $features-features .$ext artifact differs between 1 and 4 threads" >&2
            cmp "$p1.$ext" "$p4.$ext" >&2 || true
            exit 1
        fi
        if ! [ -s "$p1.$ext" ]; then
            echo "ci.sh: shard-check wrote an empty .$ext artifact" >&2
            exit 1
        fi
    done
    echo "$features features: event log + timeline byte-identical across thread counts"
done

# Serve-plane smoke: paced concurrent sessions against the multi-tenant
# decode service in both feature states. 100% recovery is a hard floor —
# a lost frame on a clean loopback capture means the serve plane broke it.
check_serve_json() {
    run python3 - "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["recovered"] == doc["total_frames"], (
    f"serve plane lost frames: {doc['recovered']}/{doc['total_frames']}")
assert doc["crc_fail"] == 0, f"{doc['crc_fail']} CRC failures on a clean capture"
assert doc["chunks_dropped"] == 0, (
    f"{doc['chunks_dropped']} chunks dropped on blocking socket ingest")
assert doc["aggregate_frames_per_sec"] > 0, "aggregate frames/s missing"
detail = doc["sessions_detail"]
assert len(detail) == doc["sessions"], (
    f"{len(detail)} session reports for {doc['sessions']} sessions")
fairness = doc["fairness"]["min_max_ratio"]
assert fairness >= 0.5, (
    f"session fairness min/max {fairness:.3f} < 0.5 — a tenant starved")
print(f"BENCH_serve.json well-formed: {doc['recovered']}/{doc['total_frames']} "
      f"frames over {doc['sessions']} sessions, "
      f"{doc['aggregate_frames_per_sec']:.0f} frames/s aggregate, "
      f"fairness {fairness:.3f}")
EOF
}

serve_json="$capture_dir/BENCH_serve.json"
run cargo run --release -q -p wazabee-bench --bin serve_throughput --offline -- \
    --smoke --frames 8 --out "$serve_json"
check_serve_json "$serve_json"
serve_live_json="$capture_dir/BENCH_serve_live.json"
cp "$serve_json" "$serve_live_json"

rm -f "$serve_json"
run cargo run --release -q -p wazabee-bench --bin serve_throughput --offline \
    --no-default-features -- --smoke --frames 8 --out "$serve_json"
check_serve_json "$serve_json"

run env WAZABEE_PERF_TOLERANCE="${WAZABEE_PERF_TOLERANCE:-0.5}" \
    python3 - "$bench_json" "$stream_live_json" "$netsim_live_json" "$serve_live_json" <<'EOF'
import json, os, sys

tol = float(os.environ["WAZABEE_PERF_TOLERANCE"])
fresh_rx_path, fresh_stream_path, fresh_netsim_path, fresh_serve_path = sys.argv[1:5]

def load(path):
    with open(path) as f:
        return json.load(f)

failures = []

def gate(label, fresh, base):
    floor = base * (1.0 - tol)
    if fresh < floor:
        failures.append(
            f"{label}: fresh {fresh:.3f} < floor {floor:.3f} "
            f"(baseline {base:.3f}, tolerance {tol:.0%})")
    else:
        print(f"perf gate ok: {label} fresh {fresh:.3f} "
              f"vs baseline {base:.3f} (floor {floor:.3f})")

rx_f, rx_b = load(fresh_rx_path), load("artifacts/BENCH_rx_throughput.json")
gate("rx.frames_per_sec",
     rx_f["rx"]["frames_per_sec"], rx_b["rx"]["frames_per_sec"])
gate("despread.speedup",
     rx_f["despread"]["speedup"], rx_b["despread"]["speedup"])
gate("despread.packed_msymbols_per_sec",
     rx_f["despread"]["packed_msymbols_per_sec"],
     rx_b["despread"]["packed_msymbols_per_sec"])
gate("discriminate.simd_speedup",
     rx_f["discriminate"]["simd_speedup"], rx_b["discriminate"]["simd_speedup"])

st_f, st_b = load(fresh_stream_path), load("artifacts/BENCH_stream_throughput.json")
gate("stream.frames_per_sec",
     st_f["stream"]["frames_per_sec"], st_b["stream"]["frames_per_sec"])
gate("stream.simd_speedup",
     st_f["stream"]["simd_speedup"], st_b["stream"]["simd_speedup"])

ns_f, ns_b = load(fresh_netsim_path), load("artifacts/BENCH_netsim.json")
base_cells = {(c["nodes"], c.get("channels", 1), c["attacker"]): c
              for c in ns_b["cells"]}
matched = 0
big_matched = 0
for c in ns_f["cells"]:
    key = (c["nodes"], c.get("channels", 1), c["attacker"])
    if key in base_cells:
        matched += 1
        big_matched += key[0] >= 1024
        gate(f"netsim.sim_wall_ratio[n={key[0]},ch={key[1]},"
             f"attacker={str(key[2]).lower()}]",
             c["sim_wall_ratio"], base_cells[key]["sim_wall_ratio"])
assert matched > 0, "no netsim cells matched the committed baseline"
assert big_matched > 0, "the 1024-node multi-channel cells are not gated"

# The serve smoke runs 8 sessions where the committed baseline runs 64, so
# the comparable figure is the *per-session* paced decode rate — with equal
# frames per session and pacing, a regressed decode plane shows up as a
# longer drain and a lower per-session rate at either scale. The committed
# 64-session baseline must also hold the multi-tenant acceptance bar on its
# own: every frame recovered and no session starved.
sv_f, sv_b = load(fresh_serve_path), load("artifacts/BENCH_serve.json")
assert sv_b["sessions"] >= 64, (
    f"committed serve baseline ran only {sv_b['sessions']} sessions (need >= 64)")
assert sv_b["recovered"] == sv_b["total_frames"], (
    f"committed serve baseline lost frames: "
    f"{sv_b['recovered']}/{sv_b['total_frames']}")
assert sv_b["fairness"]["min_max_ratio"] >= 0.5, (
    f"committed serve baseline fairness "
    f"{sv_b['fairness']['min_max_ratio']:.3f} < 0.5")
gate("serve.per_session_frames_per_sec",
     sv_f["aggregate_frames_per_sec"] / sv_f["sessions"],
     sv_b["aggregate_frames_per_sec"] / sv_b["sessions"])

if failures:
    print("ci.sh: perf regression gate FAILED:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"perf regression gate passed (tolerance {tol:.0%})")
EOF

echo
echo "ci.sh: all checks passed"
