//! Output sinks: end-of-run console summary and JSONL export.
//!
//! Both sinks read the global registry (every counter/histogram touched this
//! run) and the trace ring. The summary derives the headline figures of the
//! paper's evaluation — sync-hit rate, CRC-24/FCS pass rates, PER — from
//! counter naming conventions: any `*.hit`/`*.miss` or `*.ok`/`*.fail` pair
//! yields a rate line, and `*frames_tx` vs `*frames_ok` totals yield PER.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

use crate::span::{snapshot_trace, TraceKind};

/// Environment variable naming a JSONL dump path (see [`dump_from_env`]).
pub const ENV_OUT: &str = "WAZABEE_TELEMETRY_OUT";

#[cfg(feature = "enabled")]
fn merged_counters() -> BTreeMap<&'static str, u64> {
    let mut merged: BTreeMap<&'static str, u64> = BTreeMap::new();
    for c in crate::registry::registry().counters.lock().unwrap().iter() {
        *merged.entry(c.name()).or_insert(0) += c.get();
    }
    merged
}

#[cfg(not(feature = "enabled"))]
fn merged_counters() -> BTreeMap<&'static str, u64> {
    BTreeMap::new()
}

/// Sums counters whose name ends with `suffix`.
#[cfg(feature = "enabled")]
fn total_with_suffix(counters: &BTreeMap<&'static str, u64>, suffix: &str) -> u64 {
    counters
        .iter()
        .filter(|(name, _)| name.ends_with(suffix))
        .map(|(_, v)| v)
        .sum()
}

#[cfg(feature = "enabled")]
fn rate_line(label: &str, pass: u64, fail: u64) -> Option<String> {
    let total = pass + fail;
    (total > 0).then(|| {
        format!(
            "  {label:<28} {pass}/{total} ({:.2}%)",
            100.0 * pass as f64 / total as f64
        )
    })
}

/// Renders the end-of-run console summary table.
///
/// Sections: derived rates (sync success, CRC/FCS pass, PER), counters,
/// value histograms (count/mean/p50/p99), timing histograms
/// (count/total/p50/p99), and span aggregates from the trace ring.
/// With the `enabled` feature off, returns a single "disabled" line.
#[must_use]
pub fn summary() -> String {
    #[cfg(not(feature = "enabled"))]
    #[allow(clippy::needless_return)] // return keeps both cfg branches expression-compatible
    {
        return "wazabee-telemetry: disabled (build with the `telemetry` feature)\n".to_string();
    }
    #[cfg(feature = "enabled")]
    {
        let mut out = String::new();
        let _ = writeln!(out, "=== wazabee telemetry summary ===");

        let counters = merged_counters();

        // Derived headline rates from naming conventions.
        let mut derived = Vec::new();
        let sync_hit = total_with_suffix(&counters, ".sync.hit");
        let sync_miss = total_with_suffix(&counters, ".sync.miss");
        if let Some(l) = rate_line("sync-hit rate", sync_hit, sync_miss) {
            derived.push(l);
        }
        let crc_ok = total_with_suffix(&counters, ".crc.ok");
        let crc_fail = total_with_suffix(&counters, ".crc.fail");
        if let Some(l) = rate_line("CRC-24 pass rate", crc_ok, crc_fail) {
            derived.push(l);
        }
        let fcs_ok = total_with_suffix(&counters, ".fcs.ok");
        let fcs_fail = total_with_suffix(&counters, ".fcs.fail");
        if let Some(l) = rate_line("FCS pass rate", fcs_ok, fcs_fail) {
            derived.push(l);
        }
        let frames_tx = total_with_suffix(&counters, "frames_tx");
        let frames_ok = total_with_suffix(&counters, "frames_ok");
        if frames_tx > 0 {
            let per = 1.0 - (frames_ok.min(frames_tx) as f64 / frames_tx as f64);
            derived.push(format!(
                "  {:<28} {:.4} ({frames_ok}/{frames_tx} frames ok)",
                "PER", per
            ));
        }
        // Failure taxonomy: counters named `*.rx.fail.<reason>` (emitted by
        // the flight-recorder hooks in the RX paths) grouped by reason.
        let mut fail_by_reason: BTreeMap<&str, u64> = BTreeMap::new();
        for (name, value) in &counters {
            if let Some(pos) = name.find(".rx.fail.") {
                let reason = &name[pos + ".rx.fail.".len()..];
                if !reason.is_empty() {
                    *fail_by_reason.entry(reason).or_insert(0) += value;
                }
            }
        }
        for (reason, total) in &fail_by_reason {
            derived.push(format!("  rx.fail.{reason:<20} {total}"));
        }
        if !derived.is_empty() {
            let _ = writeln!(out, "-- derived --");
            for l in derived {
                let _ = writeln!(out, "{l}");
            }
        }

        if !counters.is_empty() {
            let _ = writeln!(out, "-- counters --");
            for (name, value) in &counters {
                let _ = writeln!(out, "  {name:<40} {value}");
            }
        }

        // Labeled families, one line per cell, `name{labels}` style.
        let mut labeled_lines: Vec<String> = Vec::new();
        for f in sorted_counter_families() {
            for (labels, value) in f.snapshot() {
                labeled_lines.push(format!("  {:<40} {value}", cell_name(f.name(), &labels)));
            }
        }
        if !labeled_lines.is_empty() {
            let _ = writeln!(out, "-- labeled counters --");
            for l in labeled_lines {
                let _ = writeln!(out, "{l}");
            }
        }
        let mut gauge_lines: Vec<String> = Vec::new();
        for f in sorted_gauge_families() {
            for (labels, value) in f.snapshot() {
                gauge_lines.push(format!("  {:<40} {value:.4}", cell_name(f.name(), &labels)));
            }
        }
        if !gauge_lines.is_empty() {
            let _ = writeln!(out, "-- gauges --");
            for l in gauge_lines {
                let _ = writeln!(out, "{l}");
            }
        }
        let mut lhist_lines: Vec<String> = Vec::new();
        for f in sorted_hist_families() {
            for (labels, stats) in f.snapshot() {
                if stats.count == 0 {
                    continue;
                }
                lhist_lines.push(format!(
                    "  {:<40} n={} mean={:.3} p50={:.3} p99={:.3}",
                    cell_name(f.name(), &labels),
                    stats.count,
                    stats.mean.unwrap_or(f64::NAN),
                    stats.p50.unwrap_or(f64::NAN),
                    stats.p99.unwrap_or(f64::NAN),
                ));
            }
        }
        if !lhist_lines.is_empty() {
            let _ = writeln!(out, "-- labeled histograms --");
            for l in lhist_lines {
                let _ = writeln!(out, "{l}");
            }
        }

        let vhists = crate::registry::registry().value_hists.lock().unwrap();
        if !vhists.is_empty() {
            let _ = writeln!(out, "-- value histograms --");
            for h in vhists.iter() {
                let n = h.count();
                if n == 0 {
                    let _ = writeln!(out, "  {:<40} (empty)", h.name());
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<40} n={n} mean={:.3} p50={:.3} p99={:.3}",
                    h.name(),
                    h.mean().unwrap_or(f64::NAN),
                    h.quantile(0.5).unwrap_or(f64::NAN),
                    h.quantile(0.99).unwrap_or(f64::NAN),
                );
            }
        }
        drop(vhists);

        let thists = crate::registry::registry().time_hists.lock().unwrap();
        if !thists.is_empty() {
            let _ = writeln!(out, "-- timing histograms (ns) --");
            for h in thists.iter() {
                let n = h.count();
                if n == 0 {
                    let _ = writeln!(out, "  {:<40} (empty)", h.name());
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<40} n={n} total={} p50~{} p99~{}",
                    h.name(),
                    h.sum_ns(),
                    h.quantile_ns(0.5).unwrap_or(0),
                    h.quantile_ns(0.99).unwrap_or(0),
                );
            }
        }
        drop(thists);

        // Span aggregates: completed-span count and total time per name.
        let mut spans: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        let mut events: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ev in snapshot_trace() {
            match ev.kind {
                TraceKind::SpanExit { dur_ns } => {
                    let e = spans.entry(ev.name).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += dur_ns;
                }
                TraceKind::Instant { .. } => *events.entry(ev.name).or_insert(0) += 1,
                TraceKind::SpanEnter => {}
            }
        }
        if !spans.is_empty() {
            let _ = writeln!(out, "-- spans --");
            for (name, (n, total_ns)) in &spans {
                let _ = writeln!(out, "  {name:<40} n={n} total={total_ns}ns");
            }
        }
        if !events.is_empty() {
            let _ = writeln!(out, "-- events --");
            for (name, n) in &events {
                let _ = writeln!(out, "  {name:<40} n={n}");
            }
        }

        // Health rules: one watchdog tick, then every armed rule with its
        // verdict — firing/latched alerts stand out, healthy rules read "ok".
        let alerts = crate::health::evaluate_health();
        if !alerts.is_empty() {
            let _ = writeln!(out, "-- alerts --");
            for a in &alerts {
                let status = if a.firing {
                    "FIRING"
                } else if a.latched {
                    "latched"
                } else {
                    "ok"
                };
                let value = a
                    .value
                    .map_or_else(|| "n/a".to_string(), |v| format!("{v:.4}"));
                let _ = writeln!(
                    out,
                    "  {:<40} {status} ({} {} {}, value {value}, fired {}x)",
                    a.name,
                    a.signal.metric(),
                    a.cmp.symbol(),
                    a.threshold,
                    a.fired_count,
                );
            }
        }

        out.push_str(&crate::profile::profile_summary());
        out
    }
}

/// Renders `name{labels}` (or just `name` for the empty label set).
#[cfg(feature = "enabled")]
fn cell_name(name: &str, labels: &crate::labeled::LabelSet) -> String {
    format!("{name}{}", labels.render())
}

/// Registered counter families, sorted by name for stable output.
#[cfg(feature = "enabled")]
fn sorted_counter_families() -> Vec<&'static crate::labeled::CounterFamily> {
    let mut v: Vec<_> = crate::registry::registry()
        .counter_families
        .lock()
        .unwrap()
        .clone();
    v.sort_by_key(|f| f.name());
    v
}

#[cfg(feature = "enabled")]
fn sorted_gauge_families() -> Vec<&'static crate::labeled::GaugeFamily> {
    let mut v: Vec<_> = crate::registry::registry()
        .gauge_families
        .lock()
        .unwrap()
        .clone();
    v.sort_by_key(|f| f.name());
    v
}

#[cfg(feature = "enabled")]
fn sorted_hist_families() -> Vec<&'static crate::labeled::HistogramFamily> {
    let mut v: Vec<_> = crate::registry::registry()
        .hist_families
        .lock()
        .unwrap()
        .clone();
    v.sort_by_key(|f| f.name());
    v
}

/// Renders a label set as a JSON object: `{"k":"v",…}`.
#[cfg(feature = "enabled")]
pub(crate) fn labels_json(pairs: &[(&'static str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

/// Renders the complete current telemetry state as one JSON object — the
/// body served by the snapshot server ([`crate::serve`]) and usable directly
/// for mid-run introspection.
///
/// Top-level shape (`schema` = `"wazabee.telemetry.snapshot/1"`):
/// `counters` (name → value), `labeled_counters` / `gauges` /
/// `labeled_histograms` (per-family cell arrays), `value_histograms`,
/// `time_histograms`, `alerts` (one watchdog tick over every armed
/// [`crate::HealthRule`]), `stages` (the self/total profile) and
/// `wall_series`. With the `enabled` feature off, only
/// `{"schema":…,"enabled":false}`.
#[must_use]
pub fn snapshot_json() -> String {
    let mut out = String::from("{\"schema\":\"wazabee.telemetry.snapshot/1\"");
    #[cfg(not(feature = "enabled"))]
    {
        out.push_str(",\"enabled\":false}");
        out
    }
    #[cfg(feature = "enabled")]
    {
        out.push_str(",\"enabled\":true");

        out.push_str(",\"counters\":{");
        for (i, (name, value)) in merged_counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{value}", json_escape(name));
        }
        out.push('}');

        out.push_str(",\"labeled_counters\":[");
        for (i, f) in sorted_counter_families().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"cells\":[", json_escape(f.name()));
            for (j, (labels, value)) in f.snapshot().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"labels\":{},\"value\":{value}}}",
                    labels_json(labels.pairs())
                );
            }
            out.push_str("]}");
        }
        out.push(']');

        out.push_str(",\"gauges\":[");
        for (i, f) in sorted_gauge_families().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"cells\":[", json_escape(f.name()));
            for (j, (labels, value)) in f.snapshot().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"labels\":{},\"value\":{}}}",
                    labels_json(labels.pairs()),
                    json_f64(*value)
                );
            }
            out.push_str("]}");
        }
        out.push(']');

        out.push_str(",\"labeled_histograms\":[");
        for (i, f) in sorted_hist_families().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (lo, hi) = f.range();
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"lo\":{},\"hi\":{},\"cells\":[",
                json_escape(f.name()),
                json_f64(lo),
                json_f64(hi)
            );
            for (j, (labels, stats)) in f.snapshot().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"labels\":{},\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{}}}",
                    labels_json(labels.pairs()),
                    stats.count,
                    json_f64(stats.sum),
                    json_opt_f64(stats.mean),
                    json_opt_f64(stats.p50),
                    json_opt_f64(stats.p99)
                );
            }
            out.push_str("]}");
        }
        out.push(']');

        out.push_str(",\"value_histograms\":[");
        {
            let vhists = crate::registry::registry().value_hists.lock().unwrap();
            for (i, h) in vhists.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"count\":{},\"mean\":{},\"p50\":{},\"p99\":{}}}",
                    json_escape(h.name()),
                    h.count(),
                    json_opt_f64(h.mean()),
                    json_opt_f64(h.quantile(0.5)),
                    json_opt_f64(h.quantile(0.99))
                );
            }
        }
        out.push(']');

        out.push_str(",\"time_histograms\":[");
        {
            let thists = crate::registry::registry().time_hists.lock().unwrap();
            for (i, h) in thists.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"count\":{},\"sum_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                    json_escape(h.name()),
                    h.count(),
                    h.sum_ns(),
                    h.quantile_ns(0.5).unwrap_or(0),
                    h.quantile_ns(0.99).unwrap_or(0)
                );
            }
        }
        out.push(']');

        out.push_str(",\"alerts\":[");
        for (i, a) in crate::health::evaluate_health().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::health::alert_json(a));
        }
        out.push(']');

        out.push_str(",\"stages\":[");
        for (i, row) in crate::profile::profile_report().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                json_escape(row.name),
                row.count,
                row.total_ns,
                row.self_ns
            );
        }
        out.push(']');

        out.push_str(",\"wall_series\":[");
        {
            let mut series: Vec<_> = crate::registry::registry()
                .wall_series
                .lock()
                .unwrap()
                .clone();
            series.sort_by_key(|s| s.name());
            for (i, s) in series.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"series\":\"{}\",\"points\":[",
                    json_escape(s.name())
                );
                for (j, p) in s.snapshot().iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{},{}]", p.t, json_f64(p.value));
                }
                out.push_str("]}");
            }
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for a JSON string literal (quotes not included).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON value (`null` for non-finite).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

#[cfg(feature = "enabled")]
fn json_u64_array(vals: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Writes every registered metric and buffered trace record as JSON Lines.
///
/// Record shapes (one JSON object per line, `type` discriminates):
/// `counter`, `value_histogram`, `time_histogram`, `trace`.
/// The trace ring is *not* drained — records stay available to [`summary`].
pub fn write_jsonl(w: &mut dyn Write) -> io::Result<()> {
    for (name, value) in &merged_counters() {
        writeln!(
            w,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            json_escape(name)
        )?;
    }
    #[cfg(feature = "enabled")]
    {
        for h in crate::registry::registry()
            .value_hists
            .lock()
            .unwrap()
            .iter()
        {
            let (lo, hi) = h.range();
            let (under, interior, over) = h.snapshot();
            writeln!(
                w,
                "{{\"type\":\"value_histogram\",\"name\":\"{}\",\"lo\":{},\"hi\":{},\
                 \"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{},\
                 \"underflow\":{under},\"overflow\":{over},\"buckets\":{}}}",
                json_escape(h.name()),
                json_f64(lo),
                json_f64(hi),
                h.count(),
                json_f64(h.sum()),
                json_opt_f64(h.mean()),
                json_opt_f64(h.quantile(0.5)),
                json_opt_f64(h.quantile(0.99)),
                json_u64_array(&interior),
            )?;
        }
        for h in crate::registry::registry()
            .time_hists
            .lock()
            .unwrap()
            .iter()
        {
            writeln!(
                w,
                "{{\"type\":\"time_histogram\",\"name\":\"{}\",\"count\":{},\
                 \"sum_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"buckets\":{}}}",
                json_escape(h.name()),
                h.count(),
                h.sum_ns(),
                h.quantile_ns(0.5).unwrap_or(0),
                h.quantile_ns(0.99).unwrap_or(0),
                json_u64_array(&h.snapshot()),
            )?;
        }
        for f in sorted_counter_families() {
            for (labels, value) in f.snapshot() {
                writeln!(
                    w,
                    "{{\"type\":\"labeled_counter\",\"name\":\"{}\",\"labels\":{},\"value\":{value}}}",
                    json_escape(f.name()),
                    labels_json(labels.pairs()),
                )?;
            }
        }
        for f in sorted_gauge_families() {
            for (labels, value) in f.snapshot() {
                writeln!(
                    w,
                    "{{\"type\":\"gauge\",\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                    json_escape(f.name()),
                    labels_json(labels.pairs()),
                    json_f64(value),
                )?;
            }
        }
        for f in sorted_hist_families() {
            let (lo, hi) = f.range();
            for (labels, stats) in f.snapshot() {
                writeln!(
                    w,
                    "{{\"type\":\"labeled_histogram\",\"name\":\"{}\",\"labels\":{},\
                     \"lo\":{},\"hi\":{},\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{}}}",
                    json_escape(f.name()),
                    labels_json(labels.pairs()),
                    json_f64(lo),
                    json_f64(hi),
                    stats.count,
                    json_f64(stats.sum),
                    json_opt_f64(stats.mean),
                    json_opt_f64(stats.p50),
                    json_opt_f64(stats.p99),
                )?;
            }
        }
        for row in crate::profile::profile_report() {
            writeln!(
                w,
                "{{\"type\":\"stage\",\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                json_escape(row.name),
                row.count,
                row.total_ns,
                row.self_ns,
            )?;
        }
        {
            let mut series: Vec<_> = crate::registry::registry()
                .wall_series
                .lock()
                .unwrap()
                .clone();
            series.sort_by_key(|s| s.name());
            for s in series {
                for p in s.snapshot() {
                    writeln!(
                        w,
                        "{{\"type\":\"wall_series\",\"series\":\"{}\",\"t_ns\":{},\"value\":{}}}",
                        json_escape(s.name()),
                        p.t,
                        json_f64(p.value),
                    )?;
                }
            }
        }
    }
    for ev in snapshot_trace() {
        let (kind, dur, value) = match ev.kind {
            TraceKind::SpanEnter => ("enter", "null".to_string(), "null".to_string()),
            TraceKind::SpanExit { dur_ns } => ("exit", format!("{dur_ns}"), "null".to_string()),
            TraceKind::Instant { value } => ("instant", "null".to_string(), json_opt_f64(value)),
        };
        #[cfg(feature = "enabled")]
        let causal = format!(
            ",\"span_id\":{},\"parent_id\":{},\"thread\":{},\"args\":{}",
            ev.span_id,
            ev.parent_id,
            ev.thread_id,
            crate::trace_export::span_args_json(&ev.args),
        );
        #[cfg(not(feature = "enabled"))]
        let causal = String::new();
        writeln!(
            w,
            "{{\"type\":\"trace\",\"ts_ns\":{},\"name\":\"{}\",\"kind\":\"{kind}\",\
             \"dur_ns\":{dur},\"value\":{value}{causal}}}",
            ev.ts_ns,
            json_escape(ev.name),
        )?;
    }
    Ok(())
}

/// Writes the JSONL dump (see [`write_jsonl`]) to `path`, truncating it.
pub fn dump_jsonl_to(path: &Path) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    write_jsonl(&mut file)?;
    file.flush()
}

/// If the `WAZABEE_TELEMETRY_OUT` environment variable is set, dumps JSONL
/// to that path and returns `Ok(true)`; otherwise returns `Ok(false)`.
pub fn dump_from_env() -> io::Result<bool> {
    match std::env::var_os(ENV_OUT) {
        Some(path) if !path.is_empty() => {
            dump_jsonl_to(Path::new(&path))?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn summary_derives_rates_from_counter_names() {
        let _lock = crate::test_lock();
        crate::counter!("sink.test.sync.hit").add(9);
        crate::counter!("sink.test.sync.miss").add(1);
        crate::counter!("sink.test.crc.ok").add(7);
        crate::counter!("sink.test.crc.fail").add(3);
        crate::counter!("sink.test.frames_tx").add(10);
        crate::counter!("sink.test.frames_ok").add(8);
        let s = summary();
        assert!(s.contains("sync-hit rate"), "summary:\n{s}");
        assert!(s.contains("90.00%"), "summary:\n{s}");
        assert!(s.contains("CRC-24 pass rate"), "summary:\n{s}");
        assert!(s.contains("70.00%"), "summary:\n{s}");
        assert!(s.contains("PER"), "summary:\n{s}");
        assert!(s.contains("0.2000"), "summary:\n{s}");
    }

    #[test]
    fn summary_groups_rx_failure_reasons() {
        let _lock = crate::test_lock();
        crate::counter!("sink.a.rx.fail.no_sync").add(4);
        crate::counter!("sink.b.rx.fail.no_sync").add(2);
        crate::counter!("sink.a.rx.fail.fcs").add(1);
        let s = summary();
        // Reasons are summed across layer prefixes.
        assert!(s.contains("rx.fail.no_sync"), "summary:\n{s}");
        assert!(s.contains("rx.fail.fcs"), "summary:\n{s}");
        let no_sync_line = s
            .lines()
            .find(|l| l.contains("rx.fail.no_sync"))
            .expect("no_sync line");
        assert!(
            no_sync_line.trim_end().ends_with('6'),
            "line: {no_sync_line}"
        );
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let _lock = crate::test_lock();
        crate::counter!("sink.test.jsonl.count").add(2);
        crate::value_histogram!("sink.test.jsonl.vals", 0.0, 8.0).record(3.0);
        crate::event!("sink.test.jsonl.ev", 1.25);
        let mut buf = Vec::new();
        write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text
            .lines()
            .any(|l| l.contains("\"sink.test.jsonl.count\"") && l.contains("\"value\":2")));
        assert!(text.lines().any(|l| l.contains("\"sink.test.jsonl.vals\"")
            && l.contains("\"type\":\"value_histogram\"")));
        assert!(text
            .lines()
            .any(|l| l.contains("\"sink.test.jsonl.ev\"") && l.contains("\"kind\":\"instant\"")));
        // Every line must be a single braced object with balanced quotes.
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
            assert_eq!(line.matches('"').count() % 2, 0, "bad line: {line}");
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn dump_from_env_is_noop_when_unset() {
        // Other tests may race on env in theory, but nothing in this crate
        // sets ENV_OUT, so absence is stable.
        if std::env::var_os(ENV_OUT).is_none() {
            assert!(!dump_from_env().unwrap());
        }
    }
}
