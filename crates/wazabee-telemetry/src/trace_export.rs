//! Chrome Trace Event export: render the causal trace ring as JSON that
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load directly.
//!
//! The exporter walks the ring *without draining it* and emits one
//! `traceEvents` array:
//!
//! * a closed span (its `SpanExit` record is in the ring) becomes one
//!   complete event (`"ph":"X"`) spanning enter→exit, carrying the span's
//!   `id`/`parent` and user args;
//! * a span whose exit was never recorded (still open, or the exit was
//!   evicted) becomes a begin event (`"ph":"B"`) so the tail of a long run
//!   still renders;
//! * an instant event (`event!`) becomes `"ph":"i"` scoped to its thread.
//!
//! Timestamps are microseconds since the process's telemetry epoch, kept
//! fractional to preserve nanosecond resolution. Records whose parent span
//! was evicted from the bounded ring are marked `"parent_evicted":true`
//! instead of pretending to be roots — the causal chain is either resolvable
//! or explicitly broken, never silently wrong.
//!
//! Set `WAZABEE_TRACE_OUT=PATH` and the bench binaries / example session
//! guard call [`dump_trace_from_env`] on exit; [`dump_trace_to`] writes the
//! same document anywhere on demand. With the `enabled` feature off nothing
//! is ever written and the document renders empty.

use std::io::{self, Write};
use std::path::Path;

#[cfg(feature = "enabled")]
use std::collections::HashSet;
#[cfg(feature = "enabled")]
use std::fmt::Write as _;

#[cfg(feature = "enabled")]
use crate::sink::json_escape;
#[cfg(feature = "enabled")]
use crate::span::{snapshot_trace, ArgValue, SpanArgs, TraceEvent, TraceKind};

/// Environment variable naming the Chrome Trace JSON dump path (see
/// [`dump_trace_from_env`]).
pub const ENV_TRACE_OUT: &str = "WAZABEE_TRACE_OUT";

/// Renders the current trace ring as a Chrome Trace Event JSON document.
///
/// The ring is only peeked — records stay available to [`crate::summary`]
/// and later exports. With the `enabled` feature off this returns an empty
/// document (`{"traceEvents":[]}`).
#[must_use]
pub fn trace_chrome_json() -> String {
    #[cfg(not(feature = "enabled"))]
    {
        "{\"traceEvents\":[]}".to_string()
    }
    #[cfg(feature = "enabled")]
    {
        let events = snapshot_trace();
        let dropped = crate::span::dropped_count();

        // Which span ids still have records in the ring? A nonzero parent
        // outside this set was evicted — mark, don't guess.
        let mut live_spans: HashSet<u64> = HashSet::with_capacity(events.len());
        // Which span ids have their exit in the ring? Those enters are
        // subsumed by the complete ("X") event built from the exit.
        let mut exited: HashSet<u64> = HashSet::new();
        for ev in &events {
            if ev.span_id != 0 {
                live_spans.insert(ev.span_id);
            }
            if matches!(ev.kind, TraceKind::SpanExit { .. }) {
                exited.insert(ev.span_id);
            }
        }

        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&line);
        };

        emit(
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
             \"args\":{\"name\":\"wazabee\"}}"
                .to_string(),
            &mut out,
        );

        for ev in &events {
            let orphaned = ev.parent_id != 0 && !live_spans.contains(&ev.parent_id);
            match ev.kind {
                TraceKind::SpanEnter => {
                    if exited.contains(&ev.span_id) {
                        continue; // rendered as a complete event at its exit
                    }
                    emit(
                        format!(
                            "{{\"name\":\"{}\",\"ph\":\"B\",\"pid\":1,\"tid\":{},\
                             \"ts\":{},\"args\":{}}}",
                            json_escape(ev.name),
                            ev.thread_id,
                            micros(ev.ts_ns),
                            args_object(ev, orphaned),
                        ),
                        &mut out,
                    );
                }
                TraceKind::SpanExit { dur_ns } => {
                    let start_ns = ev.ts_ns.saturating_sub(dur_ns);
                    emit(
                        format!(
                            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                             \"ts\":{},\"dur\":{},\"args\":{}}}",
                            json_escape(ev.name),
                            ev.thread_id,
                            micros(start_ns),
                            micros(dur_ns),
                            args_object(ev, orphaned),
                        ),
                        &mut out,
                    );
                }
                TraceKind::Instant { value } => {
                    let mut args = args_object(ev, orphaned);
                    if let Some(v) = value {
                        if v.is_finite() {
                            args.truncate(args.len() - 1);
                            if args.len() > 1 {
                                args.push(',');
                            }
                            let _ = write!(args, "\"value\":{v}}}");
                        }
                    }
                    emit(
                        format!(
                            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                             \"tid\":{},\"ts\":{},\"args\":{args}}}",
                            json_escape(ev.name),
                            ev.thread_id,
                            micros(ev.ts_ns),
                        ),
                        &mut out,
                    );
                }
            }
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"evicted_records\":{dropped}}}}}"
        );
        out
    }
}

/// Nanoseconds → fractional microseconds with exactly three decimals, the
/// resolution Chrome Trace's µs timebase can carry without losing ns.
#[cfg(feature = "enabled")]
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders a record's Chrome `args` object: causal ids first, then the
/// user's key/value pairs, then the orphan marker when the parent span's
/// records were evicted from the ring.
#[cfg(feature = "enabled")]
fn args_object(ev: &TraceEvent, orphaned: bool) -> String {
    let mut out = String::from("{");
    if ev.span_id != 0 {
        let _ = write!(out, "\"span_id\":{}", ev.span_id);
    }
    if ev.parent_id != 0 {
        if out.len() > 1 {
            out.push(',');
        }
        let _ = write!(out, "\"parent\":{}", ev.parent_id);
    }
    for (k, v) in ev.args.pairs() {
        if out.len() > 1 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k), arg_json(v));
    }
    if orphaned {
        if out.len() > 1 {
            out.push(',');
        }
        out.push_str("\"parent_evicted\":true");
    }
    out.push('}');
    out
}

/// Renders one argument value as a JSON value.
#[cfg(feature = "enabled")]
fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(v) => format!("{v}"),
        ArgValue::I64(v) => format!("{v}"),
        ArgValue::F64(v) => {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        ArgValue::Str(s) => format!("\"{}\"", json_escape(s)),
        ArgValue::Bool(b) => format!("{b}"),
    }
}

/// Renders a [`SpanArgs`] set alone as a JSON object (used by the JSONL
/// sink's trace lines).
#[cfg(feature = "enabled")]
pub(crate) fn span_args_json(args: &SpanArgs) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.pairs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k), arg_json(v));
    }
    out.push('}');
    out
}

/// Writes the Chrome Trace document (see [`trace_chrome_json`]) to `path`,
/// truncating it.
pub fn dump_trace_to(path: &Path) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(trace_chrome_json().as_bytes())?;
    file.flush()
}

/// If the `WAZABEE_TRACE_OUT` environment variable is set (and telemetry is
/// compiled in), dumps the Chrome Trace JSON there and returns `Ok(true)`;
/// otherwise returns `Ok(false)` without touching the filesystem.
pub fn dump_trace_from_env() -> io::Result<bool> {
    #[cfg(feature = "enabled")]
    {
        match std::env::var_os(ENV_TRACE_OUT) {
            Some(path) if !path.is_empty() => {
                dump_trace_to(Path::new(&path))?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
    #[cfg(not(feature = "enabled"))]
    Ok(false)
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn complete_spans_render_as_x_events_with_causal_args() {
        let _lock = crate::test_lock();
        crate::reset();
        {
            let _outer = crate::span!("export.test.outer", chan = 15u8);
            let _inner = crate::span!("export.test.inner", frame = 3u32);
            crate::event!("export.test.mark", 2.5);
        }
        let doc = trace_chrome_json();
        assert!(doc.starts_with("{\"traceEvents\":["), "{doc}");
        // Both spans closed: they must appear as "X" phases, not "B".
        assert!(
            doc.contains("\"name\":\"export.test.outer\",\"ph\":\"X\""),
            "{doc}"
        );
        assert!(
            doc.contains("\"name\":\"export.test.inner\",\"ph\":\"X\""),
            "{doc}"
        );
        assert!(!doc.contains("\"ph\":\"B\""), "{doc}");
        // User args and causal ids ride along.
        assert!(doc.contains("\"chan\":15"), "{doc}");
        assert!(doc.contains("\"frame\":3"), "{doc}");
        assert!(doc.contains("\"parent\":"), "{doc}");
        // The instant carries its value.
        assert!(doc.contains("\"ph\":\"i\""), "{doc}");
        assert!(doc.contains("\"value\":2.5"), "{doc}");
        crate::reset();
    }

    #[test]
    fn open_span_renders_as_begin_event() {
        let _lock = crate::test_lock();
        crate::reset();
        let guard = crate::span!("export.test.open");
        let doc = trace_chrome_json();
        assert!(
            doc.contains("\"name\":\"export.test.open\",\"ph\":\"B\""),
            "{doc}"
        );
        drop(guard);
        crate::reset();
    }

    #[test]
    fn micros_keeps_nanosecond_resolution() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn dump_trace_from_env_is_noop_when_unset() {
        if std::env::var_os(ENV_TRACE_OUT).is_none() {
            assert!(!dump_trace_from_env().unwrap());
        }
    }
}
