//! Live snapshot server: a tiny std-only endpoint serving the current
//! telemetry state as JSON while a run is in flight.
//!
//! Opt-in: set `WAZABEE_TELEMETRY_ADDR` to a TCP address (`127.0.0.1:9090`)
//! or — if the value contains a `/` — a unix-socket path, and call
//! [`serve_from_env`] (the bench binaries and `examples/support.rs` session
//! guard do). A detached daemon thread then answers every connection with a
//! one-shot HTTP/1.0 response whose body is [`crate::snapshot_json`]: the
//! merged counters, labeled families, histograms, stage profile and
//! wall-clock series at that instant.
//!
//! ```text
//! WAZABEE_TELEMETRY_ADDR=127.0.0.1:9090 netsim_scale --smoke &
//! curl -s http://127.0.0.1:9090/ | python3 -m json.tool
//! ```
//!
//! The protocol is deliberately minimal — any HTTP client works, but so does
//! `nc`: the request is read only up to its blank line and never parsed, and
//! the response closes the connection. With the `enabled` feature off the
//! endpoint does not exist: [`serve_from_env`] returns `Ok(None)` without
//! binding anything.

use std::io;

#[cfg(feature = "enabled")]
use std::io::{Read, Write};

/// Environment variable naming the snapshot listen address (see
/// [`serve_from_env`]).
pub const ENV_ADDR: &str = "WAZABEE_TELEMETRY_ADDR";

/// If `WAZABEE_TELEMETRY_ADDR` is set (and telemetry is compiled in), binds
/// the snapshot server there and returns `Ok(Some(bound_addr))`; otherwise
/// returns `Ok(None)`.
pub fn serve_from_env() -> io::Result<Option<String>> {
    #[cfg(feature = "enabled")]
    {
        match std::env::var(ENV_ADDR) {
            Ok(addr) if !addr.is_empty() => serve(&addr).map(Some),
            _ => Ok(None),
        }
    }
    #[cfg(not(feature = "enabled"))]
    Ok(None)
}

/// Binds the snapshot server on `addr` and returns the bound address.
///
/// An `addr` containing `/` is treated as a unix-socket path (any stale
/// socket file is replaced); anything else as a TCP address, where port `0`
/// picks a free port — the returned string carries the real one.
///
/// With the `enabled` feature off this returns `ErrorKind::Unsupported`.
pub fn serve(addr: &str) -> io::Result<String> {
    #[cfg(feature = "enabled")]
    {
        if addr.contains('/') {
            serve_unix(addr)
        } else {
            serve_tcp(addr)
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = addr;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "wazabee-telemetry built without the `enabled` feature",
        ))
    }
}

#[cfg(feature = "enabled")]
fn serve_tcp(addr: &str) -> io::Result<String> {
    let listener = std::net::TcpListener::bind(addr)?;
    let bound = listener.local_addr()?.to_string();
    std::thread::Builder::new()
        .name("wazabee-telemetry-server".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { continue };
                // Bound the wait for the request's blank line so one silent
                // client cannot wedge the accept loop.
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
                let _ = answer(&mut stream);
            }
        })?;
    Ok(bound)
}

#[cfg(feature = "enabled")]
fn serve_unix(path: &str) -> io::Result<String> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let bound = path.to_string();
    std::thread::Builder::new()
        .name("wazabee-telemetry-server".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { continue };
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
                let _ = answer(&mut stream);
            }
        })?;
    Ok(bound)
}

/// Reads the request up to its blank line (contents ignored) and writes one
/// HTTP/1.0 JSON response.
#[cfg(feature = "enabled")]
fn answer<S: Read + Write>(stream: &mut S) -> io::Result<()> {
    let mut req = [0u8; 1024];
    let mut seen = 0usize;
    loop {
        if seen == req.len() {
            break; // header larger than we care about — answer anyway
        }
        let n = stream.read(&mut req[seen..])?;
        if n == 0 {
            break;
        }
        seen += n;
        if req[..seen].windows(4).any(|w| w == b"\r\n\r\n")
            || req[..seen].windows(2).any(|w| w == b"\n\n")
        {
            break;
        }
    }
    let body = crate::snapshot_json();
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    fn http_get(addr: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET / HTTP/1.0\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn tcp_server_answers_with_snapshot_json() {
        let _lock = crate::test_lock();
        crate::counter!("server.test.alive").inc();
        let addr = serve("127.0.0.1:0").unwrap();
        let response = http_get(&addr);
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(
            response.contains("Content-Type: application/json"),
            "{response}"
        );
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
        assert!(body.contains("\"server.test.alive\""), "{body}");
        // Advertised length matches the body we actually got.
        let len: usize = response
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
    }

    #[test]
    fn server_survives_multiple_requests() {
        let _lock = crate::test_lock();
        let addr = serve("127.0.0.1:0").unwrap();
        for _ in 0..3 {
            let response = http_get(&addr);
            assert!(response.starts_with("HTTP/1.0 200 OK"));
        }
    }

    #[test]
    fn unix_socket_path_is_detected_by_slash() {
        let _lock = crate::test_lock();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wzb-telemetry-test-{}.sock", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let bound = serve(&path_str).unwrap();
        assert_eq!(bound, path_str);
        let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
        stream.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.0 200 OK"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_from_env_is_noop_when_unset() {
        if std::env::var_os(ENV_ADDR).is_none() {
            assert!(serve_from_env().unwrap().is_none());
        }
    }
}
