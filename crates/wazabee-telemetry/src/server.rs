//! Live snapshot server: a tiny std-only endpoint serving the current
//! telemetry state as JSON while a run is in flight.
//!
//! Opt-in: set `WAZABEE_TELEMETRY_ADDR` to a TCP address (`127.0.0.1:9090`)
//! or — if the value contains a `/` — a unix-socket path, and call
//! [`serve_from_env`] (the bench binaries and `examples/support.rs` session
//! guard do). A detached daemon thread then answers every connection;
//! HTTP/1.1 clients are kept alive and can issue many sequential requests
//! over one connection (a dashboard polling a long-running serve process),
//! while HTTP/1.0 requests get the original one-shot close-after-answer
//! response. Three routes:
//!
//! * `/` — [`crate::snapshot_json`]: merged counters, labeled families,
//!   histograms, alerts, stage profile and wall-clock series at that instant;
//! * `/healthz` — one watchdog tick over the armed [`crate::HealthRule`]s;
//!   `200 OK` while no alert has latched, `503 Service Unavailable` once one
//!   has, body [`crate::health_json`] either way — a CI gate or service
//!   supervisor needs only the status line;
//! * `/trace` — the causal trace ring as Chrome Trace Event JSON
//!   ([`crate::trace_chrome_json`]), loadable in Perfetto.
//!
//! Anything else is a `404` with a JSON error body.
//!
//! ```text
//! WAZABEE_TELEMETRY_ADDR=127.0.0.1:9090 netsim_scale --smoke &
//! curl -s http://127.0.0.1:9090/healthz | python3 -m json.tool
//! ```
//!
//! The protocol is deliberately minimal — any HTTP client works, but so does
//! `nc`: each request is read only up to its blank line, only the request
//! line's path is examined (a bare `nc` paste with no parsable request line
//! gets the `/` snapshot and a close), and only an `HTTP/1.1` request line
//! without `Connection: close` keeps the connection open. With the
//! `enabled` feature off the endpoint does not exist: [`serve_from_env`]
//! returns `Ok(None)` without binding anything.

use std::io;

#[cfg(feature = "enabled")]
use std::io::{Read, Write};

/// Environment variable naming the snapshot listen address (see
/// [`serve_from_env`]).
pub const ENV_ADDR: &str = "WAZABEE_TELEMETRY_ADDR";

/// If `WAZABEE_TELEMETRY_ADDR` is set (and telemetry is compiled in), binds
/// the snapshot server there and returns `Ok(Some(bound_addr))`; otherwise
/// returns `Ok(None)`.
pub fn serve_from_env() -> io::Result<Option<String>> {
    #[cfg(feature = "enabled")]
    {
        match std::env::var(ENV_ADDR) {
            Ok(addr) if !addr.is_empty() => serve(&addr).map(Some),
            _ => Ok(None),
        }
    }
    #[cfg(not(feature = "enabled"))]
    Ok(None)
}

/// Binds the snapshot server on `addr` and returns the bound address.
///
/// An `addr` containing `/` is treated as a unix-socket path (any stale
/// socket file is replaced); anything else as a TCP address, where port `0`
/// picks a free port — the returned string carries the real one.
///
/// With the `enabled` feature off this returns `ErrorKind::Unsupported`.
pub fn serve(addr: &str) -> io::Result<String> {
    #[cfg(feature = "enabled")]
    {
        if addr.contains('/') {
            serve_unix(addr)
        } else {
            serve_tcp(addr)
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = addr;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "wazabee-telemetry built without the `enabled` feature",
        ))
    }
}

#[cfg(feature = "enabled")]
fn serve_tcp(addr: &str) -> io::Result<String> {
    let listener = std::net::TcpListener::bind(addr)?;
    let bound = listener.local_addr()?.to_string();
    std::thread::Builder::new()
        .name("wazabee-telemetry-server".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { continue };
                // Bound the wait for the request's blank line so one silent
                // client cannot wedge the accept loop.
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
                let _ = answer(&mut stream);
            }
        })?;
    Ok(bound)
}

#[cfg(feature = "enabled")]
fn serve_unix(path: &str) -> io::Result<String> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let bound = path.to_string();
    std::thread::Builder::new()
        .name("wazabee-telemetry-server".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { continue };
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
                let _ = answer(&mut stream);
            }
        })?;
    Ok(bound)
}

/// Upper bound on requests answered over one kept-alive connection, so a
/// misbehaving poller cannot pin the accept loop's handler forever.
#[cfg(feature = "enabled")]
const MAX_KEEPALIVE_REQUESTS: usize = 1024;

/// Serves a connection: reads requests up to their blank line, routes on the
/// request-line path and writes one JSON response per request.
///
/// HTTP/1.1 requests are kept alive — the handler loops and answers every
/// sequential request on the connection until the client closes it, sends
/// `Connection: close`, or the per-connection request cap is reached — so a
/// live dashboard can poll a long-running serve process over one connection.
/// HTTP/1.0 requests (and bare non-HTTP pokes) keep the original one-shot
/// close-after-answer behaviour.
#[cfg(feature = "enabled")]
fn answer<S: Read + Write>(stream: &mut S) -> io::Result<()> {
    for _ in 0..MAX_KEEPALIVE_REQUESTS {
        let mut req = [0u8; 1024];
        let mut seen = 0usize;
        loop {
            if seen == req.len() {
                break; // header larger than we care about — answer anyway
            }
            let n = stream.read(&mut req[seen..])?;
            if n == 0 {
                break;
            }
            seen += n;
            if req[..seen].windows(4).any(|w| w == b"\r\n\r\n")
                || req[..seen].windows(2).any(|w| w == b"\n\n")
            {
                break;
            }
        }
        if seen == 0 {
            return Ok(()); // client closed between requests
        }
        let head = String::from_utf8_lossy(&req[..seen]).to_string();
        let http11 = is_http11(&head);
        let keep_alive = wants_keep_alive(&head);
        let path = request_path(&req[..seen]);
        let (status, body) = match path.as_str() {
            "/" => ("200 OK", crate::snapshot_json()),
            "/healthz" => {
                let body = crate::health_json();
                let status = if body.starts_with("{\"status\":\"ok\"") {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                };
                (status, body)
            }
            "/trace" => ("200 OK", crate::trace_chrome_json()),
            other => (
                "404 Not Found",
                format!(
                    "{{\"error\":\"no such route\",\"path\":\"{}\",\
                     \"routes\":[\"/\",\"/healthz\",\"/trace\"]}}",
                    crate::sink::json_escape(other)
                ),
            ),
        };
        // The response version mirrors the request's; the Connection header
        // carries the disposition (an HTTP/1.1 `Connection: close` request
        // still gets an HTTP/1.1 response — just a closing one).
        let version = if http11 { "HTTP/1.1" } else { "HTTP/1.0" };
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let header = format!(
            "{version} {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
            body.len()
        );
        stream.write_all(header.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        if !keep_alive {
            return Ok(());
        }
    }
    Ok(())
}

/// Whether the request line declares `HTTP/1.1` — drives the version echoed
/// on the response's status line. Non-HTTP pokes count as 1.0.
#[cfg(feature = "enabled")]
fn is_http11(head: &str) -> bool {
    head.lines()
        .next()
        .is_some_and(|l| l.trim_end().ends_with("HTTP/1.1"))
}

/// Whether the request asks to keep the connection open: an `HTTP/1.1`
/// request line (where keep-alive is the default) without a
/// `Connection: close` header. HTTP/1.0 requests and non-HTTP pokes close.
#[cfg(feature = "enabled")]
fn wants_keep_alive(head: &str) -> bool {
    if !is_http11(head) {
        return false;
    }
    !head.lines().skip(1).any(|l| {
        let lower = l.to_ascii_lowercase();
        lower.starts_with("connection:") && lower.contains("close")
    })
}

/// Extracts the path from an HTTP request line (`GET /x HTTP/1.1`). Query
/// strings are stripped; anything that does not look like a request line —
/// e.g. a bare `nc` connection that just sent a newline — maps to `/` so the
/// pre-routing snapshot behaviour survives.
#[cfg(feature = "enabled")]
fn request_path(req: &[u8]) -> String {
    let text = String::from_utf8_lossy(req);
    let first_line = text.lines().next().unwrap_or("");
    let mut tokens = first_line.split_whitespace();
    match (tokens.next(), tokens.next()) {
        (Some(_method), Some(path)) if path.starts_with('/') => {
            path.split(['?', '#']).next().unwrap_or("/").to_string()
        }
        _ => "/".to_string(),
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    fn http_get(addr: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET / HTTP/1.0\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn tcp_server_answers_with_snapshot_json() {
        let _lock = crate::test_lock();
        crate::counter!("server.test.alive").inc();
        let addr = serve("127.0.0.1:0").unwrap();
        let response = http_get(&addr);
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(
            response.contains("Content-Type: application/json"),
            "{response}"
        );
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
        assert!(body.contains("\"server.test.alive\""), "{body}");
        // Advertised length matches the body we actually got.
        let len: usize = response
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
    }

    #[test]
    fn server_survives_multiple_requests() {
        let _lock = crate::test_lock();
        let addr = serve("127.0.0.1:0").unwrap();
        for _ in 0..3 {
            let response = http_get(&addr);
            assert!(response.starts_with("HTTP/1.0 200 OK"));
        }
    }

    #[test]
    fn unix_socket_path_is_detected_by_slash() {
        let _lock = crate::test_lock();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("wzb-telemetry-test-{}.sock", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let bound = serve(&path_str).unwrap();
        assert_eq!(bound, path_str);
        let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
        stream.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.0 200 OK"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_from_env_is_noop_when_unset() {
        if std::env::var_os(ENV_ADDR).is_none() {
            assert!(serve_from_env().unwrap().is_none());
        }
    }

    fn http_get_path(addr: &str, path: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn trace_route_serves_chrome_trace_json() {
        let _lock = crate::test_lock();
        let addr = serve("127.0.0.1:0").unwrap();
        let response = http_get_path(&addr, "/trace");
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.starts_with("{\"traceEvents\":["), "{body}");
    }

    #[test]
    fn healthz_route_reports_status_line() {
        let _lock = crate::test_lock();
        crate::reset();
        let addr = serve("127.0.0.1:0").unwrap();
        // No rule has latched after reset: healthy.
        let response = http_get_path(&addr, "/healthz");
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("\"status\":\"ok\""), "{response}");
        // Arm a rule and trip it: the same endpoint flips to 503.
        crate::health_rule!(
            "server.test.tripwire",
            crate::Signal::counter("server.test.bad_things"),
            > 0.0
        );
        crate::counter!("server.test.bad_things").inc();
        let response = http_get_path(&addr, "/healthz");
        assert!(
            response.starts_with("HTTP/1.0 503 Service Unavailable"),
            "{response}"
        );
        assert!(response.contains("\"status\":\"alert\""), "{response}");
        crate::reset();
    }

    #[test]
    fn unknown_route_is_404_and_bare_nc_gets_snapshot() {
        let _lock = crate::test_lock();
        let addr = serve("127.0.0.1:0").unwrap();
        let response = http_get_path(&addr, "/nope");
        assert!(response.starts_with("HTTP/1.0 404 Not Found"), "{response}");
        assert!(response.contains("\"error\""), "{response}");
        // A non-HTTP client that just pokes the socket still gets the
        // snapshot (the nc-friendly fallback).
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream.write_all(b"\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.0 200 OK"), "{out}");
        assert!(out.contains("wazabee.telemetry.snapshot/1"), "{out}");
    }

    /// Reads exactly one HTTP response (headers + Content-Length body) off a
    /// kept-alive stream, leaving the connection open for the next request.
    fn read_one_response<S: Read>(stream: &mut S) -> String {
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        // Headers, byte at a time, until the blank line.
        while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
            assert_eq!(
                stream.read(&mut byte).unwrap(),
                1,
                "connection closed early"
            );
            buf.push(byte[0]);
        }
        let head = String::from_utf8_lossy(&buf).to_string();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        let mut got = 0usize;
        while got < len {
            let n = stream.read(&mut body[got..]).unwrap();
            assert!(n > 0, "connection closed mid-body");
            got += n;
        }
        head + &String::from_utf8_lossy(&body)
    }

    #[test]
    fn http11_connection_serves_sequential_requests() {
        let _lock = crate::test_lock();
        crate::counter!("server.test.keepalive").inc();
        let addr = serve("127.0.0.1:0").unwrap();
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        // Three sequential requests over ONE connection — a polling
        // dashboard's access pattern against a long-running serve process.
        for path in ["/", "/trace", "/"] {
            stream
                .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
                .unwrap();
            let response = read_one_response(&mut stream);
            assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
            assert!(response.contains("Connection: keep-alive"), "{response}");
        }
        // `Connection: close` ends the keep-alive loop server-side.
        stream
            .write_all(b"GET / HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut rest = String::new();
        stream.read_to_string(&mut rest).unwrap();
        assert!(rest.starts_with("HTTP/1.1 200 OK"), "{rest}");
        assert!(rest.contains("Connection: close"), "{rest}");
    }

    #[test]
    fn http10_stays_one_shot() {
        let _lock = crate::test_lock();
        let addr = serve("127.0.0.1:0").unwrap();
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"GET / HTTP/1.0\r\nHost: test\r\n\r\n")
            .unwrap();
        // read_to_string only returns when the server closes the socket —
        // the legacy one-shot contract.
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.0 200 OK"), "{out}");
        assert!(out.contains("Connection: close"), "{out}");
    }

    #[test]
    fn wants_keep_alive_parses_versions_and_headers() {
        assert!(wants_keep_alive("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
        assert!(!wants_keep_alive("GET / HTTP/1.0\r\nHost: x\r\n\r\n"));
        assert!(!wants_keep_alive(
            "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        ));
        assert!(!wants_keep_alive(
            "GET / HTTP/1.1\r\nCONNECTION: Close\r\n\r\n"
        ));
        assert!(!wants_keep_alive("\r\n"));
        assert!(!wants_keep_alive(""));
    }

    #[test]
    fn request_path_parses_and_strips_queries() {
        assert_eq!(request_path(b"GET / HTTP/1.1\r\n\r\n"), "/");
        assert_eq!(request_path(b"GET /healthz HTTP/1.0\r\n\r\n"), "/healthz");
        assert_eq!(request_path(b"GET /trace?x=1 HTTP/1.1\r\n\r\n"), "/trace");
        assert_eq!(request_path(b"\r\n"), "/");
        assert_eq!(request_path(b""), "/");
        assert_eq!(request_path(b"hello there"), "/");
    }
}
