//! Declarative health rules: machine-checkable alerts over the metric plane.
//!
//! A rule names a *signal* (a counter's value or rate, a ratio of two
//! counters, the minimum of a labeled gauge family, a value-histogram
//! quantile), a comparator and a threshold:
//!
//! ```
//! # use wazabee_telemetry as tel;
//! tel::health_rule!(
//!     "ids.extra_frames",
//!     tel::Signal::counter("ids.stream.extra_frames"),
//!     > 0.0
//! );
//! ```
//!
//! Rules are static, registered on first arm (same self-registration
//! discipline as every other metric), and evaluated by a watchdog tick —
//! either the background thread started with [`start_watchdog`] or on demand
//! via [`evaluate_health`] (the snapshot server's `/healthz` route and
//! [`crate::snapshot_json`] both evaluate before reporting). A rule whose
//! signal has no data yet (counter never touched, histogram empty, rate with
//! no previous tick) simply does not fire — absence of evidence is not an
//! alert.
//!
//! Alerts **latch**: once a rule has fired it stays visible as `latched`
//! until [`crate::reset`], so a transient mid-run failure cannot dodge a
//! post-run `/healthz` probe. `firing` reflects the most recent evaluation
//! only. With the `enabled` feature off every rule is a zero-sized no-op and
//! [`health_ok`] is unconditionally true.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// How a rule compares its signal to the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Fire when the signal rises above the threshold.
    Above,
    /// Fire when the signal falls below the threshold.
    Below,
}

impl Cmp {
    /// Render for human/JSON output (`">"` / `"<"`).
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Cmp::Above => ">",
            Cmp::Below => "<",
        }
    }
}

/// What a health rule watches. Construct via the `const fn` helpers so rules
/// can live in statics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Signal {
    /// Current value of a counter (flat counters and labeled counter-family
    /// cells sharing the name are summed).
    Counter(&'static str),
    /// Per-second increase of a counter between watchdog ticks (needs two
    /// ticks before it can fire).
    CounterRate(&'static str),
    /// `numerator / denominator` of two counters; not evaluated while the
    /// denominator is zero.
    Ratio(&'static str, &'static str),
    /// Minimum across a labeled gauge family's cells.
    GaugeMin(&'static str),
    /// A value-histogram quantile (`0.0..=1.0`).
    Quantile(&'static str, f64),
}

impl Signal {
    /// Watch a counter's absolute value.
    #[must_use]
    pub const fn counter(name: &'static str) -> Self {
        Signal::Counter(name)
    }

    /// Watch a counter's per-second rate between ticks.
    #[must_use]
    pub const fn rate_per_sec(name: &'static str) -> Self {
        Signal::CounterRate(name)
    }

    /// Watch the ratio of two counters.
    #[must_use]
    pub const fn ratio(num: &'static str, den: &'static str) -> Self {
        Signal::Ratio(num, den)
    }

    /// Watch the minimum cell of a labeled gauge family.
    #[must_use]
    pub const fn gauge_min(family: &'static str) -> Self {
        Signal::GaugeMin(family)
    }

    /// Watch a value-histogram quantile.
    #[must_use]
    pub const fn quantile(hist: &'static str, q: f64) -> Self {
        Signal::Quantile(hist, q)
    }

    /// The metric name this signal reads (numerator for ratios).
    #[must_use]
    pub const fn metric(&self) -> &'static str {
        match self {
            Signal::Counter(n)
            | Signal::CounterRate(n)
            | Signal::Ratio(n, _)
            | Signal::GaugeMin(n)
            | Signal::Quantile(n, _) => n,
        }
    }
}

/// One declarative alert rule (declare via [`crate::health_rule!`]).
pub struct HealthRule {
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    signal: Signal,
    #[cfg(feature = "enabled")]
    cmp: Cmp,
    #[cfg(feature = "enabled")]
    threshold: f64,
    #[cfg(feature = "enabled")]
    registered: AtomicBool,
    #[cfg(feature = "enabled")]
    firing: AtomicBool,
    #[cfg(feature = "enabled")]
    latched: AtomicBool,
    #[cfg(feature = "enabled")]
    fired_count: AtomicU64,
    /// f64 bits of the last evaluated value; meaningful iff `has_value`.
    #[cfg(feature = "enabled")]
    last_value: AtomicU64,
    #[cfg(feature = "enabled")]
    has_value: AtomicBool,
    /// Previous counter total for rate signals; meaningful iff `has_baseline`.
    #[cfg(feature = "enabled")]
    baseline: AtomicU64,
    #[cfg(feature = "enabled")]
    baseline_ts_ns: AtomicU64,
    #[cfg(feature = "enabled")]
    has_baseline: AtomicBool,
}

impl HealthRule {
    /// Creates a rule in a `static` (use [`crate::health_rule!`]).
    #[must_use]
    pub const fn new(name: &'static str, signal: Signal, cmp: Cmp, threshold: f64) -> Self {
        #[cfg(feature = "enabled")]
        {
            HealthRule {
                name,
                signal,
                cmp,
                threshold,
                registered: AtomicBool::new(false),
                firing: AtomicBool::new(false),
                latched: AtomicBool::new(false),
                fired_count: AtomicU64::new(0),
                last_value: AtomicU64::new(0),
                has_value: AtomicBool::new(false),
                baseline: AtomicU64::new(0),
                baseline_ts_ns: AtomicU64::new(0),
                has_baseline: AtomicBool::new(false),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, cmp, threshold);
            let _ = signal;
            HealthRule {}
        }
    }

    /// Registers the rule with the watchdog (idempotent; first call wins).
    #[inline]
    pub fn arm(&'static self) {
        #[cfg(feature = "enabled")]
        if !self.registered.swap(true, Ordering::Relaxed) {
            crate::registry::register_health_rule(self);
        }
    }

    /// The rule name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        #[cfg(feature = "enabled")]
        {
            self.name
        }
        #[cfg(not(feature = "enabled"))]
        ""
    }

    /// Clears fired/latched state and rate baselines; registration persists.
    #[cfg(feature = "enabled")]
    pub(crate) fn reset_state(&self) {
        self.firing.store(false, Ordering::Relaxed);
        self.latched.store(false, Ordering::Relaxed);
        self.fired_count.store(0, Ordering::Relaxed);
        self.has_value.store(false, Ordering::Relaxed);
        self.has_baseline.store(false, Ordering::Relaxed);
    }

    /// Evaluates the rule once and returns its current alert state.
    #[cfg(feature = "enabled")]
    fn tick(&self, now_ns: u64) -> Alert {
        let value = match self.signal {
            Signal::Counter(name) => counter_total(name),
            Signal::CounterRate(name) => {
                let current = counter_total(name).map(|v| v as u64);
                match current {
                    None => None,
                    Some(cur) => {
                        let had = self.has_baseline.swap(true, Ordering::Relaxed);
                        let prev = self.baseline.swap(cur, Ordering::Relaxed);
                        let prev_ts = self.baseline_ts_ns.swap(now_ns, Ordering::Relaxed);
                        let dt_ns = now_ns.saturating_sub(prev_ts);
                        if !had || dt_ns == 0 {
                            None
                        } else {
                            Some(cur.saturating_sub(prev) as f64 * 1e9 / dt_ns as f64)
                        }
                    }
                }
            }
            Signal::Ratio(num, den) => match (counter_total(num), counter_total(den)) {
                (Some(n), Some(d)) if d > 0.0 => Some(n / d),
                _ => None,
            },
            Signal::GaugeMin(family) => gauge_min(family),
            Signal::Quantile(hist, q) => hist_quantile(hist, q),
        };

        let firing = match value {
            Some(v) => match self.cmp {
                Cmp::Above => v > self.threshold,
                Cmp::Below => v < self.threshold,
            },
            None => false,
        };
        if let Some(v) = value {
            self.last_value.store(v.to_bits(), Ordering::Relaxed);
            self.has_value.store(true, Ordering::Relaxed);
        }
        self.firing.store(firing, Ordering::Relaxed);
        if firing {
            self.fired_count.fetch_add(1, Ordering::Relaxed);
            self.latched.store(true, Ordering::Relaxed);
        }
        self.state()
    }

    /// The rule's current state without re-evaluating.
    #[cfg(feature = "enabled")]
    fn state(&self) -> Alert {
        Alert {
            name: self.name,
            signal: self.signal,
            cmp: self.cmp,
            threshold: self.threshold,
            value: self
                .has_value
                .load(Ordering::Relaxed)
                .then(|| f64::from_bits(self.last_value.load(Ordering::Relaxed))),
            firing: self.firing.load(Ordering::Relaxed),
            latched: self.latched.load(Ordering::Relaxed),
            fired_count: self.fired_count.load(Ordering::Relaxed),
        }
    }
}

/// The reported state of one health rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    /// Rule name.
    pub name: &'static str,
    /// What the rule watches.
    pub signal: Signal,
    /// Fire direction.
    pub cmp: Cmp,
    /// Fire threshold.
    pub threshold: f64,
    /// Last evaluated signal value (`None` until the signal has data).
    pub value: Option<f64>,
    /// Did the most recent evaluation fire?
    pub firing: bool,
    /// Has the rule fired at all since the last [`crate::reset`]?
    pub latched: bool,
    /// Evaluations that fired since the last [`crate::reset`].
    pub fired_count: u64,
}

/// Sums every flat counter and labeled counter-family cell named `name`;
/// `None` when nothing by that name has registered yet.
#[cfg(feature = "enabled")]
fn counter_total(name: &str) -> Option<f64> {
    let mut total = 0u64;
    let mut seen = false;
    for c in crate::registry::registry().counters.lock().unwrap().iter() {
        if c.name() == name {
            total += c.get();
            seen = true;
        }
    }
    for f in crate::registry::registry()
        .counter_families
        .lock()
        .unwrap()
        .iter()
    {
        if f.name() == name {
            seen = true;
            for (_, v) in f.snapshot() {
                total += v;
            }
        }
    }
    seen.then_some(total as f64)
}

/// Minimum value across a labeled gauge family's cells; `None` when the
/// family is unregistered or empty.
#[cfg(feature = "enabled")]
fn gauge_min(family: &str) -> Option<f64> {
    let mut min: Option<f64> = None;
    for f in crate::registry::registry()
        .gauge_families
        .lock()
        .unwrap()
        .iter()
    {
        if f.name() == family {
            for (_, v) in f.snapshot() {
                min = Some(match min {
                    Some(m) if m <= v => m,
                    _ => v,
                });
            }
        }
    }
    min
}

/// A flat value-histogram's quantile; `None` when absent or empty.
#[cfg(feature = "enabled")]
fn hist_quantile(name: &str, q: f64) -> Option<f64> {
    for h in crate::registry::registry()
        .value_hists
        .lock()
        .unwrap()
        .iter()
    {
        if h.name() == name && h.count() > 0 {
            return h.quantile(q);
        }
    }
    None
}

/// Evaluates every registered rule once (one watchdog tick) and returns the
/// state of all of them, sorted by rule name. Empty with the feature off.
#[must_use]
pub fn evaluate_health() -> Vec<Alert> {
    #[cfg(feature = "enabled")]
    {
        let now = crate::span::now_ns();
        let rules: Vec<_> = crate::registry::registry()
            .health_rules
            .lock()
            .unwrap()
            .clone();
        let mut alerts: Vec<Alert> = rules.iter().map(|r| r.tick(now)).collect();
        alerts.sort_by_key(|a| a.name);
        alerts
    }
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// `true` while no registered rule has latched an alert (evaluates first).
/// Unconditionally `true` with the feature off.
#[must_use]
pub fn health_ok() -> bool {
    evaluate_health().iter().all(|a| !a.latched)
}

/// Renders one evaluation as the `/healthz` JSON body:
/// `{"status":"ok"|"alert","alerts":[…]}`.
#[must_use]
pub fn health_json() -> String {
    let alerts = evaluate_health();
    let ok = alerts.iter().all(|a| !a.latched);
    let mut out = format!(
        "{{\"status\":\"{}\",\"alerts\":[",
        if ok { "ok" } else { "alert" }
    );
    for (i, a) in alerts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&alert_json(a));
    }
    out.push_str("]}");
    out
}

/// Renders one alert state as a JSON object (shared by `/healthz` and
/// [`crate::snapshot_json`]).
#[must_use]
pub(crate) fn alert_json(a: &Alert) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"name\":\"{}\",\"metric\":\"{}\",\"cmp\":\"{}\",\"threshold\":{}",
        crate::sink::json_escape(a.name),
        crate::sink::json_escape(a.signal.metric()),
        a.cmp.symbol(),
        fmt_f64(a.threshold),
    );
    match a.value {
        Some(v) => {
            let _ = write!(out, ",\"value\":{}", fmt_f64(v));
        }
        None => out.push_str(",\"value\":null"),
    }
    let _ = write!(
        out,
        ",\"firing\":{},\"latched\":{},\"fired_count\":{}}}",
        a.firing, a.latched, a.fired_count
    );
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Starts the background watchdog: a daemon thread evaluating every rule at
/// `interval`. Idempotent — the first call wins, later calls (and every call
/// with the feature off) return `false`.
pub fn start_watchdog(interval: std::time::Duration) -> bool {
    #[cfg(feature = "enabled")]
    {
        use std::sync::atomic::AtomicBool;
        static STARTED: AtomicBool = AtomicBool::new(false);
        if STARTED.swap(true, Ordering::Relaxed) {
            return false;
        }
        let spawned = std::thread::Builder::new()
            .name("wazabee-health-watchdog".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                let _ = evaluate_health();
            })
            .is_ok();
        if !spawned {
            STARTED.store(false, Ordering::Relaxed);
        }
        spawned
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = interval;
        false
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn counter_threshold_rule_fires_and_latches() {
        let _lock = crate::test_lock();
        crate::reset();
        crate::health_rule!(
            "health.test.extra",
            Signal::counter("health.test.extra_frames"),
            > 0.0
        );
        // No data yet: silent.
        let alerts = evaluate_health();
        let a = alerts
            .iter()
            .find(|a| a.name == "health.test.extra")
            .unwrap();
        assert!(!a.firing && !a.latched && a.value.is_none());

        crate::counter!("health.test.extra_frames").add(2);
        let alerts = evaluate_health();
        let a = alerts
            .iter()
            .find(|a| a.name == "health.test.extra")
            .unwrap();
        assert!(a.firing && a.latched);
        assert_eq!(a.value, Some(2.0));
        assert!(!health_ok());

        // Counter drops back to zero after reset… but reset also clears the
        // latch, so health recovers.
        crate::reset();
        assert!(health_ok());
    }

    #[test]
    fn ratio_rule_skips_zero_denominator_then_fires_below() {
        let _lock = crate::test_lock();
        crate::reset();
        crate::health_rule!(
            "health.test.delivery",
            Signal::ratio("health.test.delivered", "health.test.sent"),
            < 0.9
        );
        // Touch the numerator only: denominator counter exists but is 0.
        crate::counter!("health.test.delivered").add(0);
        crate::counter!("health.test.sent").add(0);
        let alerts = evaluate_health();
        let a = alerts
            .iter()
            .find(|a| a.name == "health.test.delivery")
            .unwrap();
        assert!(!a.firing, "zero denominator must not fire: {a:?}");

        crate::counter!("health.test.sent").add(10);
        crate::counter!("health.test.delivered").add(4);
        let alerts = evaluate_health();
        let a = alerts
            .iter()
            .find(|a| a.name == "health.test.delivery")
            .unwrap();
        assert!(a.firing);
        assert_eq!(a.value, Some(0.4));
        crate::reset();
    }

    #[test]
    fn gauge_min_watches_worst_cell() {
        let _lock = crate::test_lock();
        crate::reset();
        crate::health_rule!(
            "health.test.worst_cell",
            Signal::gauge_min("health.test.cell_ratio"),
            < 0.95
        );
        crate::labeled_gauge!("health.test.cell_ratio").set(&[("cell", "a")], 1.0);
        let alerts = evaluate_health();
        let a = alerts
            .iter()
            .find(|a| a.name == "health.test.worst_cell")
            .unwrap();
        assert!(!a.firing);
        crate::labeled_gauge!("health.test.cell_ratio").set(&[("cell", "b")], 0.5);
        let alerts = evaluate_health();
        let a = alerts
            .iter()
            .find(|a| a.name == "health.test.worst_cell")
            .unwrap();
        assert!(a.firing);
        assert_eq!(a.value, Some(0.5));
        crate::reset();
    }

    #[test]
    fn rate_rule_needs_two_ticks() {
        let _lock = crate::test_lock();
        crate::reset();
        crate::health_rule!(
            "health.test.fail_rate",
            Signal::rate_per_sec("health.test.failures"),
            > 0.5
        );
        crate::counter!("health.test.failures").add(1);
        let alerts = evaluate_health();
        let a = alerts
            .iter()
            .find(|a| a.name == "health.test.fail_rate")
            .unwrap();
        assert!(!a.firing, "first tick only sets the baseline: {a:?}");
        std::thread::sleep(std::time::Duration::from_millis(5));
        crate::counter!("health.test.failures").add(1000);
        let alerts = evaluate_health();
        let a = alerts
            .iter()
            .find(|a| a.name == "health.test.fail_rate")
            .unwrap();
        assert!(a.firing, "1000 events in ~5ms is a huge rate: {a:?}");
        crate::reset();
    }

    #[test]
    fn quantile_rule_reads_value_histogram() {
        let _lock = crate::test_lock();
        crate::reset();
        crate::health_rule!(
            "health.test.p99_dist",
            Signal::quantile("health.test.distances", 0.99),
            > 20.0
        );
        for _ in 0..100 {
            crate::value_histogram!("health.test.distances", 0.0, 32.0).record(30.0);
        }
        let alerts = evaluate_health();
        let a = alerts
            .iter()
            .find(|a| a.name == "health.test.p99_dist")
            .unwrap();
        assert!(a.firing, "{a:?}");
        crate::reset();
    }

    #[test]
    fn health_json_is_well_formed() {
        let _lock = crate::test_lock();
        crate::reset();
        crate::health_rule!(
            "health.test.json",
            Signal::counter("health.test.json_counter"),
            > 0.0
        );
        crate::counter!("health.test.json_counter").inc();
        let doc = health_json();
        assert!(doc.starts_with("{\"status\":\"alert\""), "{doc}");
        assert!(doc.contains("\"name\":\"health.test.json\""), "{doc}");
        assert!(doc.contains("\"cmp\":\">\""), "{doc}");
        assert!(doc.contains("\"latched\":true"), "{doc}");
        crate::reset();
        assert!(health_json().starts_with("{\"status\":\"ok\""));
    }
}
