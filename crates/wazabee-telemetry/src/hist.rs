//! Value and timing histograms with atomic fixed-layout buckets.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Number of interior buckets in every histogram (plus under/overflow).
pub const HIST_BUCKETS: usize = 64;

/// A linear-bucket histogram over `[lo, hi)`.
///
/// The range divides into [`HIST_BUCKETS`] equal-width buckets; samples below
/// `lo` land in an underflow bucket, samples at or above `hi` in an overflow
/// bucket. Bucket counts are relaxed atomics, so recording is lock-free and
/// thread-safe; the running sum uses a compare-exchange loop on the f64 bit
/// pattern.
///
/// Quantiles use the nearest-rank method and report the *lower edge* of the
/// bucket holding that rank (underflow reports `lo - width`, overflow `hi`).
/// With integer-valued samples and unit-width buckets — e.g. Hamming
/// distances over `[0, 64)` — p50/p99 are therefore exact.
#[derive(Debug)]
pub struct ValueHistogram {
    name: &'static str,
    lo: f64,
    hi: f64,
    #[cfg(feature = "enabled")]
    buckets: [AtomicU64; HIST_BUCKETS],
    #[cfg(feature = "enabled")]
    underflow: AtomicU64,
    #[cfg(feature = "enabled")]
    overflow: AtomicU64,
    #[cfg(feature = "enabled")]
    sum_bits: AtomicU64,
    #[cfg(feature = "enabled")]
    registered: AtomicBool,
}

impl ValueHistogram {
    /// Creates an unregistered histogram (use via [`crate::value_histogram!`]).
    ///
    /// `lo < hi` is required and checked on first record.
    #[must_use]
    pub const fn new(name: &'static str, lo: f64, hi: f64) -> Self {
        ValueHistogram {
            name,
            lo,
            hi,
            #[cfg(feature = "enabled")]
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            #[cfg(feature = "enabled")]
            underflow: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            overflow: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            sum_bits: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            registered: AtomicBool::new(false),
        }
    }

    /// The metric name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The configured range.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Width of one interior bucket.
    #[must_use]
    pub fn bucket_width(&self) -> f64 {
        (self.hi - self.lo) / HIST_BUCKETS as f64
    }

    /// Records one sample.
    #[inline]
    pub fn record(&'static self, v: f64) {
        #[cfg(feature = "enabled")]
        {
            debug_assert!(self.lo < self.hi, "histogram {} has empty range", self.name);
            if !self.registered.load(Ordering::Relaxed) {
                self.register_slow();
            }
            if v < self.lo {
                self.underflow.fetch_add(1, Ordering::Relaxed);
            } else if v >= self.hi || !v.is_finite() {
                self.overflow.fetch_add(1, Ordering::Relaxed);
            } else {
                let idx = ((v - self.lo) / self.bucket_width()) as usize;
                self.buckets[idx.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
            }
            // f64 sum via CAS on the bit pattern.
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Total recorded samples (0 when disabled).
    #[must_use]
    pub fn count(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            let interior: u64 = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
            interior
                + self.underflow.load(Ordering::Relaxed)
                + self.overflow.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        #[cfg(feature = "enabled")]
        {
            f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "enabled"))]
        0.0
    }

    /// Mean of recorded samples, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() / n as f64)
    }

    /// Snapshot of `(underflow, interior[64], overflow)` bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> (u64, [u64; HIST_BUCKETS], u64) {
        #[cfg(feature = "enabled")]
        {
            let mut interior = [0u64; HIST_BUCKETS];
            for (dst, src) in interior.iter_mut().zip(self.buckets.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            (
                self.underflow.load(Ordering::Relaxed),
                interior,
                self.overflow.load(Ordering::Relaxed),
            )
        }
        #[cfg(not(feature = "enabled"))]
        (0, [0; HIST_BUCKETS], 0)
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`); `None` when empty.
    ///
    /// Reports the lower edge of the selected bucket (see type docs).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let (under, interior, over) = self.snapshot();
        let total = under + interior.iter().sum::<u64>() + over;
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = under;
        if rank <= seen {
            return Some(self.lo - self.bucket_width());
        }
        for (i, &c) in interior.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Some(self.lo + i as f64 * self.bucket_width());
            }
        }
        Some(self.hi)
    }

    #[cfg(feature = "enabled")]
    #[cold]
    fn register_slow(&'static self) {
        if !self.registered.swap(true, Ordering::AcqRel) {
            crate::registry::register_value_hist(self);
        }
    }

    #[cfg(feature = "enabled")]
    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.underflow.store(0, Ordering::Relaxed);
        self.overflow.store(0, Ordering::Relaxed);
        self.sum_bits.store(0, Ordering::Relaxed);
    }
}

/// A log₂-nanosecond timing histogram.
///
/// Bucket `i` covers durations in `[2^i, 2^(i+1))` ns (bucket 0 also absorbs
/// 0 ns). Coarse by design: wide enough for anything from a sub-µs kernel to
/// a multi-second run, cheap enough (one `ilog2` + one relaxed `fetch_add`)
/// for hot paths.
#[derive(Debug)]
pub struct TimeHistogram {
    name: &'static str,
    #[cfg(feature = "enabled")]
    buckets: [AtomicU64; HIST_BUCKETS],
    #[cfg(feature = "enabled")]
    sum_ns: AtomicU64,
    #[cfg(feature = "enabled")]
    registered: AtomicBool,
}

impl TimeHistogram {
    /// Creates an unregistered timing histogram (use via [`crate::timed_scope!`]).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        TimeHistogram {
            name,
            #[cfg(feature = "enabled")]
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            #[cfg(feature = "enabled")]
            sum_ns: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            registered: AtomicBool::new(false),
        }
    }

    /// The metric name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Starts a timer; the returned guard records on drop.
    ///
    /// Zero-sized and free when the `enabled` feature is off.
    #[inline]
    #[must_use = "the guard records when dropped; binding it to _ drops immediately"]
    pub fn start(&'static self) -> TimerGuard {
        TimerGuard {
            #[cfg(feature = "enabled")]
            hist: self,
            #[cfg(feature = "enabled")]
            started: Instant::now(),
        }
    }

    /// Records a duration directly, in nanoseconds.
    #[inline]
    pub fn record_ns(&'static self, ns: u64) {
        #[cfg(feature = "enabled")]
        {
            if !self.registered.load(Ordering::Relaxed) {
                self.register_slow();
            }
            let idx = if ns == 0 { 0 } else { ns.ilog2() as usize };
            self.buckets[idx.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
            self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = ns;
    }

    /// Total recorded intervals.
    #[must_use]
    pub fn count(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Total recorded time in nanoseconds.
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.sum_ns.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Snapshot of the 64 log₂ bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> [u64; HIST_BUCKETS] {
        #[cfg(feature = "enabled")]
        {
            let mut out = [0u64; HIST_BUCKETS];
            for (dst, src) in out.iter_mut().zip(self.buckets.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            out
        }
        #[cfg(not(feature = "enabled"))]
        [0; HIST_BUCKETS]
    }

    /// Nearest-rank quantile in nanoseconds (lower bucket edge, i.e. `2^i`);
    /// `None` when empty.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let snap = self.snapshot();
        let total: u64 = snap.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in snap.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Some(if i == 0 { 0 } else { 1u64 << i });
            }
        }
        Some(1u64 << (HIST_BUCKETS - 1))
    }

    #[cfg(feature = "enabled")]
    #[cold]
    fn register_slow(&'static self) {
        if !self.registered.swap(true, Ordering::AcqRel) {
            crate::registry::register_time_hist(self);
        }
    }

    #[cfg(feature = "enabled")]
    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_ns.store(0, Ordering::Relaxed);
    }
}

/// RAII guard recording elapsed wall time into a [`TimeHistogram`] on drop.
#[must_use = "the guard records when dropped; binding it to _ drops immediately"]
pub struct TimerGuard {
    #[cfg(feature = "enabled")]
    hist: &'static TimeHistogram,
    #[cfg(feature = "enabled")]
    started: Instant,
}

impl Drop for TimerGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        {
            let ns = self.started.elapsed().as_nanos();
            self.hist.record_ns(ns.min(u128::from(u64::MAX)) as u64);
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_half_open() {
        let _lock = crate::test_lock();
        static H: ValueHistogram = ValueHistogram::new("hist.test.bounds", 0.0, 64.0);
        // Width is exactly 1.0: [0,1) → bucket 0, [1,2) → bucket 1, …
        H.record(0.0);
        H.record(0.999_999);
        H.record(1.0);
        H.record(63.0);
        H.record(63.999);
        H.record(64.0); // at hi → overflow
        H.record(-0.001); // below lo → underflow
        let (under, interior, over) = H.snapshot();
        assert_eq!(under, 1);
        assert_eq!(over, 1);
        assert_eq!(interior[0], 2);
        assert_eq!(interior[1], 1);
        assert_eq!(interior[63], 2);
        assert_eq!(H.count(), 7);
    }

    #[test]
    fn quantiles_exact_on_unit_buckets() {
        let _lock = crate::test_lock();
        static H: ValueHistogram = ValueHistogram::new("hist.test.quant", 0.0, 64.0);
        // 100 samples: 0..=49 give value 10, 50..=89 give 20, 90..=99 give 40.
        for _ in 0..50 {
            H.record(10.0);
        }
        for _ in 0..40 {
            H.record(20.0);
        }
        for _ in 0..10 {
            H.record(40.0);
        }
        assert_eq!(H.quantile(0.5), Some(10.0)); // rank 50 → still the 10s
        assert_eq!(H.quantile(0.9), Some(20.0)); // rank 90 → last of the 20s
        assert_eq!(H.quantile(0.99), Some(40.0)); // rank 99 → the 40s
        assert_eq!(H.quantile(1.0), Some(40.0));
        assert_eq!(H.quantile(0.0), Some(10.0)); // rank clamps to 1
        assert!((H.mean().unwrap() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let _lock = crate::test_lock();
        static H: ValueHistogram = ValueHistogram::new("hist.test.empty", 0.0, 1.0);
        assert_eq!(H.quantile(0.5), None);
        assert_eq!(H.mean(), None);
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let _lock = crate::test_lock();
        static H: ValueHistogram = ValueHistogram::new("hist.test.mt", 0.0, 64.0);
        let threads: Vec<_> = (0..8)
            .map(|k| {
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        H.record(f64::from(k));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(H.count(), 40_000);
        let (_, interior, _) = H.snapshot();
        for b in &interior[..8] {
            assert_eq!(*b, 5_000);
        }
        // CAS-summed f64: 8 threads × 5000 × k.
        let expect: f64 = (0..8).map(|k| 5_000.0 * f64::from(k)).sum();
        assert!((H.sum() - expect).abs() < 1e-6);
    }

    #[test]
    fn time_histogram_buckets_by_log2() {
        let _lock = crate::test_lock();
        static T: TimeHistogram = TimeHistogram::new("hist.test.time");
        T.record_ns(0);
        T.record_ns(1);
        T.record_ns(2);
        T.record_ns(3);
        T.record_ns(1024);
        T.record_ns(1 << 40);
        let snap = T.snapshot();
        assert_eq!(snap[0], 2); // 0 and 1
        assert_eq!(snap[1], 2); // 2 and 3
        assert_eq!(snap[10], 1);
        assert_eq!(snap[40], 1);
        assert_eq!(T.count(), 6);
        assert_eq!(T.sum_ns(), 1 + 2 + 3 + 1024 + (1 << 40));
        assert_eq!(T.quantile_ns(0.5), Some(2));
        assert_eq!(T.quantile_ns(1.0), Some(1 << 40));
    }

    #[test]
    fn timer_guard_records_once() {
        let _lock = crate::test_lock();
        static T: TimeHistogram = TimeHistogram::new("hist.test.guard");
        let before = T.count();
        {
            let _g = T.start();
            std::hint::black_box(1 + 1);
        }
        assert_eq!(T.count(), before + 1);
    }
}
