//! Hierarchical pipeline stage profiler: self/total wall time per stage.
//!
//! A *stage* is a named region of the decode path (`stream.demod`,
//! `dsp.fir`, `sim.superpose`, …) opened with the [`crate::stage!`] macro and
//! closed when the returned guard drops. Stages nest: a thread-local
//! accumulator attributes each stage's child time to its parent, so every
//! stage reports both **total** time (including callees) and **self** time
//! (exclusive). Self time is what decides which scalar loop to vectorize
//! first — a stage whose total is large but whose self is small is just a
//! caller.
//!
//! Aggregation is per call site: each `stage!` declares a static
//! [`StageStat`] whose counters are relaxed atomics, so concurrent decode
//! lanes profile without locks. The thread-local nesting stack costs two
//! `Cell` ops per guard. With the `enabled` feature off the macro compiles
//! to a zero-sized guard and dead code.

#[cfg(feature = "enabled")]
use std::cell::Cell;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Per-stage aggregate counters, declared statically by [`crate::stage!`].
#[derive(Debug)]
pub struct StageStat {
    name: &'static str,
    #[cfg(feature = "enabled")]
    count: AtomicU64,
    #[cfg(feature = "enabled")]
    total_ns: AtomicU64,
    #[cfg(feature = "enabled")]
    self_ns: AtomicU64,
    #[cfg(feature = "enabled")]
    registered: AtomicBool,
}

#[cfg(feature = "enabled")]
thread_local! {
    /// Nanoseconds consumed by already-closed child stages of the innermost
    /// open stage on this thread.
    static CHILD_NS: Cell<u64> = const { Cell::new(0) };
}

impl StageStat {
    /// Creates an unregistered stage (use via [`crate::stage!`]).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        StageStat {
            name,
            #[cfg(feature = "enabled")]
            count: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            total_ns: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            self_ns: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            registered: AtomicBool::new(false),
        }
    }

    /// The stage name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Completed invocations.
    #[must_use]
    pub fn count(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Total wall time including child stages, in nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.total_ns.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Exclusive wall time (total minus child stages), in nanoseconds.
    #[must_use]
    pub fn self_ns(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.self_ns.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Opens the stage; the returned guard records on drop.
    #[inline]
    #[must_use = "the stage closes when the guard drops; binding it to _ drops immediately"]
    pub fn enter(&'static self) -> StageGuard {
        #[cfg(feature = "enabled")]
        {
            if !self.registered.load(Ordering::Relaxed)
                && !self.registered.swap(true, Ordering::AcqRel)
            {
                crate::registry::register_stage(self);
            }
            // Start a fresh child accumulator for this nesting level; the
            // parent's accumulated child time is parked in the guard.
            let parent_child_ns = CHILD_NS.with(|c| c.replace(0));
            StageGuard {
                stat: self,
                started: Instant::now(),
                parent_child_ns,
            }
        }
        #[cfg(not(feature = "enabled"))]
        StageGuard {}
    }

    #[cfg(feature = "enabled")]
    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.self_ns.store(0, Ordering::Relaxed);
    }
}

/// RAII guard closing a profiled stage (see [`crate::stage!`]).
#[must_use = "the stage closes when the guard drops; binding it to _ drops immediately"]
pub struct StageGuard {
    #[cfg(feature = "enabled")]
    stat: &'static StageStat,
    #[cfg(feature = "enabled")]
    started: Instant,
    #[cfg(feature = "enabled")]
    parent_child_ns: u64,
}

impl Drop for StageGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        {
            let total = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            // Whatever the child accumulator holds now was spent in stages
            // nested under this one.
            let child = CHILD_NS.with(|c| c.get());
            let own = total.saturating_sub(child);
            self.stat.count.fetch_add(1, Ordering::Relaxed);
            self.stat.total_ns.fetch_add(total, Ordering::Relaxed);
            self.stat.self_ns.fetch_add(own, Ordering::Relaxed);
            // Restore the parent's accumulator and bill it our whole total.
            CHILD_NS.with(|c| c.set(self.parent_child_ns + total));
        }
    }
}

/// One row of the aggregated stage profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRow {
    /// Stage name.
    pub name: &'static str,
    /// Completed invocations, summed over call sites sharing the name.
    pub count: u64,
    /// Total (inclusive) nanoseconds.
    pub total_ns: u64,
    /// Self (exclusive) nanoseconds.
    pub self_ns: u64,
}

/// The aggregated per-stage profile, one row per distinct stage name,
/// sorted by self time descending (the SIMD work order).
///
/// Empty when nothing was profiled or the `enabled` feature is off.
#[must_use]
pub fn profile_report() -> Vec<StageRow> {
    #[cfg(feature = "enabled")]
    {
        use std::collections::BTreeMap;
        let mut rows: BTreeMap<&'static str, StageRow> = BTreeMap::new();
        for s in crate::registry::registry().stages.lock().unwrap().iter() {
            let row = rows.entry(s.name()).or_insert(StageRow {
                name: s.name(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
            row.count += s.count();
            row.total_ns += s.total_ns();
            row.self_ns += s.self_ns();
        }
        let mut out: Vec<StageRow> = rows.into_values().filter(|r| r.count > 0).collect();
        out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
        out
    }
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// Renders the stage profile as a console table (empty string when nothing
/// was profiled).
#[must_use]
pub fn profile_summary() -> String {
    let rows = profile_report();
    if rows.is_empty() {
        return String::new();
    }
    let grand_self: u64 = rows.iter().map(|r| r.self_ns).sum();
    let mut out = String::from("-- stage profile (self-time order) --\n");
    for r in &rows {
        let pct = 100.0 * r.self_ns as f64 / grand_self.max(1) as f64;
        out.push_str(&format!(
            "  {:<28} n={:<8} self={:>10.3}ms ({pct:5.1}%) total={:>10.3}ms\n",
            r.name,
            r.count,
            r.self_ns as f64 / 1e6,
            r.total_ns as f64 / 1e6,
        ));
    }
    out
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    fn spin_ns(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_stages_split_self_and_total() {
        let _lock = crate::test_lock();
        static OUTER: StageStat = StageStat::new("profile.test.outer");
        static INNER: StageStat = StageStat::new("profile.test.inner");
        {
            let _o = OUTER.enter();
            spin_ns(200_000);
            {
                let _i = INNER.enter();
                spin_ns(400_000);
            }
            spin_ns(100_000);
        }
        assert_eq!(OUTER.count(), 1);
        assert_eq!(INNER.count(), 1);
        // The outer total covers everything; its self time excludes the
        // inner stage entirely.
        assert!(OUTER.total_ns() >= 700_000, "total={}", OUTER.total_ns());
        assert!(
            OUTER.self_ns() + INNER.total_ns() <= OUTER.total_ns() + 50_000,
            "self={} inner_total={} outer_total={}",
            OUTER.self_ns(),
            INNER.total_ns(),
            OUTER.total_ns()
        );
        assert!(
            OUTER.self_ns() < OUTER.total_ns(),
            "outer self must exclude the inner stage"
        );
        assert!(INNER.self_ns() >= 400_000 - 1_000);
    }

    #[test]
    fn sibling_stages_bill_the_same_parent() {
        let _lock = crate::test_lock();
        static PARENT: StageStat = StageStat::new("profile.test.parent");
        static A: StageStat = StageStat::new("profile.test.a");
        static B: StageStat = StageStat::new("profile.test.b");
        {
            let _p = PARENT.enter();
            {
                let _a = A.enter();
                spin_ns(150_000);
            }
            {
                let _b = B.enter();
                spin_ns(150_000);
            }
        }
        // Both siblings' totals are excluded from the parent's self time.
        assert!(
            PARENT.self_ns() + A.total_ns() + B.total_ns() <= PARENT.total_ns() + 50_000,
            "parent self={} a={} b={} parent total={}",
            PARENT.self_ns(),
            A.total_ns(),
            B.total_ns(),
            PARENT.total_ns()
        );
    }

    #[test]
    fn report_merges_by_name_and_sorts_by_self() {
        let _lock = crate::test_lock();
        crate::reset();
        static HOT: StageStat = StageStat::new("profile.test.hot");
        static COLD: StageStat = StageStat::new("profile.test.cold");
        {
            let _g = HOT.enter();
            spin_ns(500_000);
        }
        {
            let _g = COLD.enter();
            spin_ns(50_000);
        }
        let rows = profile_report();
        let hot_pos = rows
            .iter()
            .position(|r| r.name == "profile.test.hot")
            .unwrap();
        let cold_pos = rows
            .iter()
            .position(|r| r.name == "profile.test.cold")
            .unwrap();
        assert!(hot_pos < cold_pos, "rows must sort by self time: {rows:?}");
        let s = profile_summary();
        assert!(s.contains("profile.test.hot"), "{s}");
    }

    #[test]
    fn macro_declares_and_enters() {
        let _lock = crate::test_lock();
        {
            let _g = crate::stage!("profile.test.via_macro");
        }
        assert!(profile_report()
            .iter()
            .any(|r| r.name == "profile.test.via_macro"));
    }
}
