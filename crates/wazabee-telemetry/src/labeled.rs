//! Labeled metric families: counters, gauges and histograms keyed by small
//! label sets (`channel=15`, `node=3`, `stage=fir`, …).
//!
//! A *family* is declared once per call site (via [`crate::labeled_counter!`],
//! [`crate::labeled_gauge!`] or [`crate::labeled_histogram!`]) and fans out
//! into one cell per distinct label set on first use. Cells are shared
//! `Arc`s of atomics, so the steady-state cost of a labeled increment is one
//! short mutex-guarded map lookup — or, with a cached [`CounterHandle`] /
//! [`HistogramHandle`], a single relaxed atomic op with no lock at all.
//!
//! Label sets are capped at [`MAX_LABELS`] pairs and stored sorted by key,
//! so `[("a","1"),("b","2")]` and `[("b","2"),("a","1")]` address the same
//! cell. With the `enabled` feature off every family compiles to a no-op
//! and every handle is zero-sized.

#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex};

#[cfg(feature = "enabled")]
use crate::hist::HIST_BUCKETS;

/// Maximum label pairs per metric (excess pairs are dropped, keeping the
/// first `MAX_LABELS` after sorting).
pub const MAX_LABELS: usize = 4;

/// An owned, sorted label set.
///
/// Keys are `'static` (label *names* are part of the schema); values are
/// formatted at the call site (`node=3`, `channel=15`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LabelSet(Vec<(&'static str, String)>);

impl LabelSet {
    /// Builds a label set from `(key, value)` pairs, sorting by key and
    /// truncating past [`MAX_LABELS`]. Duplicate keys keep the first value.
    #[must_use]
    pub fn new(pairs: &[(&'static str, &str)]) -> Self {
        let mut v: Vec<(&'static str, String)> =
            pairs.iter().map(|&(k, val)| (k, val.to_string())).collect();
        v.sort_by_key(|&(k, _)| k);
        v.dedup_by_key(|&mut (k, _)| k);
        v.truncate(MAX_LABELS);
        LabelSet(v)
    }

    /// The sorted `(key, value)` pairs.
    #[must_use]
    pub fn pairs(&self) -> &[(&'static str, String)] {
        &self.0
    }

    /// Renders as `{k="v",k2="v2"}` (empty string for an empty set).
    #[must_use]
    pub fn render(&self) -> String {
        if self.0.is_empty() {
            return String::new();
        }
        let body: Vec<String> = self.0.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{{{}}}", body.join(","))
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A family of monotonically increasing counters keyed by label set.
///
/// Declare via [`crate::labeled_counter!`]. `const`-constructible so each
/// call site owns a static family; the first touch registers it with the
/// global registry.
#[derive(Debug)]
pub struct CounterFamily {
    name: &'static str,
    #[cfg(feature = "enabled")]
    cells: Mutex<BTreeMap<LabelSet, Arc<AtomicU64>>>,
    #[cfg(feature = "enabled")]
    registered: AtomicBool,
}

/// A cached, lock-free handle onto one labeled counter cell.
#[derive(Debug, Clone)]
pub struct CounterHandle {
    #[cfg(feature = "enabled")]
    cell: Arc<AtomicU64>,
}

impl CounterHandle {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` — one relaxed `fetch_add`, no lock.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.cell.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current value (0 when disabled).
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }
}

impl CounterFamily {
    /// Creates an unregistered family (use via [`crate::labeled_counter!`]).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        CounterFamily {
            name,
            #[cfg(feature = "enabled")]
            cells: Mutex::new(BTreeMap::new()),
            #[cfg(feature = "enabled")]
            registered: AtomicBool::new(false),
        }
    }

    /// The family name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds one to the cell for `labels`.
    #[inline]
    pub fn inc(&'static self, labels: &[(&'static str, &str)]) {
        self.add(labels, 1);
    }

    /// Adds `n` to the cell for `labels` (map lookup + relaxed `fetch_add`).
    pub fn add(&'static self, labels: &[(&'static str, &str)], n: u64) {
        #[cfg(feature = "enabled")]
        self.cell(labels).fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = (labels, n);
    }

    /// Current value of the cell for `labels` (0 when absent or disabled).
    #[must_use]
    pub fn get(&'static self, labels: &[(&'static str, &str)]) -> u64 {
        #[cfg(feature = "enabled")]
        {
            let key = LabelSet::new(labels);
            self.cells
                .lock()
                .unwrap()
                .get(&key)
                .map_or(0, |c| c.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = labels;
            0
        }
    }

    /// Resolves (creating if needed) a lock-free handle for `labels` — cache
    /// this outside a hot loop so increments skip the map lookup entirely.
    #[must_use]
    pub fn handle(&'static self, labels: &[(&'static str, &str)]) -> CounterHandle {
        #[cfg(feature = "enabled")]
        {
            CounterHandle {
                cell: self.cell(labels),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = labels;
            CounterHandle {}
        }
    }

    /// Snapshot of every `(labels, value)` cell, sorted by label set.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(LabelSet, u64)> {
        #[cfg(feature = "enabled")]
        {
            self.cells
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect()
        }
        #[cfg(not(feature = "enabled"))]
        Vec::new()
    }

    #[cfg(feature = "enabled")]
    fn cell(&'static self, labels: &[(&'static str, &str)]) -> Arc<AtomicU64> {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            crate::registry::register_counter_family(self);
        }
        let key = LabelSet::new(labels);
        Arc::clone(
            self.cells
                .lock()
                .unwrap()
                .entry(key)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    #[cfg(feature = "enabled")]
    pub(crate) fn reset(&self) {
        // Zero in place (rather than dropping cells) so cached handles stay
        // wired to the very cells the sinks will read.
        for cell in self.cells.lock().unwrap().values() {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

/// A family of last-value-wins gauges keyed by label set (f64 payload).
#[derive(Debug)]
pub struct GaugeFamily {
    name: &'static str,
    #[cfg(feature = "enabled")]
    cells: Mutex<BTreeMap<LabelSet, Arc<AtomicU64>>>,
    #[cfg(feature = "enabled")]
    registered: AtomicBool,
}

impl GaugeFamily {
    /// Creates an unregistered family (use via [`crate::labeled_gauge!`]).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        GaugeFamily {
            name,
            #[cfg(feature = "enabled")]
            cells: Mutex::new(BTreeMap::new()),
            #[cfg(feature = "enabled")]
            registered: AtomicBool::new(false),
        }
    }

    /// The family name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the cell for `labels` to `v`.
    pub fn set(&'static self, labels: &[(&'static str, &str)], v: f64) {
        #[cfg(feature = "enabled")]
        self.cell(labels).store(v.to_bits(), Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = (labels, v);
    }

    /// Last value set for `labels` (`None` when never set or disabled).
    #[must_use]
    pub fn get(&'static self, labels: &[(&'static str, &str)]) -> Option<f64> {
        #[cfg(feature = "enabled")]
        {
            let key = LabelSet::new(labels);
            self.cells
                .lock()
                .unwrap()
                .get(&key)
                .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = labels;
            None
        }
    }

    /// Snapshot of every `(labels, value)` cell, sorted by label set.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(LabelSet, f64)> {
        #[cfg(feature = "enabled")]
        {
            self.cells
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect()
        }
        #[cfg(not(feature = "enabled"))]
        Vec::new()
    }

    #[cfg(feature = "enabled")]
    fn cell(&'static self, labels: &[(&'static str, &str)]) -> Arc<AtomicU64> {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            crate::registry::register_gauge_family(self);
        }
        let key = LabelSet::new(labels);
        Arc::clone(
            self.cells
                .lock()
                .unwrap()
                .entry(key)
                .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
        )
    }

    #[cfg(feature = "enabled")]
    pub(crate) fn reset(&self) {
        // A gauge's "zero" is last-value-unknown: drop the cells so stale
        // per-node values from a previous phase cannot leak into the next.
        self.cells.lock().unwrap().clear();
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// One labeled histogram cell: linear buckets over the family's `[lo, hi)`.
#[cfg(feature = "enabled")]
#[derive(Debug)]
pub(crate) struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    underflow: AtomicU64,
    overflow: AtomicU64,
    sum_bits: AtomicU64,
}

#[cfg(feature = "enabled")]
impl HistCell {
    fn new() -> Self {
        HistCell {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    fn record(&self, lo: f64, hi: f64, v: f64) {
        let width = (hi - lo) / HIST_BUCKETS as f64;
        if v < lo {
            self.underflow.fetch_add(1, Ordering::Relaxed);
        } else if v >= hi || !v.is_finite() {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        } else {
            let idx = ((v - lo) / width) as usize;
            self.buckets[idx.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        }
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.underflow.store(0, Ordering::Relaxed);
        self.overflow.store(0, Ordering::Relaxed);
        self.sum_bits.store(0, Ordering::Relaxed);
    }
}

/// Aggregate view of one labeled histogram cell.
#[derive(Debug, Clone, PartialEq)]
pub struct HistStats {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: f64,
    /// Mean, `None` when empty.
    pub mean: Option<f64>,
    /// Nearest-rank p50 (lower bucket edge), `None` when empty.
    pub p50: Option<f64>,
    /// Nearest-rank p99 (lower bucket edge), `None` when empty.
    pub p99: Option<f64>,
}

/// A family of linear-bucket histograms over `[lo, hi)` keyed by label set.
#[derive(Debug)]
pub struct HistogramFamily {
    name: &'static str,
    lo: f64,
    hi: f64,
    #[cfg(feature = "enabled")]
    cells: Mutex<BTreeMap<LabelSet, Arc<HistCell>>>,
    #[cfg(feature = "enabled")]
    registered: AtomicBool,
}

/// A cached, lock-free handle onto one labeled histogram cell.
#[derive(Debug, Clone)]
pub struct HistogramHandle {
    #[cfg(feature = "enabled")]
    cell: Arc<HistCell>,
    #[cfg(feature = "enabled")]
    lo: f64,
    #[cfg(feature = "enabled")]
    hi: f64,
}

impl HistogramHandle {
    /// Records one sample — bucket math + relaxed atomics, no lock.
    #[inline]
    pub fn record(&self, v: f64) {
        #[cfg(feature = "enabled")]
        self.cell.record(self.lo, self.hi, v);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }
}

impl HistogramFamily {
    /// Creates an unregistered family (use via [`crate::labeled_histogram!`]).
    #[must_use]
    pub const fn new(name: &'static str, lo: f64, hi: f64) -> Self {
        HistogramFamily {
            name,
            lo,
            hi,
            #[cfg(feature = "enabled")]
            cells: Mutex::new(BTreeMap::new()),
            #[cfg(feature = "enabled")]
            registered: AtomicBool::new(false),
        }
    }

    /// The family name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The configured range.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Records one sample into the cell for `labels`.
    pub fn record(&'static self, labels: &[(&'static str, &str)], v: f64) {
        #[cfg(feature = "enabled")]
        self.cell(labels).record(self.lo, self.hi, v);
        #[cfg(not(feature = "enabled"))]
        let _ = (labels, v);
    }

    /// Resolves (creating if needed) a lock-free handle for `labels`.
    #[must_use]
    pub fn handle(&'static self, labels: &[(&'static str, &str)]) -> HistogramHandle {
        #[cfg(feature = "enabled")]
        {
            HistogramHandle {
                cell: self.cell(labels),
                lo: self.lo,
                hi: self.hi,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = labels;
            HistogramHandle {}
        }
    }

    /// Snapshot of every cell's aggregate stats, sorted by label set.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(LabelSet, HistStats)> {
        #[cfg(feature = "enabled")]
        {
            let width = (self.hi - self.lo) / HIST_BUCKETS as f64;
            self.cells
                .lock()
                .unwrap()
                .iter()
                .map(|(k, cell)| {
                    let under = cell.underflow.load(Ordering::Relaxed);
                    let over = cell.overflow.load(Ordering::Relaxed);
                    let interior: Vec<u64> = cell
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    let count = under + over + interior.iter().sum::<u64>();
                    let sum = f64::from_bits(cell.sum_bits.load(Ordering::Relaxed));
                    let quant = |q: f64| -> Option<f64> {
                        if count == 0 {
                            return None;
                        }
                        let rank = ((q * count as f64).ceil() as u64).max(1);
                        let mut seen = under;
                        if rank <= seen {
                            return Some(self.lo - width);
                        }
                        for (i, &c) in interior.iter().enumerate() {
                            seen += c;
                            if rank <= seen {
                                return Some(self.lo + i as f64 * width);
                            }
                        }
                        Some(self.hi)
                    };
                    (
                        k.clone(),
                        HistStats {
                            count,
                            sum,
                            mean: (count > 0).then(|| sum / count as f64),
                            p50: quant(0.5),
                            p99: quant(0.99),
                        },
                    )
                })
                .collect()
        }
        #[cfg(not(feature = "enabled"))]
        Vec::new()
    }

    #[cfg(feature = "enabled")]
    fn cell(&'static self, labels: &[(&'static str, &str)]) -> Arc<HistCell> {
        if !self.registered.load(Ordering::Relaxed) && !self.registered.swap(true, Ordering::AcqRel)
        {
            crate::registry::register_hist_family(self);
        }
        let key = LabelSet::new(labels);
        Arc::clone(
            self.cells
                .lock()
                .unwrap()
                .entry(key)
                .or_insert_with(|| Arc::new(HistCell::new())),
        )
    }

    #[cfg(feature = "enabled")]
    pub(crate) fn reset(&self) {
        for cell in self.cells.lock().unwrap().values() {
            cell.reset();
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn label_sets_are_order_insensitive() {
        let a = LabelSet::new(&[("node", "3"), ("channel", "15")]);
        let b = LabelSet::new(&[("channel", "15"), ("node", "3")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "{channel=\"15\",node=\"3\"}");
        assert_eq!(LabelSet::new(&[]).render(), "");
    }

    #[test]
    fn counter_family_fans_out_by_labels() {
        let _lock = crate::test_lock();
        let fam = crate::labeled_counter!("labeled.test.frames");
        fam.add(&[("channel", "15")], 3);
        fam.add(&[("channel", "20")], 2);
        fam.inc(&[("channel", "15")]);
        assert_eq!(fam.get(&[("channel", "15")]), 4);
        assert_eq!(fam.get(&[("channel", "20")]), 2);
        assert_eq!(fam.get(&[("channel", "26")]), 0);
        let snap = fam.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].1 + snap[1].1, 6);
    }

    #[test]
    fn cached_handle_hits_same_cell() {
        let _lock = crate::test_lock();
        let fam = crate::labeled_counter!("labeled.test.handle");
        let h = fam.handle(&[("node", "7")]);
        let before = fam.get(&[("node", "7")]);
        for _ in 0..100 {
            h.inc();
        }
        assert_eq!(fam.get(&[("node", "7")]), before + 100);
        assert_eq!(h.get(), before + 100);
    }

    #[test]
    fn gauge_holds_last_value() {
        let _lock = crate::test_lock();
        let g = crate::labeled_gauge!("labeled.test.gauge");
        assert_eq!(g.get(&[("node", "1")]), None);
        g.set(&[("node", "1")], 0.25);
        g.set(&[("node", "1")], 0.75);
        assert_eq!(g.get(&[("node", "1")]), Some(0.75));
    }

    #[test]
    fn histogram_family_aggregates_per_cell() {
        let _lock = crate::test_lock();
        let h = crate::labeled_histogram!("labeled.test.hist", 0.0, 64.0);
        for _ in 0..10 {
            h.record(&[("stage", "fir")], 4.0);
        }
        h.record(&[("stage", "fir")], 60.0);
        h.record(&[("stage", "demod")], 1.0);
        let snap = h.snapshot();
        let fir = snap
            .iter()
            .find(|(k, _)| k.render().contains("fir"))
            .map(|(_, s)| s.clone())
            .unwrap();
        assert_eq!(fir.count, 11);
        assert_eq!(fir.p50, Some(4.0));
        assert_eq!(fir.p99, Some(60.0));
    }

    #[test]
    fn concurrent_labeled_increments_lose_nothing() {
        let _lock = crate::test_lock();
        static FAM: CounterFamily = CounterFamily::new("labeled.test.contended");
        let threads: Vec<_> = (0..4)
            .map(|k| {
                std::thread::spawn(move || {
                    let h = FAM.handle(&[("worker", if k % 2 == 0 { "even" } else { "odd" })]);
                    for _ in 0..10_000 {
                        h.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(FAM.get(&[("worker", "even")]), 20_000);
        assert_eq!(FAM.get(&[("worker", "odd")]), 20_000);
    }
}
