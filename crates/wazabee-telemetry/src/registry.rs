//! Global registry of every metric static touched so far.
//!
//! Statics register themselves on first use (a one-time `swap` + mutex push),
//! so the sinks can enumerate exactly the metrics the run exercised — no
//! central declaration list to maintain.

#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};

#[cfg(feature = "enabled")]
use crate::{Counter, TimeHistogram, ValueHistogram};

#[cfg(feature = "enabled")]
#[derive(Default)]
pub(crate) struct Registry {
    pub counters: Mutex<Vec<&'static Counter>>,
    pub value_hists: Mutex<Vec<&'static ValueHistogram>>,
    pub time_hists: Mutex<Vec<&'static TimeHistogram>>,
}

#[cfg(feature = "enabled")]
pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(feature = "enabled")]
pub(crate) fn register_counter(c: &'static Counter) {
    registry().counters.lock().unwrap().push(c);
}

#[cfg(feature = "enabled")]
pub(crate) fn register_value_hist(h: &'static ValueHistogram) {
    registry().value_hists.lock().unwrap().push(h);
}

#[cfg(feature = "enabled")]
pub(crate) fn register_time_hist(h: &'static TimeHistogram) {
    registry().time_hists.lock().unwrap().push(h);
}

/// Zeroes every registered metric (they stay registered).
pub(crate) fn reset() {
    #[cfg(feature = "enabled")]
    {
        for c in registry().counters.lock().unwrap().iter() {
            c.reset();
        }
        for h in registry().value_hists.lock().unwrap().iter() {
            h.reset();
        }
        for h in registry().time_hists.lock().unwrap().iter() {
            h.reset();
        }
    }
}
