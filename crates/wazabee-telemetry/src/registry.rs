//! Global registry of every metric static touched so far.
//!
//! Statics register themselves on first use (a one-time `swap` + mutex push),
//! so the sinks can enumerate exactly the metrics the run exercised — no
//! central declaration list to maintain.

#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};

#[cfg(feature = "enabled")]
use crate::health::HealthRule;
#[cfg(feature = "enabled")]
use crate::labeled::{CounterFamily, GaugeFamily, HistogramFamily};
#[cfg(feature = "enabled")]
use crate::profile::StageStat;
#[cfg(feature = "enabled")]
use crate::timeseries::WallSeries;
#[cfg(feature = "enabled")]
use crate::{Counter, TimeHistogram, ValueHistogram};

#[cfg(feature = "enabled")]
#[derive(Default)]
pub(crate) struct Registry {
    pub counters: Mutex<Vec<&'static Counter>>,
    pub value_hists: Mutex<Vec<&'static ValueHistogram>>,
    pub time_hists: Mutex<Vec<&'static TimeHistogram>>,
    pub counter_families: Mutex<Vec<&'static CounterFamily>>,
    pub gauge_families: Mutex<Vec<&'static GaugeFamily>>,
    pub hist_families: Mutex<Vec<&'static HistogramFamily>>,
    pub stages: Mutex<Vec<&'static StageStat>>,
    pub wall_series: Mutex<Vec<&'static WallSeries>>,
    pub health_rules: Mutex<Vec<&'static HealthRule>>,
}

#[cfg(feature = "enabled")]
pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(feature = "enabled")]
pub(crate) fn register_counter(c: &'static Counter) {
    registry().counters.lock().unwrap().push(c);
}

#[cfg(feature = "enabled")]
pub(crate) fn register_value_hist(h: &'static ValueHistogram) {
    registry().value_hists.lock().unwrap().push(h);
}

#[cfg(feature = "enabled")]
pub(crate) fn register_time_hist(h: &'static TimeHistogram) {
    registry().time_hists.lock().unwrap().push(h);
}

#[cfg(feature = "enabled")]
pub(crate) fn register_counter_family(f: &'static CounterFamily) {
    registry().counter_families.lock().unwrap().push(f);
}

#[cfg(feature = "enabled")]
pub(crate) fn register_gauge_family(f: &'static GaugeFamily) {
    registry().gauge_families.lock().unwrap().push(f);
}

#[cfg(feature = "enabled")]
pub(crate) fn register_hist_family(f: &'static HistogramFamily) {
    registry().hist_families.lock().unwrap().push(f);
}

#[cfg(feature = "enabled")]
pub(crate) fn register_stage(s: &'static StageStat) {
    registry().stages.lock().unwrap().push(s);
}

#[cfg(feature = "enabled")]
pub(crate) fn register_wall_series(s: &'static WallSeries) {
    registry().wall_series.lock().unwrap().push(s);
}

#[cfg(feature = "enabled")]
pub(crate) fn register_health_rule(r: &'static HealthRule) {
    registry().health_rules.lock().unwrap().push(r);
}

/// Zeroes every registered metric — flat and labeled, stage profile and
/// wall-clock series included (they stay registered).
pub(crate) fn reset() {
    #[cfg(feature = "enabled")]
    {
        for c in registry().counters.lock().unwrap().iter() {
            c.reset();
        }
        for h in registry().value_hists.lock().unwrap().iter() {
            h.reset();
        }
        for h in registry().time_hists.lock().unwrap().iter() {
            h.reset();
        }
        for f in registry().counter_families.lock().unwrap().iter() {
            f.reset();
        }
        for f in registry().gauge_families.lock().unwrap().iter() {
            f.reset();
        }
        for f in registry().hist_families.lock().unwrap().iter() {
            f.reset();
        }
        for s in registry().stages.lock().unwrap().iter() {
            s.reset();
        }
        for s in registry().wall_series.lock().unwrap().iter() {
            s.reset();
        }
        for r in registry().health_rules.lock().unwrap().iter() {
            r.reset_state();
        }
    }
}
