#![warn(missing_docs)]

//! # wazabee-telemetry
//!
//! Dependency-free (std-only) observability for the WazaBee modem/attack
//! stack: the paper's evaluation (Tables III–IV, Figs. 9–11) is built on
//! per-stage PHY metrics — sync success, chip-error distances, PER/BER — and
//! this crate makes those first-class instead of ad-hoc per scenario binary.
//!
//! Four primitives:
//!
//! * [`Counter`] — lock-free atomic event counters (sync-word hits, CRC/FCS
//!   pass/fail, frames TX/RX, despread symbol decisions, …), declared in
//!   place with [`counter!`].
//! * [`ValueHistogram`] — fixed-width linear buckets over a declared range
//!   (Hamming distances, CFO estimates, correlation peaks), declared with
//!   [`value_histogram!`].
//! * [`TimeHistogram`] — coarse log₂-nanosecond buckets fed by RAII timer
//!   guards around hot kernels (GFSK modulation, Gaussian FIR, O-QPSK
//!   demodulation, medium mixing), declared with [`timed_scope!`].
//! * spans/events — a bounded ring buffer of trace records with scoped
//!   guards, via [`span!`] and [`event!`].
//!
//! Two sinks: an end-of-run console [`summary`] table (with derived
//! sync-success / CRC / FCS / PER rates) and a JSONL exporter
//! ([`write_jsonl`], [`dump_jsonl_to`], and [`dump_from_env`] honouring the
//! `WAZABEE_TELEMETRY_OUT` environment variable).
//!
//! ## Feature gating
//!
//! Everything is behind the `enabled` cargo feature (on by default through
//! each instrumented crate's `telemetry` feature). With the feature off the
//! entire API still compiles but every body is an empty `#[inline]` no-op and
//! every guard is zero-sized, so instrumented call sites cost nothing —
//! verified by the `telemetry_overhead` bench in `wazabee-bench`.
//!
//! ## Example
//!
//! ```
//! use wazabee_telemetry as tel;
//!
//! fn demod_symbol(block: &[u8]) -> u8 {
//!     let _t = tel::timed_scope!("example.demod_ns");
//!     tel::counter!("example.symbols").inc();
//!     let distance = block.iter().filter(|&&b| b != 0).count();
//!     tel::value_histogram!("example.hamming", 0.0, 32.0).record(distance as f64);
//!     0
//! }
//!
//! demod_symbol(&[0, 1, 0, 0]);
//! println!("{}", tel::summary());
//! ```

mod counter;
mod health;
mod hist;
mod labeled;
mod profile;
mod registry;
mod server;
mod sink;
mod span;
mod timeseries;
mod trace_export;

pub use counter::Counter;
pub use health::{
    evaluate_health, health_json, health_ok, start_watchdog, Alert, Cmp, HealthRule, Signal,
};
pub use hist::{TimeHistogram, TimerGuard, ValueHistogram, HIST_BUCKETS};
pub use labeled::{
    CounterFamily, CounterHandle, GaugeFamily, HistStats, HistogramFamily, HistogramHandle,
    LabelSet, MAX_LABELS,
};
pub use profile::{profile_report, profile_summary, StageGuard, StageRow, StageStat};
pub use server::{serve, serve_from_env, ENV_ADDR};
pub use sink::{dump_from_env, dump_jsonl_to, snapshot_json, summary, write_jsonl, ENV_OUT};
pub use span::{
    current_span_id, drain_trace, event, event_with, ArgValue, SpanArgs, SpanGuard, TraceEvent,
    TraceKind, MAX_SPAN_ARGS, TRACE_CAPACITY,
};
pub use timeseries::{Point, Series, SeriesSet, WallSeries, SERIES_CAPACITY};
pub use trace_export::{dump_trace_from_env, dump_trace_to, trace_chrome_json, ENV_TRACE_OUT};

/// Zeroes every registered metric — flat counters/histograms, labeled
/// families, the stage profile, wall-clock series, health-rule alert state —
/// clears the trace ring and restarts the span-id sequence.
///
/// Intended for test isolation and for scenario binaries that report several
/// independent phases (the parallel sweep driver resets between cells).
/// Statics stay registered; only their values reset. Cached
/// [`CounterHandle`]s/[`HistogramHandle`]s remain valid: counter and
/// histogram cells are zeroed in place, not dropped. Latched health alerts
/// unlatch; armed rules stay armed.
pub fn reset() {
    registry::reset();
    span::clear();
    span::reset_ids();
}

/// Declares (once) and returns a `&'static` [`Counter`] for this call site.
///
/// Counters sharing a name — e.g. the same metric incremented from several
/// call sites — are merged by the sinks.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __WZB_COUNTER: $crate::Counter = $crate::Counter::new($name);
        &__WZB_COUNTER
    }};
}

/// Declares (once) and returns a `&'static` [`ValueHistogram`] over
/// `[$lo, $hi)` for this call site.
#[macro_export]
macro_rules! value_histogram {
    ($name:expr, $lo:expr, $hi:expr) => {{
        static __WZB_VHIST: $crate::ValueHistogram = $crate::ValueHistogram::new($name, $lo, $hi);
        &__WZB_VHIST
    }};
}

/// Declares (once) a [`TimeHistogram`] and returns a guard that records the
/// elapsed wall time into it when dropped.
///
/// ```
/// # use wazabee_telemetry as tel;
/// fn hot_kernel() {
///     let _t = tel::timed_scope!("example.kernel_ns");
///     // ... work ...
/// }
/// # hot_kernel();
/// ```
#[macro_export]
macro_rules! timed_scope {
    ($name:expr) => {{
        static __WZB_THIST: $crate::TimeHistogram = $crate::TimeHistogram::new($name);
        __WZB_THIST.start()
    }};
}

/// Opens a trace span: records an enter event now and an exit event (with
/// duration) when the returned guard drops.
///
/// Spans are causally linked — each gets a process-unique id and the id of
/// the span open on the same thread as its parent — and can carry up to
/// [`MAX_SPAN_ARGS`] static key/value arguments:
///
/// ```
/// # use wazabee_telemetry as tel;
/// # let (seq, ch) = (7u32, 15u8);
/// let _s = tel::span!("rx.decode", frame = seq, chan = ch);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::SpanGuard::enter_with(
            $name,
            $crate::SpanArgs::new()$(.with(stringify!($k), $v))+,
        )
    };
}

/// Records an instantaneous trace event, optionally with a numeric value
/// and/or up to [`MAX_SPAN_ARGS`] static key/value arguments
/// (`event!("rx.resync", offset = bit)`).
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::event($name, None)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::event_with(
            $name,
            None,
            $crate::SpanArgs::new()$(.with(stringify!($k), $v))+,
        )
    };
    ($name:expr, $value:expr) => {
        $crate::event($name, Some($value as f64))
    };
    ($name:expr, $value:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::event_with(
            $name,
            Some($value as f64),
            $crate::SpanArgs::new()$(.with(stringify!($k), $v))+,
        )
    };
}

/// Declares (once) and arms a [`HealthRule`]: a named alert over a metric
/// [`Signal`], firing when the signal crosses the threshold in the given
/// direction. Arming is idempotent; the rule stays armed across
/// [`reset`] (only its alert state clears).
///
/// ```
/// # use wazabee_telemetry as tel;
/// tel::health_rule!(
///     "ids.extra_frames",
///     tel::Signal::counter("ids.stream.extra_frames"),
///     > 0.0
/// );
/// ```
#[macro_export]
macro_rules! health_rule {
    ($name:expr, $signal:expr, > $threshold:expr) => {{
        static __WZB_HEALTH: $crate::HealthRule =
            $crate::HealthRule::new($name, $signal, $crate::Cmp::Above, ($threshold) as f64);
        __WZB_HEALTH.arm();
    }};
    ($name:expr, $signal:expr, < $threshold:expr) => {{
        static __WZB_HEALTH: $crate::HealthRule =
            $crate::HealthRule::new($name, $signal, $crate::Cmp::Below, ($threshold) as f64);
        __WZB_HEALTH.arm();
    }};
}

/// Declares (once) and returns a `&'static` [`CounterFamily`] for this call
/// site — a counter fanning out by label set:
///
/// ```
/// # use wazabee_telemetry as tel;
/// tel::labeled_counter!("example.frames").inc(&[("channel", "15")]);
/// ```
#[macro_export]
macro_rules! labeled_counter {
    ($name:expr) => {{
        static __WZB_CFAMILY: $crate::CounterFamily = $crate::CounterFamily::new($name);
        &__WZB_CFAMILY
    }};
}

/// Declares (once) and returns a `&'static` [`GaugeFamily`] (last-value-wins
/// f64 per label set) for this call site.
#[macro_export]
macro_rules! labeled_gauge {
    ($name:expr) => {{
        static __WZB_GFAMILY: $crate::GaugeFamily = $crate::GaugeFamily::new($name);
        &__WZB_GFAMILY
    }};
}

/// Declares (once) and returns a `&'static` [`HistogramFamily`] over
/// `[$lo, $hi)` keyed by label set for this call site.
#[macro_export]
macro_rules! labeled_histogram {
    ($name:expr, $lo:expr, $hi:expr) => {{
        static __WZB_HFAMILY: $crate::HistogramFamily =
            $crate::HistogramFamily::new($name, $lo, $hi);
        &__WZB_HFAMILY
    }};
}

/// Opens a profiled pipeline stage; it closes (recording self/total time)
/// when the returned guard drops. Stages nest — see [`profile_report`].
///
/// ```
/// # use wazabee_telemetry as tel;
/// fn despread(symbols: &[u8]) {
///     let _s = tel::stage!("example.despread");
///     // ... child stages bill their time to this one ...
/// }
/// # despread(&[0]);
/// ```
#[macro_export]
macro_rules! stage {
    ($name:expr) => {{
        static __WZB_STAGE: $crate::StageStat = $crate::StageStat::new($name);
        __WZB_STAGE.enter()
    }};
}

/// Declares (once) a global wall-clock [`WallSeries`] (capacity
/// [`SERIES_CAPACITY`] unless given) and records `$value` into it.
#[macro_export]
macro_rules! timeseries {
    ($name:expr, $value:expr) => {{
        static __WZB_SERIES: $crate::WallSeries =
            $crate::WallSeries::new($name, $crate::SERIES_CAPACITY);
        __WZB_SERIES.record($value as f64)
    }};
    ($name:expr, $value:expr, $capacity:expr) => {{
        static __WZB_SERIES: $crate::WallSeries = $crate::WallSeries::new($name, $capacity);
        __WZB_SERIES.record($value as f64)
    }};
}

/// Serializes tests that touch the global registry or trace ring: `reset()`
/// and `drain_trace()` in one test would otherwise corrupt another's counts.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The public-API smoke test lives here; detailed unit tests sit next to
    // each primitive.
    #[test]
    fn macros_compose_and_report() {
        let _lock = crate::test_lock();
        reset();
        counter!("lib.test.frames").add(3);
        value_histogram!("lib.test.dist", 0.0, 32.0).record(4.0);
        {
            let _t = timed_scope!("lib.test.kernel_ns");
            let _s = span!("lib.test.span");
            event!("lib.test.event", 7);
        }
        let s = summary();
        #[cfg(feature = "enabled")]
        {
            assert!(s.contains("lib.test.frames"), "summary:\n{s}");
            assert!(s.contains("lib.test.dist"), "summary:\n{s}");
            assert!(s.contains("lib.test.kernel_ns"), "summary:\n{s}");
        }
        #[cfg(not(feature = "enabled"))]
        assert!(s.contains("disabled"));
    }
}
