//! Lightweight span/event tracing over a bounded ring buffer.
//!
//! Tracing is coarser than counters — a mutex-guarded ring of the most recent
//! [`TRACE_CAPACITY`] records, oldest overwritten first. Spans are scoped
//! guards: enter on construction, exit (with duration) on drop.

#[cfg(feature = "enabled")]
use std::collections::VecDeque;
#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Maximum trace records retained (oldest evicted beyond this).
pub const TRACE_CAPACITY: usize = 4096;

/// What a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// A span opened.
    SpanEnter,
    /// A span closed; duration in nanoseconds.
    SpanExit {
        /// Time between enter and exit.
        dur_ns: u64,
    },
    /// An instantaneous event, optionally carrying a value.
    Instant {
        /// Attached numeric payload, if any.
        value: Option<f64>,
    },
}

/// One record in the trace ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the first telemetry record of the process.
    pub ts_ns: u64,
    /// The span/event name.
    pub name: &'static str,
    /// Record kind.
    pub kind: TraceKind,
}

#[cfg(feature = "enabled")]
struct Ring {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

#[cfg(feature = "enabled")]
fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            buf: VecDeque::with_capacity(TRACE_CAPACITY),
            dropped: 0,
        })
    })
}

#[cfg(feature = "enabled")]
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[cfg(feature = "enabled")]
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

#[cfg(feature = "enabled")]
fn push(ev: TraceEvent) {
    let mut ring = ring().lock().unwrap();
    if ring.buf.len() == TRACE_CAPACITY {
        ring.buf.pop_front();
        ring.dropped += 1;
    }
    ring.buf.push_back(ev);
}

/// Records an instantaneous event (see also the [`crate::event!`] macro).
#[inline]
pub fn event(name: &'static str, value: Option<f64>) {
    #[cfg(feature = "enabled")]
    push(TraceEvent {
        ts_ns: now_ns(),
        name,
        kind: TraceKind::Instant { value },
    });
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value);
}

/// Takes every buffered trace record (and the evicted-record count),
/// emptying the ring.
pub fn drain_trace() -> (Vec<TraceEvent>, u64) {
    #[cfg(feature = "enabled")]
    {
        let mut ring = ring().lock().unwrap();
        let events = ring.buf.drain(..).collect();
        let dropped = ring.dropped;
        ring.dropped = 0;
        (events, dropped)
    }
    #[cfg(not(feature = "enabled"))]
    (Vec::new(), 0)
}

/// Empties the ring without returning anything.
pub(crate) fn clear() {
    #[cfg(feature = "enabled")]
    {
        let mut ring = ring().lock().unwrap();
        ring.buf.clear();
        ring.dropped = 0;
    }
}

/// Peeks at the buffered records without draining.
#[must_use]
pub(crate) fn snapshot_trace() -> Vec<TraceEvent> {
    #[cfg(feature = "enabled")]
    {
        ring().lock().unwrap().buf.iter().copied().collect()
    }
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// RAII span guard (see the [`crate::span!`] macro).
#[must_use = "the span closes when the guard drops; binding it to _ drops immediately"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    entered: Instant,
}

impl SpanGuard {
    /// Opens a span, recording the enter event.
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        #[cfg(feature = "enabled")]
        {
            push(TraceEvent {
                ts_ns: now_ns(),
                name,
                kind: TraceKind::SpanEnter,
            });
            SpanGuard {
                name,
                entered: Instant::now(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            SpanGuard {}
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        {
            let dur = self.entered.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            push(TraceEvent {
                ts_ns: now_ns(),
                name: self.name,
                kind: TraceKind::SpanExit { dur_ns: dur },
            });
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_drain() {
        let _lock = crate::test_lock();
        clear();
        {
            let _outer = SpanGuard::enter("span.test.outer");
            {
                let _inner = SpanGuard::enter("span.test.inner");
                event("span.test.mark", Some(1.5));
            }
        }
        let (events, dropped) = drain_trace();
        assert_eq!(dropped, 0);
        let names: Vec<_> = events.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            [
                "span.test.outer",
                "span.test.inner",
                "span.test.mark",
                "span.test.inner",
                "span.test.outer",
            ]
        );
        assert!(matches!(events[0].kind, TraceKind::SpanEnter));
        assert!(matches!(events[3].kind, TraceKind::SpanExit { .. }));
        assert!(matches!(
            events[2].kind,
            TraceKind::Instant { value: Some(v) } if (v - 1.5).abs() < 1e-12
        ));
        // Timestamps are monotone.
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let _lock = crate::test_lock();
        clear();
        for _ in 0..TRACE_CAPACITY + 10 {
            event("span.test.flood", None);
        }
        let (events, dropped) = drain_trace();
        assert_eq!(events.len(), TRACE_CAPACITY);
        assert_eq!(dropped, 10);
    }
}
