//! Causal span/event tracing over a bounded ring buffer.
//!
//! Tracing is coarser than counters — a mutex-guarded ring of the most recent
//! [`TRACE_CAPACITY`] records, oldest overwritten first — but unlike counters
//! every record is *causally linked*: spans carry a process-unique `span_id`,
//! the `parent_id` of the span that was open on the same thread when they
//! started, the recording thread's id, and up to [`MAX_SPAN_ARGS`] static
//! key/value arguments (`span!("rx.decode", frame = seq, chan = ch)`). That
//! is enough structure for [`crate::trace_chrome_json`] to rebuild a browsable
//! per-frame timeline, and for the flight recorder to point a captured PCAP
//! frame at the exact trace slice that decoded it.
//!
//! Spans are scoped guards: enter on construction, exit (with duration) on
//! drop. Each thread keeps its own current-span cell, so nesting is tracked
//! per thread without any cross-thread locking beyond the ring push.

#[cfg(feature = "enabled")]
use std::cell::Cell;
#[cfg(feature = "enabled")]
use std::collections::VecDeque;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Maximum trace records retained (oldest evicted beyond this).
pub const TRACE_CAPACITY: usize = 4096;

/// Maximum key/value arguments one span or event can carry.
pub const MAX_SPAN_ARGS: usize = 4;

/// One span/event argument value. Keys are `&'static str`; values are the
/// small copyable scalars the decode path already has at hand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (frame sequence numbers, channels, bit offsets…).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (CFO estimates, distances…).
    F64(f64),
    /// Static string (failure reasons, node kinds…).
    Str(&'static str),
    /// Boolean flag.
    Bool(bool),
}

macro_rules! arg_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for ArgValue {
            #[inline]
            fn from(v: $t) -> Self {
                ArgValue::U64(v as u64)
            }
        }
    )*};
}
arg_from_uint!(u8, u16, u32, u64, usize);

macro_rules! arg_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for ArgValue {
            #[inline]
            fn from(v: $t) -> Self {
                ArgValue::I64(v as i64)
            }
        }
    )*};
}
arg_from_int!(i8, i16, i32, i64, isize);

impl From<f32> for ArgValue {
    #[inline]
    fn from(v: f32) -> Self {
        ArgValue::F64(f64::from(v))
    }
}

impl From<f64> for ArgValue {
    #[inline]
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&'static str> for ArgValue {
    #[inline]
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}

impl From<bool> for ArgValue {
    #[inline]
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl std::fmt::Display for ArgValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::I64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v}"),
            ArgValue::Str(v) => write!(f, "{v}"),
            ArgValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A bounded, copyable set of span/event arguments (at most
/// [`MAX_SPAN_ARGS`]; extras are silently dropped). Built by the [`crate::span!`]
/// and [`crate::event!`] macros via [`SpanArgs::with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanArgs {
    pairs: [(&'static str, ArgValue); MAX_SPAN_ARGS],
    len: u8,
}

impl SpanArgs {
    /// An empty argument set.
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        SpanArgs {
            pairs: [("", ArgValue::U64(0)); MAX_SPAN_ARGS],
            len: 0,
        }
    }

    /// Appends one key/value pair (dropped once [`MAX_SPAN_ARGS`] is reached).
    #[inline]
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        if (self.len as usize) < MAX_SPAN_ARGS {
            self.pairs[self.len as usize] = (key, value.into());
            self.len += 1;
        }
        self
    }

    /// The recorded pairs, in insertion order.
    #[inline]
    #[must_use]
    pub fn pairs(&self) -> &[(&'static str, ArgValue)] {
        &self.pairs[..self.len as usize]
    }

    /// True when no argument was recorded.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for SpanArgs {
    #[inline]
    fn default() -> Self {
        SpanArgs::new()
    }
}

/// What a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// A span opened.
    SpanEnter,
    /// A span closed; duration in nanoseconds.
    SpanExit {
        /// Time between enter and exit.
        dur_ns: u64,
    },
    /// An instantaneous event, optionally carrying a value.
    Instant {
        /// Attached numeric payload, if any.
        value: Option<f64>,
    },
}

/// One record in the trace ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the first telemetry record of the process.
    pub ts_ns: u64,
    /// The span/event name.
    pub name: &'static str,
    /// Record kind.
    pub kind: TraceKind,
    /// Process-unique id of this span (0 for instant events).
    pub span_id: u64,
    /// Id of the span open on this thread when the record was made
    /// (0 = no enclosing span).
    pub parent_id: u64,
    /// Small dense id of the recording thread (1-based).
    pub thread_id: u64,
    /// Static key/value arguments attached at the call site.
    pub args: SpanArgs,
}

#[cfg(feature = "enabled")]
struct Ring {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

#[cfg(feature = "enabled")]
fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            buf: VecDeque::with_capacity(TRACE_CAPACITY),
            dropped: 0,
        })
    })
}

#[cfg(feature = "enabled")]
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[cfg(feature = "enabled")]
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Next span id to hand out; 0 is reserved for "no span".
#[cfg(feature = "enabled")]
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Next thread id to hand out (thread ids are dense and 1-based; they are
/// *not* reset by [`crate::reset`] — a thread keeps its id for its lifetime).
#[cfg(feature = "enabled")]
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

#[cfg(feature = "enabled")]
thread_local! {
    /// Id of the innermost span currently open on this thread (0 = none).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    /// This thread's dense trace id, assigned on first use.
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// This thread's dense trace id (assigned on first call, 1-based).
#[cfg(feature = "enabled")]
pub(crate) fn thread_trace_id() -> u64 {
    THREAD_ID.with(|c| {
        let mut id = c.get();
        if id == 0 {
            id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            c.set(id);
        }
        id
    })
}

/// Id of the innermost trace span currently open on the calling thread, or 0
/// when none (or when telemetry is compiled out). The streaming receiver
/// hands this to the flight recorder so a captured frame can name the trace
/// slice that decoded it.
#[inline]
#[must_use]
pub fn current_span_id() -> u64 {
    #[cfg(feature = "enabled")]
    {
        CURRENT_SPAN.with(Cell::get)
    }
    #[cfg(not(feature = "enabled"))]
    0
}

/// Restarts the span-id sequence at 1. Called by [`crate::reset`] so sweep
/// cells and tests see deterministic ids; live guards keep the ids they
/// already captured.
pub(crate) fn reset_ids() {
    #[cfg(feature = "enabled")]
    NEXT_SPAN_ID.store(1, Ordering::Relaxed);
}

#[cfg(feature = "enabled")]
fn push(ev: TraceEvent) {
    let mut ring = ring().lock().unwrap();
    if ring.buf.len() == TRACE_CAPACITY {
        ring.buf.pop_front();
        ring.dropped += 1;
    }
    ring.buf.push_back(ev);
}

/// Records an instantaneous event (see also the [`crate::event!`] macro).
///
/// The event is parented to the span currently open on this thread.
#[inline]
pub fn event(name: &'static str, value: Option<f64>) {
    event_with(name, value, SpanArgs::new());
}

/// Records an instantaneous event carrying key/value arguments.
#[inline]
pub fn event_with(name: &'static str, value: Option<f64>, args: SpanArgs) {
    #[cfg(feature = "enabled")]
    push(TraceEvent {
        ts_ns: now_ns(),
        name,
        kind: TraceKind::Instant { value },
        span_id: 0,
        parent_id: current_span_id(),
        thread_id: thread_trace_id(),
        args,
    });
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value, args);
}

/// Takes every buffered trace record (and the evicted-record count),
/// emptying the ring.
pub fn drain_trace() -> (Vec<TraceEvent>, u64) {
    #[cfg(feature = "enabled")]
    {
        let mut ring = ring().lock().unwrap();
        let events = ring.buf.drain(..).collect();
        let dropped = ring.dropped;
        ring.dropped = 0;
        (events, dropped)
    }
    #[cfg(not(feature = "enabled"))]
    (Vec::new(), 0)
}

/// Empties the ring without returning anything.
pub(crate) fn clear() {
    #[cfg(feature = "enabled")]
    {
        let mut ring = ring().lock().unwrap();
        ring.buf.clear();
        ring.dropped = 0;
    }
}

/// Peeks at the buffered records without draining.
#[must_use]
pub(crate) fn snapshot_trace() -> Vec<TraceEvent> {
    #[cfg(feature = "enabled")]
    {
        ring().lock().unwrap().buf.iter().copied().collect()
    }
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// Evicted-record count since the last drain/clear.
#[cfg(feature = "enabled")]
pub(crate) fn dropped_count() -> u64 {
    ring().lock().unwrap().dropped
}

/// RAII span guard (see the [`crate::span!`] macro).
#[must_use = "the span closes when the guard drops; binding it to _ drops immediately"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    entered: Instant,
    #[cfg(feature = "enabled")]
    span_id: u64,
    #[cfg(feature = "enabled")]
    parent_id: u64,
    #[cfg(feature = "enabled")]
    args: SpanArgs,
}

impl SpanGuard {
    /// Opens a span, recording the enter event.
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        Self::enter_with(name, SpanArgs::new())
    }

    /// Opens a span carrying key/value arguments.
    #[inline]
    pub fn enter_with(name: &'static str, args: SpanArgs) -> Self {
        #[cfg(feature = "enabled")]
        {
            let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
            let parent_id = CURRENT_SPAN.with(|c| c.replace(span_id));
            push(TraceEvent {
                ts_ns: now_ns(),
                name,
                kind: TraceKind::SpanEnter,
                span_id,
                parent_id,
                thread_id: thread_trace_id(),
                args,
            });
            SpanGuard {
                name,
                entered: Instant::now(),
                span_id,
                parent_id,
                args,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, args);
            SpanGuard {}
        }
    }

    /// This span's process-unique id (0 when telemetry is compiled out).
    #[inline]
    #[must_use]
    pub fn id(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.span_id
        }
        #[cfg(not(feature = "enabled"))]
        0
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        {
            let dur = self.entered.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            CURRENT_SPAN.with(|c| c.set(self.parent_id));
            push(TraceEvent {
                ts_ns: now_ns(),
                name: self.name,
                kind: TraceKind::SpanExit { dur_ns: dur },
                span_id: self.span_id,
                parent_id: self.parent_id,
                thread_id: thread_trace_id(),
                args: self.args,
            });
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_drain() {
        let _lock = crate::test_lock();
        clear();
        {
            let _outer = SpanGuard::enter("span.test.outer");
            {
                let _inner = SpanGuard::enter("span.test.inner");
                event("span.test.mark", Some(1.5));
            }
        }
        let (events, dropped) = drain_trace();
        assert_eq!(dropped, 0);
        let names: Vec<_> = events.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            [
                "span.test.outer",
                "span.test.inner",
                "span.test.mark",
                "span.test.inner",
                "span.test.outer",
            ]
        );
        assert!(matches!(events[0].kind, TraceKind::SpanEnter));
        assert!(matches!(events[3].kind, TraceKind::SpanExit { .. }));
        assert!(matches!(
            events[2].kind,
            TraceKind::Instant { value: Some(v) } if (v - 1.5).abs() < 1e-12
        ));
        // Timestamps are monotone.
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn causal_links_connect_parent_child_and_events() {
        let _lock = crate::test_lock();
        clear();
        {
            let outer = SpanGuard::enter("span.test.causal.outer");
            let outer_id = outer.id();
            assert_ne!(outer_id, 0);
            assert_eq!(current_span_id(), outer_id);
            {
                let inner = SpanGuard::enter("span.test.causal.inner");
                assert_eq!(current_span_id(), inner.id());
                event("span.test.causal.mark", None);
            }
            // Inner closed: the outer span is current again.
            assert_eq!(current_span_id(), outer_id);
        }
        assert_eq!(current_span_id(), 0);
        let (events, _) = drain_trace();
        let outer_enter = events
            .iter()
            .find(|e| e.name == "span.test.causal.outer" && e.kind == TraceKind::SpanEnter)
            .unwrap();
        let inner_enter = events
            .iter()
            .find(|e| e.name == "span.test.causal.inner" && e.kind == TraceKind::SpanEnter)
            .unwrap();
        let mark = events
            .iter()
            .find(|e| e.name == "span.test.causal.mark")
            .unwrap();
        assert_eq!(outer_enter.parent_id, 0);
        assert_eq!(inner_enter.parent_id, outer_enter.span_id);
        assert_eq!(mark.parent_id, inner_enter.span_id);
        assert_eq!(mark.span_id, 0);
        // Enter and exit of the same span share one id.
        let inner_exit = events
            .iter()
            .find(|e| {
                e.name == "span.test.causal.inner" && matches!(e.kind, TraceKind::SpanExit { .. })
            })
            .unwrap();
        assert_eq!(inner_exit.span_id, inner_enter.span_id);
        // All on the same thread here.
        assert_eq!(outer_enter.thread_id, inner_enter.thread_id);
        assert_ne!(outer_enter.thread_id, 0);
    }

    #[test]
    fn args_are_recorded_and_capped() {
        let _lock = crate::test_lock();
        clear();
        {
            let _s = SpanGuard::enter_with(
                "span.test.args",
                SpanArgs::new()
                    .with("frame", 7u32)
                    .with("chan", 15u8)
                    .with("cfo", -1250.5f64)
                    .with("kind", "zigbee")
                    .with("dropped", 99u64), // fifth arg is dropped
            );
        }
        let (events, _) = drain_trace();
        let enter = events
            .iter()
            .find(|e| e.kind == TraceKind::SpanEnter)
            .unwrap();
        let pairs = enter.args.pairs();
        assert_eq!(pairs.len(), MAX_SPAN_ARGS);
        assert_eq!(pairs[0], ("frame", ArgValue::U64(7)));
        assert_eq!(pairs[1], ("chan", ArgValue::U64(15)));
        assert_eq!(pairs[2], ("cfo", ArgValue::F64(-1250.5)));
        assert_eq!(pairs[3], ("kind", ArgValue::Str("zigbee")));
        // Exit carries the same args.
        let exit = events
            .iter()
            .find(|e| matches!(e.kind, TraceKind::SpanExit { .. }))
            .unwrap();
        assert_eq!(exit.args.pairs(), pairs);
    }

    #[test]
    fn threads_get_distinct_ids_and_independent_stacks() {
        let _lock = crate::test_lock();
        clear();
        let here = thread_trace_id();
        let (there, there_parent) = std::thread::spawn(|| {
            let _s = SpanGuard::enter("span.test.thread");
            (thread_trace_id(), current_span_id())
        })
        .join()
        .unwrap();
        assert_ne!(here, there);
        assert_ne!(there_parent, 0);
        // The spawning thread's stack is untouched by the other thread.
        assert_eq!(current_span_id(), 0);
    }

    #[test]
    fn reset_ids_restarts_span_sequence() {
        let _lock = crate::test_lock();
        clear();
        let before = SpanGuard::enter("span.test.seq").id();
        assert_ne!(before, 0);
        reset_ids();
        let after = SpanGuard::enter("span.test.seq").id();
        assert_eq!(after, 1);
        clear();
    }

    #[test]
    fn ring_evicts_oldest() {
        let _lock = crate::test_lock();
        clear();
        for _ in 0..TRACE_CAPACITY + 10 {
            event("span.test.flood", None);
        }
        let (events, dropped) = drain_trace();
        assert_eq!(events.len(), TRACE_CAPACITY);
        assert_eq!(dropped, 10);
    }
}
