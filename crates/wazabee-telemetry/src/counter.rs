//! Lock-free atomic event counters.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// `const`-constructible so each [`crate::counter!`] call site owns a static
/// instance; the first increment registers it with the global registry.
/// Increments are a single relaxed `fetch_add` — safe and scalable across
/// threads.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    #[cfg(feature = "enabled")]
    value: AtomicU64,
    #[cfg(feature = "enabled")]
    registered: AtomicBool,
}

impl Counter {
    /// Creates an unregistered counter (use via [`crate::counter!`]).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            #[cfg(feature = "enabled")]
            value: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            registered: AtomicBool::new(false),
        }
    }

    /// The metric name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds one.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&'static self, n: u64) {
        #[cfg(feature = "enabled")]
        {
            if !self.registered.load(Ordering::Relaxed) {
                self.register_slow();
            }
            self.value.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current value (0 when the `enabled` feature is off).
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    #[cfg(feature = "enabled")]
    #[cold]
    fn register_slow(&'static self) {
        if !self.registered.swap(true, Ordering::AcqRel) {
            crate::registry::register_counter(self);
        }
    }

    #[cfg(feature = "enabled")]
    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn counts_and_merges_by_callsite() {
        let _lock = crate::test_lock();
        let c = crate::counter!("counter.test.basic");
        let before = c.get();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), before + 10);
    }

    #[test]
    fn atomic_under_contention() {
        let _lock = crate::test_lock();
        // 8 threads × 10_000 increments must never lose an update.
        static C: Counter = Counter::new("counter.test.contended");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..10_000 {
                        C.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(C.get(), 80_000);
    }
}
