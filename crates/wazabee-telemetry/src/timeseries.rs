//! Bounded time-series recording: plottable `(t, value)` rings.
//!
//! Two flavours share one point format:
//!
//! * **Instance-owned** — [`SeriesSet`] is a plain data structure (no
//!   statics, no feature gate) that a simulation or session owns outright.
//!   `wazabee-sim` drives one with *sim-time* timestamps, which keeps the
//!   exported `timeseries.jsonl` deterministic across thread counts and IQ
//!   chunk sizes: the recording is part of the simulation state, not a
//!   global side channel that parallel sweep cells would scribble over.
//! * **Global wall-clock** — [`WallSeries`] statics declared with
//!   [`crate::timeseries!`] sample live values in the streaming and bench
//!   paths, stamped in nanoseconds since the process's telemetry epoch.
//!   These appear in the snapshot server output and the JSONL dump, and
//!   compile to no-ops with the `enabled` feature off.
//!
//! Every series is bounded: past `capacity` points the oldest are evicted
//! and counted, so a long-running process can record forever.

use std::collections::VecDeque;
use std::fmt::Write as _;

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "enabled")]
use std::sync::Mutex;

/// Default point capacity for series that do not pick their own.
pub const SERIES_CAPACITY: usize = 1024;

/// One recorded point: a timestamp (unit chosen by the producer — sim µs or
/// wall ns) and a value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Timestamp in the producer's unit.
    pub t: u64,
    /// Sampled value.
    pub value: f64,
}

/// One named, labeled, bounded series of points.
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    labels: Vec<(String, String)>,
    capacity: usize,
    points: VecDeque<Point>,
    evicted: u64,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)], capacity: usize) -> Self {
        Series {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            capacity: capacity.max(1),
            points: VecDeque::new(),
            evicted: 0,
        }
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `(key, value)` labels, in declaration order.
    #[must_use]
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// Appends a point, evicting the oldest past capacity.
    pub fn push(&mut self, t: u64, value: f64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.evicted += 1;
        }
        self.points.push_back(Point { t, value });
    }

    /// The retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.points.iter().copied()
    }

    /// Retained point count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points evicted so far.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    fn labels_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":\"{}\"",
                crate::sink::json_escape(k),
                crate::sink::json_escape(v)
            );
        }
        out.push('}');
        out
    }

    /// One JSONL record per point:
    /// `{"type":"timeseries","series":…,"labels":{…},"t":…,"value":…}`.
    ///
    /// Values are rendered with six fractional digits, so equal recordings
    /// serialize byte-identically — the determinism contract of the sim's
    /// `timeseries.jsonl` artifact.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let labels = self.labels_json();
        let mut out = String::new();
        for p in &self.points {
            let _ = writeln!(
                out,
                "{{\"type\":\"timeseries\",\"series\":\"{}\",\"labels\":{labels},\"t\":{},\"value\":{:.6}}}",
                crate::sink::json_escape(&self.name),
                p.t,
                p.value
            );
        }
        out
    }
}

/// An ordered collection of [`Series`], found (or created) by
/// `(name, labels)` on record.
///
/// Deliberately *not* tied to the global registry: each owner (one
/// simulation, one session) holds its own set, so parallel sweep cells can
/// never leak samples into each other.
#[derive(Debug, Clone, Default)]
pub struct SeriesSet {
    series: Vec<Series>,
    capacity: usize,
}

impl SeriesSet {
    /// Creates an empty set whose series hold up to `capacity` points each.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SeriesSet {
            series: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Records a point into the series for `(name, labels)`, creating it on
    /// first use. Series keep their creation order, which makes the JSONL
    /// export deterministic for a deterministic producer.
    pub fn record(&mut self, name: &str, labels: &[(&str, &str)], t: u64, value: f64) {
        let found = self
            .series
            .iter_mut()
            .find(|s| s.name == name && labels_eq(&s.labels, labels));
        match found {
            Some(s) => s.push(t, value),
            None => {
                let mut s = Series::new(name, labels, self.capacity);
                s.push(t, value);
                self.series.push(s);
            }
        }
    }

    /// The recorded series, in creation order.
    #[must_use]
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Looks up one series by name and labels.
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Series> {
        self.series
            .iter()
            .find(|s| s.name == name && labels_eq(&s.labels, labels))
    }

    /// Drops every series.
    pub fn clear(&mut self) {
        self.series.clear();
    }

    /// Renders every series as JSON Lines (see [`Series::to_jsonl`]).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            out.push_str(&s.to_jsonl());
        }
        out
    }

    /// Writes the JSONL rendering to `path`, truncating it.
    pub fn write_jsonl_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

fn labels_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want.iter())
            .all(|((hk, hv), &(wk, wv))| hk == wk && hv == wv)
}

// ---------------------------------------------------------------------------
// Global wall-clock series
// ---------------------------------------------------------------------------

/// A global, registered, wall-clock-stamped series (declare with
/// [`crate::timeseries!`]).
///
/// `record` stamps each value with nanoseconds since the process's telemetry
/// epoch (shared with the trace ring, so series points and span events line
/// up on one time axis).
#[derive(Debug)]
pub struct WallSeries {
    name: &'static str,
    capacity: usize,
    #[cfg(feature = "enabled")]
    points: Mutex<VecDeque<Point>>,
    #[cfg(feature = "enabled")]
    registered: AtomicBool,
}

impl WallSeries {
    /// Creates an unregistered series (use via [`crate::timeseries!`]).
    #[must_use]
    pub const fn new(name: &'static str, capacity: usize) -> Self {
        WallSeries {
            name,
            capacity,
            #[cfg(feature = "enabled")]
            points: Mutex::new(VecDeque::new()),
            #[cfg(feature = "enabled")]
            registered: AtomicBool::new(false),
        }
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records `value` at the current wall offset.
    #[inline]
    pub fn record(&'static self, value: f64) {
        #[cfg(feature = "enabled")]
        {
            if !self.registered.load(Ordering::Relaxed)
                && !self.registered.swap(true, Ordering::AcqRel)
            {
                crate::registry::register_wall_series(self);
            }
            let t = crate::span::now_ns();
            let mut points = self.points.lock().unwrap();
            if points.len() >= self.capacity.max(1) {
                points.pop_front();
            }
            points.push_back(Point { t, value });
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (value, self.capacity);
    }

    /// Snapshot of the retained points, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Point> {
        #[cfg(feature = "enabled")]
        {
            self.points.lock().unwrap().iter().copied().collect()
        }
        #[cfg(not(feature = "enabled"))]
        Vec::new()
    }

    #[cfg(feature = "enabled")]
    pub(crate) fn reset(&self) {
        self.points.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_evicts_oldest_past_capacity() {
        let mut s = Series::new("test.ring", &[], 3);
        for k in 0..5u64 {
            s.push(k, k as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        let ts: Vec<u64> = s.points().map(|p| p.t).collect();
        assert_eq!(ts, [2, 3, 4]);
    }

    #[test]
    fn set_routes_by_name_and_labels() {
        let mut set = SeriesSet::new(16);
        set.record("delivery", &[("node", "1")], 10, 0.5);
        set.record("delivery", &[("node", "2")], 10, 1.0);
        set.record("delivery", &[("node", "1")], 20, 0.75);
        assert_eq!(set.series().len(), 2);
        assert_eq!(set.get("delivery", &[("node", "1")]).unwrap().len(), 2);
        assert_eq!(set.get("delivery", &[("node", "2")]).unwrap().len(), 1);
        assert!(set.get("delivery", &[("node", "3")]).is_none());
    }

    #[test]
    fn jsonl_is_deterministic_and_line_shaped() {
        let mut set = SeriesSet::new(16);
        set.record("sim.delivery_ratio", &[], 50_000, 1.0);
        set.record("node.airtime_us", &[("node", "0")], 50_000, 432.0);
        let a = set.to_jsonl();
        let b = set.clone().to_jsonl();
        assert_eq!(a, b);
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":\"timeseries\""), "{line}");
        }
        assert!(a.contains("\"t\":50000"), "{a}");
        assert!(a.contains("\"value\":432.000000"), "{a}");
        assert!(a.contains("\"labels\":{\"node\":\"0\"}"), "{a}");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn wall_series_records_and_bounds() {
        let _lock = crate::test_lock();
        static S: WallSeries = WallSeries::new("timeseries.test.wall", 4);
        for k in 0..6 {
            S.record(f64::from(k));
        }
        let points = S.snapshot();
        assert_eq!(points.len(), 4);
        assert!((points[0].value - 2.0).abs() < 1e-12);
        // Timestamps are monotone non-decreasing.
        for w in points.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
    }
}
