#![warn(missing_docs)]

//! # wazabee-esb
//!
//! Enhanced ShockBurst (nRF24-style) PHY substrate for the WazaBee
//! reproduction (Cayre et al., DSN 2021).
//!
//! The paper's Scenario B runs WazaBee from a BLE tracker built on an
//! nRF51822, a chip *without* the LE 2M PHY the attack needs. Its escape
//! hatch is ESB at 2 Mbit/s — the same GFSK waveform with different framing —
//! which this crate models: packet format ([`packet`]) and modem ([`modem`]).
//!
//! ## Example
//!
//! ```
//! use wazabee_esb::{EsbModem, EsbPacket};
//! let modem = EsbModem::new(8);
//! let pkt = EsbPacket::new([0xE7; 5], vec![0xDE, 0xAD]).unwrap();
//! let rx = modem.receive(&modem.transmit(&pkt), pkt.address()).unwrap();
//! assert_eq!(rx.payload(), pkt.payload());
//! ```

pub mod modem;
pub mod packet;

pub use modem::EsbModem;
pub use packet::{EsbPacket, MAX_PAYLOAD};
