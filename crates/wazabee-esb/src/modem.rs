//! The ESB radio: 2 Mbit/s GFSK, no whitening, MSB-first bits.
//!
//! The nRF51822's ESB mode shares its GFSK waveform parameters with BLE's
//! LE 2M PHY (2 Mbit/s, h ≈ 0.5), which is exactly why the paper's Scenario B
//! can substitute it when LE 2M is unavailable — at some cost in receive
//! quality, which this model reproduces through a shorter sync correlator.

use wazabee_ble::channel::BlePhy;
use wazabee_ble::gfsk::{modulate, GfskParams, GfskReceiver, RawCapture};
use wazabee_dsp::iq::Iq;

use crate::packet::EsbPacket;

/// An Enhanced ShockBurst modem at 2 Mbit/s.
///
/// # Examples
///
/// ```
/// use wazabee_esb::{EsbModem, EsbPacket};
/// let modem = EsbModem::new(8);
/// let pkt = EsbPacket::new([0xC2, 0xC2, 0xC2, 0xC2, 0xC2], vec![7, 7]).unwrap();
/// let air = modem.transmit(&pkt);
/// let rx = modem.receive(&air, pkt.address()).unwrap();
/// assert_eq!(rx.payload(), pkt.payload());
/// ```
#[derive(Debug, Clone)]
pub struct EsbModem {
    params: GfskParams,
}

/// Longest capture after the address: PCF + max payload + CRC.
const MAX_TAIL_BITS: usize = 9 + 32 * 8 + 16;

impl EsbModem {
    /// Creates a 2 Mbit/s ESB modem at the given oversampling factor.
    pub fn new(samples_per_symbol: usize) -> Self {
        EsbModem {
            params: GfskParams::ble(BlePhy::Le2M, samples_per_symbol),
        }
    }

    /// The underlying GFSK parameters.
    pub fn params(&self) -> &GfskParams {
        &self.params
    }

    /// Simulation sample rate.
    pub fn sample_rate(&self) -> f64 {
        self.params.sample_rate()
    }

    /// Modulates a packet to IQ.
    pub fn transmit(&self, packet: &EsbPacket) -> Vec<Iq> {
        modulate(&self.params, &packet.to_air_bits())
    }

    /// Modulates raw bits — the diverted path WazaBee uses on the nRF51822.
    pub fn transmit_raw(&self, bits: &[u8]) -> Vec<Iq> {
        modulate(&self.params, bits)
    }

    /// Receives a packet addressed to `address` (5-byte address correlator,
    /// 1 bit of tolerance, CRC enforced — legitimate ESB behaviour).
    pub fn receive(&self, samples: &[Iq], address: [u8; 5]) -> Option<EsbPacket> {
        let sync = EsbPacket::address_bits(&address);
        let rx = GfskReceiver::new(self.params);
        let capture = rx.capture(samples, &sync, 1, MAX_TAIL_BITS)?;
        // Rebuild the full on-air stream the parser expects: preamble bits
        // are irrelevant to parsing, so substitute the nominal ones.
        let mut bits = wazabee_dsp::bits::bytes_to_bits_msb(&[if address[0] & 0x80 != 0 {
            0xAA
        } else {
            0x55
        }]);
        bits.extend_from_slice(&sync);
        bits.extend_from_slice(&capture.bits);
        EsbPacket::from_air_bits(&bits, 5)
    }

    /// Captures raw bits after an arbitrary sync pattern — the diverted
    /// receive path (address register reprogrammed, CRC off).
    ///
    /// Single-shot shim over [`EsbModem::receive_raw_from`] starting at bit 0.
    pub fn receive_raw(
        &self,
        samples: &[Iq],
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        self.receive_raw_from(samples, 0, sync, max_sync_errors, capture_bits)
    }

    /// Like [`EsbModem::receive_raw`], but resumes the sync search at bit
    /// `start_bit` of the demodulated stream, so scanning can continue past
    /// a previously consumed sync index.
    pub fn receive_raw_from(
        &self,
        samples: &[Iq],
        start_bit: usize,
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        GfskReceiver::new(self.params).capture_from(
            samples,
            start_bit,
            sync,
            max_sync_errors,
            capture_bits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_dsp::AwgnSource;

    const ADDR: [u8; 5] = [0xD3, 0x91, 0x55, 0xAA, 0x0F];

    #[test]
    fn loopback_clean() {
        let m = EsbModem::new(8);
        for len in [0usize, 1, 16, 32] {
            let pkt = EsbPacket::new(ADDR, (0..len as u8).collect()).unwrap();
            let rx = m.receive(&m.transmit(&pkt), ADDR).unwrap();
            assert_eq!(rx, pkt, "payload {len}");
        }
    }

    #[test]
    fn loopback_under_noise() {
        let m = EsbModem::new(8);
        let pkt = EsbPacket::new(ADDR, vec![0x5A; 20]).unwrap();
        let mut air = m.transmit(&pkt);
        AwgnSource::from_snr_db(1, 18.0, 1.0).add_to(&mut air);
        let rx = m.receive(&air, ADDR).unwrap();
        assert_eq!(rx, pkt);
    }

    #[test]
    fn wrong_address_not_received() {
        let m = EsbModem::new(8);
        let pkt = EsbPacket::new(ADDR, vec![1, 2, 3]).unwrap();
        let air = m.transmit(&pkt);
        let other = [0x11, 0x22, 0x33, 0x44, 0x55];
        assert!(m.receive(&air, other).is_none());
    }

    #[test]
    fn raw_paths_compose() {
        let m = EsbModem::new(8);
        let sync = vec![1, 1, 1, 0, 0, 1, 0, 1, 1, 0, 0, 0, 1, 1, 0, 1];
        let payload: Vec<u8> = (0..64).map(|k| (k % 3 == 0) as u8).collect();
        let mut bits = vec![0, 1, 0, 1];
        bits.extend_from_slice(&sync);
        bits.extend_from_slice(&payload);
        bits.push(0);
        let cap = m
            .receive_raw(&m.transmit_raw(&bits), &sync, 0, payload.len())
            .unwrap();
        assert_eq!(cap.bits, payload);
    }

    #[test]
    fn planar_demod_recovers_esb_air_bits() {
        // The planar SIMD demodulator must slice an ESB waveform exactly as
        // the f64 path does — this is the contract that lets the streaming
        // engine's shared-diff lanes serve the ESB radio too.
        let m = EsbModem::new(8);
        let pkt = EsbPacket::new(ADDR, vec![0xC3; 12]).unwrap();
        let mut air = m.transmit(&pkt);
        AwgnSource::from_snr_db(2, 20.0, 1.0).add_to(&mut air);
        let planar = wazabee_dsp::IqBuf::from_interleaved(&air);
        for offset in 0..m.params().samples_per_symbol {
            let f64_bits = wazabee_ble::gfsk::demodulate_aligned(m.params(), &air, offset);
            let f32_bits =
                wazabee_ble::demodulate_aligned_planar(m.params(), planar.as_slice(), offset);
            assert_eq!(f32_bits, f64_bits, "offset {offset}");
        }
    }

    #[test]
    fn shares_le2m_waveform_parameters() {
        // The premise of Scenario B: ESB 2M and LE 2M are the same waveform.
        let esb = EsbModem::new(8);
        let ble = GfskParams::ble(BlePhy::Le2M, 8);
        assert_eq!(esb.params(), &ble);
        assert_eq!(esb.sample_rate(), 16.0e6);
    }
}
