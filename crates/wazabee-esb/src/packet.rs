//! Enhanced ShockBurst (nRF24-style) packet format.
//!
//! Unlike BLE, ESB transmits most-significant bit first, applies no
//! whitening, and uses a 9-bit packet-control field that leaves the payload
//! non-byte-aligned on air. The nRF51822 of the paper's Scenario B supports
//! ESB at 2 Mbit/s, which WazaBee substitutes for the missing LE 2M PHY.

/// Packs bits into bytes, most-significant bit first (ESB's on-air order).
fn pack_msb(bits: &[u8]) -> Vec<u8> {
    bits.chunks(8)
        .map(|chunk| chunk.iter().fold(0u8, |b, &bit| (b << 1) | (bit & 1)))
        .collect()
}

/// CRC-16/CCITT-FALSE over a bit stream (MSB-first semantics), as ESB
/// computes it over address + PCF + payload.
pub fn esb_crc16(bits: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &bit in bits {
        let top = ((crc >> 15) & 1) as u8;
        crc <<= 1;
        if top ^ (bit & 1) == 1 {
            crc ^= 0x1021;
        }
    }
    crc
}

/// An Enhanced ShockBurst packet.
///
/// # Examples
///
/// ```
/// use wazabee_esb::EsbPacket;
/// let pkt = EsbPacket::new([0xE7, 0xE7, 0xE7, 0xE7, 0xE7], vec![1, 2, 3]).unwrap();
/// let bits = pkt.to_air_bits();
/// let back = EsbPacket::from_air_bits(&bits, 5).unwrap();
/// assert_eq!(back.payload(), pkt.payload());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EsbPacket {
    address: [u8; 5],
    payload: Vec<u8>,
    pid: u8,
    no_ack: bool,
}

/// Maximum ESB payload length.
pub const MAX_PAYLOAD: usize = 32;

impl EsbPacket {
    /// Creates a packet with packet id 0 and acknowledgement enabled.
    ///
    /// # Errors
    ///
    /// Returns the rejected payload when it exceeds [`MAX_PAYLOAD`] bytes.
    pub fn new(address: [u8; 5], payload: Vec<u8>) -> Result<Self, Vec<u8>> {
        if payload.len() > MAX_PAYLOAD {
            return Err(payload);
        }
        Ok(EsbPacket {
            address,
            payload,
            pid: 0,
            no_ack: false,
        })
    }

    /// Sets the 2-bit packet id.
    pub fn with_pid(mut self, pid: u8) -> Self {
        self.pid = pid & 0x3;
        self
    }

    /// The 5-byte address.
    pub fn address(&self) -> [u8; 5] {
        self.address
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The 2-bit packet id.
    pub fn pid(&self) -> u8 {
        self.pid
    }

    /// Preamble byte: `0xAA` when the address MSB is 1, else `0x55`.
    pub fn preamble_byte(&self) -> u8 {
        if self.address[0] & 0x80 != 0 {
            0xAA
        } else {
            0x55
        }
    }

    /// On-air bits of the address alone, MSB-first — the pattern an ESB
    /// receiver's address correlator matches (and the register WazaBee-style
    /// attacks have historically diverted, paper §II-B).
    pub fn address_bits(address: &[u8; 5]) -> Vec<u8> {
        wazabee_dsp::bits::bytes_to_bits_msb(address)
    }

    /// Serialises the packet to on-air bits: preamble · address · PCF ·
    /// payload · CRC-16, all MSB-first.
    pub fn to_air_bits(&self) -> Vec<u8> {
        let mut bits = wazabee_dsp::bits::bytes_to_bits_msb(&[self.preamble_byte()]);
        let mut protected = Self::address_bits(&self.address);
        // 9-bit PCF: 6-bit length, 2-bit PID, 1-bit no-ack.
        let len = self.payload.len() as u8;
        for k in (0..6).rev() {
            protected.push((len >> k) & 1);
        }
        protected.push((self.pid >> 1) & 1);
        protected.push(self.pid & 1);
        protected.push(u8::from(self.no_ack));
        protected.extend(wazabee_dsp::bits::bytes_to_bits_msb(&self.payload));
        let crc = esb_crc16(&protected);
        bits.extend(protected);
        for k in (0..16).rev() {
            bits.push(((crc >> k) & 1) as u8);
        }
        bits
    }

    /// Parses a packet from on-air bits starting at the preamble, for a given
    /// address length (3–5 bytes; we model 5).
    ///
    /// Returns `None` on truncation or CRC failure.
    pub fn from_air_bits(bits: &[u8], address_len: usize) -> Option<Self> {
        if !(3..=5).contains(&address_len) {
            return None;
        }
        let head = 8 + address_len * 8 + 9;
        if bits.len() < head + 16 {
            return None;
        }
        let addr_bits = &bits[8..8 + address_len * 8];
        let mut address = [0u8; 5];
        for (k, byte) in pack_msb(addr_bits).into_iter().enumerate() {
            address[k] = byte;
        }
        let pcf = &bits[8 + address_len * 8..head];
        let len = pcf[..6].iter().fold(0usize, |a, &b| (a << 1) | b as usize);
        if len > MAX_PAYLOAD {
            return None;
        }
        let pid = (pcf[6] << 1) | pcf[7];
        let no_ack = pcf[8] == 1;
        let total = head + len * 8 + 16;
        if bits.len() < total {
            return None;
        }
        let payload = pack_msb(&bits[head..head + len * 8]);
        let crc_bits = &bits[head + len * 8..total];
        let crc_rx = crc_bits.iter().fold(0u16, |a, &b| (a << 1) | u16::from(b));
        let crc_calc = esb_crc16(&bits[8..head + len * 8]);
        if crc_rx != crc_calc {
            return None;
        }
        Some(EsbPacket {
            address,
            payload,
            pid,
            no_ack,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ADDR: [u8; 5] = [0xE7, 0xE7, 0xE7, 0xE7, 0xE7];

    #[test]
    fn crc_ccitt_false_check_value() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        let bits = wazabee_dsp::bits::bytes_to_bits_msb(b"123456789");
        assert_eq!(esb_crc16(&bits), 0x29B1);
    }

    #[test]
    fn round_trip() {
        let pkt = EsbPacket::new(ADDR, vec![10, 20, 30]).unwrap().with_pid(2);
        let parsed = EsbPacket::from_air_bits(&pkt.to_air_bits(), 5).unwrap();
        assert_eq!(parsed, pkt);
    }

    #[test]
    fn empty_payload_round_trip() {
        let pkt = EsbPacket::new(ADDR, vec![]).unwrap();
        let parsed = EsbPacket::from_air_bits(&pkt.to_air_bits(), 5).unwrap();
        assert_eq!(parsed.payload(), &[] as &[u8]);
    }

    #[test]
    fn preamble_follows_address_msb() {
        assert_eq!(EsbPacket::new(ADDR, vec![]).unwrap().preamble_byte(), 0xAA);
        let low = EsbPacket::new([0x17, 0, 0, 0, 0], vec![]).unwrap();
        assert_eq!(low.preamble_byte(), 0x55);
    }

    #[test]
    fn bit_corruption_rejected_by_crc() {
        let pkt = EsbPacket::new(ADDR, vec![0x42; 8]).unwrap();
        let bits = pkt.to_air_bits();
        // Flip each protected bit (skip the preamble, which carries no data).
        for k in 8..bits.len() {
            let mut bad = bits.clone();
            bad[k] ^= 1;
            let parsed = EsbPacket::from_air_bits(&bad, 5);
            // A corrupted length field may truncate parsing instead; either
            // way the original packet must not come back.
            assert_ne!(parsed.as_ref(), Some(&pkt), "flip at bit {k} accepted");
        }
    }

    #[test]
    fn payload_length_limit() {
        assert!(EsbPacket::new(ADDR, vec![0; 32]).is_ok());
        assert!(EsbPacket::new(ADDR, vec![0; 33]).is_err());
    }

    #[test]
    fn truncated_bits_rejected() {
        let bits = EsbPacket::new(ADDR, vec![1, 2, 3]).unwrap().to_air_bits();
        for cut in [0, 10, 40, bits.len() - 1] {
            assert!(EsbPacket::from_air_bits(&bits[..cut], 5).is_none());
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(
            addr in proptest::array::uniform5(any::<u8>()),
            payload in proptest::collection::vec(any::<u8>(), 0..=32),
            pid in 0u8..4,
        ) {
            let pkt = EsbPacket::new(addr, payload).unwrap().with_pid(pid);
            prop_assert_eq!(EsbPacket::from_air_bits(&pkt.to_air_bits(), 5), Some(pkt));
        }
    }
}
