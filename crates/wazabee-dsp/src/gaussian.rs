//! Gaussian pulse shaping for GFSK/GMSK modulators.
//!
//! BLE shapes its frequency-modulating NRZ signal with a Gaussian filter of
//! bandwidth-time product `BT = 0.5` (Core spec vol 6, part A §3.1). The
//! WazaBee paper's central approximation (§IV-B1) is that this filter can be
//! neglected, turning GFSK into plain MSK; the filter designed here lets the
//! simulation quantify exactly how much chip error that approximation costs.

use crate::fir::Fir;

/// Designs the Gaussian pulse-shaping filter used by a GFSK modulator.
///
/// `bt` is the bandwidth-time product (0.5 for BLE, 0.3 for classic GSM),
/// `samples_per_symbol` the oversampling factor, and `span_symbols` how many
/// symbol periods the truncated impulse response covers (3 is plenty for
/// BT ≥ 0.3).
///
/// The returned filter is normalised so that a long run of identical symbols
/// reaches exactly the nominal frequency deviation (unit DC gain).
///
/// # Panics
///
/// Panics if any argument is zero/non-positive.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::gaussian::gaussian_filter;
/// let f = gaussian_filter(0.5, 8, 3);
/// // Symmetric, positive, unit-sum impulse response.
/// let taps = f.taps();
/// assert!((taps.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// assert!(taps.iter().all(|&t| t >= 0.0));
/// ```
pub fn gaussian_filter(bt: f64, samples_per_symbol: usize, span_symbols: usize) -> Fir {
    assert!(bt > 0.0, "BT product must be positive");
    assert!(
        samples_per_symbol > 0,
        "need at least one sample per symbol"
    );
    assert!(span_symbols > 0, "span must cover at least one symbol");

    // Standard GMSK Gaussian impulse response:
    //   h(t) = sqrt(2π/ln2) · B · exp(−2π²B²t²/ln2), with B = BT/Ts.
    let ln2 = std::f64::consts::LN_2;
    let sps = samples_per_symbol as f64;
    let half = (span_symbols * samples_per_symbol) as f64 / 2.0;
    let n = span_symbols * samples_per_symbol + 1;
    let mut taps = Vec::with_capacity(n);
    for k in 0..n {
        // Time in symbol periods relative to the pulse centre.
        let t = (k as f64 - half) / sps;
        let alpha = 2.0 * std::f64::consts::PI * std::f64::consts::PI * bt * bt / ln2;
        taps.push((-alpha * t * t).exp());
    }
    let sum: f64 = taps.iter().sum();
    for t in &mut taps {
        *t /= sum;
    }
    Fir::new(taps)
}

/// Shapes an NRZ symbol stream (±1 per symbol) into a frequency-modulating
/// waveform at `samples_per_symbol` oversampling, applying the Gaussian filter.
///
/// Output length is `symbols.len() * samples_per_symbol` — the filter's group
/// delay is compensated so sample `k*sps .. (k+1)*sps` corresponds to symbol
/// `k`.
pub fn shape_nrz(
    symbols: &[f64],
    bt: f64,
    samples_per_symbol: usize,
    span_symbols: usize,
) -> Vec<f64> {
    let _t = wazabee_telemetry::timed_scope!("dsp.gaussian_fir_ns");
    let _s = wazabee_telemetry::stage!("dsp.gaussian_shape");
    let rect: Vec<f64> = symbols
        .iter()
        .flat_map(|&s| std::iter::repeat_n(s, samples_per_symbol))
        .collect();
    let filter = gaussian_filter(bt, samples_per_symbol, span_symbols);
    let (mut scratch, mut out) = (Vec::new(), Vec::new());
    filter.filter_real_same_into(&rect, &mut scratch, &mut out);
    out
}

/// `f32` counterpart of [`shape_nrz`], running the Gaussian FIR through the
/// explicit-width kernel in [`crate::simd`].
///
/// Taps are designed in `f64` (the design math is not hot) and narrowed once;
/// the convolution itself is the SIMD `f32` scatter kernel. Used by the
/// planar modulation paths where waveform fidelity is bounded by channel
/// noise, not by `f32` rounding.
pub fn shape_nrz_f32(
    symbols: &[f32],
    bt: f64,
    samples_per_symbol: usize,
    span_symbols: usize,
) -> Vec<f32> {
    let _s = wazabee_telemetry::stage!("dsp.gaussian_shape");
    let rect: Vec<f32> = symbols
        .iter()
        .flat_map(|&s| std::iter::repeat_n(s, samples_per_symbol))
        .collect();
    let taps: Vec<f32> = gaussian_filter(bt, samples_per_symbol, span_symbols)
        .taps()
        .iter()
        .map(|&t| t as f32)
        .collect();
    let mut full = Vec::new();
    crate::simd::fir_real_into(&taps, &rect, &mut full);
    let start = (taps.len() - 1) / 2;
    full[start..start + rect.len()].to_vec()
}

/// Rectangular (unfiltered) oversampling of an NRZ stream — the MSK limit the
/// paper's theory assumes.
pub fn shape_nrz_rect(symbols: &[f64], samples_per_symbol: usize) -> Vec<f64> {
    symbols
        .iter()
        .flat_map(|&s| std::iter::repeat_n(s, samples_per_symbol))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_is_symmetric() {
        let f = gaussian_filter(0.5, 8, 3);
        let taps = f.taps();
        for k in 0..taps.len() / 2 {
            let mirror = taps.len() - 1 - k;
            assert!((taps[k] - taps[mirror]).abs() < 1e-12);
        }
    }

    #[test]
    fn filter_peak_is_central() {
        let f = gaussian_filter(0.5, 8, 3);
        let taps = f.taps();
        let peak = taps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, taps.len() / 2);
    }

    #[test]
    fn narrower_bt_spreads_energy() {
        // Lower BT → wider pulse → smaller peak tap.
        let tight = gaussian_filter(0.5, 8, 4);
        let loose = gaussian_filter(0.3, 8, 4);
        let peak = |f: &Fir| f.taps().iter().cloned().fold(0.0_f64, f64::max);
        assert!(peak(&loose) < peak(&tight));
    }

    #[test]
    fn long_run_reaches_full_deviation() {
        let shaped = shape_nrz(&[1.0; 16], 0.5, 8, 3);
        // Middle of a long run of +1 symbols must sit at +1 (unit DC gain).
        let mid = shaped[8 * 8];
        assert!((mid - 1.0).abs() < 1e-6, "mid-run value {mid}");
    }

    #[test]
    fn isolated_symbol_underreaches_with_gaussian() {
        // A 101 pattern: the single 0 between 1s cannot reach −1 with BT=0.5.
        let shaped = shape_nrz(&[1.0, -1.0, 1.0], 0.5, 16, 3);
        let min = shaped.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > -1.0 && min < -0.5, "isolated symbol deviation {min}");
    }

    #[test]
    fn rect_shape_is_exact() {
        let shaped = shape_nrz_rect(&[1.0, -1.0], 4);
        assert_eq!(shaped, vec![1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0]);
    }

    #[test]
    fn output_length_matches_symbols() {
        let shaped = shape_nrz(&[1.0, -1.0, 1.0, 1.0], 0.5, 8, 3);
        assert_eq!(shaped.len(), 4 * 8);
    }

    #[test]
    fn f32_shape_tracks_f64_shape() {
        let symbols: Vec<f64> = (0..40)
            .map(|k| if k % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let want = shape_nrz(&symbols, 0.5, 8, 3);
        let sym32: Vec<f32> = symbols.iter().map(|&s| s as f32).collect();
        let got = shape_nrz_f32(&sym32, 0.5, 8, 3);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((f64::from(*g) - w).abs() < 1e-5, "{g} vs {w}");
        }
    }
}
