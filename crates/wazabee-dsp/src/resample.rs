//! Fractional-delay resampling, used by the medium simulator to model
//! sampling-clock misalignment between transmitter and receiver.

use crate::iq::Iq;

/// Applies a fractional-sample delay via linear interpolation.
///
/// `delay` must be in `[0, 1)`: the output sample `y[k]` approximates
/// `x(k − delay)`. Output has `x.len()` samples; the first sample repeats
/// `x[0]` for the unavailable history.
///
/// # Panics
///
/// Panics if `delay` is outside `[0, 1)`.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::{resample::fractional_delay, Iq};
/// let x = vec![Iq::new(0.0, 0.0), Iq::new(1.0, 0.0), Iq::new(2.0, 0.0)];
/// let y = fractional_delay(&x, 0.5);
/// assert!((y[2].i - 1.5).abs() < 1e-12);
/// ```
pub fn fractional_delay(x: &[Iq], delay: f64) -> Vec<Iq> {
    assert!((0.0..1.0).contains(&delay), "delay must be in [0, 1)");
    if x.is_empty() || delay == 0.0 {
        return x.to_vec();
    }
    let mut y = Vec::with_capacity(x.len());
    for k in 0..x.len() {
        let prev = if k == 0 { x[0] } else { x[k - 1] };
        y.push(x[k].scale(1.0 - delay) + prev.scale(delay));
    }
    y
}

/// Planar in-place form of [`fractional_delay`]: each rail is linearly
/// interpolated with its predecessor (`y[k] = (1−d)·x[k] + d·x[k−1]`,
/// `y[0] = x[0]`).
///
/// The interpolation itself runs in `f32` — a two-point convex combination
/// loses no more precision than the storage already has.
///
/// # Panics
///
/// Panics if `delay` is outside `[0, 1)`.
pub fn fractional_delay_planar_in_place(buf: &mut crate::iqbuf::IqBuf, delay: f64) {
    assert!((0.0..1.0).contains(&delay), "delay must be in [0, 1)");
    if buf.is_empty() || delay == 0.0 {
        return;
    }
    let d = delay as f32;
    let keep = 1.0 - d;
    let (i, q) = buf.rails_mut();
    for rail in [i, q] {
        let mut prev = rail[0];
        for v in rail.iter_mut() {
            let cur = *v;
            *v = cur * keep + prev * d;
            prev = cur;
        }
    }
}

/// Drops `n` samples from the head of the buffer, modelling integer sampling
/// offset. Returns an empty vector when `n >= x.len()`.
pub fn integer_delay(x: &[Iq], n: usize) -> Vec<Iq> {
    if n >= x.len() {
        return Vec::new();
    }
    x[n..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::Nco;

    #[test]
    fn zero_delay_is_identity() {
        let x = vec![Iq::new(1.0, 2.0), Iq::new(3.0, 4.0)];
        assert_eq!(fractional_delay(&x, 0.0), x);
    }

    #[test]
    fn half_delay_averages_neighbours() {
        let x = vec![Iq::new(0.0, 0.0), Iq::new(2.0, 4.0)];
        let y = fractional_delay(&x, 0.5);
        assert!((y[1].i - 1.0).abs() < 1e-12);
        assert!((y[1].q - 2.0).abs() < 1e-12);
    }

    #[test]
    fn delayed_tone_keeps_frequency() {
        let fs = 16.0e6;
        let mut nco = Nco::new(1.0e6, fs);
        let tone: Vec<Iq> = (0..128).map(|_| nco.next_sample()).collect();
        let y = fractional_delay(&tone, 0.3);
        let f = crate::discriminator::discriminate(&y[4..]);
        let expect = std::f64::consts::TAU * 1.0e6 / fs;
        for v in f {
            assert!((v - expect).abs() < 0.05 * expect);
        }
    }

    #[test]
    fn planar_delay_tracks_interleaved_delay() {
        let fs = 16.0e6;
        let mut nco = Nco::new(1.0e6, fs);
        let tone: Vec<Iq> = (0..128).map(|_| nco.next_sample()).collect();
        let want = fractional_delay(&tone, 0.37);
        let mut planar = crate::iqbuf::IqBuf::from_interleaved(&tone);
        fractional_delay_planar_in_place(&mut planar, 0.37);
        for (k, s) in want.iter().enumerate() {
            let (pi, pq) = planar.get(k);
            assert!((f64::from(pi) - s.i).abs() < 1e-6, "sample {k}");
            assert!((f64::from(pq) - s.q).abs() < 1e-6, "sample {k}");
        }
        // Zero delay is the identity on the planar path too.
        let mut z = crate::iqbuf::IqBuf::from_interleaved(&tone[..4]);
        fractional_delay_planar_in_place(&mut z, 0.0);
        assert_eq!(z.get(1), (tone[1].i as f32, tone[1].q as f32));
    }

    #[test]
    fn integer_delay_truncates() {
        let x = vec![Iq::ONE; 5];
        assert_eq!(integer_delay(&x, 2).len(), 3);
        assert!(integer_delay(&x, 5).is_empty());
        assert!(integer_delay(&x, 9).is_empty());
    }

    #[test]
    #[should_panic(expected = "delay must be in")]
    fn out_of_range_delay_rejected() {
        let _ = fractional_delay(&[Iq::ONE], 1.0);
    }
}
