//! Explicit-width SIMD kernels for the sample-domain hot path.
//!
//! The stage profiler put the polar discriminator at ~76 % of streaming decode
//! self-time, almost all of it in per-sample `f64::atan2` libm calls over
//! interleaved structs. These kernels process the planar [`crate::IqBuf`]
//! rails in fixed-size `[f32; LANES]` blocks — the shape the stable-toolchain
//! autovectorizer reliably compiles to packed SSE/AVX/NEON arithmetic — with a
//! branchless polynomial `atan2` so the whole block stays in vector registers.
//!
//! Every kernel keeps a `*_scalar` twin (the same pattern as the packed
//! bit-domain kernels from the despreading fast path): one plain element-wise
//! loop with the *identical* per-element expression and accumulation order, so
//! the SIMD and scalar variants are bit-for-bit equal and the parity proptests
//! can compare `f32::to_bits` exactly, not within a tolerance. The scalar
//! twins are exercised by the test suite and the `iq_kernels` bench in every
//! CI run, so they cannot silently drift from the fast path.

use crate::iq::Iq;
use crate::iqbuf::IqBuf;

/// Lane width of the explicit-width kernels (f32 lanes per block).
pub const LANES: usize = 8;

/// Branchless four-quadrant arctangent approximation.
///
/// Range-reduces to an octant with min/max (no data-dependent branches — the
/// `if`s below compile to selects), evaluates an odd polynomial in
/// `min/max ∈ [0, 1]`, then folds the octant back. Maximum error is about
/// `1e-5` rad, four orders of magnitude below the discriminator's per-sample
/// noise at any SNR the receive chain operates at. `atan2_fast(0, 0)` is
/// exactly `0.0`, matching `f64::atan2` on silence.
#[inline(always)]
pub fn atan2_fast(y: f32, x: f32) -> f32 {
    const A1: f32 = 0.999_977_26;
    const A3: f32 = -0.332_623_47;
    const A5: f32 = 0.193_543_46;
    const A7: f32 = -0.116_432_87;
    const A9: f32 = 0.052_653_32;
    const A11: f32 = -0.011_721_2;
    let ax = x.abs();
    let ay = y.abs();
    let mx = ax.max(ay);
    let mn = ax.min(ay);
    let t = mn / mx;
    // 0/0 → NaN on silence; select it to 0 so the output is exactly 0.0.
    let t = if t.is_nan() { 0.0 } else { t };
    let t2 = t * t;
    let mut r = t * (A1 + t2 * (A3 + t2 * (A5 + t2 * (A7 + t2 * (A9 + t2 * A11)))));
    r = if ay > ax {
        std::f32::consts::FRAC_PI_2 - r
    } else {
        r
    };
    r = if x < 0.0 { std::f32::consts::PI - r } else { r };
    if y < 0.0 {
        -r
    } else {
        r
    }
}

/// Per-element expression shared by the SIMD and scalar discriminators: the
/// phase of `x[k+1] · conj(x[k])` via [`atan2_fast`].
#[inline(always)]
fn discriminate_one(i0: f32, q0: f32, i1: f32, q1: f32) -> f32 {
    let re = i1 * i0 + q1 * q0;
    let im = q1 * i0 - i1 * q0;
    atan2_fast(im, re)
}

/// Polar FM discriminator over planar rails, appending the `len − 1` first
/// differences (radians/sample) to `out` without allocating.
///
/// This is the planar `f32` counterpart of
/// [`crate::discriminator::discriminate`]; it carries the same
/// `dsp.discriminate` profiler stage so before/after self-time is directly
/// comparable in the snapshot.
///
/// # Panics
///
/// Panics if the rails differ in length.
pub fn discriminate_planar_into(i: &[f32], q: &[f32], out: &mut Vec<f32>) {
    assert_eq!(i.len(), q.len(), "planar rails must be equal-length");
    let _s = wazabee_telemetry::stage!("dsp.discriminate");
    let n = i.len().saturating_sub(1);
    out.reserve(n);
    let mut k = 0;
    while k + LANES <= n {
        let mut ang = [0.0f32; LANES];
        for l in 0..LANES {
            ang[l] = discriminate_one(i[k + l], q[k + l], i[k + l + 1], q[k + l + 1]);
        }
        out.extend_from_slice(&ang);
        k += LANES;
    }
    while k < n {
        out.push(discriminate_one(i[k], q[k], i[k + 1], q[k + 1]));
        k += 1;
    }
}

/// Scalar reference for [`discriminate_planar_into`] — bit-identical output.
///
/// # Panics
///
/// Panics if the rails differ in length.
pub fn discriminate_planar_scalar_into(i: &[f32], q: &[f32], out: &mut Vec<f32>) {
    assert_eq!(i.len(), q.len(), "planar rails must be equal-length");
    for k in 0..i.len().saturating_sub(1) {
        out.push(discriminate_one(i[k], q[k], i[k + 1], q[k + 1]));
    }
}

/// Sums of consecutive `window`-sized chunks of `x` (one value per *complete*
/// window, the tail is ignored), appended to `out`.
///
/// This is the integrate part of integrate-and-dump: the hard-bit decision
/// `sum ≥ 0` is invariant under the `1/window` scaling, so the dump divide is
/// skipped entirely. Each window accumulates left to right in both variants,
/// keeping SIMD and scalar bit-identical; the SIMD variant runs `LANES`
/// windows in parallel.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn window_sums_into(x: &[f32], window: usize, out: &mut Vec<f32>) {
    assert!(window > 0, "window must be non-zero");
    let n = x.len() / window;
    out.reserve(n);
    let mut w = 0;
    while w + LANES <= n {
        let base = w * window;
        let mut acc = [0.0f32; LANES];
        for j in 0..window {
            for (l, a) in acc.iter_mut().enumerate() {
                *a += x[base + l * window + j];
            }
        }
        out.extend_from_slice(&acc);
        w += LANES;
    }
    while w < n {
        let base = w * window;
        let mut a = 0.0f32;
        for j in 0..window {
            a += x[base + j];
        }
        out.push(a);
        w += 1;
    }
}

/// Scalar reference for [`window_sums_into`] — bit-identical output.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn window_sums_scalar_into(x: &[f32], window: usize, out: &mut Vec<f32>) {
    assert!(window > 0, "window must be non-zero");
    for c in x.chunks_exact(window) {
        let mut a = 0.0f32;
        for &v in c {
            a += v;
        }
        out.push(a);
    }
}

/// `dst[k] += gain · src[k]` over f32 slices (the superposition/pulse-placement
/// primitive).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(dst: &mut [f32], src: &[f32], gain: f32) {
    assert_eq!(dst.len(), src.len(), "axpy length mismatch");
    let n = dst.len();
    let mut k = 0;
    while k + LANES <= n {
        for l in 0..LANES {
            dst[k + l] += gain * src[k + l];
        }
        k += LANES;
    }
    while k < n {
        dst[k] += gain * src[k];
        k += 1;
    }
}

/// Scalar reference for [`axpy`] — bit-identical output.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy_scalar(dst: &mut [f32], src: &[f32], gain: f32) {
    assert_eq!(dst.len(), src.len(), "axpy length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += gain * s;
    }
}

/// Superposes an interleaved `f64` waveform into a planar accumulator:
/// `dst[offset + k] += gain · src[k]`, growing `dst` as needed.
///
/// The product is formed in `f64` (transmit waveforms and path gains are
/// `f64`) and narrowed once, so a unity-gain placement reproduces the `f32`
/// image of the transmit samples exactly.
pub fn accumulate_interleaved_at(dst: &mut IqBuf, src: &[Iq], offset: usize, gain: f64) {
    let end = offset + src.len();
    if dst.len() < end {
        dst.resize(end);
    }
    let (di, dq) = dst.rails_mut();
    let n = src.len();
    let mut k = 0;
    while k + LANES <= n {
        for l in 0..LANES {
            di[offset + k + l] += (src[k + l].i * gain) as f32;
            dq[offset + k + l] += (src[k + l].q * gain) as f32;
        }
        k += LANES;
    }
    while k < n {
        di[offset + k] += (src[k].i * gain) as f32;
        dq[offset + k] += (src[k].q * gain) as f32;
        k += 1;
    }
}

/// Scalar reference for [`accumulate_interleaved_at`] — bit-identical output.
pub fn accumulate_interleaved_at_scalar(dst: &mut IqBuf, src: &[Iq], offset: usize, gain: f64) {
    let end = offset + src.len();
    if dst.len() < end {
        dst.resize(end);
    }
    let (di, dq) = dst.rails_mut();
    for (k, s) in src.iter().enumerate() {
        di[offset + k] += (s.i * gain) as f32;
        dq[offset + k] += (s.q * gain) as f32;
    }
}

/// Full f32 convolution of `x` with `taps`, overwriting `out` (scatter form:
/// output length `x.len() + taps.len() − 1`).
///
/// Exact zeros in `x` are skipped in both variants — pulse-shaped inputs are
/// mostly padding, and the skip must match for the `−0.0` corner to stay
/// bit-identical.
///
/// # Panics
///
/// Panics if `taps` is empty.
pub fn fir_real_into(taps: &[f32], x: &[f32], out: &mut Vec<f32>) {
    assert!(!taps.is_empty(), "FIR filter needs at least one tap");
    out.clear();
    out.resize(x.len() + taps.len() - 1, 0.0);
    for (k, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        let y = &mut out[k..k + taps.len()];
        let mut j = 0;
        while j + LANES <= taps.len() {
            for l in 0..LANES {
                y[j + l] += xv * taps[j + l];
            }
            j += LANES;
        }
        while j < taps.len() {
            y[j] += xv * taps[j];
            j += 1;
        }
    }
}

/// Scalar reference for [`fir_real_into`] — bit-identical output.
///
/// # Panics
///
/// Panics if `taps` is empty.
pub fn fir_real_scalar_into(taps: &[f32], x: &[f32], out: &mut Vec<f32>) {
    assert!(!taps.is_empty(), "FIR filter needs at least one tap");
    out.clear();
    out.resize(x.len() + taps.len() - 1, 0.0);
    for (k, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        for (j, &t) in taps.iter().enumerate() {
            out[k + j] += xv * t;
        }
    }
}

/// Full planar-IQ convolution with real `f32` taps, overwriting `out`.
///
/// Both rails convolve with the same taps (linear-phase channel filters), so
/// one pass streams I and Q together.
///
/// # Panics
///
/// Panics if `taps` is empty or the rails of `x` differ in length.
pub fn fir_planar_into(taps: &[f32], x: crate::iqbuf::IqSlice<'_>, out: &mut IqBuf) {
    assert!(!taps.is_empty(), "FIR filter needs at least one tap");
    out.clear();
    out.resize(x.len() + taps.len() - 1);
    let (oi, oq) = out.rails_mut();
    let (xi, xq) = (x.i(), x.q());
    for k in 0..xi.len() {
        let (vi, vq) = (xi[k], xq[k]);
        if vi == 0.0 && vq == 0.0 {
            continue;
        }
        let mut j = 0;
        while j + LANES <= taps.len() {
            for l in 0..LANES {
                oi[k + j + l] += vi * taps[j + l];
                oq[k + j + l] += vq * taps[j + l];
            }
            j += LANES;
        }
        while j < taps.len() {
            oi[k + j] += vi * taps[j];
            oq[k + j] += vq * taps[j];
            j += 1;
        }
    }
}

/// Scalar reference for [`fir_planar_into`] — bit-identical output.
///
/// # Panics
///
/// Panics if `taps` is empty or the rails of `x` differ in length.
pub fn fir_planar_scalar_into(taps: &[f32], x: crate::iqbuf::IqSlice<'_>, out: &mut IqBuf) {
    assert!(!taps.is_empty(), "FIR filter needs at least one tap");
    out.clear();
    out.resize(x.len() + taps.len() - 1);
    let (oi, oq) = out.rails_mut();
    let (xi, xq) = (x.i(), x.q());
    for k in 0..xi.len() {
        let (vi, vq) = (xi[k], xq[k]);
        if vi == 0.0 && vq == 0.0 {
            continue;
        }
        for (j, &t) in taps.iter().enumerate() {
            oi[k + j] += vi * t;
            oq[k + j] += vq * t;
        }
    }
}

/// Hard-decision slicer: NRZ soft values to bits (`1` when `s ≥ 0`, the same
/// tie-break as [`crate::bits::nrz_to_bits`], including `−0.0 → 1`).
pub fn nrz_hard_bits_into(soft: &[f32], out: &mut Vec<u8>) {
    out.reserve(soft.len());
    out.extend(soft.iter().map(|&s| u8::from(s >= 0.0)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atan2_fast_tracks_f64_atan2() {
        let mut worst = 0.0f64;
        for yi in -25..=25 {
            for xi in -25..=25 {
                let (y, x) = (yi as f32 * 0.17, xi as f32 * 0.13);
                if y == 0.0 && x == 0.0 {
                    continue;
                }
                let got = f64::from(atan2_fast(y, x));
                let want = f64::from(y).atan2(f64::from(x));
                // ±π is one angle: fold the difference onto (−π, π].
                let d = got - want;
                let err = d.abs().min((d - std::f64::consts::TAU).abs());
                worst = worst.max(err.min((d + std::f64::consts::TAU).abs()));
            }
        }
        assert!(worst < 1e-4, "worst atan2 error {worst}");
    }

    #[test]
    fn atan2_fast_axes_and_origin() {
        assert_eq!(atan2_fast(0.0, 0.0), 0.0);
        assert_eq!(atan2_fast(0.0, 2.0), 0.0);
        assert!((atan2_fast(3.0, 0.0) - std::f32::consts::FRAC_PI_2).abs() < 1e-6);
        assert!((atan2_fast(-3.0, 0.0) + std::f32::consts::FRAC_PI_2).abs() < 1e-6);
        assert!((atan2_fast(0.0, -1.0) - std::f32::consts::PI).abs() < 1e-6);
    }

    fn tone(n: usize) -> (Vec<f32>, Vec<f32>) {
        let step = 0.3f64;
        (0..n)
            .map(|k| {
                let p = step * k as f64;
                (p.cos() as f32, p.sin() as f32)
            })
            .unzip()
    }

    #[test]
    fn discriminate_planar_recovers_tone_step() {
        let (i, q) = tone(64);
        let mut out = Vec::new();
        discriminate_planar_into(&i, &q, &mut out);
        assert_eq!(out.len(), 63);
        for v in out {
            assert!((v - 0.3).abs() < 1e-4, "step estimate {v}");
        }
    }

    #[test]
    fn discriminate_simd_matches_scalar_bitwise() {
        for n in [0usize, 1, 2, 7, 8, 9, 31, 64, 65] {
            let (i, q) = tone(n);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            discriminate_planar_into(&i, &q, &mut a);
            discriminate_planar_scalar_into(&i, &q, &mut b);
            let a: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "length {n}");
        }
    }

    #[test]
    fn window_sums_matches_scalar_bitwise() {
        let x: Vec<f32> = (0..203).map(|k| ((k * 37) % 19) as f32 - 9.0).collect();
        for w in [1usize, 2, 3, 8, 13] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            window_sums_into(&x, w, &mut a);
            window_sums_scalar_into(&x, w, &mut b);
            assert_eq!(a.len(), x.len() / w);
            let a: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "window {w}");
        }
    }

    #[test]
    fn fir_real_matches_fir_crate_shape() {
        // 2-tap moving average, mirroring the Fir doctest.
        let mut y = Vec::new();
        fir_real_into(&[0.5, 0.5], &[1.0, 1.0, 0.0], &mut y);
        assert_eq!(y, vec![0.5, 1.0, 0.5, 0.0]);
    }

    #[test]
    fn accumulate_places_and_scales() {
        let mut dst = IqBuf::new();
        let src = vec![Iq::new(1.0, -1.0); 3];
        accumulate_interleaved_at(&mut dst, &src, 2, 0.5);
        assert_eq!(dst.len(), 5);
        assert_eq!(dst.get(1), (0.0, 0.0));
        assert_eq!(dst.get(3), (0.5, -0.5));
        // Overlapping placement accumulates.
        accumulate_interleaved_at(&mut dst, &src, 4, 1.0);
        assert_eq!(dst.len(), 7);
        assert_eq!(dst.get(4), (1.5, -1.5));
    }

    #[test]
    fn nrz_hard_bits_tie_breaks_like_bits_module() {
        let mut out = Vec::new();
        nrz_hard_bits_into(&[1.5, -0.2, 0.0, -0.0], &mut out);
        assert_eq!(out, vec![1, 0, 1, 1]);
    }
}
