//! Numerically controlled oscillator and frequency shifting.

use std::f64::consts::TAU;

use crate::iq::Iq;

/// A numerically controlled oscillator producing `e^{j(2π f n / fs + φ0)}`.
///
/// Used to model carrier-frequency offsets between transmitter and receiver
/// and to shift signals between channel frequencies inside the simulated
/// ISM band.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::Nco;
/// let mut nco = Nco::new(1.0e6, 8.0e6); // 1 MHz tone at 8 Msps
/// let s0 = nco.next_sample();
/// let s2 = { nco.next_sample(); nco.next_sample() };
/// // After 2 samples of a tone at fs/8, phase advanced by 2·2π/8 = π/2.
/// assert!((s2.phase() - s0.phase() - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Nco {
    phase: f64,
    step: f64,
}

impl Nco {
    /// Creates an oscillator at `freq_hz` for a stream sampled at `sample_rate_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not strictly positive or not finite.
    pub fn new(freq_hz: f64, sample_rate_hz: f64) -> Self {
        assert!(
            sample_rate_hz.is_finite() && sample_rate_hz > 0.0,
            "sample rate must be positive"
        );
        Nco {
            phase: 0.0,
            step: TAU * freq_hz / sample_rate_hz,
        }
    }

    /// Creates an oscillator with an explicit initial phase (radians).
    pub fn with_phase(freq_hz: f64, sample_rate_hz: f64, phase: f64) -> Self {
        let mut nco = Nco::new(freq_hz, sample_rate_hz);
        nco.phase = phase;
        nco
    }

    /// Current phase in radians (not wrapped).
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Phase increment per sample in radians.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Produces the sample for the current phase, then advances.
    #[inline]
    pub fn next_sample(&mut self) -> Iq {
        let s = Iq::from_polar(1.0, self.phase);
        self.phase += self.step;
        // Keep the accumulator bounded so precision never degrades on long runs.
        if self.phase > 1e9 || self.phase < -1e9 {
            self.phase = self.phase.rem_euclid(TAU);
        }
        s
    }

    /// Mixes (multiplies) a buffer with this oscillator in place, shifting its
    /// spectrum by the oscillator frequency.
    pub fn mix_in_place(&mut self, samples: &mut [Iq]) {
        for s in samples {
            *s *= self.next_sample();
        }
    }

    /// Mixes a planar buffer with this oscillator in place.
    ///
    /// The oscillator phase recurrence stays in `f64` (a long `f32` phase
    /// accumulator would visibly drift over million-sample windows); only the
    /// final complex multiply narrows to `f32`.
    pub fn mix_planar_in_place(&mut self, buf: &mut crate::iqbuf::IqBuf) {
        let (bi, bq) = buf.rails_mut();
        for k in 0..bi.len() {
            let w = self.next_sample();
            let (wi, wq) = (w.i as f32, w.q as f32);
            let (si, sq) = (bi[k], bq[k]);
            bi[k] = si * wi - sq * wq;
            bq[k] = si * wq + sq * wi;
        }
    }
}

/// Frequency-shifts a buffer by `freq_hz` and returns the shifted copy.
///
/// Convenience wrapper over [`Nco::mix_in_place`] starting at phase 0.
pub fn frequency_shift(samples: &[Iq], freq_hz: f64, sample_rate_hz: f64) -> Vec<Iq> {
    let mut out = samples.to_vec();
    Nco::new(freq_hz, sample_rate_hz).mix_in_place(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iq::unwrap_phases;

    #[test]
    fn tone_phase_ramp_is_linear() {
        let fs = 16.0e6;
        let f = 2.0e6;
        let mut nco = Nco::new(f, fs);
        let samples: Vec<Iq> = (0..64).map(|_| nco.next_sample()).collect();
        let phases: Vec<f64> = samples.iter().map(|s| s.phase()).collect();
        let un = unwrap_phases(&phases);
        let step = TAU * f / fs;
        for k in 1..un.len() {
            assert!((un[k] - un[k - 1] - step).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_frequency_rotates_clockwise() {
        let mut nco = Nco::new(-1.0e6, 8.0e6);
        nco.next_sample();
        let s = nco.next_sample();
        assert!(
            s.phase() < 0.0,
            "expected clockwise rotation, got {}",
            s.phase()
        );
    }

    #[test]
    fn shift_up_then_down_is_identity() {
        let fs = 16.0e6;
        let src: Vec<Iq> = (0..128)
            .map(|k| Iq::from_polar(1.0, 0.01 * k as f64))
            .collect();
        let up = frequency_shift(&src, 3.0e6, fs);
        let back = frequency_shift(&up, -3.0e6, fs);
        for (a, b) in src.iter().zip(&back) {
            assert!((a.i - b.i).abs() < 1e-9 && (a.q - b.q).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_frequency_is_constant_one() {
        let mut nco = Nco::new(0.0, 1.0e6);
        for _ in 0..16 {
            let s = nco.next_sample();
            assert!((s - Iq::ONE).amplitude() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn rejects_zero_sample_rate() {
        let _ = Nco::new(1.0, 0.0);
    }

    #[test]
    fn planar_mix_tracks_interleaved_mix() {
        let fs = 16.0e6;
        let src: Vec<Iq> = (0..256)
            .map(|k| Iq::from_polar(1.0, 0.02 * k as f64))
            .collect();
        let mut inter = src.clone();
        Nco::new(2.3e6, fs).mix_in_place(&mut inter);
        let mut planar = crate::iqbuf::IqBuf::from_interleaved(&src);
        Nco::new(2.3e6, fs).mix_planar_in_place(&mut planar);
        for (k, s) in inter.iter().enumerate() {
            let (pi, pq) = planar.get(k);
            assert!((f64::from(pi) - s.i).abs() < 1e-5, "sample {k}");
            assert!((f64::from(pq) - s.q).abs() < 1e-5, "sample {k}");
        }
    }

    #[test]
    fn amplitude_stays_unit_over_long_run() {
        let mut nco = Nco::new(1.9e6, 16.0e6);
        for _ in 0..100_000 {
            let s = nco.next_sample();
            assert!((s.amplitude() - 1.0).abs() < 1e-9);
        }
    }
}
