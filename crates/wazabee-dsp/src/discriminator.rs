//! FM discrimination: recovering the instantaneous frequency of a complex
//! baseband signal.
//!
//! The paper's equation (5) links instantaneous frequency and phase:
//! `f(t) = (1/2π)·dφ/dt`. A polar discriminator estimates the derivative from
//! the angle of `x[n]·conj(x[n−1])`, which is exactly how low-IF FSK receivers
//! (including the BLE radios WazaBee diverts) recover the modulating signal.

use crate::iq::Iq;

/// Instantaneous-frequency estimate per sample, in radians/sample.
///
/// Output has `x.len() − 1` entries (first differences). Positive values mean
/// counter-clockwise phase rotation — a frequency above the carrier, i.e. a
/// `1` symbol in BLE's 2-FSK convention (paper Figure 1).
///
/// # Examples
///
/// ```
/// use wazabee_dsp::{discriminator::discriminate, Nco};
/// let mut nco = Nco::new(1.0e6, 8.0e6);
/// let tone: Vec<_> = (0..32).map(|_| nco.next_sample()).collect();
/// let f = discriminate(&tone);
/// let step = std::f64::consts::TAU * 1.0e6 / 8.0e6;
/// assert!(f.iter().all(|&v| (v - step).abs() < 1e-9));
/// ```
pub fn discriminate(x: &[Iq]) -> Vec<f64> {
    let mut out = Vec::new();
    discriminate_into(x, &mut out);
    out
}

/// Scratch-buffer form of [`discriminate`]: appends the `x.len() − 1` first
/// differences to `out` instead of allocating a fresh vector per call.
///
/// Callers that demodulate in a loop (the streaming receiver, the sim demod
/// path) keep one scratch vector alive across calls; `out` is *not* cleared
/// here so incremental producers can extend a running buffer.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::{discriminator::{discriminate, discriminate_into}, Nco};
/// let mut nco = Nco::new(1.0e6, 8.0e6);
/// let tone: Vec<_> = (0..32).map(|_| nco.next_sample()).collect();
/// let mut scratch = Vec::new();
/// discriminate_into(&tone, &mut scratch);
/// assert_eq!(scratch, discriminate(&tone));
/// ```
pub fn discriminate_into(x: &[Iq], out: &mut Vec<f64>) {
    let _s = wazabee_telemetry::stage!("dsp.discriminate");
    let _span = wazabee_telemetry::span!("dsp.discriminate", samples = x.len());
    if x.len() < 2 {
        return;
    }
    out.reserve(x.len() - 1);
    out.extend(x.windows(2).map(|w| (w[1] * w[0].conj()).phase()));
}

/// Like [`discriminate`] but normalised so that a frequency deviation of
/// `deviation_hz` maps to ±1.0.
///
/// # Panics
///
/// Panics if `deviation_hz` or `sample_rate_hz` is not strictly positive.
pub fn discriminate_normalized(x: &[Iq], deviation_hz: f64, sample_rate_hz: f64) -> Vec<f64> {
    let mut out = Vec::new();
    discriminate_normalized_into(x, deviation_hz, sample_rate_hz, &mut out);
    out
}

/// Scratch-buffer form of [`discriminate_normalized`]: appends to `out`
/// instead of allocating.
///
/// # Panics
///
/// Panics if `deviation_hz` or `sample_rate_hz` is not strictly positive.
pub fn discriminate_normalized_into(
    x: &[Iq],
    deviation_hz: f64,
    sample_rate_hz: f64,
    out: &mut Vec<f64>,
) {
    assert!(deviation_hz > 0.0, "deviation must be positive");
    assert!(sample_rate_hz > 0.0, "sample rate must be positive");
    let scale = sample_rate_hz / (std::f64::consts::TAU * deviation_hz);
    let from = out.len();
    discriminate_into(x, out);
    for v in &mut out[from..] {
        *v *= scale;
    }
}

/// Mean discriminator output over a window, in radians/sample — the same
/// value as averaging [`discriminate`], but streamed without allocating the
/// intermediate difference vector (it runs on every traced receive, over
/// windows of thousands of samples).
///
/// Returns `None` for windows too short to difference.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::{discriminator::mean_frequency, Nco};
/// let mut nco = Nco::new(1.0e6, 8.0e6);
/// let tone: Vec<_> = (0..32).map(|_| nco.next_sample()).collect();
/// let step = std::f64::consts::TAU * 1.0e6 / 8.0e6;
/// assert!((mean_frequency(&tone).unwrap() - step).abs() < 1e-9);
/// ```
pub fn mean_frequency(x: &[Iq]) -> Option<f64> {
    if x.len() < 2 {
        return None;
    }
    let sum: f64 = x.windows(2).map(|w| (w[1] * w[0].conj()).phase()).sum();
    Some(sum / (x.len() - 1) as f64)
}

/// Phase trajectory of a signal: cumulative sum of the discriminator output,
/// anchored at the phase of the first sample.
///
/// Useful for waveform-level equivalence checks between MSK and O-QPSK.
pub fn phase_trajectory(x: &[Iq]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(x.len());
    let mut acc = x[0].phase();
    out.push(acc);
    for d in discriminate(x) {
        acc += d;
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::Nco;
    use std::f64::consts::TAU;

    #[test]
    fn tone_frequency_recovered() {
        let fs = 16.0e6;
        for f in [-2.0e6, -0.5e6, 0.5e6, 3.0e6] {
            let mut nco = Nco::new(f, fs);
            let tone: Vec<Iq> = (0..64).map(|_| nco.next_sample()).collect();
            let est = discriminate(&tone);
            let expect = TAU * f / fs;
            for v in est {
                assert!((v - expect).abs() < 1e-9, "freq {f}: {v} vs {expect}");
            }
        }
    }

    #[test]
    fn normalized_output_is_plus_minus_one() {
        let fs = 16.0e6;
        let dev = 0.5e6;
        let mut nco = Nco::new(dev, fs);
        let tone: Vec<Iq> = (0..32).map(|_| nco.next_sample()).collect();
        let est = discriminate_normalized(&tone, dev, fs);
        for v in est {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn amplitude_invariance() {
        // The polar discriminator ignores envelope amplitude.
        let fs = 8.0e6;
        let mut nco = Nco::new(1.0e6, fs);
        let tone: Vec<Iq> = (0..32)
            .map(|k| nco.next_sample().scale(1.0 + 0.5 * (k % 3) as f64))
            .collect();
        let est = discriminate(&tone);
        let expect = TAU * 1.0e6 / fs;
        for v in est {
            assert!((v - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn phase_trajectory_matches_nco() {
        let fs = 8.0e6;
        let mut nco = Nco::new(1.3e6, fs);
        let tone: Vec<Iq> = (0..64).map(|_| nco.next_sample()).collect();
        let traj = phase_trajectory(&tone);
        let step = TAU * 1.3e6 / fs;
        for (k, p) in traj.iter().enumerate() {
            assert!((p - k as f64 * step).abs() < 1e-6);
        }
    }

    #[test]
    fn short_inputs_yield_empty() {
        assert!(discriminate(&[]).is_empty());
        assert!(discriminate(&[Iq::ONE]).is_empty());
        assert!(phase_trajectory(&[]).is_empty());
        assert_eq!(phase_trajectory(&[Iq::ONE]).len(), 1);
        assert!(mean_frequency(&[]).is_none());
        assert!(mean_frequency(&[Iq::ONE]).is_none());
    }

    #[test]
    fn into_variants_extend_without_clearing() {
        let fs = 16.0e6;
        let mut nco = Nco::new(0.9e6, fs);
        let tone: Vec<Iq> = (0..20).map(|_| nco.next_sample()).collect();
        let mut out = vec![42.0];
        discriminate_into(&tone, &mut out);
        assert_eq!(out[0], 42.0);
        assert_eq!(&out[1..], discriminate(&tone).as_slice());
        let mut norm = Vec::new();
        discriminate_normalized_into(&tone, 0.5e6, fs, &mut norm);
        assert_eq!(norm, discriminate_normalized(&tone, 0.5e6, fs));
        // Short inputs append nothing.
        discriminate_into(&tone[..1], &mut out);
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn mean_frequency_equals_discriminate_average() {
        let fs = 16.0e6;
        let mut nco = Nco::new(0.7e6, fs);
        let tone: Vec<Iq> = (0..512)
            .map(|k| nco.next_sample().scale(1.0 + 0.25 * (k % 5) as f64))
            .collect();
        let diffs = discriminate(&tone);
        let want = diffs.iter().sum::<f64>() / diffs.len() as f64;
        let got = mean_frequency(&tone).unwrap();
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }
}
