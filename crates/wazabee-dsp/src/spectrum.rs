//! Spectral analysis: a radix-2 FFT and periodogram utilities.
//!
//! Used by the intrusion-detection crate to estimate the occupied bandwidth
//! and centre-frequency offset of captured bursts, and by tests to verify
//! modulator spectra (GFSK's Gaussian filter visibly narrows the main lobe).

use crate::iq::Iq;

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_in_place(buf: &mut [Iq]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let angle = -std::f64::consts::TAU / len as f64;
        let wlen = Iq::from_polar(1.0, angle);
        for start in (0..n).step_by(len) {
            let mut w = Iq::ONE;
            for k in 0..len / 2 {
                let a = buf[start + k];
                let b = buf[start + k + len / 2] * w;
                buf[start + k] = a + b;
                buf[start + k + len / 2] = a - b;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Power spectral density estimate (Hann-windowed periodogram), fftshifted
/// so index 0 is the most negative frequency.
///
/// The input is truncated to the largest power-of-two length.
///
/// Returns an empty vector for inputs shorter than 2 samples.
pub fn periodogram(samples: &[Iq]) -> Vec<f64> {
    if samples.len() < 2 {
        return Vec::new();
    }
    let n = 1usize << (usize::BITS - 1 - samples.len().leading_zeros());
    let mut buf: Vec<Iq> = samples[..n]
        .iter()
        .enumerate()
        .map(|(k, &s)| {
            let w = 0.5 - 0.5 * (std::f64::consts::TAU * k as f64 / n as f64).cos();
            s.scale(w)
        })
        .collect();
    fft_in_place(&mut buf);
    let mut psd: Vec<f64> = buf.iter().map(|s| s.power() / n as f64).collect();
    psd.rotate_right(n / 2); // fftshift
    psd
}

/// Frequency (Hz) of bin `k` of an fftshifted `n`-point spectrum at
/// `sample_rate`.
pub fn bin_frequency(k: usize, n: usize, sample_rate: f64) -> f64 {
    (k as f64 - n as f64 / 2.0) * sample_rate / n as f64
}

/// Summary statistics of a burst's spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumSummary {
    /// Power-weighted mean frequency (Hz relative to the capture centre).
    pub center_hz: f64,
    /// Bandwidth containing 90 % of the power, in Hz.
    pub occupied_bw_hz: f64,
    /// Total power (linear).
    pub total_power: f64,
}

/// Estimates centre and occupied bandwidth of a capture.
///
/// Returns `None` when the capture is too short or carries no power.
pub fn summarize(samples: &[Iq], sample_rate: f64) -> Option<SpectrumSummary> {
    let psd = periodogram(samples);
    if psd.is_empty() {
        return None;
    }
    let n = psd.len();
    let total_power: f64 = psd.iter().sum();
    if total_power <= 0.0 {
        return None;
    }
    let center_hz = psd
        .iter()
        .enumerate()
        .map(|(k, &p)| bin_frequency(k, n, sample_rate) * p)
        .sum::<f64>()
        / total_power;
    // Occupied bandwidth: grow a window around the peak until 90 % of power.
    let peak = psd
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(k, _)| k)
        .unwrap_or(n / 2);
    let (mut lo, mut hi) = (peak, peak);
    let mut acc = psd[peak];
    while acc < 0.9 * total_power && (lo > 0 || hi < n - 1) {
        let left = if lo > 0 { psd[lo - 1] } else { -1.0 };
        let right = if hi < n - 1 { psd[hi + 1] } else { -1.0 };
        if left >= right {
            lo -= 1;
            acc += psd[lo];
        } else {
            hi += 1;
            acc += psd[hi];
        }
    }
    let occupied_bw_hz = (hi - lo + 1) as f64 * sample_rate / n as f64;
    Some(SpectrumSummary {
        center_hz,
        occupied_bw_hz,
        total_power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::Nco;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<Iq> {
        let mut nco = Nco::new(freq, fs);
        (0..n).map(|_| nco.next_sample()).collect()
    }

    #[test]
    fn fft_of_dc_is_impulse_at_zero() {
        let mut buf = vec![Iq::ONE; 16];
        fft_in_place(&mut buf);
        assert!((buf[0].i - 16.0).abs() < 1e-9);
        for s in &buf[1..] {
            assert!(s.amplitude() < 1e-9);
        }
    }

    #[test]
    fn fft_matches_dft_on_random_input() {
        let n = 32;
        let input: Vec<Iq> = (0..n)
            .map(|k| Iq::new((k as f64 * 0.7).sin(), (k as f64 * 1.3).cos()))
            .collect();
        let mut fast = input.clone();
        fft_in_place(&mut fast);
        for (bin, &f) in fast.iter().enumerate() {
            let mut acc = Iq::ZERO;
            for (k, &x) in input.iter().enumerate() {
                let angle = -std::f64::consts::TAU * bin as f64 * k as f64 / n as f64;
                acc += x * Iq::from_polar(1.0, angle);
            }
            assert!((f - acc).amplitude() < 1e-6, "bin {bin}: {f} vs {acc}");
        }
    }

    #[test]
    fn parseval_holds() {
        let input = tone(1.1e6, 16.0e6, 64);
        let time_energy: f64 = input.iter().map(|s| s.power()).sum();
        let mut buf = input;
        fft_in_place(&mut buf);
        let freq_energy: f64 = buf.iter().map(|s| s.power()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    fn periodogram_peaks_at_tone_frequency() {
        let fs = 16.0e6;
        let f = 3.0e6;
        let psd = periodogram(&tone(f, fs, 1024));
        let n = psd.len();
        let peak = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let peak_freq = bin_frequency(peak, n, fs);
        assert!(
            (peak_freq - f).abs() < 2.0 * fs / n as f64,
            "peak at {peak_freq} Hz"
        );
    }

    #[test]
    fn summary_of_tone_is_narrow() {
        let fs = 16.0e6;
        let s = summarize(&tone(-2.0e6, fs, 2048), fs).unwrap();
        assert!(
            (s.center_hz + 2.0e6).abs() < 50.0e3,
            "center {}",
            s.center_hz
        );
        assert!(s.occupied_bw_hz < 200.0e3, "bw {}", s.occupied_bw_hz);
    }

    #[test]
    fn summary_of_noise_is_wide() {
        let mut noise = vec![Iq::ZERO; 2048];
        crate::AwgnSource::new(5, 1.0).add_to(&mut noise);
        let s = summarize(&noise, 16.0e6).unwrap();
        assert!(s.occupied_bw_hz > 8.0e6, "bw {}", s.occupied_bw_hz);
    }

    #[test]
    fn empty_and_silent_inputs() {
        assert!(periodogram(&[]).is_empty());
        assert!(summarize(&[Iq::ZERO; 64], 1.0e6).is_none());
        assert!(summarize(&[Iq::ONE], 1.0e6).is_none());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Iq::ZERO; 12];
        fft_in_place(&mut buf);
    }

    #[test]
    fn bin_frequency_edges() {
        assert_eq!(bin_frequency(0, 8, 8.0), -4.0);
        assert_eq!(bin_frequency(4, 8, 8.0), 0.0);
        assert_eq!(bin_frequency(7, 8, 8.0), 3.0);
    }
}
