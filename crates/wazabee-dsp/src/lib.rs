#![warn(missing_docs)]

//! # wazabee-dsp
//!
//! Complex-baseband DSP substrate for the WazaBee reproduction (Cayre et al.,
//! *WazaBee: attacking Zigbee networks by diverting Bluetooth Low Energy
//! chips*, DSN 2021).
//!
//! Every radio in the reproduction — BLE, IEEE 802.15.4, Enhanced ShockBurst —
//! is simulated at the IQ-sample level so the paper's central claim (the
//! waveform compatibility of GFSK/GMSK and O-QPSK-with-half-sine) is exercised
//! for real, not assumed. This crate provides the shared building blocks:
//!
//! * [`Iq`] — complex baseband samples and buffer statistics,
//! * [`IqBuf`]/[`IqSlice`] — planar (separate-rail) `f32` buffers and
//!   zero-copy views, the storage the receive hot path runs on,
//! * [`simd`] — explicit-width `f32x8`-style kernels (discriminator, window
//!   sums, FIR, superposition) with bit-identical `*_scalar` references,
//! * [`Nco`] — oscillators for carrier offsets and channel shifts,
//! * [`Fir`] and [`gaussian`]/[`halfsine`] — pulse shaping for GFSK and O-QPSK,
//! * [`discriminator`] — FM discrimination (the receiver side of FSK),
//! * [`AwgnSource`] — deterministic, seedable channel noise,
//! * [`correlate`] — sync-word and PN-sequence correlation,
//! * [`io`] — shared IQ sample-format codecs (`.cf32`, RTL-SDR u8
//!   offset-128) used by the flight recorder and the serve ingest plane,
//! * [`bits`] — LSB-first bit packing shared by both protocols,
//! * [`packed`] — word-packed bit streams: XOR+`count_ones` Hamming and
//!   sliding-register sync correlation, the fast path behind [`correlate`],
//! * [`stream`] — the stateful form of the sync correlator: the sliding
//!   register persists across chunk boundaries so search resumes from an
//!   arbitrary bit offset.
//!
//! ## Example: a complete FSK link in a few lines
//!
//! ```
//! use wazabee_dsp::{bits, discriminator, fir, gaussian, AwgnSource, Iq, Nco};
//!
//! let sps = 8; // samples per symbol
//! let bits_tx = bits::bytes_to_bits_lsb(&[0xC3, 0x5A]);
//!
//! // FSK modulate: phase ramps up for 1, down for 0 (MSK, h = 0.5).
//! let nrz = bits::bits_to_nrz(&bits_tx);
//! let shaped = gaussian::shape_nrz_rect(&nrz, sps);
//! let step = std::f64::consts::FRAC_PI_2 / sps as f64;
//! let mut phase = 0.0;
//! let tx: Vec<Iq> = shaped
//!     .iter()
//!     .map(|&s| {
//!         phase += s * step;
//!         Iq::from_polar(1.0, phase)
//!     })
//!     .collect();
//!
//! // Add noise, then demodulate with a discriminator + integrate-and-dump.
//! let mut rx = tx.clone();
//! AwgnSource::from_snr_db(1, 20.0, 1.0).add_to(&mut rx);
//! let freq = discriminator::discriminate(&rx);
//! let soft = fir::integrate_and_dump(&freq[..freq.len() - freq.len() % sps], sps);
//! let bits_rx = bits::nrz_to_bits(&soft);
//! assert_eq!(&bits_rx[..bits_tx.len() - 1], &bits_tx[..bits_tx.len() - 1]);
//! ```

pub mod awgn;
pub mod bits;
pub mod correlate;
pub mod discriminator;
pub mod fir;
pub mod gaussian;
pub mod halfsine;
pub mod io;
pub mod iq;
pub mod iqbuf;
pub mod osc;
pub mod packed;
pub mod par;
pub mod resample;
pub mod simd;
pub mod spectrum;
pub mod stream;

pub use awgn::AwgnSource;
pub use fir::Fir;
pub use iq::Iq;
pub use iqbuf::{IqBuf, IqSlice};
pub use osc::Nco;
pub use packed::PackedBits;
pub use stream::StreamCorrelator;

#[cfg(test)]
mod lib_tests {
    #[test]
    fn reexports_are_usable() {
        let s = crate::Iq::new(1.0, 0.0);
        assert_eq!(s.amplitude(), 1.0);
        let _ = crate::Nco::new(1.0, 2.0);
        let _ = crate::Fir::new(vec![1.0]);
        let _ = crate::AwgnSource::new(0, 0.0);
    }
}
