//! Half-sine pulse shaping for O-QPSK (802.15.4).
//!
//! 802.15.4's O-QPSK maps even chips onto I and odd chips onto Q, each as a
//! half-sine pulse of duration `2·Tc` (two chip periods), with Q delayed by
//! one chip period `Tc` (paper §III-C, Figure 2).

/// Generates one half-sine pulse spanning `2 * samples_per_chip` samples.
///
/// The pulse is `sin(π t / (2Tc))` for `t ∈ [0, 2Tc)` — zero at both ends,
/// peaking at `t = Tc`.
///
/// # Panics
///
/// Panics if `samples_per_chip` is zero.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::halfsine::half_sine_pulse;
/// let p = half_sine_pulse(4);
/// assert_eq!(p.len(), 8);
/// assert!((p[4] - 1.0).abs() < 1e-12); // peak at the centre
/// assert!(p[0].abs() < 1e-12);
/// ```
pub fn half_sine_pulse(samples_per_chip: usize) -> Vec<f64> {
    assert!(samples_per_chip > 0, "need at least one sample per chip");
    let n = 2 * samples_per_chip;
    (0..n)
        .map(|k| (std::f64::consts::PI * k as f64 / n as f64).sin())
        .collect()
}

/// Shapes a bipolar chip stream (±1) into a half-sine pulse train.
///
/// Chip `k` contributes a pulse starting at sample `k * 2 * samples_per_chip`.
/// Consecutive chips on the same rail are spaced `2·Tc` apart, so their pulses
/// abut without overlapping. Output length is
/// `(chips.len() + …tail) * 2 * samples_per_chip` — precisely
/// `chips.len() * 2 * spc` since pulses do not overlap on one rail.
pub fn shape_half_sine(chips: &[f64], samples_per_chip: usize) -> Vec<f64> {
    let pulse = half_sine_pulse(samples_per_chip);
    let stride = 2 * samples_per_chip;
    let mut out = vec![0.0; chips.len() * stride];
    for (k, &c) in chips.iter().enumerate() {
        let base = k * stride;
        for (j, &p) in pulse.iter().enumerate() {
            out[base + j] += c * p;
        }
    }
    out
}

/// [`half_sine_pulse`] narrowed to `f32` for the planar modulation path.
///
/// # Panics
///
/// Panics if `samples_per_chip` is zero.
pub fn half_sine_pulse_f32(samples_per_chip: usize) -> Vec<f32> {
    half_sine_pulse(samples_per_chip)
        .into_iter()
        .map(|p| p as f32)
        .collect()
}

/// `f32` counterpart of [`shape_half_sine`]: each pulse placement is one
/// [`crate::simd::axpy`] over the pulse span.
pub fn shape_half_sine_f32(chips: &[f32], samples_per_chip: usize) -> Vec<f32> {
    let pulse = half_sine_pulse_f32(samples_per_chip);
    let stride = 2 * samples_per_chip;
    let mut out = vec![0.0f32; chips.len() * stride];
    for (k, &c) in chips.iter().enumerate() {
        let base = k * stride;
        crate::simd::axpy(&mut out[base..base + pulse.len()], &pulse, c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_starts_and_ends_near_zero() {
        let p = half_sine_pulse(8);
        assert!(p[0].abs() < 1e-12);
        // Last sample is sin(π·15/16) — small but non-zero.
        assert!(p[p.len() - 1] < 0.2);
    }

    #[test]
    fn pulse_is_symmetric_about_peak() {
        let p = half_sine_pulse(8);
        let n = p.len();
        for k in 1..n / 2 {
            assert!((p[k] - p[n - k]).abs() < 1e-12);
        }
    }

    #[test]
    fn shaping_respects_chip_sign() {
        let y = shape_half_sine(&[1.0, -1.0], 4);
        assert_eq!(y.len(), 16);
        assert!(y[4] > 0.9); // positive pulse peak
        assert!(y[12] < -0.9); // negative pulse peak
    }

    #[test]
    fn shaped_train_has_no_rail_overlap() {
        // Pulses on one rail abut: energy of the train equals the sum of
        // individual pulse energies.
        let single: f64 = half_sine_pulse(8).iter().map(|x| x * x).sum();
        let train = shape_half_sine(&[1.0, 1.0, -1.0, 1.0], 8);
        let total: f64 = train.iter().map(|x| x * x).sum();
        assert!((total - 4.0 * single).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_oversampling_rejected() {
        let _ = half_sine_pulse(0);
    }

    #[test]
    fn f32_train_tracks_f64_train() {
        let chips = [1.0, -1.0, -1.0, 1.0];
        let want = shape_half_sine(&chips, 8);
        let chips32: Vec<f32> = chips.iter().map(|&c| c as f32).collect();
        let got = shape_half_sine_f32(&chips32, 8);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((f64::from(*g) - w).abs() < 1e-6);
        }
    }
}
