//! Shared IQ sample-format codecs: `.cf32` and RTL-SDR `u8` interleaved.
//!
//! Every component that touches foreign IQ bytes — the flight recorder's
//! capture taps, the `wazabee-serve` ingest plane, file tails replaying SDR
//! dumps — goes through this one module, so a format quirk (offset-128
//! centring, ragged trailing bytes, endianness) is fixed in exactly one
//! place. Two formats are supported, the ones SDR tooling actually emits:
//!
//! * **cf32** — interleaved little-endian `f32` I/Q pairs (GNU Radio file
//!   sinks, inspectrum, `sigmf` converters): 8 bytes per complex sample.
//! * **u8 offset-128** — interleaved unsigned bytes centred on 127.5, the
//!   raw RTL-SDR capture format (`rtl_sdr -f ... out.bin`): 2 bytes per
//!   complex sample, value `(b - 127.5) / 127.5`.
//!
//! File-level helpers ([`read_cf32`], [`write_cf32`], [`read_iq_u8`],
//! [`write_iq_u8`]) speak interleaved `f64` [`Iq`] for compatibility with
//! the synthesis side; the byte-level decoders ([`SampleFormat::decode`],
//! [`decode_cf32_bytes`], [`decode_u8_bytes`]) append straight into a planar
//! [`IqBuf`] because their caller is the receive hot path.

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

use crate::iq::Iq;
use crate::iqbuf::{IqBuf, IqSlice};

/// An on-the-wire IQ sample encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFormat {
    /// Interleaved little-endian `f32` I/Q pairs (8 bytes per sample).
    Cf32,
    /// Interleaved RTL-SDR unsigned bytes centred on 127.5 (2 bytes per
    /// sample).
    U8Offset128,
}

impl SampleFormat {
    /// Bytes per complex sample in this encoding.
    pub fn bytes_per_sample(self) -> usize {
        match self {
            SampleFormat::Cf32 => 8,
            SampleFormat::U8Offset128 => 2,
        }
    }

    /// Short stable name (used in logs and JSON artifacts).
    pub fn name(self) -> &'static str {
        match self {
            SampleFormat::Cf32 => "cf32",
            SampleFormat::U8Offset128 => "u8",
        }
    }

    /// Decodes `bytes` into planar samples appended to `out`.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the byte count is not a whole number of complex
    /// samples in this encoding.
    pub fn decode(self, bytes: &[u8], out: &mut IqBuf) -> io::Result<usize> {
        match self {
            SampleFormat::Cf32 => decode_cf32_bytes(bytes, out),
            SampleFormat::U8Offset128 => decode_u8_bytes(bytes, out),
        }
    }

    /// Encodes a planar window into this format's byte representation.
    pub fn encode(self, samples: IqSlice<'_>) -> Vec<u8> {
        match self {
            SampleFormat::Cf32 => encode_cf32_bytes(samples),
            SampleFormat::U8Offset128 => encode_u8_bytes(samples),
        }
    }
}

fn ragged(format: &str, unit: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{format} byte length is not a multiple of {unit} (one I/Q pair)"),
    )
}

/// Appends interleaved little-endian `f32` I/Q bytes to a planar buffer,
/// returning the number of complex samples decoded.
///
/// # Errors
///
/// `InvalidData` when `bytes.len()` is not a multiple of 8.
pub fn decode_cf32_bytes(bytes: &[u8], out: &mut IqBuf) -> io::Result<usize> {
    if !bytes.len().is_multiple_of(8) {
        return Err(ragged("cf32", 8));
    }
    let n = bytes.len() / 8;
    for c in bytes.chunks_exact(8) {
        out.push(
            f32::from_le_bytes([c[0], c[1], c[2], c[3]]),
            f32::from_le_bytes([c[4], c[5], c[6], c[7]]),
        );
    }
    Ok(n)
}

/// Appends interleaved RTL-SDR offset-128 bytes to a planar buffer,
/// returning the number of complex samples decoded. Each byte maps to
/// `(b - 127.5) / 127.5`, so `0 → -1.0` and `255 → +1.0`.
///
/// # Errors
///
/// `InvalidData` when `bytes.len()` is odd.
pub fn decode_u8_bytes(bytes: &[u8], out: &mut IqBuf) -> io::Result<usize> {
    if !bytes.len().is_multiple_of(2) {
        return Err(ragged("u8 offset-128", 2));
    }
    let n = bytes.len() / 2;
    for c in bytes.chunks_exact(2) {
        out.push(u8_to_level(c[0]), u8_to_level(c[1]));
    }
    Ok(n)
}

/// Encodes a planar window as interleaved little-endian `f32` bytes.
pub fn encode_cf32_bytes(samples: IqSlice<'_>) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 8);
    for (&i, &q) in samples.i().iter().zip(samples.q()) {
        out.extend_from_slice(&i.to_le_bytes());
        out.extend_from_slice(&q.to_le_bytes());
    }
    out
}

/// Encodes a planar window as interleaved RTL-SDR offset-128 bytes,
/// clamping each component to `[-1, 1]`.
pub fn encode_u8_bytes(samples: IqSlice<'_>) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 2);
    for (&i, &q) in samples.i().iter().zip(samples.q()) {
        out.push(level_to_u8(i));
        out.push(level_to_u8(q));
    }
    out
}

fn u8_to_level(b: u8) -> f32 {
    (f32::from(b) - 127.5) / 127.5
}

fn level_to_u8(v: f32) -> u8 {
    let clamped = v.clamp(-1.0, 1.0);
    (clamped * 127.5 + 127.5).round().clamp(0.0, 255.0) as u8
}

/// Writes samples as interleaved little-endian `f32` I/Q pairs.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_cf32(path: &Path, samples: &[Iq]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for s in samples {
        w.write_all(&(s.i as f32).to_le_bytes())?;
        w.write_all(&(s.q as f32).to_le_bytes())?;
    }
    w.flush()
}

/// Reads an interleaved little-endian `f32` I/Q file back into samples.
///
/// # Errors
///
/// Fails on IO errors or a file whose length is not a multiple of 8 bytes.
pub fn read_cf32(path: &Path) -> io::Result<Vec<Iq>> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() % 8 != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "cf32 length is not a whole number of I/Q pairs",
        ));
    }
    let mut buf = IqBuf::with_capacity(raw.len() / 8);
    decode_cf32_bytes(&raw, &mut buf)?;
    Ok(buf.to_interleaved())
}

/// Writes samples as interleaved RTL-SDR offset-128 bytes, clamping each
/// component to `[-1, 1]`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_iq_u8(path: &Path, samples: &[Iq]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for s in samples {
        w.write_all(&[level_to_u8(s.i as f32), level_to_u8(s.q as f32)])?;
    }
    w.flush()
}

/// Reads an interleaved RTL-SDR offset-128 file back into samples.
///
/// # Errors
///
/// Fails on IO errors or a file with an odd byte length.
pub fn read_iq_u8(path: &Path) -> io::Result<Vec<Iq>> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let mut buf = IqBuf::with_capacity(raw.len() / 2);
    decode_u8_bytes(&raw, &mut buf)?;
    Ok(buf.to_interleaved())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wzb-dsp-io-{}-{name}", std::process::id()))
    }

    fn ramp(n: usize) -> Vec<Iq> {
        (0..n)
            .map(|k| Iq::from_polar(0.9, k as f64 * 0.37))
            .collect()
    }

    #[test]
    fn cf32_file_round_trip_is_f32_exact() {
        let path = tmp("rt.cf32");
        let samples = ramp(311);
        write_cf32(&path, &samples).unwrap();
        let back = read_cf32(&path).unwrap();
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(&back) {
            assert!((a.i - b.i).abs() < 1e-6 && (a.q - b.q).abs() < 1e-6);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn u8_file_round_trip_within_quantisation() {
        let path = tmp("rt.u8");
        let samples = ramp(257);
        write_iq_u8(&path, &samples).unwrap();
        let back = read_iq_u8(&path).unwrap();
        assert_eq!(back.len(), samples.len());
        // One offset-128 step is 1/127.5 ≈ 0.0078; round-trip error is at
        // most half a step (reached exactly when a level falls on a bucket
        // boundary, hence the inclusive bound).
        let tol = 0.5 / 127.5 + 1e-6;
        for (a, b) in samples.iter().zip(&back) {
            assert!((a.i - b.i).abs() <= tol, "{} vs {}", a.i, b.i);
            assert!((a.q - b.q).abs() <= tol, "{} vs {}", a.q, b.q);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn byte_codecs_round_trip_planar() {
        let src = IqBuf::from_interleaved(&ramp(123));
        for format in [SampleFormat::Cf32, SampleFormat::U8Offset128] {
            let bytes = format.encode(src.as_slice());
            assert_eq!(bytes.len(), 123 * format.bytes_per_sample());
            let mut back = IqBuf::new();
            assert_eq!(format.decode(&bytes, &mut back).unwrap(), 123);
            let tol = match format {
                SampleFormat::Cf32 => 1e-7,
                SampleFormat::U8Offset128 => 0.5 / 127.5 + 1e-6,
            };
            for k in 0..back.len() {
                let (ai, aq) = src.get(k);
                let (bi, bq) = back.get(k);
                assert!((ai - bi).abs() <= tol && (aq - bq).abs() <= tol);
            }
        }
    }

    #[test]
    fn u8_offset_is_centred_and_saturating() {
        let mut buf = IqBuf::new();
        decode_u8_bytes(&[0, 255, 128, 127], &mut buf).unwrap();
        assert_eq!(buf.get(0), (-1.0, 1.0));
        // 128 and 127 straddle the 127.5 centre by half a step each.
        let (i, q) = buf.get(1);
        assert!(i > 0.0 && q < 0.0 && (i + q).abs() < 1e-6);
        // Encoding clamps out-of-range levels instead of wrapping.
        let mut hot = IqBuf::new();
        hot.push(3.0, -3.0);
        assert_eq!(encode_u8_bytes(hot.as_slice()), vec![255, 0]);
    }

    #[test]
    fn ragged_inputs_rejected() {
        let mut out = IqBuf::new();
        assert!(decode_cf32_bytes(&[0u8; 12], &mut out).is_err());
        assert!(decode_u8_bytes(&[0u8; 3], &mut out).is_err());
        let path = tmp("ragged.cf32");
        std::fs::write(&path, [0u8; 13]).unwrap();
        assert!(read_cf32(&path).is_err());
        std::fs::write(&path, [0u8; 5]).unwrap();
        assert!(read_iq_u8(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decode_appends_instead_of_replacing() {
        let mut out = IqBuf::new();
        out.push(7.0, 7.0);
        decode_u8_bytes(&[128, 128], &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.get(0), (7.0, 7.0));
    }
}
