//! Complex baseband sample type and buffers.
//!
//! Every modulator in this workspace produces, and every demodulator consumes,
//! a sequence of [`Iq`] samples — the complex envelope of the RF signal around
//! some carrier frequency. The medium simulator mixes, attenuates and sums
//! these buffers exactly like an RF channel combines waveforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// One complex baseband sample: `i` is the in-phase component, `q` the
/// quadrature component (paper §III-A, equation 2).
///
/// # Examples
///
/// ```
/// use wazabee_dsp::Iq;
///
/// let s = Iq::from_polar(1.0, std::f64::consts::FRAC_PI_2);
/// assert!((s.i).abs() < 1e-12);
/// assert!((s.q - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Iq {
    /// In-phase component `A(t)·cos(φ(t))`.
    pub i: f64,
    /// Quadrature component `A(t)·sin(φ(t))`.
    pub q: f64,
}

impl Iq {
    /// The additive identity (no signal).
    pub const ZERO: Iq = Iq { i: 0.0, q: 0.0 };
    /// Unit sample on the real axis (phase 0).
    pub const ONE: Iq = Iq { i: 1.0, q: 0.0 };

    /// Creates a sample from rectangular components.
    #[inline]
    pub const fn new(i: f64, q: f64) -> Self {
        Iq { i, q }
    }

    /// Creates a sample from polar components (amplitude, phase in radians).
    #[inline]
    pub fn from_polar(amplitude: f64, phase: f64) -> Self {
        Iq {
            i: amplitude * phase.cos(),
            q: amplitude * phase.sin(),
        }
    }

    /// Instantaneous amplitude `A(t)` (the vector norm in the complex plane).
    #[inline]
    pub fn amplitude(self) -> f64 {
        self.i.hypot(self.q)
    }

    /// Squared amplitude; cheaper than [`Iq::amplitude`] when only comparing.
    #[inline]
    pub fn power(self) -> f64 {
        self.i * self.i + self.q * self.q
    }

    /// Instantaneous phase `φ(t)` in `(-π, π]`.
    #[inline]
    pub fn phase(self) -> f64 {
        self.q.atan2(self.i)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Iq {
            i: self.i,
            q: -self.q,
        }
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Iq {
            i: self.i * k,
            q: self.q * k,
        }
    }

    /// Rotates the sample by `phase` radians (multiplication by `e^{jφ}`).
    #[inline]
    pub fn rotate(self, phase: f64) -> Self {
        self * Iq::from_polar(1.0, phase)
    }

    /// Returns true when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.i.is_finite() && self.q.is_finite()
    }
}

impl fmt::Display for Iq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.q >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.i, self.q)
        } else {
            write!(f, "{:.6}-{:.6}j", self.i, -self.q)
        }
    }
}

impl Add for Iq {
    type Output = Iq;
    #[inline]
    fn add(self, rhs: Iq) -> Iq {
        Iq {
            i: self.i + rhs.i,
            q: self.q + rhs.q,
        }
    }
}

impl AddAssign for Iq {
    #[inline]
    fn add_assign(&mut self, rhs: Iq) {
        self.i += rhs.i;
        self.q += rhs.q;
    }
}

impl Sub for Iq {
    type Output = Iq;
    #[inline]
    fn sub(self, rhs: Iq) -> Iq {
        Iq {
            i: self.i - rhs.i,
            q: self.q - rhs.q,
        }
    }
}

impl SubAssign for Iq {
    #[inline]
    fn sub_assign(&mut self, rhs: Iq) {
        self.i -= rhs.i;
        self.q -= rhs.q;
    }
}

impl Mul for Iq {
    type Output = Iq;
    #[inline]
    fn mul(self, rhs: Iq) -> Iq {
        Iq {
            i: self.i * rhs.i - self.q * rhs.q,
            q: self.i * rhs.q + self.q * rhs.i,
        }
    }
}

impl MulAssign for Iq {
    #[inline]
    fn mul_assign(&mut self, rhs: Iq) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Iq {
    type Output = Iq;
    #[inline]
    fn mul(self, rhs: f64) -> Iq {
        self.scale(rhs)
    }
}

impl Div<f64> for Iq {
    type Output = Iq;
    #[inline]
    fn div(self, rhs: f64) -> Iq {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Iq {
    type Output = Iq;
    #[inline]
    fn neg(self) -> Iq {
        Iq {
            i: -self.i,
            q: -self.q,
        }
    }
}

impl Sum for Iq {
    fn sum<I: Iterator<Item = Iq>>(iter: I) -> Iq {
        iter.fold(Iq::ZERO, |a, b| a + b)
    }
}

impl From<(f64, f64)> for Iq {
    fn from((i, q): (f64, f64)) -> Self {
        Iq { i, q }
    }
}

/// Mean power of a sample slice, in linear units.
///
/// Returns 0.0 for an empty slice.
pub fn mean_power(samples: &[Iq]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.power()).sum::<f64>() / samples.len() as f64
}

/// Peak amplitude over a sample slice (0.0 for an empty slice).
pub fn peak_amplitude(samples: &[Iq]) -> f64 {
    samples
        .iter()
        .map(|s| s.amplitude())
        .fold(0.0_f64, f64::max)
}

/// Unwraps a sequence of phases (radians) so successive values never jump by
/// more than π, reconstructing a continuous phase trajectory.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::iq::unwrap_phases;
/// let wrapped = vec![3.0, -3.0]; // a +0.28 rad step, wrapped around ±π
/// let un = unwrap_phases(&wrapped);
/// assert!((un[1] - un[0] - (2.0 * std::f64::consts::PI - 6.0)).abs() < 1e-12);
/// ```
pub fn unwrap_phases(phases: &[f64]) -> Vec<f64> {
    use std::f64::consts::{PI, TAU};
    let mut out = Vec::with_capacity(phases.len());
    let mut offset = 0.0;
    for (k, &p) in phases.iter().enumerate() {
        if k > 0 {
            let prev = out[k - 1] - offset;
            let mut d = p - prev;
            while d > PI {
                d -= TAU;
                offset -= TAU;
            }
            while d < -PI {
                d += TAU;
                offset += TAU;
            }
        }
        out.push(p + offset);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn polar_round_trip() {
        let s = Iq::from_polar(2.5, 1.0);
        assert!((s.amplitude() - 2.5).abs() < 1e-12);
        assert!((s.phase() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiplication_adds_phases() {
        let a = Iq::from_polar(1.0, 0.4);
        let b = Iq::from_polar(2.0, 0.7);
        let c = a * b;
        assert!((c.amplitude() - 2.0).abs() < 1e-12);
        assert!((c.phase() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn conjugate_negates_phase() {
        let a = Iq::from_polar(1.0, 0.9);
        assert!((a.conj().phase() + 0.9).abs() < 1e-12);
    }

    #[test]
    fn rotate_quarter_turn() {
        let a = Iq::ONE.rotate(FRAC_PI_2);
        assert!(a.i.abs() < 1e-12);
        assert!((a.q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_and_mean_power() {
        let buf = vec![Iq::new(1.0, 0.0), Iq::new(0.0, 1.0)];
        let total: Iq = buf.iter().copied().sum();
        assert_eq!(total, Iq::new(1.0, 1.0));
        assert!((mean_power(&buf) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_power_empty_is_zero() {
        assert_eq!(mean_power(&[]), 0.0);
        assert_eq!(peak_amplitude(&[]), 0.0);
    }

    #[test]
    fn unwrap_recovers_linear_ramp() {
        // A +π/2-per-step ramp wraps every 4 steps; unwrap must restore it.
        let n = 32;
        let truth: Vec<f64> = (0..n).map(|k| k as f64 * FRAC_PI_2).collect();
        let wrapped: Vec<f64> = truth
            .iter()
            .map(|p| {
                let mut x = p.rem_euclid(TAU);
                if x > PI {
                    x -= TAU;
                }
                x
            })
            .collect();
        let un = unwrap_phases(&wrapped);
        for k in 1..n {
            let d = (un[k] - un[k - 1]) - FRAC_PI_2;
            assert!(d.abs() < 1e-9, "step {k} deviates by {d}");
        }
    }

    #[test]
    fn display_formats_both_signs() {
        assert_eq!(format!("{}", Iq::new(1.0, 2.0)), "1.000000+2.000000j");
        assert_eq!(format!("{}", Iq::new(1.0, -2.0)), "1.000000-2.000000j");
    }

    #[test]
    fn neg_and_sub_agree() {
        let a = Iq::new(0.3, -0.4);
        let b = Iq::new(1.0, 2.0);
        assert_eq!(a - b, a + (-b));
    }
}

/// Received signal strength relative to full scale, in dBFS
/// (`10·log10(mean power)`); `-inf` for silence.
///
/// The simulation has no absolute dBm reference, so monitors and sniffers
/// report strengths relative to the unit-power modems.
pub fn rssi_dbfs(samples: &[Iq]) -> f64 {
    let p = mean_power(samples);
    10.0 * p.log10()
}

#[cfg(test)]
mod rssi_tests {
    use super::*;

    #[test]
    fn unit_tone_is_zero_dbfs() {
        let buf = vec![Iq::from_polar(1.0, 0.3); 64];
        assert!(rssi_dbfs(&buf).abs() < 1e-9);
    }

    #[test]
    fn half_amplitude_is_minus_six_db() {
        let buf = vec![Iq::from_polar(0.5, 0.0); 64];
        assert!((rssi_dbfs(&buf) + 6.0206).abs() < 1e-3);
    }

    #[test]
    fn silence_is_negative_infinity() {
        assert_eq!(rssi_dbfs(&[Iq::ZERO; 8]), f64::NEG_INFINITY);
        assert_eq!(rssi_dbfs(&[]), f64::NEG_INFINITY);
    }
}
