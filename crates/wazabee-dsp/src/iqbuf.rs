//! Planar (structure-of-arrays) IQ storage for the SIMD sample-domain path.
//!
//! The interleaved [`Iq`] struct is the right currency for waveform *synthesis*
//! — the modulators accumulate phase in `f64` and the committed artifacts pin
//! those exact waveforms — but it is hostile to the receive hot path: every
//! discriminator, FIR and superposition kernel wants contiguous same-component
//! lanes it can load eight at a time. [`IqBuf`] keeps the I and Q rails in two
//! separate `f32` vectors so the kernels in [`crate::simd`] never have to
//! de-interleave, and [`IqSlice`] gives zero-copy windows into a buffer so
//! stages can hand sub-ranges around without re-packing.
//!
//! `f32` halves memory traffic and doubles SIMD width; the receive chain's
//! decisions (hard bits from windowed discriminator sums, Hamming distances)
//! have orders of magnitude more margin than the ~1e-7 relative rounding this
//! introduces, which the frame-pinning parity tests in the integration suite
//! verify end to end.

use crate::iq::Iq;

/// A planar complex-baseband buffer: separate `f32` I and Q rails.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::{Iq, IqBuf};
/// let buf = IqBuf::from_interleaved(&[Iq::new(1.0, 2.0), Iq::new(3.0, 4.0)]);
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.i(), &[1.0, 3.0]);
/// assert_eq!(buf.q(), &[2.0, 4.0]);
/// assert_eq!(buf.to_interleaved()[1], Iq::new(3.0, 4.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IqBuf {
    i: Vec<f32>,
    q: Vec<f32>,
}

impl IqBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        IqBuf::default()
    }

    /// An empty buffer with both rails pre-allocated for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        IqBuf {
            i: Vec::with_capacity(n),
            q: Vec::with_capacity(n),
        }
    }

    /// Converts an interleaved `f64` buffer (narrowing each component to `f32`).
    pub fn from_interleaved(samples: &[Iq]) -> Self {
        let mut buf = IqBuf::with_capacity(samples.len());
        buf.extend_interleaved(samples);
        buf
    }

    /// Number of complex samples.
    pub fn len(&self) -> usize {
        self.i.len()
    }

    /// Whether the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.i.is_empty()
    }

    /// Drops all samples, keeping the allocations.
    pub fn clear(&mut self) {
        self.i.clear();
        self.q.clear();
    }

    /// Appends one complex sample.
    pub fn push(&mut self, i: f32, q: f32) {
        self.i.push(i);
        self.q.push(q);
    }

    /// Appends an interleaved `f64` chunk, narrowing to `f32`.
    pub fn extend_interleaved(&mut self, samples: &[Iq]) {
        self.i.reserve(samples.len());
        self.q.reserve(samples.len());
        for s in samples {
            self.i.push(s.i as f32);
            self.q.push(s.q as f32);
        }
    }

    /// Appends every sample of a planar slice.
    pub fn extend_slice(&mut self, s: IqSlice<'_>) {
        self.i.extend_from_slice(s.i);
        self.q.extend_from_slice(s.q);
    }

    /// The I rail.
    pub fn i(&self) -> &[f32] {
        &self.i
    }

    /// The Q rail.
    pub fn q(&self) -> &[f32] {
        &self.q
    }

    /// Mutable access to both rails at once (they always stay equal-length).
    pub fn rails_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.i, &mut self.q)
    }

    /// Sample `k` as an `(i, q)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of bounds.
    pub fn get(&self, k: usize) -> (f32, f32) {
        (self.i[k], self.q[k])
    }

    /// Zero-copy view of the whole buffer.
    pub fn as_slice(&self) -> IqSlice<'_> {
        IqSlice {
            i: &self.i,
            q: &self.q,
        }
    }

    /// Zero-copy view of samples `from..` (saturating at the end).
    pub fn slice_from(&self, from: usize) -> IqSlice<'_> {
        let from = from.min(self.i.len());
        IqSlice {
            i: &self.i[from..],
            q: &self.q[from..],
        }
    }

    /// Zero-copy view of samples `from..to` (both saturating at the end).
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    pub fn slice(&self, from: usize, to: usize) -> IqSlice<'_> {
        let to = to.min(self.i.len());
        let from = from.min(to);
        IqSlice {
            i: &self.i[from..to],
            q: &self.q[from..to],
        }
    }

    /// Removes the first `n` samples (saturating), shifting the rest down.
    pub fn drain_front(&mut self, n: usize) {
        let n = n.min(self.i.len());
        self.i.drain(..n);
        self.q.drain(..n);
    }

    /// Grows or shrinks to `n` samples, filling with zeros.
    pub fn resize(&mut self, n: usize) {
        self.i.resize(n, 0.0);
        self.q.resize(n, 0.0);
    }

    /// Widens back to the interleaved `f64` representation.
    pub fn to_interleaved(&self) -> Vec<Iq> {
        self.as_slice().to_interleaved()
    }

    /// Mean of `i² + q²`, accumulated in `f64`.
    pub fn mean_power(&self) -> f64 {
        self.as_slice().mean_power()
    }
}

/// A zero-copy planar view: borrowed I and Q rails of equal length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqSlice<'a> {
    i: &'a [f32],
    q: &'a [f32],
}

impl<'a> IqSlice<'a> {
    /// Builds a view from two equal-length rails.
    ///
    /// # Panics
    ///
    /// Panics if the rails differ in length.
    pub fn new(i: &'a [f32], q: &'a [f32]) -> Self {
        assert_eq!(i.len(), q.len(), "planar rails must be equal-length");
        IqSlice { i, q }
    }

    /// Number of complex samples.
    pub fn len(&self) -> usize {
        self.i.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.i.is_empty()
    }

    /// The I rail.
    pub fn i(&self) -> &'a [f32] {
        self.i
    }

    /// The Q rail.
    pub fn q(&self) -> &'a [f32] {
        self.q
    }

    /// Sample `k` as an `(i, q)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of bounds.
    pub fn get(&self, k: usize) -> (f32, f32) {
        (self.i[k], self.q[k])
    }

    /// Sub-view of samples `from..` (saturating at the end).
    pub fn slice_from(&self, from: usize) -> IqSlice<'a> {
        let from = from.min(self.i.len());
        IqSlice {
            i: &self.i[from..],
            q: &self.q[from..],
        }
    }

    /// Sub-view of samples `from..to` (both saturating at the end).
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    pub fn slice(&self, from: usize, to: usize) -> IqSlice<'a> {
        let to = to.min(self.i.len());
        let from = from.min(to);
        IqSlice {
            i: &self.i[from..to],
            q: &self.q[from..to],
        }
    }

    /// Widens to the interleaved `f64` representation.
    pub fn to_interleaved(&self) -> Vec<Iq> {
        self.i
            .iter()
            .zip(self.q)
            .map(|(&i, &q)| Iq::new(f64::from(i), f64::from(q)))
            .collect()
    }

    /// Mean of `i² + q²`, accumulated in `f64`.
    pub fn mean_power(&self) -> f64 {
        if self.i.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .i
            .iter()
            .zip(self.q)
            .map(|(&i, &q)| f64::from(i) * f64::from(i) + f64::from(q) * f64::from(q))
            .sum();
        sum / self.i.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<Iq> {
        (0..n)
            .map(|k| Iq::new(k as f64, -(k as f64) / 2.0))
            .collect()
    }

    #[test]
    fn round_trip_preserves_f32_representable_values() {
        let src = ramp(37);
        let buf = IqBuf::from_interleaved(&src);
        assert_eq!(buf.len(), 37);
        assert_eq!(buf.to_interleaved(), src);
    }

    #[test]
    fn slicing_is_zero_copy_and_consistent() {
        let buf = IqBuf::from_interleaved(&ramp(16));
        let s = buf.slice(4, 12);
        assert_eq!(s.len(), 8);
        assert_eq!(s.get(0), (4.0, -2.0));
        let nested = s.slice_from(2).slice(0, 3);
        assert_eq!(nested.len(), 3);
        assert_eq!(nested.get(0), (6.0, -3.0));
        // Out-of-range bounds saturate instead of panicking.
        assert_eq!(buf.slice(10, 100).len(), 6);
        assert!(buf.slice_from(99).is_empty());
    }

    #[test]
    fn drain_front_shifts_samples() {
        let mut buf = IqBuf::from_interleaved(&ramp(10));
        buf.drain_front(4);
        assert_eq!(buf.len(), 6);
        assert_eq!(buf.get(0), (4.0, -2.0));
        buf.drain_front(100);
        assert!(buf.is_empty());
    }

    #[test]
    fn resize_zero_fills() {
        let mut buf = IqBuf::new();
        buf.resize(4);
        assert_eq!(buf.i(), &[0.0; 4]);
        buf.push(1.0, 2.0);
        assert_eq!(buf.len(), 5);
        buf.resize(2);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn mean_power_matches_interleaved() {
        let src = ramp(100);
        let buf = IqBuf::from_interleaved(&src);
        let want = crate::iq::mean_power(&src);
        assert!((buf.mean_power() - want).abs() / want < 1e-6);
        assert_eq!(IqBuf::new().mean_power(), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_rails_rejected() {
        let _ = IqSlice::new(&[1.0], &[]);
    }
}
