//! Deterministic parallel map over independent work items.
//!
//! Shared by the benchmark sweep driver (grid cells) and the spectrum
//! simulator (channel shards, per-receiver cluster decodes): every item's
//! result is derived from the item alone — never from execution order — so
//! fanning the items out over scoped worker threads and merging results back
//! in input order yields output byte-identical to a serial run.
//!
//! Built on [`std::thread::scope`] — no external thread-pool dependency. The
//! worker count comes from the `WAZABEE_THREADS` environment variable when
//! set (a positive integer), otherwise from
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count used when the caller does not pin one: `WAZABEE_THREADS`
/// when set to a positive integer, otherwise the machine's available
/// parallelism (falling back to 1 when even that is unknown).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("WAZABEE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on `threads` worker threads (`None` means
/// [`default_threads`]), returning results in input order.
///
/// Work is distributed dynamically — an atomic cursor hands the next index to
/// whichever worker is free — but each result is stored at its item's index,
/// so the output order (and therefore any artifact rendered from it) is
/// independent of scheduling. `f` must derive everything it needs from the
/// item itself; with per-cell seeds that makes parallel runs byte-identical
/// to serial ones.
///
/// # Panics
///
/// Propagates a panic from any worker invocation of `f`.
pub fn par_map_with<T, U, F>(threads: Option<usize>, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = threads.unwrap_or_else(default_threads).max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let cells: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            break;
                        }
                        let item = cells[k]
                            .lock()
                            .expect("cell lock")
                            .take()
                            .expect("cell taken once");
                        done.push((k, f(item)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (k, u) in buckets.drain(..).flatten() {
        out[k] = Some(u);
    }
    out.into_iter()
        .map(|u| u.expect("every cell computed"))
        .collect()
}

/// [`par_map_with`] at the default worker count — the common entry point for
/// the benchmark binaries.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_with(None, items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [Some(1), Some(2), Some(4), Some(9)] {
            let items: Vec<usize> = (0..100).collect();
            let out = par_map_with(threads, items, |k| k * 3);
            assert_eq!(out, (0..100).map(|k| k * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let work = |k: u64| -> u64 {
            // A little deterministic arithmetic per cell.
            (0..500).fold(k, |a, b| a.wrapping_mul(6364136223846793005) ^ b)
        };
        let serial = par_map_with(Some(1), (0..64).collect(), work);
        let parallel = par_map_with(Some(8), (0..64).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(Some(4), empty, |k| k).is_empty());
        assert_eq!(par_map_with(Some(4), vec![7u32], |k| k + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_with(Some(32), (0..3).collect::<Vec<_>>(), |k| k);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
