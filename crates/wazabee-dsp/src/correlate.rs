//! Pattern correlation over bit streams and soft-decision sequences.
//!
//! Radio receivers find the start of a frame by correlating the incoming bit
//! stream against a known pattern (BLE: the access address; 802.15.4: the
//! preamble/SFD chips). WazaBee's RX primitive abuses exactly this machinery,
//! so the simulator exposes it as a first-class operation.

use crate::bits::hamming;
use crate::packed::PackedBits;

/// A match produced by [`find_pattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternMatch {
    /// Index in the haystack where the pattern starts.
    pub index: usize,
    /// Number of mismatching bits at that alignment.
    pub errors: usize,
}

/// Finds the first alignment of `pattern` inside `stream` with at most
/// `max_errors` bit mismatches, scanning from `start`.
///
/// Returns `None` when no alignment qualifies.
///
/// This is a thin shim over the word-packed sliding-register correlator in
/// [`crate::packed`]: the stream and pattern are packed once (O(n)), then
/// searched at a handful of word operations per alignment instead of one
/// byte operation per pattern bit. Callers holding a [`PackedBits`] stream
/// should call [`crate::packed::find_pattern_packed`] directly and skip the
/// packing. The scalar reference survives as [`find_pattern_scalar`].
///
/// # Examples
///
/// ```
/// use wazabee_dsp::correlate::find_pattern;
/// let stream = [0, 0, 1, 0, 1, 1, 0];
/// let m = find_pattern(&stream, &[1, 0, 1], 0, 0).unwrap();
/// assert_eq!(m.index, 2);
/// assert_eq!(m.errors, 0);
/// ```
pub fn find_pattern(
    stream: &[u8],
    pattern: &[u8],
    start: usize,
    max_errors: usize,
) -> Option<PatternMatch> {
    if pattern.is_empty() || stream.len() < pattern.len() {
        return None;
    }
    crate::packed::find_pattern_packed(
        &PackedBits::from_bits(stream),
        &PackedBits::from_bits(pattern),
        start,
        max_errors,
    )
}

/// The scalar byte-per-bit reference implementation of [`find_pattern`]:
/// O(n·m), kept for property tests and micro-benchmarks against the packed
/// fast path.
pub fn find_pattern_scalar(
    stream: &[u8],
    pattern: &[u8],
    start: usize,
    max_errors: usize,
) -> Option<PatternMatch> {
    if pattern.is_empty() || stream.len() < pattern.len() {
        return None;
    }
    let last = stream.len() - pattern.len();
    for index in start..=last {
        let errors = hamming(&stream[index..index + pattern.len()], pattern);
        if errors <= max_errors {
            return Some(PatternMatch { index, errors });
        }
    }
    None
}

/// Finds the best (fewest-errors) alignment of `pattern` in `stream`,
/// regardless of error count. Returns `None` only when the stream is shorter
/// than the pattern or the pattern is empty.
///
/// Like [`find_pattern`], a shim over the packed kernels; the scalar
/// reference survives as [`best_pattern_match_scalar`].
pub fn best_pattern_match(stream: &[u8], pattern: &[u8]) -> Option<PatternMatch> {
    if pattern.is_empty() || stream.len() < pattern.len() {
        return None;
    }
    crate::packed::best_pattern_match_packed(
        &PackedBits::from_bits(stream),
        &PackedBits::from_bits(pattern),
    )
}

/// The scalar byte-per-bit reference implementation of
/// [`best_pattern_match`].
pub fn best_pattern_match_scalar(stream: &[u8], pattern: &[u8]) -> Option<PatternMatch> {
    if pattern.is_empty() || stream.len() < pattern.len() {
        return None;
    }
    let last = stream.len() - pattern.len();
    let mut best: Option<PatternMatch> = None;
    for index in 0..=last {
        let errors = hamming(&stream[index..index + pattern.len()], pattern);
        if best.is_none_or(|b| errors < b.errors) {
            best = Some(PatternMatch { index, errors });
            if errors == 0 {
                break;
            }
        }
    }
    best
}

/// Soft correlation of a bipolar template against a soft-decision stream:
/// returns the normalised dot product at every alignment (range ≈ [−1, 1] for
/// matched amplitudes).
pub fn soft_correlate(stream: &[f64], template: &[f64]) -> Vec<f64> {
    if template.is_empty() || stream.len() < template.len() {
        return Vec::new();
    }
    let energy: f64 = template.iter().map(|t| t * t).sum();
    if energy == 0.0 {
        return vec![0.0; stream.len() - template.len() + 1];
    }
    (0..=stream.len() - template.len())
        .map(|k| {
            stream[k..k + template.len()]
                .iter()
                .zip(template)
                .map(|(s, t)| s * t)
                .sum::<f64>()
                / energy
        })
        .collect()
}

/// Index of the maximum of a slice (`None` for an empty slice; ties take the
/// earliest index).
pub fn argmax(values: &[f64]) -> Option<usize> {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_found() {
        let stream = [1, 1, 0, 1, 0, 0, 1];
        let m = find_pattern(&stream, &[0, 1, 0], 0, 0).unwrap();
        assert_eq!(
            m,
            PatternMatch {
                index: 2,
                errors: 0
            }
        );
    }

    #[test]
    fn tolerant_match_counts_errors() {
        let stream = [1, 1, 0, 1, 1, 0, 1];
        // Every 3-bit window of this stream differs from 0,0,0 in exactly
        // two positions, so a 1-error search fails and a 2-error search
        // matches at the first alignment.
        assert!(find_pattern(&stream, &[0, 0, 0], 0, 1).is_none());
        let m = find_pattern(&stream, &[0, 0, 0], 0, 2).unwrap();
        assert_eq!(m.index, 0);
        assert_eq!(m.errors, 2);
    }

    #[test]
    fn start_offset_skips_early_matches() {
        let stream = [1, 0, 1, 0, 1, 0];
        let m = find_pattern(&stream, &[1, 0], 1, 0).unwrap();
        assert_eq!(m.index, 2);
    }

    #[test]
    fn no_match_in_short_stream() {
        assert!(find_pattern(&[1, 0], &[1, 0, 1], 0, 3).is_none());
        assert!(find_pattern(&[], &[1], 0, 0).is_none());
        assert!(find_pattern(&[1], &[], 0, 0).is_none());
    }

    #[test]
    fn best_match_minimises_errors() {
        let stream = [1, 0, 0, 1, 1, 1, 0, 1];
        let b = best_pattern_match(&stream, &[1, 1, 1, 1]).unwrap();
        assert_eq!(b.index, 2); // earliest of the 1-error alignments
        assert_eq!(b.errors, 1);
    }

    #[test]
    fn soft_correlation_peaks_at_alignment() {
        let template = [1.0, -1.0, 1.0, 1.0];
        let mut stream = vec![0.1, -0.2, 0.0];
        stream.extend_from_slice(&template);
        stream.push(0.3);
        let c = soft_correlate(&stream, &template);
        assert_eq!(argmax(&c), Some(3));
        assert!((c[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn soft_correlation_of_inverted_template_is_minus_one() {
        let template = [1.0, -1.0, 1.0];
        let stream: Vec<f64> = template.iter().map(|x| -x).collect();
        let c = soft_correlate(&stream, &template);
        assert!((c[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_handles_edges() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[2.0]), Some(0));
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1)); // earliest tie wins
    }
}
