//! Bit-level utilities shared by every PHY in the workspace.
//!
//! Both BLE and 802.15.4 transmit bytes least-significant-bit first, so the
//! canonical on-air representation used throughout this workspace is a
//! `Vec<u8>` of 0/1 values in transmission order.

/// Expands bytes into bits, least-significant bit first (BLE and 802.15.4
/// on-air order).
///
/// # Examples
///
/// ```
/// use wazabee_dsp::bits::bytes_to_bits_lsb;
/// assert_eq!(bytes_to_bits_lsb(&[0b0000_0001]), vec![1, 0, 0, 0, 0, 0, 0, 0]);
/// ```
pub fn bytes_to_bits_lsb(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &byte in bytes {
        for k in 0..8 {
            bits.push((byte >> k) & 1);
        }
    }
    bits
}

/// Packs bits (LSB-first per byte) back into bytes.
///
/// The final partial byte, if any, is zero-padded in its high bits.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::bits::{bits_to_bytes_lsb, bytes_to_bits_lsb};
/// let bytes = vec![0xA5, 0x3C];
/// assert_eq!(bits_to_bytes_lsb(&bytes_to_bits_lsb(&bytes)), bytes);
/// ```
pub fn bits_to_bytes_lsb(bits: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(bits.len().div_ceil(8));
    for chunk in bits.chunks(8) {
        let mut byte = 0u8;
        for (k, &b) in chunk.iter().enumerate() {
            byte |= (b & 1) << k;
        }
        bytes.push(byte);
    }
    bytes
}

/// Expands bytes into bits, most-significant bit first.
///
/// Used for printing and for the 802.15.4 PN-sequence literals, which the
/// standard (and paper Table I) writes chip `c0` first.
pub fn bytes_to_bits_msb(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &byte in bytes {
        for k in (0..8).rev() {
            bits.push((byte >> k) & 1);
        }
    }
    bits
}

/// Hamming distance between two equal-length bit slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn hamming(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance needs equal lengths");
    a.iter()
        .zip(b)
        .filter(|(x, y)| (**x ^ **y) & 1 == 1)
        .count()
}

/// Parses a whitespace-separated string of `0`/`1` characters into bits.
///
/// Any character other than `0`, `1` or ASCII whitespace is rejected.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::bits::parse_bits;
/// assert_eq!(parse_bits("1101 1001").unwrap(), vec![1, 1, 0, 1, 1, 0, 0, 1]);
/// assert!(parse_bits("10x").is_none());
/// ```
pub fn parse_bits(s: &str) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '0' => out.push(0),
            '1' => out.push(1),
            c if c.is_ascii_whitespace() => {}
            _ => return None,
        }
    }
    Some(out)
}

/// Renders bits as a compact string of `0`/`1` characters.
pub fn format_bits(bits: &[u8]) -> String {
    bits.iter()
        .map(|&b| if b & 1 == 1 { '1' } else { '0' })
        .collect()
}

/// Inverts every bit in place.
pub fn invert_bits(bits: &mut [u8]) {
    for b in bits {
        *b ^= 1;
    }
}

/// Reverses the bit order of a byte (b7..b0 → b0..b7).
///
/// # Examples
///
/// ```
/// use wazabee_dsp::bits::reverse_byte;
/// assert_eq!(reverse_byte(0b1000_0000), 0b0000_0001);
/// ```
pub const fn reverse_byte(byte: u8) -> u8 {
    byte.reverse_bits()
}

/// Maps bits to bipolar symbols: 1 → +1.0, 0 → −1.0.
pub fn bits_to_nrz(bits: &[u8]) -> Vec<f64> {
    bits.iter()
        .map(|&b| if b & 1 == 1 { 1.0 } else { -1.0 })
        .collect()
}

/// Maps bipolar soft values back to hard bits (ties round to 1).
pub fn nrz_to_bits(symbols: &[f64]) -> Vec<u8> {
    symbols.iter().map(|&s| u8::from(s >= 0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsb_expansion_order() {
        // 0x55 is the BLE preamble: alternating bits starting with 1 (LSB).
        assert_eq!(bytes_to_bits_lsb(&[0x55]), vec![1, 0, 1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn msb_expansion_order() {
        assert_eq!(
            bytes_to_bits_msb(&[0b1101_1001]),
            vec![1, 1, 0, 1, 1, 0, 0, 1]
        );
    }

    #[test]
    fn pack_round_trip_all_bytes() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(bits_to_bytes_lsb(&bytes_to_bits_lsb(&bytes)), bytes);
    }

    #[test]
    fn pack_partial_byte_pads_high_bits() {
        assert_eq!(bits_to_bytes_lsb(&[1, 1, 1]), vec![0b0000_0111]);
    }

    #[test]
    fn hamming_counts_differences() {
        assert_eq!(hamming(&[0, 1, 1, 0], &[0, 1, 0, 1]), 2);
        assert_eq!(hamming(&[], &[]), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_rejects_mismatched_lengths() {
        let _ = hamming(&[0], &[0, 1]);
    }

    #[test]
    fn parse_and_format_round_trip() {
        let s = "11011001 11000011 01010010 00101110";
        let bits = parse_bits(s).unwrap();
        assert_eq!(bits.len(), 32);
        assert_eq!(format_bits(&bits), s.replace(' ', ""));
    }

    #[test]
    fn nrz_round_trip() {
        let bits = vec![1, 0, 0, 1, 1, 0];
        assert_eq!(nrz_to_bits(&bits_to_nrz(&bits)), bits);
    }

    #[test]
    fn invert_is_involutive() {
        let mut bits = vec![1, 0, 1, 1];
        invert_bits(&mut bits);
        assert_eq!(bits, vec![0, 1, 0, 0]);
        invert_bits(&mut bits);
        assert_eq!(bits, vec![1, 0, 1, 1]);
    }

    #[test]
    fn reverse_byte_known_values() {
        assert_eq!(reverse_byte(0x01), 0x80);
        assert_eq!(reverse_byte(0xA5), 0xA5); // palindromic bit pattern
        assert_eq!(reverse_byte(0x0F), 0xF0);
    }
}
