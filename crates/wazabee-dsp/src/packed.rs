//! Word-packed bit streams: the fast path behind every hot bit-level kernel.
//!
//! The canonical on-air representation in this workspace is a `Vec<u8>` of
//! 0/1 values — convenient, but every Hamming distance and sync correlation
//! over it costs one byte operation per bit. [`PackedBits`] stores the same
//! stream 64 bits per `u64` word (bit *k* of the stream in word `k / 64` at
//! position `k % 64`, matching the LSB-first on-air order of
//! [`crate::bits::bytes_to_bits_lsb`]), so Hamming distance becomes
//! XOR + `count_ones` and sync correlation becomes a sliding shift register —
//! the same trick real radio correlator hardware plays.
//!
//! Scalar byte-per-bit reference implementations remain available in
//! [`crate::bits`] and [`crate::correlate`]; property tests assert the two
//! agree bit-for-bit.

use crate::correlate::PatternMatch;

/// A bit stream packed 64 bits per word, LSB-first.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::packed::PackedBits;
/// let p = PackedBits::from_bits(&[1, 0, 1, 1]);
/// assert_eq!(p.len(), 4);
/// assert_eq!(p.bit(2), 1);
/// assert_eq!(p.extract(0, 4), 0b1101);
/// assert_eq!(p.to_bits(), vec![1, 0, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedBits {
    words: Vec<u64>,
    len: usize,
}

impl PackedBits {
    /// Packs a 0/1 slice (values are masked to their lowest bit).
    pub fn from_bits(bits: &[u8]) -> Self {
        let mut words = vec![0u64; bits.len().div_ceil(64)];
        for (k, &b) in bits.iter().enumerate() {
            words[k / 64] |= u64::from(b & 1) << (k % 64);
        }
        PackedBits {
            words,
            len: bits.len(),
        }
    }

    /// Number of bits in the stream.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying 64-bit words (the final word is zero-padded).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Bit `k` of the stream (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn bit(&self, k: usize) -> u8 {
        assert!(k < self.len, "bit index {k} out of range {}", self.len);
        ((self.words[k / 64] >> (k % 64)) & 1) as u8
    }

    /// Extracts `count ≤ 64` bits starting at `start`, returned LSB-first in
    /// a `u64` (bit *j* of the window at position *j*).
    ///
    /// # Panics
    ///
    /// Panics if `count > 64` or the window exceeds the stream.
    pub fn extract(&self, start: usize, count: usize) -> u64 {
        assert!(count <= 64, "cannot extract {count} > 64 bits");
        assert!(
            start + count <= self.len,
            "window {start}+{count} exceeds stream length {}",
            self.len
        );
        if count == 0 {
            return 0;
        }
        let word = start / 64;
        let shift = start % 64;
        let mut v = self.words[word] >> shift;
        if shift != 0 && word + 1 < self.words.len() {
            v |= self.words[word + 1] << (64 - shift);
        }
        if count == 64 {
            v
        } else {
            v & ((1u64 << count) - 1)
        }
    }

    /// Extracts `count ≤ 32` bits starting at `start` as a `u32` — the shape
    /// the packed despreading tables consume.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32` or the window exceeds the stream.
    pub fn extract_u32(&self, start: usize, count: usize) -> u32 {
        assert!(count <= 32, "cannot extract {count} > 32 bits into a u32");
        self.extract(start, count) as u32
    }

    /// Unpacks back to the byte-per-bit representation.
    pub fn to_bits(&self) -> Vec<u8> {
        (0..self.len).map(|k| self.bit(k)).collect()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another stream of the same length, computed one
    /// XOR + `count_ones` per 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &PackedBits) -> usize {
        assert_eq!(self.len, other.len, "hamming distance needs equal lengths");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Appends one bit (masked to its lowest bit) at the end of the stream.
    pub fn push(&mut self, bit: u8) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        let word = self.len / 64;
        self.words[word] |= u64::from(bit & 1) << (self.len % 64);
        self.len += 1;
    }

    /// Appends a 0/1 slice (values masked to their lowest bit) at the end of
    /// the stream — the growth path of the streaming correlator lanes.
    pub fn extend_from_bits(&mut self, bits: &[u8]) {
        for &b in bits {
            self.push(b);
        }
    }

    /// Empties the stream while keeping the word allocation — the recycle
    /// path of pooled receive engines, which reset between sessions instead
    /// of reallocating every lane.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Drops `words` whole 64-bit words (`words * 64` bits) from the front of
    /// the stream; bit `k` of the result is bit `k + words * 64` of the
    /// original. Trimming whole words keeps every surviving bit at its old
    /// in-word position, so the operation is a cheap `drain` with no reshifts.
    ///
    /// # Panics
    ///
    /// Panics if `words * 64` exceeds the stream length.
    pub fn drop_front_words(&mut self, words: usize) {
        let bits = words * 64;
        assert!(
            bits <= self.len,
            "cannot drop {bits} bits from a {}-bit stream",
            self.len
        );
        self.words.drain(..words);
        self.len -= bits;
    }
}

/// Packs up to 32 LSB-first bits into a `u32` (values masked to their lowest
/// bit) — the input shape of the packed despreading tables.
///
/// # Panics
///
/// Panics if `bits` is longer than 32.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::packed::pack_u32;
/// assert_eq!(pack_u32(&[1, 0, 1, 1]), 0b1101);
/// ```
pub fn pack_u32(bits: &[u8]) -> u32 {
    assert!(
        bits.len() <= 32,
        "cannot pack {} bits into a u32",
        bits.len()
    );
    bits.iter()
        .enumerate()
        .fold(0u32, |acc, (k, &b)| acc | (u32::from(b & 1) << k))
}

/// Packs up to 64 LSB-first bits into a `u64`.
///
/// # Panics
///
/// Panics if `bits` is longer than 64.
pub fn pack_u64(bits: &[u8]) -> u64 {
    assert!(
        bits.len() <= 64,
        "cannot pack {} bits into a u64",
        bits.len()
    );
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (k, &b)| acc | (u64::from(b & 1) << (k % 64)))
}

/// Finds the first alignment of `pattern` in `stream` with at most
/// `max_errors` mismatches, scanning from `start` — bit-identical to the
/// scalar [`crate::correlate::find_pattern_scalar`], but word-packed.
///
/// Patterns of 64 bits or fewer run through a sliding shift register (one
/// shift + XOR + `count_ones` per stream bit, independent of pattern
/// length); longer patterns compare whole 64-bit words per alignment with
/// early exit once the error budget is blown.
pub fn find_pattern_packed(
    stream: &PackedBits,
    pattern: &PackedBits,
    start: usize,
    max_errors: usize,
) -> Option<PatternMatch> {
    let m = pattern.len();
    if m == 0 || stream.len() < m {
        return None;
    }
    let last = stream.len() - m;
    if start > last {
        return None;
    }
    if m <= 64 {
        find_short(stream, pattern, start, last, max_errors)
    } else {
        find_long(stream, pattern, start, last, max_errors, false)
    }
}

/// Finds the best (fewest-errors) alignment of `pattern` in `stream` —
/// bit-identical to [`crate::correlate::best_pattern_match_scalar`]. Ties
/// take the earliest index; an exact match short-circuits.
pub fn best_pattern_match_packed(
    stream: &PackedBits,
    pattern: &PackedBits,
) -> Option<PatternMatch> {
    let m = pattern.len();
    if m == 0 || stream.len() < m {
        return None;
    }
    let last = stream.len() - m;
    if m <= 64 {
        best_short(stream, pattern, last)
    } else {
        // A best-match search is a threshold search whose budget tightens as
        // better alignments appear.
        find_long(stream, pattern, 0, last, usize::MAX, true)
    }
}

/// Sliding-register search for patterns of 64 bits or fewer: the register
/// shifts right as stream bits arrive at the top, so after consuming bit
/// `i ≥ m − 1` it holds the window starting at `i − m + 1` in LSB-first
/// order, ready for a single XOR + `count_ones` against the packed pattern.
fn find_short(
    stream: &PackedBits,
    pattern: &PackedBits,
    start: usize,
    last: usize,
    max_errors: usize,
) -> Option<PatternMatch> {
    let m = pattern.len();
    let pat = pattern.words()[0];
    let mask = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
    // Preload the register with the window ending just before the first
    // candidate alignment, then slide.
    let mut reg = stream.extract(start, m - 1) << 1;
    for index in start..=last {
        reg = (reg >> 1) | (u64::from(stream.bit(index + m - 1)) << (m - 1));
        let errors = ((reg ^ pat) & mask).count_ones() as usize;
        if errors <= max_errors {
            return Some(PatternMatch { index, errors });
        }
    }
    None
}

fn best_short(stream: &PackedBits, pattern: &PackedBits, last: usize) -> Option<PatternMatch> {
    let m = pattern.len();
    let pat = pattern.words()[0];
    let mask = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
    let mut reg = stream.extract(0, m - 1) << 1;
    let mut best: Option<PatternMatch> = None;
    for index in 0..=last {
        reg = (reg >> 1) | (u64::from(stream.bit(index + m - 1)) << (m - 1));
        let errors = ((reg ^ pat) & mask).count_ones() as usize;
        if best.is_none_or(|b| errors < b.errors) {
            best = Some(PatternMatch { index, errors });
            if errors == 0 {
                break;
            }
        }
    }
    best
}

/// Word-per-alignment search for patterns longer than 64 bits. In threshold
/// mode (`best = false`) it returns the first alignment within `max_errors`;
/// in best mode it keeps the running minimum, using it as an early-exit
/// budget for subsequent alignments.
fn find_long(
    stream: &PackedBits,
    pattern: &PackedBits,
    start: usize,
    last: usize,
    max_errors: usize,
    best_mode: bool,
) -> Option<PatternMatch> {
    let m = pattern.len();
    let words = pattern.words();
    let full_words = m / 64;
    let tail = m % 64;
    let mut best: Option<PatternMatch> = None;
    for index in start..=last {
        let budget = if best_mode {
            best.map_or(usize::MAX, |b| b.errors.saturating_sub(1))
        } else {
            max_errors
        };
        let mut errors = 0usize;
        for (w, &pw) in words.iter().enumerate().take(full_words) {
            errors += (stream.extract(index + w * 64, 64) ^ pw).count_ones() as usize;
            if errors > budget {
                break;
            }
        }
        if tail != 0 && errors <= budget {
            errors += (stream.extract(index + full_words * 64, tail) ^ words[full_words])
                .count_ones() as usize;
        }
        if errors > budget {
            continue;
        }
        if best_mode {
            if best.is_none_or(|b| errors < b.errors) {
                best = Some(PatternMatch { index, errors });
                if errors == 0 {
                    break;
                }
            }
        } else {
            return Some(PatternMatch { index, errors });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::{best_pattern_match_scalar, find_pattern_scalar};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_bits(seed: u64, n: usize) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn clear_empties_and_stream_regrows_identically() {
        let bits = random_bits(7, 300);
        let mut p = PackedBits::from_bits(&bits);
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        p.extend_from_bits(&bits);
        assert_eq!(p, PackedBits::from_bits(&bits));
    }

    #[test]
    fn round_trip_various_lengths() {
        for n in [0usize, 1, 7, 63, 64, 65, 127, 128, 319, 1000] {
            let bits = random_bits(n as u64, n);
            let p = PackedBits::from_bits(&bits);
            assert_eq!(p.len(), n);
            assert_eq!(p.to_bits(), bits, "length {n}");
        }
    }

    #[test]
    fn values_are_masked_to_lowest_bit() {
        let p = PackedBits::from_bits(&[2, 3, 0xFF, 0]);
        assert_eq!(p.to_bits(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn extract_crosses_word_boundaries() {
        let bits = random_bits(42, 200);
        let p = PackedBits::from_bits(&bits);
        for start in [0usize, 1, 33, 60, 63, 64, 65, 100, 136] {
            for count in [0usize, 1, 31, 32, 33, 63, 64] {
                let got = p.extract(start, count);
                let want = pack_u64(&bits[start..start + count]);
                assert_eq!(got, want, "start {start} count {count}");
            }
        }
    }

    #[test]
    fn extract_u32_matches_pack_u32() {
        let bits = random_bits(7, 96);
        let p = PackedBits::from_bits(&bits);
        for start in 0..64 {
            assert_eq!(p.extract_u32(start, 31), pack_u32(&bits[start..start + 31]));
        }
    }

    #[test]
    fn hamming_matches_scalar() {
        for n in [1usize, 64, 65, 319, 500] {
            let a = random_bits(n as u64, n);
            let b = random_bits(n as u64 + 1, n);
            let want = crate::bits::hamming(&a, &b);
            let got = PackedBits::from_bits(&a).hamming(&PackedBits::from_bits(&b));
            assert_eq!(got, want, "length {n}");
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_rejects_mismatched_lengths() {
        let _ = PackedBits::from_bits(&[1]).hamming(&PackedBits::from_bits(&[1, 0]));
    }

    #[test]
    fn count_ones_counts() {
        assert_eq!(PackedBits::from_bits(&random_bits(3, 130)).count_ones(), {
            random_bits(3, 130).iter().filter(|&&b| b == 1).count()
        });
    }

    #[test]
    fn short_pattern_search_matches_scalar() {
        let stream = random_bits(11, 600);
        for (seed, m) in [
            (20u64, 1usize),
            (21, 2),
            (22, 31),
            (23, 32),
            (24, 63),
            (25, 64),
        ] {
            let pattern = random_bits(seed, m);
            let ps = PackedBits::from_bits(&stream);
            let pp = PackedBits::from_bits(&pattern);
            for max_errors in [0usize, 1, m / 4, m / 2, m] {
                for start in [0usize, 5, 100] {
                    assert_eq!(
                        find_pattern_packed(&ps, &pp, start, max_errors),
                        find_pattern_scalar(&stream, &pattern, start, max_errors),
                        "m {m} max_errors {max_errors} start {start}"
                    );
                }
            }
        }
    }

    #[test]
    fn long_pattern_search_matches_scalar() {
        let mut stream = random_bits(31, 200);
        let pattern = random_bits(32, 319);
        stream.extend_from_slice(&pattern);
        stream.extend_from_slice(&random_bits(33, 50));
        stream[250] ^= 1; // one error inside the planted pattern
        let ps = PackedBits::from_bits(&stream);
        let pp = PackedBits::from_bits(&pattern);
        for max_errors in [0usize, 1, 5, 32] {
            assert_eq!(
                find_pattern_packed(&ps, &pp, 0, max_errors),
                find_pattern_scalar(&stream, &pattern, 0, max_errors),
                "max_errors {max_errors}"
            );
        }
    }

    #[test]
    fn best_match_agrees_with_scalar() {
        for (sseed, pseed, n, m) in [(40u64, 41u64, 300usize, 32usize), (42, 43, 400, 319)] {
            let stream = random_bits(sseed, n);
            let pattern = random_bits(pseed, m);
            assert_eq!(
                best_pattern_match_packed(
                    &PackedBits::from_bits(&stream),
                    &PackedBits::from_bits(&pattern)
                ),
                best_pattern_match_scalar(&stream, &pattern),
                "n {n} m {m}"
            );
        }
    }

    #[test]
    fn degenerate_inputs_find_nothing() {
        let empty = PackedBits::from_bits(&[]);
        let one = PackedBits::from_bits(&[1]);
        let two = PackedBits::from_bits(&[1, 0]);
        assert_eq!(find_pattern_packed(&two, &empty, 0, 0), None);
        assert_eq!(find_pattern_packed(&one, &two, 0, 2), None);
        assert_eq!(find_pattern_packed(&two, &two, 1, 2), None);
        assert_eq!(best_pattern_match_packed(&one, &two), None);
        assert_eq!(best_pattern_match_packed(&two, &empty), None);
    }

    #[test]
    fn start_offset_skips_early_matches() {
        let stream = PackedBits::from_bits(&[1, 0, 1, 0, 1, 0]);
        let pattern = PackedBits::from_bits(&[1, 0]);
        let m = find_pattern_packed(&stream, &pattern, 1, 0).unwrap();
        assert_eq!(m.index, 2);
    }

    #[test]
    fn incremental_append_equals_from_bits() {
        let bits = random_bits(51, 300);
        for split in [0usize, 1, 63, 64, 65, 150, 299, 300] {
            let mut p = PackedBits::from_bits(&bits[..split]);
            p.extend_from_bits(&bits[split..]);
            assert_eq!(p, PackedBits::from_bits(&bits), "split {split}");
        }
        let mut q = PackedBits::default();
        for &b in &bits {
            q.push(b);
        }
        assert_eq!(q, PackedBits::from_bits(&bits));
    }

    #[test]
    fn drop_front_words_leaves_suffix() {
        let bits = random_bits(52, 400);
        for words in [0usize, 1, 3, 6] {
            let mut p = PackedBits::from_bits(&bits);
            p.drop_front_words(words);
            assert_eq!(p.to_bits(), &bits[words * 64..], "words {words}");
            // A trimmed stream keeps growing correctly.
            p.push(1);
            assert_eq!(p.bit(p.len() - 1), 1);
        }
    }

    #[test]
    #[should_panic(expected = "cannot drop")]
    fn drop_front_words_rejects_overdrain() {
        PackedBits::from_bits(&random_bits(53, 100)).drop_front_words(2);
    }
}
