//! Additive white Gaussian noise generation for the channel simulator.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::iq::Iq;

/// A seedable complex AWGN source.
///
/// The generator is deterministic given its seed (backed by ChaCha8), so every
/// benchmark and test in this workspace is reproducible.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::{AwgnSource, Iq};
/// let mut noise = AwgnSource::new(42, 0.1);
/// let mut buf = vec![Iq::ONE; 4];
/// noise.add_to(&mut buf);
/// assert!(buf.iter().all(|s| s.is_finite()));
/// ```
#[derive(Debug, Clone)]
pub struct AwgnSource {
    rng: ChaCha8Rng,
    /// Standard deviation applied independently to I and Q.
    sigma: f64,
}

impl AwgnSource {
    /// Creates a noise source with per-component standard deviation `sigma`.
    ///
    /// Total complex noise power is `2·sigma²`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(seed: u64, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative"
        );
        AwgnSource {
            rng: ChaCha8Rng::seed_from_u64(seed),
            sigma,
        }
    }

    /// Creates a source whose noise power is `signal_power / 10^(snr_db/10)`.
    ///
    /// `signal_power` is the mean power of the signal the noise will corrupt
    /// (1.0 for the constant-envelope modems in this workspace).
    ///
    /// # Panics
    ///
    /// Panics if `signal_power` is negative or not finite.
    pub fn from_snr_db(seed: u64, snr_db: f64, signal_power: f64) -> Self {
        assert!(
            signal_power.is_finite() && signal_power >= 0.0,
            "signal power must be non-negative"
        );
        let noise_power = signal_power / 10f64.powf(snr_db / 10.0);
        // Complex noise power 2σ² = noise_power.
        AwgnSource::new(seed, (noise_power / 2.0).sqrt())
    }

    /// Per-component standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one complex noise sample (Box–Muller).
    #[inline]
    pub fn next_sample(&mut self) -> Iq {
        // Box–Muller transform: two uniforms → two independent gaussians,
        // which is exactly one complex gaussian sample.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt() * self.sigma;
        let theta = std::f64::consts::TAU * u2;
        Iq::new(r * theta.cos(), r * theta.sin())
    }

    /// Adds noise to every sample of `buf` in place.
    pub fn add_to(&mut self, buf: &mut [Iq]) {
        let _s = wazabee_telemetry::stage!("dsp.awgn");
        if self.sigma == 0.0 {
            return;
        }
        for s in buf {
            *s += self.next_sample();
        }
    }

    /// Adds noise to a planar buffer in place.
    ///
    /// Draws the *identical* `f64` Box–Muller sequence as [`AwgnSource::add_to`]
    /// on a buffer of the same length (one complex draw per sample, in order),
    /// narrowing each component to `f32` only at the final add — so a
    /// planar receive chain sees the `f32` image of exactly the noise the
    /// interleaved chain would have seen, and seeded runs stay comparable
    /// across the two representations.
    pub fn add_to_planar(&mut self, buf: &mut crate::iqbuf::IqBuf) {
        let _s = wazabee_telemetry::stage!("dsp.awgn");
        if self.sigma == 0.0 {
            return;
        }
        let (i, q) = buf.rails_mut();
        for k in 0..i.len() {
            let n = self.next_sample();
            i[k] += n.i as f32;
            q[k] += n.q as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iq::mean_power;

    #[test]
    fn deterministic_given_seed() {
        let mut a = AwgnSource::new(7, 0.3);
        let mut b = AwgnSource::new(7, 0.3);
        for _ in 0..32 {
            assert_eq!(a.next_sample(), b.next_sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = AwgnSource::new(1, 0.3);
        let mut b = AwgnSource::new(2, 0.3);
        let same = (0..32)
            .filter(|_| a.next_sample() == b.next_sample())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn noise_power_matches_sigma() {
        let mut src = AwgnSource::new(3, 0.5);
        let buf: Vec<Iq> = (0..200_000).map(|_| src.next_sample()).collect();
        let p = mean_power(&buf);
        let expect = 2.0 * 0.5 * 0.5;
        assert!(
            (p - expect).abs() / expect < 0.02,
            "measured {p}, expected {expect}"
        );
    }

    #[test]
    fn snr_constructor_calibrated() {
        // 10 dB SNR on a unit-power signal → noise power 0.1.
        let mut src = AwgnSource::from_snr_db(4, 10.0, 1.0);
        let buf: Vec<Iq> = (0..200_000).map(|_| src.next_sample()).collect();
        let p = mean_power(&buf);
        assert!((p - 0.1).abs() / 0.1 < 0.03, "measured noise power {p}");
    }

    #[test]
    fn zero_sigma_is_noiseless() {
        let mut src = AwgnSource::new(5, 0.0);
        let mut buf = vec![Iq::ONE; 8];
        src.add_to(&mut buf);
        assert!(buf.iter().all(|&s| s == Iq::ONE));
    }

    #[test]
    fn mean_is_near_zero() {
        let mut src = AwgnSource::new(6, 1.0);
        let sum: Iq = (0..100_000).map(|_| src.next_sample()).sum();
        let mean = sum / 100_000.0;
        assert!(mean.amplitude() < 0.02, "mean drifted to {mean}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = AwgnSource::new(0, -1.0);
    }

    #[test]
    fn planar_noise_is_f32_image_of_interleaved_noise() {
        let mut a = AwgnSource::new(11, 0.4);
        let mut b = a.clone();
        let mut inter = vec![Iq::new(0.5, -0.25); 100];
        a.add_to(&mut inter);
        let mut planar = crate::iqbuf::IqBuf::from_interleaved(&vec![Iq::new(0.5, -0.25); 100]);
        b.add_to_planar(&mut planar);
        for (k, s) in inter.iter().enumerate() {
            let (pi, pq) = planar.get(k);
            // Same RNG stream: add order differs (f64 add then narrow vs
            // narrow then f32 add), so equality holds to f32 rounding.
            assert!((f64::from(pi) - s.i).abs() < 1e-6, "sample {k}");
            assert!((f64::from(pq) - s.q).abs() < 1e-6, "sample {k}");
        }
        // Zero sigma must not consume RNG draws on either path.
        let mut z = AwgnSource::new(3, 0.0);
        let mut pb = crate::iqbuf::IqBuf::from_interleaved(&[Iq::ONE; 4]);
        z.add_to_planar(&mut pb);
        assert_eq!(pb.get(0), (1.0, 0.0));
    }
}
