//! Stateful sync correlation for chunk-fed bit streams.
//!
//! [`crate::packed::find_pattern_packed`] answers "where does the pattern
//! first match in this buffer?" — fine for one-shot captures, useless for a
//! receiver that ingests IQ in arbitrary chunks: restarting the search on
//! every chunk is quadratic and loses matches that straddle a boundary.
//! [`StreamCorrelator`] is the streaming form of the same sliding shift
//! register: the register (and an absolute consumed-bit counter) is carried
//! across calls, so feeding the same bits in any chunking reports the same
//! matches at the same absolute indexes — exactly what a real radio's
//! always-armed access-address correlator does.

use crate::correlate::PatternMatch;
use crate::packed::PackedBits;

/// A sliding-register sync correlator that persists across chunk boundaries.
///
/// Bits are pushed in stream order; once at least `pattern_len()` bits have
/// been consumed, every push compares the register window against the packed
/// pattern and reports a [`PatternMatch`] (with the *absolute* index of the
/// window start) whenever the Hamming distance is within the error budget.
/// Unlike the one-shot search, *every* qualifying alignment is reported, not
/// just the first — the caller decides which attempt to act on and which to
/// re-arm past.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::stream::StreamCorrelator;
/// use wazabee_dsp::PackedBits;
///
/// let pattern = PackedBits::from_bits(&[1, 0, 1, 1]);
/// let mut corr = StreamCorrelator::new(&pattern, 0);
/// let mut hits = Vec::new();
/// // Feed one chunk at a time; the match straddles the boundary.
/// corr.feed_bits(&[0, 0, 1, 0], &mut hits);
/// corr.feed_bits(&[1, 1, 0], &mut hits);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].index, 2);
/// ```
#[derive(Debug, Clone)]
pub struct StreamCorrelator {
    pat: u64,
    mask: u64,
    len: usize,
    max_errors: usize,
    reg: u64,
    consumed: usize,
}

impl StreamCorrelator {
    /// Builds a correlator for `pattern` (1..=64 bits) accepting alignments
    /// with at most `max_errors` bit mismatches.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty or longer than 64 bits.
    pub fn new(pattern: &PackedBits, max_errors: usize) -> Self {
        let m = pattern.len();
        assert!(
            (1..=64).contains(&m),
            "streaming correlator needs a 1..=64-bit pattern, got {m}"
        );
        StreamCorrelator {
            pat: pattern.words()[0],
            mask: if m == 64 { u64::MAX } else { (1u64 << m) - 1 },
            len: m,
            max_errors,
            reg: 0,
            consumed: 0,
        }
    }

    /// Clears the sliding register and the consumed-bit counter, returning
    /// the correlator to its freshly constructed state (same pattern, same
    /// error budget) — the recycle path of pooled receive engines.
    pub fn reset(&mut self) {
        self.reg = 0;
        self.consumed = 0;
    }

    /// Pattern length in bits.
    pub fn pattern_len(&self) -> usize {
        self.len
    }

    /// The error budget alignments must stay within to be reported.
    pub fn max_errors(&self) -> usize {
        self.max_errors
    }

    /// Total bits consumed since construction. Every alignment with
    /// `index + pattern_len() <= consumed()` has already been reported.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Consumes one bit (masked to its lowest bit); reports the alignment
    /// ending at this bit if it is complete and within the error budget.
    pub fn push(&mut self, bit: u8) -> Option<PatternMatch> {
        self.reg = (self.reg >> 1) | (u64::from(bit & 1) << (self.len - 1));
        self.consumed += 1;
        if self.consumed < self.len {
            return None;
        }
        let errors = ((self.reg ^ self.pat) & self.mask).count_ones() as usize;
        (errors <= self.max_errors).then(|| PatternMatch {
            index: self.consumed - self.len,
            errors,
        })
    }

    /// Consumes a 0/1 slice, appending every qualifying alignment to `out`.
    pub fn feed_bits(&mut self, bits: &[u8], out: &mut Vec<PatternMatch>) {
        for &b in bits {
            out.extend(self.push(b));
        }
    }

    /// Consumes bits `from..stream.len()` of a packed stream, appending every
    /// qualifying alignment to `out` — the shape the receive engine uses
    /// after appending freshly demodulated bits to a lane.
    ///
    /// # Panics
    ///
    /// Panics if `from` exceeds the stream length.
    pub fn feed_packed(&mut self, stream: &PackedBits, from: usize, out: &mut Vec<PatternMatch>) {
        for k in from..stream.len() {
            out.extend(self.push(stream.bit(k)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::find_pattern_packed;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_bits(seed: u64, n: usize) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    /// Reference: every alignment within the budget, via the one-shot search
    /// restarted one bit past each hit.
    fn all_matches(
        stream: &PackedBits,
        pattern: &PackedBits,
        max_errors: usize,
    ) -> Vec<PatternMatch> {
        let mut out = Vec::new();
        let mut start = 0usize;
        while let Some(m) = find_pattern_packed(stream, pattern, start, max_errors) {
            start = m.index + 1;
            out.push(m);
        }
        out
    }

    #[test]
    fn streaming_matches_one_shot_search() {
        let bits = random_bits(90, 700);
        let stream = PackedBits::from_bits(&bits);
        for (seed, m, max_errors) in [
            (91u64, 1usize, 0usize),
            (92, 8, 1),
            (93, 32, 3),
            (94, 64, 6),
        ] {
            let pattern = PackedBits::from_bits(&random_bits(seed, m));
            let mut corr = StreamCorrelator::new(&pattern, max_errors);
            let mut got = Vec::new();
            corr.feed_bits(&bits, &mut got);
            assert_eq!(
                got,
                all_matches(&stream, &pattern, max_errors),
                "m {m} max_errors {max_errors}"
            );
            assert_eq!(corr.consumed(), bits.len());
        }
    }

    #[test]
    fn chunking_never_changes_matches() {
        let bits = random_bits(95, 500);
        let pattern = PackedBits::from_bits(&random_bits(96, 32));
        let mut whole = Vec::new();
        StreamCorrelator::new(&pattern, 4).feed_bits(&bits, &mut whole);
        for chunk in [1usize, 2, 7, 31, 32, 33, 64, 499] {
            let mut corr = StreamCorrelator::new(&pattern, 4);
            let mut got = Vec::new();
            for c in bits.chunks(chunk) {
                corr.feed_bits(c, &mut got);
            }
            assert_eq!(got, whole, "chunk {chunk}");
        }
    }

    #[test]
    fn feed_packed_resumes_from_offset() {
        let bits = random_bits(97, 300);
        let pattern = PackedBits::from_bits(&random_bits(98, 16));
        let mut whole = Vec::new();
        StreamCorrelator::new(&pattern, 2).feed_bits(&bits, &mut whole);

        // Grow a packed lane incrementally and feed only the fresh tail each
        // time — the engine's ingest loop.
        let mut lane = PackedBits::default();
        let mut corr = StreamCorrelator::new(&pattern, 2);
        let mut got = Vec::new();
        for c in bits.chunks(37) {
            let from = lane.len();
            lane.extend_from_bits(c);
            corr.feed_packed(&lane, from, &mut got);
        }
        assert_eq!(got, whole);
    }

    #[test]
    fn every_alignment_is_reported_not_just_the_first() {
        // 0101... matches [0,1] at every even index (errors 0) and at every
        // odd index only with 2 errors — budget 0 keeps the even ones.
        let bits: Vec<u8> = (0..10).map(|k| (k % 2) as u8).collect();
        let pattern = PackedBits::from_bits(&[0, 1]);
        let mut corr = StreamCorrelator::new(&pattern, 0);
        let mut got = Vec::new();
        corr.feed_bits(&bits, &mut got);
        let indexes: Vec<usize> = got.iter().map(|m| m.index).collect();
        assert_eq!(indexes, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn reset_restores_fresh_behaviour() {
        let bits = random_bits(99, 400);
        let pattern = PackedBits::from_bits(&random_bits(100, 24));
        let mut fresh = Vec::new();
        StreamCorrelator::new(&pattern, 2).feed_bits(&bits, &mut fresh);

        let mut corr = StreamCorrelator::new(&pattern, 2);
        let mut scratch = Vec::new();
        corr.feed_bits(&random_bits(101, 173), &mut scratch);
        corr.reset();
        assert_eq!(corr.consumed(), 0);
        let mut got = Vec::new();
        corr.feed_bits(&bits, &mut got);
        assert_eq!(got, fresh, "reset correlator must match a fresh one");
    }

    #[test]
    #[should_panic(expected = "1..=64-bit pattern")]
    fn rejects_empty_pattern() {
        let _ = StreamCorrelator::new(&PackedBits::default(), 0);
    }
}
