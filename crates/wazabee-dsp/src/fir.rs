//! Finite impulse response filtering for real-valued modulating signals and
//! complex baseband buffers.

use crate::iq::Iq;

/// A real-coefficient FIR filter.
///
/// # Examples
///
/// ```
/// use wazabee_dsp::Fir;
/// let f = Fir::new(vec![0.5, 0.5]); // 2-tap moving average
/// assert_eq!(f.filter_real(&[1.0, 1.0, 0.0]), vec![0.5, 1.0, 0.5, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fir {
    taps: Vec<f64>,
}

impl Fir {
    /// Creates a filter from its impulse response.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR filter needs at least one tap");
        Fir { taps }
    }

    /// Windowed-sinc low-pass design (Hamming window).
    ///
    /// `cutoff_hz` is the −6 dB cutoff, `num_taps` the filter length (odd
    /// lengths give integral group delay).
    ///
    /// # Panics
    ///
    /// Panics if `num_taps` is zero or the cutoff is not in `(0, fs/2)`.
    pub fn low_pass(cutoff_hz: f64, sample_rate_hz: f64, num_taps: usize) -> Self {
        assert!(num_taps > 0, "FIR filter needs at least one tap");
        assert!(
            cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0,
            "cutoff must lie in (0, fs/2)"
        );
        let fc = cutoff_hz / sample_rate_hz;
        let mid = (num_taps - 1) as f64 / 2.0;
        let mut taps = Vec::with_capacity(num_taps);
        for n in 0..num_taps {
            let x = n as f64 - mid;
            let sinc = if x.abs() < 1e-12 {
                2.0 * fc
            } else {
                (std::f64::consts::TAU * fc * x).sin() / (std::f64::consts::PI * x)
            };
            let window = 0.54
                - 0.46 * (std::f64::consts::TAU * n as f64 / (num_taps - 1).max(1) as f64).cos();
            taps.push(sinc * window);
        }
        // Normalise to unit DC gain.
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Fir { taps }
    }

    /// The filter's impulse response.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples, assuming linear phase (symmetric taps).
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Full convolution with a real signal (output length `x.len() + taps − 1`).
    pub fn filter_real(&self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.filter_real_into(x, &mut y);
        y
    }

    /// Scratch-buffer form of [`Fir::filter_real`]: overwrites `out` instead
    /// of allocating a fresh vector per call.
    pub fn filter_real_into(&self, x: &[f64], out: &mut Vec<f64>) {
        let _s = wazabee_telemetry::stage!("dsp.fir_real");
        out.clear();
        out.resize(x.len() + self.taps.len() - 1, 0.0);
        for (k, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (j, &t) in self.taps.iter().enumerate() {
                out[k + j] += xv * t;
            }
        }
    }

    /// Full convolution with a complex signal.
    pub fn filter_iq(&self, x: &[Iq]) -> Vec<Iq> {
        let mut y = Vec::new();
        self.filter_iq_into(x, &mut y);
        y
    }

    /// Scratch-buffer form of [`Fir::filter_iq`]: overwrites `out` instead of
    /// allocating a fresh vector per call.
    pub fn filter_iq_into(&self, x: &[Iq], out: &mut Vec<Iq>) {
        let _s = wazabee_telemetry::stage!("dsp.fir_iq");
        let _span =
            wazabee_telemetry::span!("dsp.fir_iq", samples = x.len(), taps = self.taps.len());
        out.clear();
        out.resize(x.len() + self.taps.len() - 1, Iq::ZERO);
        for (k, &xv) in x.iter().enumerate() {
            for (j, &t) in self.taps.iter().enumerate() {
                out[k + j] += xv.scale(t);
            }
        }
    }

    /// "Same-size" convolution: output aligned with the input by compensating
    /// the group delay, truncated to `x.len()` samples.
    pub fn filter_real_same(&self, x: &[f64]) -> Vec<f64> {
        let full = self.filter_real(x);
        let start = (self.taps.len() - 1) / 2;
        full[start..start + x.len()].to_vec()
    }

    /// Scratch-buffer form of [`Fir::filter_real_same`]: overwrites `out`,
    /// using `scratch` for the intermediate full convolution.
    pub fn filter_real_same_into(&self, x: &[f64], scratch: &mut Vec<f64>, out: &mut Vec<f64>) {
        self.filter_real_into(x, scratch);
        let start = (self.taps.len() - 1) / 2;
        out.clear();
        out.extend_from_slice(&scratch[start..start + x.len()]);
    }
}

/// Integrate-and-dump over fixed windows: averages every `window` consecutive
/// values, producing one output per complete window.
///
/// This is the classic matched filter for rectangular symbols and is used by
/// the chip-rate demodulators.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn integrate_and_dump(x: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be non-zero");
    x.chunks_exact(window)
        .map(|c| c.iter().sum::<f64>() / window as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::Nco;

    #[test]
    fn moving_average_impulse_response() {
        let f = Fir::new(vec![0.25; 4]);
        let y = f.filter_real(&[1.0, 0.0, 0.0]);
        assert_eq!(y.len(), 6);
        assert_eq!(&y[..4], &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn low_pass_passes_dc() {
        let f = Fir::low_pass(1.0e6, 8.0e6, 31);
        let y = f.filter_real_same(&vec![1.0; 128]);
        // Middle of the output should sit at the DC gain of 1.
        assert!((y[64] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn low_pass_attenuates_high_tone() {
        let fs = 8.0e6;
        let f = Fir::low_pass(0.5e6, fs, 63);
        let mut nco = Nco::new(3.0e6, fs);
        let tone: Vec<Iq> = (0..512).map(|_| nco.next_sample()).collect();
        let filtered = f.filter_iq(&tone);
        let input_power = crate::iq::mean_power(&tone);
        let out_power = crate::iq::mean_power(&filtered[100..400]);
        assert!(
            out_power < input_power * 0.01,
            "stopband leak: {out_power} vs {input_power}"
        );
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let f = Fir::low_pass(1.0e6, 8.0e6, 31);
        let x: Vec<f64> = (0..100).map(|k| ((k * 7) % 13) as f64 - 6.0).collect();
        let mut out = vec![99.0; 3];
        f.filter_real_into(&x, &mut out);
        assert_eq!(out, f.filter_real(&x));
        let mut nco = Nco::new(1.0e6, 8.0e6);
        let tone: Vec<Iq> = (0..64).map(|_| nco.next_sample()).collect();
        let mut out_iq = Vec::new();
        f.filter_iq_into(&tone, &mut out_iq);
        assert_eq!(out_iq, f.filter_iq(&tone));
        let (mut scratch, mut same) = (Vec::new(), Vec::new());
        f.filter_real_same_into(&x, &mut scratch, &mut same);
        assert_eq!(same, f.filter_real_same(&x));
    }

    #[test]
    fn group_delay_of_symmetric_filter() {
        let f = Fir::low_pass(1.0e6, 8.0e6, 31);
        assert_eq!(f.group_delay(), 15.0);
    }

    #[test]
    fn integrate_and_dump_averages_windows() {
        let x = vec![1.0, 1.0, -1.0, -1.0, 1.0, -1.0];
        assert_eq!(integrate_and_dump(&x, 2), vec![1.0, -1.0, 0.0]);
    }

    #[test]
    fn integrate_and_dump_drops_tail() {
        let x = vec![1.0, 1.0, 1.0];
        assert_eq!(integrate_and_dump(&x, 2), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_rejected() {
        let _ = Fir::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn cutoff_above_nyquist_rejected() {
        let _ = Fir::low_pass(5.0e6, 8.0e6, 31);
    }
}
