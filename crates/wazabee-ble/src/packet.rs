//! BLE physical-layer packet assembly and parsing.
//!
//! On-air layout (paper §III-B): preamble · access address · PDU · CRC, with
//! whitening applied over PDU+CRC. All multi-byte fields are transmitted
//! least-significant byte and least-significant bit first, except the CRC
//! whose bits go out MSB-first (handled by [`crate::crc`]).

use serde::{Deserialize, Serialize};
use wazabee_dsp::bits::{bits_to_bytes_lsb, bytes_to_bits_lsb};

use crate::channel::{BleChannel, BlePhy};
use crate::crc::{adv_crc_bytes, check_adv_crc};
use crate::whitening::Whitener;

/// The fixed access address used on advertising channels.
pub const ADV_ACCESS_ADDRESS: u32 = 0x8E89_BED6;

/// Maximum PDU payload length for extended advertising (BLE 5 allows up to
/// 255 bytes of AdvData, which the paper leans on in §IV-D).
pub const MAX_EXT_ADV_DATA: usize = 255;

/// A link-layer packet before modulation.
///
/// The CRC always uses the advertising preset 0x555555 — a documented
/// simplification: connected-mode data PDUs would derive their preset from
/// [`crate::connection::ConnectionParameters::crc_init`], but the attack
/// (and this reproduction's scenarios) never needs connected-mode payload
/// integrity, only the hopping behaviour.
///
/// # Examples
///
/// ```
/// use wazabee_ble::{BleChannel, BlePacket, BlePhy};
/// let ch = BleChannel::new(8).unwrap();
/// let pkt = BlePacket::advertising(vec![0x02, 0x01, 0x06]);
/// let bits = pkt.to_air_bits(ch, BlePhy::Le2M, true);
/// let back = BlePacket::from_air_bits(&bits, ch, BlePhy::Le2M, true).unwrap();
/// assert_eq!(back.pdu(), pkt.pdu());
/// assert!(back.crc_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlePacket {
    access_address: u32,
    pdu: Vec<u8>,
    /// CRC validity, known after parsing (always true for locally built packets).
    crc_ok: bool,
}

impl BlePacket {
    /// Creates a packet with an explicit access address and raw PDU bytes.
    pub fn new(access_address: u32, pdu: Vec<u8>) -> Self {
        BlePacket {
            access_address,
            pdu,
            crc_ok: true,
        }
    }

    /// Creates an advertising packet (standard advertising access address).
    pub fn advertising(pdu: Vec<u8>) -> Self {
        BlePacket::new(ADV_ACCESS_ADDRESS, pdu)
    }

    /// The packet's access address.
    pub fn access_address(&self) -> u32 {
        self.access_address
    }

    /// The PDU bytes (link-layer header + payload).
    pub fn pdu(&self) -> &[u8] {
        &self.pdu
    }

    /// Whether the CRC matched when this packet was parsed off the air.
    pub fn crc_ok(&self) -> bool {
        self.crc_ok
    }

    /// Preamble bits for a given access address: alternating bits whose first
    /// bit equals the LSB of the access address (Core spec vol 6 part B
    /// §2.1.1), repeated over the PHY's preamble length.
    pub fn preamble_bits(access_address: u32, phy: BlePhy) -> Vec<u8> {
        let first = (access_address & 1) as u8;
        let len = phy.preamble_bytes() * 8;
        (0..len).map(|k| first ^ (k as u8 & 1)).collect()
    }

    /// Access-address on-air bits (LSB of the least significant byte first).
    pub fn access_address_bits(access_address: u32) -> Vec<u8> {
        bytes_to_bits_lsb(&access_address.to_le_bytes())
    }

    /// Serialises the full packet to on-air bits for `channel`.
    ///
    /// `whitening` mirrors the radio-configuration register of real chips:
    /// WazaBee prefers to disable it; when it cannot, it pre-de-whitens the
    /// payload instead.
    pub fn to_air_bits(&self, channel: BleChannel, phy: BlePhy, whitening: bool) -> Vec<u8> {
        let mut bits = Self::preamble_bits(self.access_address, phy);
        bits.extend(Self::access_address_bits(self.access_address));

        let mut body = bytes_to_bits_lsb(&self.pdu);
        body.extend(bytes_to_bits_lsb(&adv_crc_bytes(&self.pdu)));
        if whitening {
            Whitener::new(channel).whiten_bits_in_place(&mut body);
        }
        bits.extend(body);
        bits
    }

    /// Parses a packet from the whitened body bits that follow the access
    /// address (the form a hardware correlator hands to the link layer).
    ///
    /// Returns `None` when the stream cannot hold a header and CRC.
    pub fn from_body_bits(
        access_address: u32,
        body_bits: &[u8],
        channel: BleChannel,
        whitening: bool,
    ) -> Option<Self> {
        let mut body = body_bits.to_vec();
        if whitening {
            Whitener::new(channel).whiten_bits_in_place(&mut body);
        }
        let body_bytes = bits_to_bytes_lsb(&body);
        if body_bytes.len() < 2 {
            return None;
        }
        let payload_len = body_bytes[1] as usize;
        let pdu_len = 2 + payload_len;
        if body_bytes.len() < pdu_len + 3 {
            return None;
        }
        let pdu = body_bytes[..pdu_len].to_vec();
        let crc = [
            body_bytes[pdu_len],
            body_bytes[pdu_len + 1],
            body_bytes[pdu_len + 2],
        ];
        let crc_ok = check_adv_crc(&pdu, crc);
        Some(BlePacket {
            access_address,
            pdu,
            crc_ok,
        })
    }

    /// Parses a packet from on-air bits, assuming the stream starts at the
    /// first preamble bit and the PDU length is recoverable from its header
    /// (byte 1 of the PDU is the length of the payload that follows).
    ///
    /// Returns `None` when the stream is too short. CRC failure does *not*
    /// reject the packet — it is recorded in [`BlePacket::crc_ok`], because
    /// modelling chips that let the host see bad-CRC frames is exactly what
    /// the attack needs.
    pub fn from_air_bits(
        bits: &[u8],
        channel: BleChannel,
        phy: BlePhy,
        whitening: bool,
    ) -> Option<Self> {
        let pre = phy.preamble_bytes() * 8;
        let aa_end = pre + 32;
        if bits.len() < aa_end + 16 {
            return None;
        }
        let aa_bytes = bits_to_bytes_lsb(&bits[pre..aa_end]);
        let access_address =
            u32::from_le_bytes([aa_bytes[0], aa_bytes[1], aa_bytes[2], aa_bytes[3]]);
        Self::from_body_bits(access_address, &bits[aa_end..], channel, whitening)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u8) -> BleChannel {
        BleChannel::new(i).unwrap()
    }

    #[test]
    fn preamble_alternates_and_matches_aa_lsb() {
        // ADV AA 0x8E89BED6 has LSB 0 → the preamble starts with 0 (the
        // 0xAA-on-air pattern) and is twice as long on LE 2M.
        let p1 = BlePacket::preamble_bits(ADV_ACCESS_ADDRESS, BlePhy::Le1M);
        let p2 = BlePacket::preamble_bits(ADV_ACCESS_ADDRESS, BlePhy::Le2M);
        assert_eq!(p1.len(), 8);
        assert_eq!(p2.len(), 16);
        assert_eq!(p1[0], (ADV_ACCESS_ADDRESS & 1) as u8);
        for w in p1.windows(2) {
            assert_ne!(w[0], w[1], "preamble must alternate");
        }
        assert_eq!(&p2[..8], &p1[..]);
        // An odd access address starts its preamble with 1.
        let p3 = BlePacket::preamble_bits(0x0000_0001, BlePhy::Le1M);
        assert_eq!(p3[0], 1);
    }

    #[test]
    fn aa_bits_lsb_first() {
        let bits = BlePacket::access_address_bits(0x0000_0001);
        assert_eq!(bits[0], 1);
        assert!(bits[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn round_trip_with_whitening_all_channels() {
        let pdu = vec![0x02, 0x05, 1, 2, 3, 4, 5];
        let pkt = BlePacket::advertising(pdu);
        for c in BleChannel::all() {
            for phy in [BlePhy::Le1M, BlePhy::Le2M] {
                let bits = pkt.to_air_bits(c, phy, true);
                let back = BlePacket::from_air_bits(&bits, c, phy, true).unwrap();
                assert_eq!(back.pdu(), pkt.pdu());
                assert_eq!(back.access_address(), ADV_ACCESS_ADDRESS);
                assert!(back.crc_ok(), "CRC failed on {c} {phy}");
            }
        }
    }

    #[test]
    fn round_trip_without_whitening() {
        let pkt = BlePacket::new(0xDEAD_BEEF, vec![0x00, 0x02, 0xAB, 0xCD]);
        let bits = pkt.to_air_bits(ch(0), BlePhy::Le2M, false);
        let back = BlePacket::from_air_bits(&bits, ch(0), BlePhy::Le2M, false).unwrap();
        assert_eq!(back, pkt);
    }

    #[test]
    fn wrong_channel_whitening_corrupts() {
        let pkt = BlePacket::advertising(vec![0x02, 0x03, 7, 8, 9]);
        let bits = pkt.to_air_bits(ch(8), BlePhy::Le2M, true);
        // De-whitening with the wrong channel index must break the CRC.
        if let Some(back) = BlePacket::from_air_bits(&bits, ch(9), BlePhy::Le2M, true) {
            assert!(!back.crc_ok());
        }
    }

    #[test]
    fn corrupted_payload_flagged_not_dropped() {
        let pkt = BlePacket::advertising(vec![0x02, 0x02, 0x11, 0x22]);
        let mut bits = pkt.to_air_bits(ch(3), BlePhy::Le1M, true);
        // Flip one payload bit (after preamble+AA+header).
        let idx = 8 + 32 + 16 + 3;
        bits[idx] ^= 1;
        let back = BlePacket::from_air_bits(&bits, ch(3), BlePhy::Le1M, true).unwrap();
        assert!(!back.crc_ok());
        assert_ne!(back.pdu(), pkt.pdu());
    }

    #[test]
    fn short_stream_rejected() {
        assert!(BlePacket::from_air_bits(&[0; 40], ch(0), BlePhy::Le1M, true).is_none());
    }

    #[test]
    fn length_header_drives_parsing() {
        // Two packets with different payload lengths parse to their own sizes.
        for len in [0usize, 1, 10, 37] {
            let mut pdu = vec![0x02, len as u8];
            pdu.extend(std::iter::repeat_n(0x5A, len));
            let pkt = BlePacket::advertising(pdu.clone());
            let bits = pkt.to_air_bits(ch(12), BlePhy::Le2M, true);
            let back = BlePacket::from_air_bits(&bits, ch(12), BlePhy::Le2M, true).unwrap();
            assert_eq!(back.pdu().len(), 2 + len);
            assert!(back.crc_ok());
        }
    }
}
