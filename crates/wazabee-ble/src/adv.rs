//! Advertising PDUs, AD structures, and the BLE 5 extended-advertising
//! machinery (`ADV_EXT_IND` / `AUX_ADV_IND`) that Scenario A of the paper
//! diverts to inject 802.15.4 frames from an unrooted smartphone.

use serde::{Deserialize, Serialize};

/// Advertising PDU types (link-layer header bits 0–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AdvPduType {
    /// Connectable scannable undirected advertising.
    AdvInd = 0x0,
    /// Connectable directed advertising.
    AdvDirectInd = 0x1,
    /// Non-connectable non-scannable undirected advertising.
    AdvNonconnInd = 0x2,
    /// Scan request.
    ScanReq = 0x3,
    /// Scan response.
    ScanRsp = 0x4,
    /// Connection request.
    ConnectInd = 0x5,
    /// Scannable undirected advertising.
    AdvScanInd = 0x6,
    /// Extended advertising (`ADV_EXT_IND` on primary channels,
    /// `AUX_ADV_IND` on secondary channels).
    AdvExtInd = 0x7,
}

impl AdvPduType {
    /// Parses the 4-bit type field.
    pub fn from_bits(v: u8) -> Option<Self> {
        Some(match v & 0x0F {
            0x0 => AdvPduType::AdvInd,
            0x1 => AdvPduType::AdvDirectInd,
            0x2 => AdvPduType::AdvNonconnInd,
            0x3 => AdvPduType::ScanReq,
            0x4 => AdvPduType::ScanRsp,
            0x5 => AdvPduType::ConnectInd,
            0x6 => AdvPduType::AdvScanInd,
            0x7 => AdvPduType::AdvExtInd,
            _ => return None,
        })
    }
}

/// A 48-bit BLE device address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BleAddress(pub [u8; 6]);

impl BleAddress {
    /// Creates an address from its six bytes (least significant first, as
    /// serialised on air).
    pub const fn new(bytes: [u8; 6]) -> Self {
        BleAddress(bytes)
    }
}

impl std::fmt::Display for BleAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Conventional display order is most significant byte first.
        for (k, b) in self.0.iter().rev().enumerate() {
            if k > 0 {
                write!(f, ":")?;
            }
            write!(f, "{b:02X}")?;
        }
        Ok(())
    }
}

/// One AD structure of an advertising payload: `len · type · data`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdStructure {
    /// AD type (0xFF = manufacturer specific data).
    pub ad_type: u8,
    /// AD payload (excludes the type byte).
    pub data: Vec<u8>,
}

/// AD type for manufacturer-specific data.
pub const AD_TYPE_MANUFACTURER: u8 = 0xFF;
/// AD type for flags.
pub const AD_TYPE_FLAGS: u8 = 0x01;
/// AD type for a complete local name.
pub const AD_TYPE_COMPLETE_NAME: u8 = 0x09;

impl AdStructure {
    /// Builds a manufacturer-specific AD structure (company id little-endian
    /// first, then opaque data) — the container Scenario A uses for its
    /// forged chip stream.
    pub fn manufacturer(company_id: u16, data: Vec<u8>) -> Self {
        let mut payload = company_id.to_le_bytes().to_vec();
        payload.extend(data);
        AdStructure {
            ad_type: AD_TYPE_MANUFACTURER,
            data: payload,
        }
    }

    /// Serialises one AD structure.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.data.len());
        out.push((1 + self.data.len()) as u8);
        out.push(self.ad_type);
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a sequence of AD structures from an advertising payload.
    /// Stops at the first malformed or zero-length entry.
    pub fn parse_all(mut bytes: &[u8]) -> Vec<AdStructure> {
        let mut out = Vec::new();
        while bytes.len() >= 2 {
            let len = bytes[0] as usize;
            if len == 0 || bytes.len() < 1 + len {
                break;
            }
            out.push(AdStructure {
                ad_type: bytes[1],
                data: bytes[2..1 + len].to_vec(),
            });
            bytes = &bytes[1 + len..];
        }
        out
    }
}

/// A legacy advertising PDU (`ADV_NONCONN_IND` and friends).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdvPdu {
    /// PDU type.
    pub pdu_type: AdvPduType,
    /// Advertiser address.
    pub adv_address: BleAddress,
    /// Advertising data (concatenated AD structures).
    pub adv_data: Vec<u8>,
}

impl AdvPdu {
    /// Serialises header + payload to PDU bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_len = 6 + self.adv_data.len();
        let mut out = Vec::with_capacity(2 + payload_len);
        out.push(self.pdu_type as u8); // TxAdd/RxAdd/ChSel left clear
        out.push(payload_len as u8);
        out.extend_from_slice(&self.adv_address.0);
        out.extend_from_slice(&self.adv_data);
        out
    }

    /// Parses a legacy advertising PDU.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let pdu_type = AdvPduType::from_bits(bytes[0])?;
        let len = bytes[1] as usize;
        if len < 6 || bytes.len() < 2 + len {
            return None;
        }
        let mut addr = [0u8; 6];
        addr.copy_from_slice(&bytes[2..8]);
        Some(AdvPdu {
            pdu_type,
            adv_address: BleAddress(addr),
            adv_data: bytes[8..2 + len].to_vec(),
        })
    }
}

/// The `AuxPtr` field of an `ADV_EXT_IND`: where and when the auxiliary
/// packet (`AUX_ADV_IND`) will appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuxPtr {
    /// Secondary channel index (0–36).
    pub channel_index: u8,
    /// Offset to the aux packet in 30 µs units.
    pub aux_offset_30us: u16,
    /// PHY of the aux packet (0 = LE 1M, 2 = LE 2M encoded per spec as
    /// AUX PHY field values 0b000/0b010).
    pub aux_phy_2m: bool,
}

impl AuxPtr {
    /// Serialises the 3-byte AuxPtr field.
    pub fn to_bytes(self) -> [u8; 3] {
        // Layout: chIdx[5:0] | CA | offsetUnits=0 (30 µs) in byte 0,
        // auxOffset[12:0] across bytes 1–2, auxPhy[2:0] in byte 2 top bits.
        let b0 = self.channel_index & 0x3F;
        let off = self.aux_offset_30us & 0x1FFF;
        let b1 = (off & 0xFF) as u8;
        let phy = if self.aux_phy_2m { 0b010u8 } else { 0b000 };
        let b2 = ((off >> 8) as u8 & 0x1F) | (phy << 5);
        [b0, b1, b2]
    }

    /// Parses a 3-byte AuxPtr field.
    pub fn from_bytes(b: [u8; 3]) -> Option<Self> {
        let channel_index = b[0] & 0x3F;
        if channel_index > 36 {
            return None;
        }
        let aux_offset_30us = u16::from(b[1]) | (u16::from(b[2] & 0x1F) << 8);
        let aux_phy_2m = match b[2] >> 5 {
            0b000 => false,
            0b010 => true,
            _ => return None,
        };
        Some(AuxPtr {
            channel_index,
            aux_offset_30us,
            aux_phy_2m,
        })
    }
}

/// Extended-advertising header flag bits.
mod ext_flags {
    pub const ADV_A: u8 = 1 << 0;
    pub const ADI: u8 = 1 << 3;
    pub const AUX_PTR: u8 = 1 << 4;
}

/// An `ADV_EXT_IND` primary-channel PDU announcing an auxiliary packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdvExtInd {
    /// Advertising data info (DID/SID).
    pub adi: u16,
    /// Pointer to the auxiliary packet.
    pub aux_ptr: AuxPtr,
}

impl AdvExtInd {
    /// Serialises to PDU bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Ext header: len byte, flags byte, ADI (2), AuxPtr (3).
        let ext_header = {
            let mut h = vec![ext_flags::ADI | ext_flags::AUX_PTR];
            h.extend_from_slice(&self.adi.to_le_bytes());
            h.extend_from_slice(&self.aux_ptr.to_bytes());
            h
        };
        let mut out = Vec::new();
        out.push(AdvPduType::AdvExtInd as u8);
        out.push((1 + ext_header.len()) as u8);
        out.push(ext_header.len() as u8); // ext header length (6)
        out.extend(ext_header);
        out
    }

    /// Parses an `ADV_EXT_IND` PDU.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 3 || AdvPduType::from_bits(bytes[0])? != AdvPduType::AdvExtInd {
            return None;
        }
        let ext_len = bytes[2] as usize;
        if bytes.len() < 3 + ext_len || ext_len < 6 {
            return None;
        }
        let flags = bytes[3];
        if flags & ext_flags::ADI == 0 || flags & ext_flags::AUX_PTR == 0 {
            return None;
        }
        let adi = u16::from_le_bytes([bytes[4], bytes[5]]);
        let aux_ptr = AuxPtr::from_bytes([bytes[6], bytes[7], bytes[8]])?;
        Some(AdvExtInd { adi, aux_ptr })
    }
}

/// An `AUX_ADV_IND` secondary-channel PDU carrying the actual advertising
/// data.
///
/// The serialised layout puts exactly **16 bytes** ahead of the
/// caller-supplied manufacturer data — PDU header (2), extended-header length
/// (1), flags (1), AdvA (6), ADI (2), AD length+type (2), company id (2) —
/// reproducing the padding constant reported in the paper's Scenario A.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuxAdvInd {
    /// Advertiser address.
    pub adv_address: BleAddress,
    /// Advertising data info, matching the `ADV_EXT_IND`.
    pub adi: u16,
    /// Advertising data (concatenated AD structures).
    pub adv_data: Vec<u8>,
}

/// Number of on-PDU bytes preceding the manufacturer-data payload in
/// [`AuxAdvInd::with_manufacturer_data`] — the "padding" of paper §VI-B.
pub const AUX_ADV_MANUFACTURER_PADDING: usize = 16;

impl AuxAdvInd {
    /// Builds an `AUX_ADV_IND` whose AdvData is a single manufacturer-specific
    /// AD structure, the vehicle Scenario A uses.
    pub fn with_manufacturer_data(
        adv_address: BleAddress,
        adi: u16,
        company_id: u16,
        data: Vec<u8>,
    ) -> Self {
        AuxAdvInd {
            adv_address,
            adi,
            adv_data: AdStructure::manufacturer(company_id, data).to_bytes(),
        }
    }

    /// Serialises to PDU bytes.
    ///
    /// # Panics
    ///
    /// Panics if the AdvData would overflow the one-byte PDU length field
    /// (more than 245 bytes of AdvData with this header layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let ext_header = {
            let mut h = vec![ext_flags::ADV_A | ext_flags::ADI];
            h.extend_from_slice(&self.adv_address.0);
            h.extend_from_slice(&self.adi.to_le_bytes());
            h
        };
        let payload_len = 1 + ext_header.len() + self.adv_data.len();
        assert!(payload_len <= 255, "AdvData overflows the PDU length field");
        let mut out = Vec::new();
        out.push(AdvPduType::AdvExtInd as u8);
        out.push(payload_len as u8);
        out.push(ext_header.len() as u8);
        out.extend(ext_header);
        out.extend_from_slice(&self.adv_data);
        out
    }

    /// Parses an `AUX_ADV_IND` PDU.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 3 || AdvPduType::from_bits(bytes[0])? != AdvPduType::AdvExtInd {
            return None;
        }
        let payload_len = bytes[1] as usize;
        let ext_len = bytes[2] as usize;
        if ext_len < 9 || bytes.len() < 2 + payload_len || payload_len < 1 + ext_len {
            return None;
        }
        let flags = bytes[3];
        if flags & ext_flags::ADV_A == 0 || flags & ext_flags::ADI == 0 {
            return None;
        }
        let mut addr = [0u8; 6];
        addr.copy_from_slice(&bytes[4..10]);
        let adi = u16::from_le_bytes([bytes[10], bytes[11]]);
        let adv_data = bytes[3 + ext_len..2 + payload_len].to_vec();
        Some(AuxAdvInd {
            adv_address: BleAddress(addr),
            adi,
            adv_data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ad_structure_round_trip() {
        let ads = vec![
            AdStructure {
                ad_type: AD_TYPE_FLAGS,
                data: vec![0x06],
            },
            AdStructure::manufacturer(0x0059, vec![1, 2, 3]),
        ];
        let bytes: Vec<u8> = ads.iter().flat_map(|a| a.to_bytes()).collect();
        assert_eq!(AdStructure::parse_all(&bytes), ads);
    }

    #[test]
    fn ad_parse_stops_at_garbage() {
        // Second entry claims 9 bytes but only 2 remain.
        let bytes = vec![2, 0x01, 0x06, 9, 0xFF];
        let parsed = AdStructure::parse_all(&bytes);
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn legacy_adv_round_trip() {
        let pdu = AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address: BleAddress::new([1, 2, 3, 4, 5, 6]),
            adv_data: vec![2, 0x01, 0x06],
        };
        let bytes = pdu.to_bytes();
        assert_eq!(AdvPdu::from_bytes(&bytes), Some(pdu));
    }

    #[test]
    fn aux_ptr_round_trip() {
        for (ch, off, phy2m) in [(0u8, 0u16, false), (8, 300, true), (36, 0x1FFF, true)] {
            let p = AuxPtr {
                channel_index: ch,
                aux_offset_30us: off,
                aux_phy_2m: phy2m,
            };
            assert_eq!(AuxPtr::from_bytes(p.to_bytes()), Some(p));
        }
    }

    #[test]
    fn aux_ptr_rejects_bad_channel() {
        assert!(AuxPtr::from_bytes([37, 0, 0]).is_none());
    }

    #[test]
    fn adv_ext_ind_round_trip() {
        let pdu = AdvExtInd {
            adi: 0x1234,
            aux_ptr: AuxPtr {
                channel_index: 8,
                aux_offset_30us: 10,
                aux_phy_2m: true,
            },
        };
        assert_eq!(AdvExtInd::from_bytes(&pdu.to_bytes()), Some(pdu));
    }

    #[test]
    fn aux_adv_ind_round_trip() {
        let pdu = AuxAdvInd::with_manufacturer_data(
            BleAddress::new([9, 8, 7, 6, 5, 4]),
            0xBEEF,
            0x0059,
            vec![0xAA; 40],
        );
        assert_eq!(AuxAdvInd::from_bytes(&pdu.to_bytes()), Some(pdu));
    }

    #[test]
    fn manufacturer_padding_is_sixteen_bytes() {
        // The constant the paper reports for Scenario A: the attacker's bytes
        // start 16 bytes into the PDU.
        let marker = vec![0xD6, 0xBE, 0x89, 0x8E];
        let pdu =
            AuxAdvInd::with_manufacturer_data(BleAddress::default(), 0, 0x0059, marker.clone());
        let bytes = pdu.to_bytes();
        assert_eq!(
            &bytes[AUX_ADV_MANUFACTURER_PADDING..AUX_ADV_MANUFACTURER_PADDING + 4],
            marker.as_slice()
        );
    }

    #[test]
    fn max_adv_data_fits_length_byte() {
        // 255-byte AdvData is the paper's stated LE 2M extended-adv capacity;
        // our header layout (16 bytes ahead of the payload, 2 of which are
        // the PDU header outside the length count) leaves room for 241 bytes
        // of manufacturer payload before the one-byte PDU length saturates.
        let pdu =
            AuxAdvInd::with_manufacturer_data(BleAddress::default(), 0, 0x0059, vec![0x55; 241]);
        let bytes = pdu.to_bytes();
        assert!(bytes[1] as usize == bytes.len() - 2);
        assert_eq!(AuxAdvInd::from_bytes(&bytes), Some(pdu));
    }

    #[test]
    fn address_display_msb_first() {
        let a = BleAddress::new([0x01, 0x02, 0x03, 0x04, 0x05, 0x06]);
        assert_eq!(format!("{a}"), "06:05:04:03:02:01");
    }

    #[test]
    fn pdu_type_parse_covers_all() {
        for v in 0..=7u8 {
            assert!(AdvPduType::from_bits(v).is_some());
        }
        assert!(AdvPduType::from_bits(8).is_none());
    }
}
