//! GFSK modulation and demodulation (paper §III-B).
//!
//! BLE's PHY is 2-FSK with Gaussian shaping: a `1` raises the carrier by the
//! deviation `Δf = h/(2·Ts)`, a `0` lowers it, and the modulating NRZ signal
//! passes through a BT = 0.5 Gaussian filter. With `h = 0.5` this is GMSK —
//! the waveform family whose MSK limit the WazaBee attack exploits.

use serde::{Deserialize, Serialize};
use wazabee_dsp::correlate::PatternMatch;
use wazabee_dsp::discriminator::discriminate;
use wazabee_dsp::fir::integrate_and_dump;
use wazabee_dsp::gaussian::{shape_nrz, shape_nrz_rect};
use wazabee_dsp::iq::Iq;
use wazabee_dsp::packed::find_pattern_packed;
use wazabee_dsp::PackedBits;

/// Parameters of a GFSK modem.
///
/// # Examples
///
/// ```
/// use wazabee_ble::{BlePhy, GfskParams};
/// let p = GfskParams::ble(BlePhy::Le2M, 8);
/// assert_eq!(p.sample_rate(), 16.0e6);
/// assert_eq!(p.modulation_index, 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GfskParams {
    /// Symbol rate in symbols per second (1e6 or 2e6 for BLE).
    pub symbol_rate: f64,
    /// Oversampling factor of the simulation.
    pub samples_per_symbol: usize,
    /// Modulation index `h` (BLE: 0.45–0.55, nominal 0.5).
    pub modulation_index: f64,
    /// Gaussian BT product, or `None` for rectangular shaping (pure MSK when
    /// `h = 0.5`) — the limit the paper's theory assumes.
    pub bt: Option<f64>,
    /// Gaussian filter span in symbols (ignored for rectangular shaping).
    pub gaussian_span: usize,
}

impl GfskParams {
    /// BLE-compliant parameters for the given PHY mode (BT = 0.5, h = 0.5).
    pub fn ble(phy: crate::channel::BlePhy, samples_per_symbol: usize) -> Self {
        GfskParams {
            symbol_rate: phy.symbol_rate(),
            samples_per_symbol,
            modulation_index: 0.5,
            bt: Some(0.5),
            gaussian_span: 3,
        }
    }

    /// Like [`GfskParams::ble`] but without the Gaussian filter — an ideal
    /// MSK modulator, useful as the theory baseline in ablations.
    pub fn msk(phy: crate::channel::BlePhy, samples_per_symbol: usize) -> Self {
        GfskParams {
            bt: None,
            ..GfskParams::ble(phy, samples_per_symbol)
        }
    }

    /// Simulation sample rate in samples per second.
    pub fn sample_rate(&self) -> f64 {
        self.symbol_rate * self.samples_per_symbol as f64
    }

    /// Frequency deviation `Δf = h / (2·Ts)` in Hz (paper equations 3–4).
    pub fn deviation_hz(&self) -> f64 {
        self.modulation_index * self.symbol_rate / 2.0
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.symbol_rate.is_finite() && self.symbol_rate > 0.0) {
            return Err("symbol rate must be positive".into());
        }
        if self.samples_per_symbol < 2 {
            return Err("need at least 2 samples per symbol".into());
        }
        if !(self.modulation_index > 0.0 && self.modulation_index < 2.0) {
            return Err("modulation index out of range".into());
        }
        if let Some(bt) = self.bt {
            if !(bt > 0.0 && bt <= 2.0) {
                return Err("BT product out of range".into());
            }
        }
        Ok(())
    }
}

/// Modulates a bit stream to a constant-envelope GFSK baseband waveform.
///
/// Each symbol advances the phase by `±π·h` (spread over
/// `samples_per_symbol` samples); with Gaussian shaping enabled the
/// instantaneous frequency transitions are smoothed across symbol boundaries.
///
/// # Panics
///
/// Panics if `params` fail [`GfskParams::validate`].
pub fn modulate(params: &GfskParams, bits: &[u8]) -> Vec<Iq> {
    let _t = wazabee_telemetry::timed_scope!("ble.gfsk.modulate_ns");
    params.validate().expect("invalid GFSK parameters");
    let nrz = wazabee_dsp::bits::bits_to_nrz(bits);
    let shaped = match params.bt {
        Some(bt) => shape_nrz(&nrz, bt, params.samples_per_symbol, params.gaussian_span),
        None => shape_nrz_rect(&nrz, params.samples_per_symbol),
    };
    // Phase step per sample at full deviation: π·h / sps.
    let step = std::f64::consts::PI * params.modulation_index / params.samples_per_symbol as f64;
    let mut phase = 0.0f64;
    let mut out: Vec<Iq> = shaped
        .iter()
        .map(|&s| {
            phase += s * step;
            Iq::from_polar(1.0, phase)
        })
        .collect();
    // Ramp-down tail: hold the final instantaneous frequency for one more
    // symbol, as real PAs do, so the discriminator can observe the last
    // symbol completely.
    if let Some(&last) = shaped.last() {
        for _ in 0..params.samples_per_symbol {
            phase += last * step;
            out.push(Iq::from_polar(1.0, phase));
        }
    }
    out
}

/// Demodulates to per-sample soft frequency values, normalised so the nominal
/// deviation maps to ±1.
pub fn demodulate_soft(params: &GfskParams, samples: &[Iq]) -> Vec<f64> {
    let scale = params.samples_per_symbol as f64 / (std::f64::consts::PI * params.modulation_index);
    discriminate(samples)
        .into_iter()
        .map(|v| v * scale)
        .collect()
}

/// Demodulates hard bits assuming the first symbol starts at sample `offset`.
///
/// The discriminator produces first differences, so each symbol window
/// integrates `sps − 1` in-symbol slopes plus the boundary slope into the
/// next symbol — a deliberate half-step skew worth 1/sps of noise margin
/// that every diff-based FSK receiver shares. Decisions remain exact in the
/// noiseless case for `sps ≥ 2`.
pub fn demodulate_aligned(params: &GfskParams, samples: &[Iq], offset: usize) -> Vec<u8> {
    let _t = wazabee_telemetry::timed_scope!("ble.gfsk.demodulate_ns");
    let soft = demodulate_soft(params, samples);
    if offset >= soft.len() {
        return Vec::new();
    }
    let soft = &soft[offset..];
    let per_symbol = integrate_and_dump(soft, params.samples_per_symbol);
    wazabee_dsp::bits::nrz_to_bits(&per_symbol)
}

/// Planar SIMD twin of [`demodulate_aligned`]: polar-discriminates the `f32`
/// rails with [`wazabee_dsp::simd::discriminate_planar_into`], integrates each
/// symbol window with [`wazabee_dsp::simd::window_sums_into`] and hard-slices.
///
/// The normalising scale of [`demodulate_soft`] and the `1/sps` of the mean
/// are both positive, so the sliced bits are decided by the same signs as the
/// `f64` path — on any waveform whose per-symbol integrals are not within
/// `f32` rounding of zero, the two paths agree bit for bit.
pub fn demodulate_aligned_planar(
    params: &GfskParams,
    samples: wazabee_dsp::IqSlice<'_>,
    offset: usize,
) -> Vec<u8> {
    let _t = wazabee_telemetry::timed_scope!("ble.gfsk.demodulate_ns");
    let mut diffs = Vec::new();
    wazabee_dsp::simd::discriminate_planar_into(samples.i(), samples.q(), &mut diffs);
    if offset >= diffs.len() {
        return Vec::new();
    }
    let sps = params.samples_per_symbol;
    let n_bits = (diffs.len() - offset) / sps;
    let mut sums = Vec::with_capacity(n_bits);
    wazabee_dsp::simd::window_sums_into(&diffs[offset..offset + n_bits * sps], sps, &mut sums);
    let mut bits = Vec::with_capacity(n_bits);
    wazabee_dsp::simd::nrz_hard_bits_into(&sums, &mut bits);
    bits
}

/// The result of a successful raw capture: sync info plus the bits that
/// followed the sync pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawCapture {
    /// Bits following the sync pattern (up to the requested count).
    pub bits: Vec<u8>,
    /// Bit errors observed inside the sync pattern itself.
    pub sync_errors: usize,
    /// Sample-phase offset (0..sps) the receiver locked onto.
    pub sample_offset: usize,
    /// Bit index (within the demodulated stream at that offset) where the
    /// sync pattern started.
    pub sync_bit_index: usize,
}

/// A pattern-triggered GFSK receiver.
///
/// This mirrors the capture pipeline of real BLE radios: demodulate,
/// correlate for a configured sync pattern (normally the access address),
/// then hand the following bits to the link layer. WazaBee's RX primitive
/// reprograms the sync pattern to the MSK image of the 802.15.4 preamble —
/// the hardware neither knows nor cares (paper §IV-D, requirement 4).
#[derive(Debug, Clone)]
pub struct GfskReceiver {
    params: GfskParams,
}

impl GfskReceiver {
    /// Creates a receiver.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`GfskParams::validate`].
    pub fn new(params: GfskParams) -> Self {
        params.validate().expect("invalid GFSK parameters");
        GfskReceiver { params }
    }

    /// The receiver's parameters.
    pub fn params(&self) -> &GfskParams {
        &self.params
    }

    /// Searches the buffer for `sync` (tolerating up to `max_sync_errors`
    /// mismatches), trying every sample phase, and captures up to
    /// `capture_bits` bits after the pattern.
    ///
    /// Returns the capture with the fewest sync errors across all sample
    /// phases, or `None` when no phase qualifies.
    pub fn capture(
        &self,
        samples: &[Iq],
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        let sps = self.params.samples_per_symbol;
        let sync_packed = PackedBits::from_bits(sync);
        let mut best: Option<RawCapture> = None;
        for offset in 0..sps {
            let bits = demodulate_aligned(&self.params, samples, offset);
            let stream = PackedBits::from_bits(&bits);
            let Some(PatternMatch { index, errors }) =
                find_pattern_packed(&stream, &sync_packed, 0, max_sync_errors)
            else {
                continue;
            };
            if best.as_ref().is_none_or(|b| errors < b.sync_errors) {
                let start = index + sync.len();
                let end = (start + capture_bits).min(bits.len());
                best = Some(RawCapture {
                    bits: bits[start..end].to_vec(),
                    sync_errors: errors,
                    sample_offset: offset,
                    sync_bit_index: index,
                });
                if errors == 0 {
                    break;
                }
            }
        }
        match &best {
            Some(c) => {
                wazabee_telemetry::counter!("ble.sync.hit").inc();
                wazabee_telemetry::value_histogram!("ble.sync_errors", 0.0, 33.0)
                    .record(c.sync_errors as f64);
            }
            None => wazabee_telemetry::counter!("ble.sync.miss").inc(),
        }
        best
    }

    /// Like [`GfskReceiver::capture`], but resumes the pattern search at bit
    /// `start_bit` of each sample phase's demodulated stream — the resume
    /// entry point behind the modems' `receive_raw_from`.
    ///
    /// Selection also differs deliberately: instead of the globally
    /// fewest-errors phase, it locks onto the *earliest* sync event, as an
    /// always-armed hardware correlator would. Among the phases whose first
    /// match lands within one bit of the earliest (the same physical sync
    /// event seen at adjacent sample phases), the fewest errors win; ties go
    /// to the lower phase, then the earlier index — adjacent phases see the
    /// same event one bit early, so preferring the earlier *index* would
    /// systematically lock a misaligned phase. A resumed scan therefore
    /// depends only on the stream at and after `start_bit`, never on how a
    /// later, stronger match might compare — re-arming one bit past a bad
    /// sync hit walks the buffer event by event.
    pub fn capture_from(
        &self,
        samples: &[Iq],
        start_bit: usize,
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        let sps = self.params.samples_per_symbol;
        let sync_packed = PackedBits::from_bits(sync);
        let lanes: Vec<(Vec<u8>, Option<PatternMatch>)> = (0..sps)
            .map(|offset| {
                let bits = demodulate_aligned(&self.params, samples, offset);
                let stream = PackedBits::from_bits(&bits);
                let m = find_pattern_packed(&stream, &sync_packed, start_bit, max_sync_errors);
                (bits, m)
            })
            .collect();
        let i_min = lanes.iter().filter_map(|(_, m)| m.map(|pm| pm.index)).min();
        let capture = i_min.and_then(|i_min| {
            lanes
                .iter()
                .enumerate()
                .filter_map(|(offset, (bits, m))| m.map(|pm| (offset, bits, pm)))
                .filter(|&(_, _, pm)| pm.index <= i_min + 1)
                .min_by_key(|&(offset, _, pm)| (pm.errors, offset, pm.index))
                .map(|(offset, bits, pm)| {
                    let start = pm.index + sync.len();
                    let end = (start + capture_bits).min(bits.len());
                    RawCapture {
                        bits: bits[start..end].to_vec(),
                        sync_errors: pm.errors,
                        sample_offset: offset,
                        sync_bit_index: pm.index,
                    }
                })
        });
        match &capture {
            Some(c) => {
                wazabee_telemetry::counter!("ble.sync.hit").inc();
                wazabee_telemetry::value_histogram!("ble.sync_errors", 0.0, 33.0)
                    .record(c.sync_errors as f64);
            }
            None => wazabee_telemetry::counter!("ble.sync.miss").inc(),
        }
        capture
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::BlePhy;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use wazabee_dsp::AwgnSource;

    fn params() -> GfskParams {
        GfskParams::ble(BlePhy::Le2M, 8)
    }

    fn random_bits(seed: u64, n: usize) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn constant_envelope() {
        let tx = modulate(&params(), &random_bits(1, 64));
        for s in &tx {
            assert!((s.amplitude() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn noiseless_loopback_rect() {
        let p = GfskParams::msk(BlePhy::Le2M, 8);
        let bits = random_bits(2, 200);
        let rx = demodulate_aligned(&p, &modulate(&p, &bits), 0);
        // The discriminator loses part of the final symbol; compare the body.
        assert_eq!(&rx[..bits.len() - 1], &bits[..bits.len() - 1]);
    }

    #[test]
    fn noiseless_loopback_gaussian() {
        let p = params();
        let bits = random_bits(3, 200);
        let rx = demodulate_aligned(&p, &modulate(&p, &bits), 0);
        assert_eq!(&rx[..bits.len() - 1], &bits[..bits.len() - 1]);
    }

    #[test]
    fn one_bit_rotates_counter_clockwise() {
        // Paper Figure 1: f↗ (a 1) turns the IQ vector counter-clockwise.
        let p = GfskParams::msk(BlePhy::Le1M, 8);
        let tx = modulate(&p, &[1, 1, 1, 1]);
        let phases = wazabee_dsp::discriminator::phase_trajectory(&tx);
        assert!(phases.last().unwrap() > &phases[0]);
        let tx0 = modulate(&p, &[0, 0, 0, 0]);
        let phases0 = wazabee_dsp::discriminator::phase_trajectory(&tx0);
        assert!(phases0.last().unwrap() < &phases0[0]);
    }

    #[test]
    fn msk_phase_advances_quarter_turn_per_symbol() {
        let p = GfskParams::msk(BlePhy::Le2M, 8);
        let tx = modulate(&p, &[1, 1, 0, 1]);
        let traj = wazabee_dsp::discriminator::phase_trajectory(&tx);
        // After each symbol (8 samples) the accumulated phase is k·(±π/2).
        let q = std::f64::consts::FRAC_PI_2;
        let expect = [q, 2.0 * q, q, 2.0 * q];
        for (k, &e) in expect.iter().enumerate() {
            let idx = (k + 1) * 8 - 1;
            let measured = traj[idx] - traj[0] + q / 8.0; // include first step
            assert!(
                (measured - e).abs() < 1e-9,
                "symbol {k}: got {measured}, want {e}"
            );
        }
    }

    #[test]
    fn gaussian_reduces_spectral_transitions() {
        // With the Gaussian filter, instantaneous frequency never jumps by
        // the full 2Δf between consecutive samples.
        let p = params();
        let tx = modulate(&p, &[1, 0, 1, 0, 1, 0, 1, 0]);
        let soft = demodulate_soft(&p, &tx);
        let max_jump = soft
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max);
        assert!(max_jump < 1.0, "gaussian-shaped jump {max_jump}");

        let pr = GfskParams::msk(BlePhy::Le2M, 8);
        let txr = modulate(&pr, &[1, 0, 1, 0, 1, 0, 1, 0]);
        let softr = demodulate_soft(&pr, &txr);
        let max_jump_rect = softr
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max);
        assert!(max_jump_rect > 1.5, "rectangular jump {max_jump_rect}");
    }

    #[test]
    fn receiver_finds_sync_at_any_sample_phase() {
        let p = params();
        let sync = random_bits(4, 32);
        let payload = random_bits(5, 64);
        let mut bits = vec![0, 1, 0, 1, 0, 1, 0, 1]; // preamble-ish lead-in
        bits.extend_from_slice(&sync);
        bits.extend_from_slice(&payload);
        bits.push(0); // guard so the last payload bit demodulates cleanly
        let tx = modulate(&p, &bits);
        let rx = GfskReceiver::new(p);
        for cut in [0usize, 1, 3, 5, 7] {
            let capture = rx.capture(&tx[cut..], &sync, 0, payload.len()).unwrap();
            assert_eq!(capture.bits, payload, "cut {cut}");
            assert_eq!(capture.sync_errors, 0);
        }
    }

    #[test]
    fn capture_from_resumes_past_an_earlier_sync() {
        // Two occurrences of the sync pattern with distinct payloads; a scan
        // resumed one bit past the first sync index must lock onto the second.
        let p = params();
        let sync = random_bits(40, 32);
        let payload_a = random_bits(41, 48);
        let payload_b = random_bits(42, 48);
        let mut bits = vec![0, 1, 0, 1, 0, 1, 0, 1];
        bits.extend_from_slice(&sync);
        bits.extend_from_slice(&payload_a);
        bits.extend_from_slice(&sync);
        bits.extend_from_slice(&payload_b);
        bits.push(0);
        let tx = modulate(&p, &bits);
        let rx = GfskReceiver::new(p);

        let first = rx
            .capture_from(&tx, 0, &sync, 0, payload_a.len())
            .expect("first sync");
        assert_eq!(first.bits, payload_a);

        let second = rx
            .capture_from(&tx, first.sync_bit_index + 1, &sync, 0, payload_b.len())
            .expect("second sync");
        assert_eq!(second.bits, payload_b);
        assert!(second.sync_bit_index > first.sync_bit_index);

        // Resuming past the last occurrence finds nothing.
        assert!(rx
            .capture_from(&tx, second.sync_bit_index + 1, &sync, 0, 8)
            .is_none());
    }

    #[test]
    fn receiver_tolerates_noise_within_error_budget() {
        let p = params();
        let sync = random_bits(6, 32);
        let payload = random_bits(7, 128);
        let mut bits = sync.clone();
        bits.extend_from_slice(&payload);
        bits.push(0);
        let mut tx = modulate(&p, &bits);
        AwgnSource::from_snr_db(8, 15.0, 1.0).add_to(&mut tx);
        let rx = GfskReceiver::new(p);
        let capture = rx.capture(&tx, &sync, 4, payload.len()).unwrap();
        let errors = wazabee_dsp::bits::hamming(&capture.bits, &payload);
        assert!(errors <= 4, "{errors} payload bit errors at 15 dB");
    }

    #[test]
    fn receiver_rejects_absent_sync() {
        let p = params();
        let tx = modulate(&p, &random_bits(9, 128));
        let rx = GfskReceiver::new(p);
        let sync = vec![1; 32]; // a 32-bit run of 1s never survives whitened data
        assert!(rx.capture(&tx, &sync, 0, 10).is_none());
    }

    #[test]
    fn capture_truncates_at_buffer_end() {
        let p = params();
        let sync = random_bits(10, 16);
        let mut bits = sync.clone();
        bits.extend_from_slice(&[1, 0, 1]);
        let tx = modulate(&p, &bits);
        let rx = GfskReceiver::new(p);
        let capture = rx.capture(&tx, &sync, 0, 1000).unwrap();
        // The ramp-down tail may decode as one extra bit at most.
        assert!(capture.bits.len() <= 4);
        assert_eq!(&capture.bits[..3], &[1, 0, 1]);
    }

    #[test]
    fn planar_demod_matches_f64_demod_at_every_phase() {
        for p in [params(), GfskParams::msk(BlePhy::Le2M, 8)] {
            let bits = random_bits(11, 160);
            let mut tx = modulate(&p, &bits);
            AwgnSource::from_snr_db(12, 20.0, 1.0).add_to(&mut tx);
            let planar = wazabee_dsp::IqBuf::from_interleaved(&tx);
            for offset in 0..p.samples_per_symbol {
                let f64_bits = demodulate_aligned(&p, &tx, offset);
                let f32_bits = demodulate_aligned_planar(&p, planar.as_slice(), offset);
                assert_eq!(f32_bits, f64_bits, "offset {offset}");
            }
        }
    }

    #[test]
    fn deviation_and_sample_rate() {
        let p = params();
        assert_eq!(p.deviation_hz(), 0.5e6);
        assert_eq!(p.sample_rate(), 16.0e6);
    }

    #[test]
    fn validate_rejects_bad_params() {
        let mut p = params();
        p.samples_per_symbol = 1;
        assert!(p.validate().is_err());
        let mut p = params();
        p.modulation_index = 0.0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.bt = Some(0.0);
        assert!(p.validate().is_err());
        let mut p = params();
        p.symbol_rate = -1.0;
        assert!(p.validate().is_err());
        assert!(params().validate().is_ok());
    }
}
