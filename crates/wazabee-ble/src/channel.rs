//! BLE channel plan: 40 channels of 2 MHz bandwidth in the 2.4 GHz ISM band.
//!
//! Channels 37, 38 and 39 are the primary advertising channels at 2402, 2426
//! and 2480 MHz; channels 0–36 are data channels (usable as secondary
//! advertising channels since BLE 5) spread over the remaining frequencies
//! (paper §III-B).

use serde::{Deserialize, Serialize};

/// A validated BLE channel index (0–39).
///
/// # Examples
///
/// ```
/// use wazabee_ble::BleChannel;
/// let ch = BleChannel::new(8).unwrap();
/// assert_eq!(ch.center_mhz(), 2420); // the channel Scenario A targets
/// assert!(ch.is_data());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BleChannel(u8);

impl BleChannel {
    /// Number of BLE channels.
    pub const COUNT: u8 = 40;
    /// The three primary advertising channels.
    pub const ADVERTISING: [BleChannel; 3] = [BleChannel(37), BleChannel(38), BleChannel(39)];

    /// Creates a channel from its index, rejecting indices above 39.
    pub fn new(index: u8) -> Option<Self> {
        (index < Self::COUNT).then_some(BleChannel(index))
    }

    /// The channel index (0–39).
    pub fn index(self) -> u8 {
        self.0
    }

    /// Centre frequency in MHz.
    ///
    /// Data channels 0–10 occupy 2404–2424 MHz, data channels 11–36 occupy
    /// 2428–2478 MHz, and the advertising channels sit at 2402/2426/2480 MHz.
    pub fn center_mhz(self) -> u32 {
        match self.0 {
            37 => 2402,
            38 => 2426,
            39 => 2480,
            k if k <= 10 => 2404 + 2 * k as u32,
            k => 2428 + 2 * (k as u32 - 11),
        }
    }

    /// True for the three primary advertising channels.
    pub fn is_advertising(self) -> bool {
        self.0 >= 37
    }

    /// True for the 37 data channels (secondary advertising channels in BLE 5).
    pub fn is_data(self) -> bool {
        self.0 < 37
    }

    /// Looks a channel up by centre frequency, if any BLE channel sits there.
    pub fn from_center_mhz(freq_mhz: u32) -> Option<Self> {
        (0..Self::COUNT)
            .map(BleChannel)
            .find(|c| c.center_mhz() == freq_mhz)
    }

    /// Iterator over all 40 channels in index order.
    pub fn all() -> impl Iterator<Item = BleChannel> {
        (0..Self::COUNT).map(BleChannel)
    }

    /// Iterator over the 37 data channels in index order.
    pub fn data_channels() -> impl Iterator<Item = BleChannel> {
        (0..37).map(BleChannel)
    }
}

impl std::fmt::Display for BleChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BLE ch {} ({} MHz)", self.0, self.center_mhz())
    }
}

/// The physical-layer mode of a BLE transmission (paper §III-B).
///
/// LE Coded is out of scope, as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BlePhy {
    /// 1 Mbit/s GFSK — the original PHY, mandatory everywhere.
    #[default]
    Le1M,
    /// 2 Mbit/s GFSK — introduced in BLE 5; the rate WazaBee requires.
    Le2M,
}

impl BlePhy {
    /// Symbol rate in symbols per second.
    pub fn symbol_rate(self) -> f64 {
        match self {
            BlePhy::Le1M => 1.0e6,
            BlePhy::Le2M => 2.0e6,
        }
    }

    /// Preamble length in bytes (1 for LE 1M, 2 for LE 2M).
    pub fn preamble_bytes(self) -> usize {
        match self {
            BlePhy::Le1M => 1,
            BlePhy::Le2M => 2,
        }
    }
}

impl std::fmt::Display for BlePhy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlePhy::Le1M => write!(f, "LE 1M"),
            BlePhy::Le2M => write!(f, "LE 2M"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advertising_channel_frequencies() {
        assert_eq!(BleChannel::new(37).unwrap().center_mhz(), 2402);
        assert_eq!(BleChannel::new(38).unwrap().center_mhz(), 2426);
        assert_eq!(BleChannel::new(39).unwrap().center_mhz(), 2480);
    }

    #[test]
    fn data_channels_skip_advertising_frequencies() {
        // Data channels are spaced 2 MHz starting at 2404, skipping 2426.
        assert_eq!(BleChannel::new(0).unwrap().center_mhz(), 2404);
        assert_eq!(BleChannel::new(10).unwrap().center_mhz(), 2424);
        assert_eq!(BleChannel::new(11).unwrap().center_mhz(), 2428);
        assert_eq!(BleChannel::new(36).unwrap().center_mhz(), 2478);
        for c in BleChannel::data_channels() {
            assert_ne!(c.center_mhz(), 2402);
            assert_ne!(c.center_mhz(), 2426);
            assert_ne!(c.center_mhz(), 2480);
        }
    }

    #[test]
    fn paper_table2_ble_side() {
        // The BLE channels of paper Table II and their centre frequencies.
        let expect = [
            (3, 2410),
            (8, 2420),
            (12, 2430),
            (17, 2440),
            (22, 2450),
            (27, 2460),
            (32, 2470),
            (39, 2480),
        ];
        for (idx, mhz) in expect {
            assert_eq!(BleChannel::new(idx).unwrap().center_mhz(), mhz);
        }
    }

    #[test]
    fn all_frequencies_unique_and_in_band() {
        let mut freqs: Vec<u32> = BleChannel::all().map(|c| c.center_mhz()).collect();
        assert_eq!(freqs.len(), 40);
        freqs.sort_unstable();
        freqs.dedup();
        assert_eq!(freqs.len(), 40, "duplicate centre frequency");
        assert!(freqs.iter().all(|&f| (2402..=2480).contains(&f)));
    }

    #[test]
    fn from_center_round_trip() {
        for c in BleChannel::all() {
            assert_eq!(BleChannel::from_center_mhz(c.center_mhz()), Some(c));
        }
        assert_eq!(BleChannel::from_center_mhz(2403), None);
    }

    #[test]
    fn index_validation() {
        assert!(BleChannel::new(39).is_some());
        assert!(BleChannel::new(40).is_none());
        assert!(BleChannel::new(255).is_none());
    }

    #[test]
    fn phy_parameters() {
        assert_eq!(BlePhy::Le1M.symbol_rate(), 1.0e6);
        assert_eq!(BlePhy::Le2M.symbol_rate(), 2.0e6);
        assert_eq!(BlePhy::Le1M.preamble_bytes(), 1);
        assert_eq!(BlePhy::Le2M.preamble_bytes(), 2);
        assert_eq!(BlePhy::default(), BlePhy::Le1M);
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", BleChannel::new(8).unwrap());
        assert!(s.contains('8') && s.contains("2420"));
        assert_eq!(format!("{}", BlePhy::Le2M), "LE 2M");
    }
}
