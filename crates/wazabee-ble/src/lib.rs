#![warn(missing_docs)]

//! # wazabee-ble
//!
//! Bit-accurate Bluetooth Low Energy PHY and link-layer substrate for the
//! WazaBee reproduction (Cayre et al., DSN 2021).
//!
//! The crate models everything the paper's attack touches in the BLE stack
//! (§III-B and §IV-D):
//!
//! * the 40-channel plan and the LE 1M / LE 2M PHY modes ([`channel`]),
//! * data whitening — the self-inverse LFSR WazaBee pre-inverts ([`whitening`]),
//! * the 24-bit CRC the attack must disable on receive ([`crc`]),
//! * packet assembly and parsing ([`packet`]),
//! * advertising PDUs including BLE 5 extended advertising ([`adv`]),
//! * Channel Selection Algorithm #2, which gates Scenario A ([`csa2`]),
//! * the GFSK waveform itself and a pattern-triggered receiver ([`gfsk`]),
//! * a full modem tying it together, with both legitimate packet paths and
//!   the raw bit paths the attack diverts ([`modem`]).
//!
//! ## Example
//!
//! ```
//! use wazabee_ble::{BleChannel, BleModem, BlePacket, BlePhy};
//!
//! // A complete BLE 5 LE 2M link over a clean channel.
//! let modem = BleModem::new(BlePhy::Le2M, 8);
//! let ch = BleChannel::new(8).unwrap(); // 2420 MHz — Zigbee channel 14!
//! let pkt = BlePacket::advertising(vec![0x02, 0x01, 0xFF]);
//! let air = modem.transmit(&pkt, ch, true);
//! let rx = modem.receive(&air, pkt.access_address(), ch, true).unwrap();
//! assert!(rx.crc_ok());
//! ```

pub mod adv;
pub mod channel;
pub mod connection;
pub mod crc;
pub mod csa2;
pub mod gfsk;
pub mod modem;
pub mod packet;
pub mod whitening;

pub use adv::{AdStructure, AdvExtInd, AdvPdu, AdvPduType, AuxAdvInd, AuxPtr, BleAddress};
pub use channel::{BleChannel, BlePhy};
pub use connection::{Connection, ConnectionParameters, DataPdu, Llid};
pub use csa2::{select_channel, ChannelMap, EventChannelSequence};
pub use gfsk::{demodulate_aligned_planar, GfskParams, GfskReceiver, RawCapture};
pub use modem::BleModem;
pub use packet::{BlePacket, ADV_ACCESS_ADDRESS};
pub use whitening::Whitener;

#[cfg(test)]
mod lib_tests {
    #[test]
    fn reexports_compile() {
        let _ = crate::BleChannel::new(0);
        let _ = crate::BlePhy::Le2M;
        let _ = crate::ChannelMap::all_data_channels();
    }
}
