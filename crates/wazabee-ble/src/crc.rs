//! BLE 24-bit CRC (Core spec vol 6 part B §3.1.1).
//!
//! Polynomial `x²⁴ + x¹⁰ + x⁹ + x⁶ + x⁴ + x³ + x + 1`, preset 0x555555 for
//! advertising PDUs. The paper's RX primitive requires *disabling* this check
//! on the diverted chip, because an 802.15.4 frame is never a valid BLE frame
//! (§IV-D requirement 4).

/// CRC polynomial (the x²⁴ term is implicit).
pub const BLE_CRC_POLY: u32 = 0x00_065B;
/// Preset value used on advertising channels.
pub const BLE_CRC_INIT_ADV: u32 = 0x55_5555;

/// Computes the BLE CRC over `pdu` bytes with the given preset.
///
/// Bits are consumed LSB-first within each byte, matching on-air order.
///
/// # Examples
///
/// ```
/// use wazabee_ble::crc::{crc24, BLE_CRC_INIT_ADV};
/// let a = crc24(&[1, 2, 3], BLE_CRC_INIT_ADV);
/// let b = crc24(&[1, 2, 4], BLE_CRC_INIT_ADV);
/// assert_ne!(a, b);
/// assert!(a < 1 << 24);
/// ```
pub fn crc24(pdu: &[u8], init: u32) -> u32 {
    let mut crc = init & 0xFF_FFFF;
    for &byte in pdu {
        for k in 0..8 {
            let bit = (byte >> k) & 1;
            let feedback = bit ^ ((crc >> 23) & 1) as u8;
            crc = (crc << 1) & 0xFF_FFFF;
            if feedback == 1 {
                crc ^= BLE_CRC_POLY;
            }
        }
    }
    crc
}

/// Serialises a 24-bit CRC to its three on-air bytes.
///
/// The CRC is transmitted most-significant bit first; combined with the
/// LSB-first byte serialisation used everywhere else, that means each output
/// byte holds eight CRC bits in reversed order, starting from bit 23.
pub fn crc24_to_bytes(crc: u32) -> [u8; 3] {
    let mut out = [0u8; 3];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut byte = 0u8;
        for j in 0..8 {
            let crc_bit = ((crc >> (23 - (k * 8 + j))) & 1) as u8;
            byte |= crc_bit << j;
        }
        *slot = byte;
    }
    out
}

/// Parses the three on-air CRC bytes back into a 24-bit value.
pub fn crc24_from_bytes(bytes: [u8; 3]) -> u32 {
    let mut crc = 0u32;
    for (k, &byte) in bytes.iter().enumerate() {
        for j in 0..8 {
            let bit = ((byte >> j) & 1) as u32;
            crc |= bit << (23 - (k * 8 + j));
        }
    }
    crc
}

/// Computes and serialises the advertising CRC for a PDU in one step.
pub fn adv_crc_bytes(pdu: &[u8]) -> [u8; 3] {
    crc24_to_bytes(crc24(pdu, BLE_CRC_INIT_ADV))
}

/// Verifies the CRC bytes trailing a PDU.
pub fn check_adv_crc(pdu: &[u8], crc_bytes: [u8; 3]) -> bool {
    adv_crc_bytes(pdu) == crc_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_is_24_bits() {
        for n in 0..32 {
            let data: Vec<u8> = (0..n).collect();
            assert!(crc24(&data, BLE_CRC_INIT_ADV) < (1 << 24));
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0x42, 0x10, 0xFF, 0x00, 0x77];
        let reference = crc24(&data, BLE_CRC_INIT_ADV);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(
                    crc24(&corrupted, BLE_CRC_INIT_ADV),
                    reference,
                    "flip at byte {byte} bit {bit} undetected"
                );
            }
        }
    }

    #[test]
    fn empty_pdu_crc_is_preset_image() {
        // With no input bits the register is untouched.
        assert_eq!(crc24(&[], BLE_CRC_INIT_ADV), BLE_CRC_INIT_ADV);
    }

    #[test]
    fn serialisation_round_trip() {
        for crc in [0u32, 1, 0x555555, 0xABCDEF, 0xFFFFFF] {
            assert_eq!(crc24_from_bytes(crc24_to_bytes(crc)), crc);
        }
    }

    #[test]
    fn check_accepts_valid_and_rejects_corrupt() {
        let pdu = vec![0x02, 0x03, 0xAA, 0xBB, 0xCC];
        let crc = adv_crc_bytes(&pdu);
        assert!(check_adv_crc(&pdu, crc));
        let mut bad = crc;
        bad[1] ^= 0x04;
        assert!(!check_adv_crc(&pdu, bad));
        let mut bad_pdu = pdu.clone();
        bad_pdu[0] ^= 0x80;
        assert!(!check_adv_crc(&bad_pdu, crc));
    }

    #[test]
    fn init_value_matters() {
        let pdu = vec![9, 9, 9];
        assert_ne!(crc24(&pdu, BLE_CRC_INIT_ADV), crc24(&pdu, 0x000000));
    }

    #[test]
    fn linearity_over_gf2() {
        // CRC(a) XOR CRC(b) with init 0 equals CRC(a XOR b) with init 0 —
        // the defining property of a linear code, and a strong structural
        // check of the LFSR implementation.
        let a = vec![0x13, 0x37, 0xC0, 0xDE];
        let b = vec![0x0F, 0xF0, 0x55, 0xAA];
        let x: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
        assert_eq!(crc24(&a, 0) ^ crc24(&b, 0), crc24(&x, 0));
    }
}
