//! A complete BLE modem: packets in, IQ out — and back.
//!
//! [`BleModem`] couples the GFSK waveform layer with packet assembly,
//! whitening and CRC, exposing both the *legitimate* interface (transmit and
//! receive BLE packets) and the *raw* interface (arbitrary bits, arbitrary
//! sync pattern) that WazaBee's primitives are built on.

use wazabee_dsp::iq::Iq;

use crate::channel::{BleChannel, BlePhy};
use crate::gfsk::{modulate, GfskParams, GfskReceiver, RawCapture};
use crate::packet::BlePacket;

/// A BLE physical-layer modem.
///
/// # Examples
///
/// ```
/// use wazabee_ble::{BleChannel, BleModem, BlePacket, BlePhy};
///
/// let modem = BleModem::new(BlePhy::Le2M, 8);
/// let ch = BleChannel::new(8).unwrap();
/// let pkt = BlePacket::advertising(vec![0x02, 0x03, 0xAA, 0xBB, 0xCC]);
/// let iq = modem.transmit(&pkt, ch, true);
/// let rx = modem.receive(&iq, pkt.access_address(), ch, true).unwrap();
/// assert_eq!(rx.pdu(), pkt.pdu());
/// assert!(rx.crc_ok());
/// ```
#[derive(Debug, Clone)]
pub struct BleModem {
    phy: BlePhy,
    params: GfskParams,
}

/// Longest body (PDU + CRC) a receiver will capture, in bits:
/// 2-byte header + 255-byte payload + 3-byte CRC.
pub const MAX_BODY_BITS: usize = (2 + 255 + 3) * 8;

impl BleModem {
    /// Creates a spec-compliant modem (BT = 0.5, h = 0.5) for `phy` at the
    /// given oversampling factor.
    pub fn new(phy: BlePhy, samples_per_symbol: usize) -> Self {
        BleModem {
            phy,
            params: GfskParams::ble(phy, samples_per_symbol),
        }
    }

    /// Creates a modem with custom GFSK parameters (used by ablation benches
    /// to sweep the modulation index and BT product).
    pub fn with_params(phy: BlePhy, params: GfskParams) -> Self {
        BleModem { phy, params }
    }

    /// The modem's PHY mode.
    pub fn phy(&self) -> BlePhy {
        self.phy
    }

    /// The modem's waveform parameters.
    pub fn params(&self) -> &GfskParams {
        &self.params
    }

    /// Simulation sample rate in samples per second.
    pub fn sample_rate(&self) -> f64 {
        self.params.sample_rate()
    }

    /// Modulates a full packet (preamble · AA · whitened PDU+CRC) to IQ.
    pub fn transmit(&self, packet: &BlePacket, channel: BleChannel, whitening: bool) -> Vec<Iq> {
        wazabee_telemetry::counter!("ble.tx.packets").inc();
        if whitening {
            wazabee_telemetry::counter!("ble.tx.whitening.on").inc();
        } else {
            wazabee_telemetry::counter!("ble.tx.whitening.off").inc();
        }
        let bits = packet.to_air_bits(channel, self.phy, whitening);
        modulate(&self.params, &bits)
    }

    /// Modulates raw bits with no framing at all — the diverted transmit path
    /// of WazaBee (the caller is responsible for every bit on air).
    pub fn transmit_raw(&self, bits: &[u8]) -> Vec<Iq> {
        modulate(&self.params, bits)
    }

    /// Receives a packet: correlates for `access_address`, captures the body,
    /// de-whitens (if enabled) and parses header, payload and CRC.
    ///
    /// Mirrors a real controller in permissive mode: a CRC failure is
    /// reported in the returned packet, not hidden.
    pub fn receive(
        &self,
        samples: &[Iq],
        access_address: u32,
        channel: BleChannel,
        whitening: bool,
    ) -> Option<BlePacket> {
        let mut tr = wazabee_flightrec::begin("ble.rx");
        if tr.active() {
            tr.tap_iq(samples, self.sample_rate(), None);
        }
        let sync = BlePacket::access_address_bits(access_address);
        let rx = GfskReceiver::new(self.params);
        let Some(capture) = rx.capture(samples, &sync, 1, MAX_BODY_BITS) else {
            wazabee_telemetry::counter!("ble.rx.fail.no_sync").inc();
            tr.fail(wazabee_flightrec::RxFailure::NoSync);
            return None;
        };
        tr.sync(
            capture.sync_errors,
            capture.sync_bit_index,
            capture.sample_offset,
            sync.len(),
        );
        let packet = BlePacket::from_body_bits(access_address, &capture.bits, channel, whitening);
        match &packet {
            Some(p) => {
                let ok = p.crc_ok();
                if ok {
                    wazabee_telemetry::counter!("ble.crc.ok").inc();
                } else {
                    wazabee_telemetry::counter!("ble.crc.fail").inc();
                    wazabee_telemetry::counter!("ble.rx.fail.crc").inc();
                }
                tr.deliver(p.pdu(), ok, wazabee_flightrec::FrameKind::Ble);
            }
            None => {
                wazabee_telemetry::counter!("ble.rx.fail.truncated").inc();
                tr.fail(wazabee_flightrec::RxFailure::TruncatedFrame);
            }
        }
        packet
    }

    /// Captures raw demodulated bits after an arbitrary sync pattern — the
    /// diverted receive path of WazaBee (paper §IV-D: access address set to
    /// the MSK image of the 802.15.4 preamble, CRC check off, length maxed).
    ///
    /// Single-shot shim over [`BleModem::receive_raw_from`] starting at bit 0.
    pub fn receive_raw(
        &self,
        samples: &[Iq],
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        self.receive_raw_from(samples, 0, sync, max_sync_errors, capture_bits)
    }

    /// Like [`BleModem::receive_raw`], but resumes the sync search at bit
    /// `start_bit` of the demodulated stream — re-arming one bit past a
    /// failed sync hit walks a multi-frame capture event by event instead of
    /// surrendering the buffer to the first match.
    pub fn receive_raw_from(
        &self,
        samples: &[Iq],
        start_bit: usize,
        sync: &[u8],
        max_sync_errors: usize,
        capture_bits: usize,
    ) -> Option<RawCapture> {
        GfskReceiver::new(self.params).capture_from(
            samples,
            start_bit,
            sync,
            max_sync_errors,
            capture_bits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use wazabee_dsp::AwgnSource;

    fn modem() -> BleModem {
        BleModem::new(BlePhy::Le2M, 8)
    }

    fn ch(i: u8) -> BleChannel {
        BleChannel::new(i).unwrap()
    }

    fn random_pdu(seed: u64, payload: usize) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pdu = vec![0x02, payload as u8];
        pdu.extend((0..payload).map(|_| rng.gen::<u8>()));
        pdu
    }

    #[test]
    fn packet_loopback_clean_channel() {
        let m = modem();
        for (seed, payload) in [(1u64, 0usize), (2, 8), (3, 37), (4, 100)] {
            let pkt = BlePacket::advertising(random_pdu(seed, payload));
            let iq = m.transmit(&pkt, ch(8), true);
            let rx = m.receive(&iq, pkt.access_address(), ch(8), true).unwrap();
            assert_eq!(rx.pdu(), pkt.pdu());
            assert!(rx.crc_ok(), "payload {payload}");
        }
    }

    #[test]
    fn packet_loopback_le1m() {
        let m = BleModem::new(BlePhy::Le1M, 8);
        let pkt = BlePacket::advertising(random_pdu(5, 20));
        let iq = m.transmit(&pkt, ch(37), true);
        let rx = m.receive(&iq, pkt.access_address(), ch(37), true).unwrap();
        assert!(rx.crc_ok());
        assert_eq!(rx.pdu(), pkt.pdu());
    }

    #[test]
    fn packet_loopback_under_noise() {
        let m = modem();
        let pkt = BlePacket::advertising(random_pdu(6, 30));
        let mut iq = m.transmit(&pkt, ch(3), true);
        AwgnSource::from_snr_db(7, 18.0, 1.0).add_to(&mut iq);
        let rx = m.receive(&iq, pkt.access_address(), ch(3), true).unwrap();
        assert_eq!(rx.pdu(), pkt.pdu());
        assert!(rx.crc_ok());
    }

    #[test]
    fn receive_flags_crc_on_wrong_whitening_channel() {
        let m = modem();
        let pkt = BlePacket::advertising(random_pdu(8, 12));
        let iq = m.transmit(&pkt, ch(8), true);
        // De-whitened for the wrong channel → CRC must fail if it parses.
        if let Some(rx) = m.receive(&iq, pkt.access_address(), ch(9), true) {
            assert!(!rx.crc_ok());
        }
    }

    #[test]
    fn no_packet_in_pure_noise() {
        let m = modem();
        let mut iq = vec![wazabee_dsp::Iq::ZERO; 4000];
        AwgnSource::new(9, 0.7).add_to(&mut iq);
        assert!(m.receive(&iq, 0x8E89_BED6, ch(0), true).is_none());
    }

    #[test]
    fn raw_paths_compose() {
        // transmit_raw + receive_raw round-trip arbitrary bits — the exact
        // plumbing WazaBee builds on.
        let m = modem();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let sync: Vec<u8> = (0..32).map(|_| rng.gen_range(0..=1)).collect();
        let payload: Vec<u8> = (0..256).map(|_| rng.gen_range(0..=1)).collect();
        let mut bits = vec![0, 1, 0, 1];
        bits.extend_from_slice(&sync);
        bits.extend_from_slice(&payload);
        bits.push(0);
        let iq = m.transmit_raw(&bits);
        let cap = m.receive_raw(&iq, &sync, 2, payload.len()).unwrap();
        assert_eq!(cap.bits, payload);
    }

    #[test]
    fn sample_rate_reflects_phy() {
        assert_eq!(BleModem::new(BlePhy::Le1M, 8).sample_rate(), 8.0e6);
        assert_eq!(BleModem::new(BlePhy::Le2M, 8).sample_rate(), 16.0e6);
    }
}
