//! BLE connected mode: `CONNECT_IND`, connection parameters, and per-event
//! channel hopping.
//!
//! WazaBee deliberately *avoids* connected mode — the hopping "complicates a
//! lot the implementation of this attack and requires the cooperation of
//! another device" (paper §IV-D) — but the reproduction models it anyway:
//! it is what the BlueBee baseline rides on, and what makes the comparison
//! in §II-B executable.

use serde::{Deserialize, Serialize};

use crate::channel::BleChannel;
use crate::csa2::{select_channel, ChannelMap};

/// The payload of a `CONNECT_IND` PDU (Core spec vol 6 part B §2.3.3.1),
/// minus the advertiser/initiator addresses handled at the adv layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionParameters {
    /// The connection's access address.
    pub access_address: u32,
    /// CRC preset for the connection's data channel PDUs.
    pub crc_init: u32,
    /// Connection interval in 1.25 ms units (7.5 ms – 4 s).
    pub interval_1_25ms: u16,
    /// Peripheral latency (events the peripheral may skip).
    pub latency: u16,
    /// Supervision timeout in 10 ms units.
    pub timeout_10ms: u16,
    /// The channel map in force.
    pub channel_map: ChannelMap,
}

impl ConnectionParameters {
    /// Serialises the LL data of a `CONNECT_IND` (22 bytes: AA, CRCInit,
    /// WinSize/WinOffset fixed to minimal values, Interval, Latency,
    /// Timeout, ChM, Hop/SCA byte marking CSA#2 use).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(22);
        out.extend_from_slice(&self.access_address.to_le_bytes());
        out.extend_from_slice(&self.crc_init.to_le_bytes()[..3]);
        out.push(1); // WinSize
        out.extend_from_slice(&1u16.to_le_bytes()); // WinOffset
        out.extend_from_slice(&self.interval_1_25ms.to_le_bytes());
        out.extend_from_slice(&self.latency.to_le_bytes());
        out.extend_from_slice(&self.timeout_10ms.to_le_bytes());
        let mut chm = [0u8; 5];
        for ch in self.channel_map.used_channels() {
            chm[usize::from(ch / 8)] |= 1 << (ch % 8);
        }
        out.extend_from_slice(&chm);
        out.push(0); // Hop/SCA byte: hop unused under CSA#2
        out
    }

    /// Parses the LL data of a `CONNECT_IND`.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 22 {
            return None;
        }
        let access_address = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let crc_init = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], 0]);
        let interval_1_25ms = u16::from_le_bytes([bytes[10], bytes[11]]);
        let latency = u16::from_le_bytes([bytes[12], bytes[13]]);
        let timeout_10ms = u16::from_le_bytes([bytes[14], bytes[15]]);
        let mut channels = Vec::new();
        for ch in 0u8..37 {
            if bytes[16 + usize::from(ch / 8)] >> (ch % 8) & 1 == 1 {
                channels.push(ch);
            }
        }
        let channel_map = ChannelMap::from_channels(&channels);
        if channel_map.used_count() < 2 {
            return None; // the spec requires at least two used channels
        }
        Some(ConnectionParameters {
            access_address,
            crc_init,
            interval_1_25ms,
            latency,
            timeout_10ms,
            channel_map,
        })
    }

    /// Connection interval in microseconds.
    pub fn interval_us(&self) -> u64 {
        u64::from(self.interval_1_25ms) * 1250
    }
}

/// A live connection's hopping state.
#[derive(Debug, Clone)]
pub struct Connection {
    params: ConnectionParameters,
    event_counter: u16,
}

impl Connection {
    /// Opens a connection at event counter 0.
    pub fn new(params: ConnectionParameters) -> Self {
        Connection {
            params,
            event_counter: 0,
        }
    }

    /// The connection parameters.
    pub fn parameters(&self) -> &ConnectionParameters {
        &self.params
    }

    /// The current event counter.
    pub fn event_counter(&self) -> u16 {
        self.event_counter
    }

    /// The data channel of the *next* connection event, advancing the
    /// counter — both sides compute this identically (CSA#2).
    pub fn next_event_channel(&mut self) -> BleChannel {
        let ch = select_channel(
            self.params.access_address,
            self.event_counter,
            &self.params.channel_map,
        );
        self.event_counter = self.event_counter.wrapping_add(1);
        ch
    }

    /// Applies a channel-map update (LL_CHANNEL_MAP_IND semantics).
    pub fn update_channel_map(&mut self, map: ChannelMap) {
        self.params.channel_map = map;
    }
}

/// LLID values of data channel PDU headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum Llid {
    /// Continuation fragment of an L2CAP message (or empty PDU).
    DataContinuation = 0b01,
    /// Start of an L2CAP message (or complete message).
    DataStart = 0b10,
    /// LL control PDU.
    Control = 0b11,
}

impl Llid {
    fn from_bits(v: u8) -> Option<Self> {
        match v & 0b11 {
            0b01 => Some(Llid::DataContinuation),
            0b10 => Some(Llid::DataStart),
            0b11 => Some(Llid::Control),
            _ => None,
        }
    }
}

/// A data channel PDU: 2-byte header (LLID, NESN, SN, MD, length) + payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPdu {
    /// The LLID field.
    pub llid: Llid,
    /// Next expected sequence number.
    pub nesn: bool,
    /// Sequence number.
    pub sn: bool,
    /// More data pending.
    pub md: bool,
    /// The payload.
    pub payload: Vec<u8>,
}

impl DataPdu {
    /// Serialises header + payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.payload.len());
        out.push(
            self.llid as u8
                | (u8::from(self.nesn) << 2)
                | (u8::from(self.sn) << 3)
                | (u8::from(self.md) << 4),
        );
        out.push(self.payload.len() as u8);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses header + payload.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 2 {
            return None;
        }
        let llid = Llid::from_bits(bytes[0])?;
        let len = usize::from(bytes[1]);
        if bytes.len() < 2 + len {
            return None;
        }
        Some(DataPdu {
            llid,
            nesn: bytes[0] & 0b100 != 0,
            sn: bytes[0] & 0b1000 != 0,
            md: bytes[0] & 0b1_0000 != 0,
            payload: bytes[2..2 + len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ConnectionParameters {
        ConnectionParameters {
            access_address: 0x50A1_73B2,
            crc_init: 0x55_AA55,
            interval_1_25ms: 24, // 30 ms
            latency: 0,
            timeout_10ms: 100,
            channel_map: ChannelMap::all_data_channels(),
        }
    }

    #[test]
    fn connect_ind_round_trip() {
        let p = params();
        assert_eq!(ConnectionParameters::from_bytes(&p.to_bytes()), Some(p));
    }

    #[test]
    fn connect_ind_round_trip_with_partial_map() {
        let p = ConnectionParameters {
            channel_map: ChannelMap::from_channels(&[0, 8, 17, 36]),
            ..params()
        };
        assert_eq!(ConnectionParameters::from_bytes(&p.to_bytes()), Some(p));
    }

    #[test]
    fn degenerate_channel_map_rejected() {
        let p = ConnectionParameters {
            channel_map: ChannelMap::from_channels(&[5]),
            ..params()
        };
        assert_eq!(ConnectionParameters::from_bytes(&p.to_bytes()), None);
    }

    #[test]
    fn truncated_connect_ind_rejected() {
        assert!(ConnectionParameters::from_bytes(&[0; 21]).is_none());
    }

    #[test]
    fn both_ends_hop_identically() {
        let mut central = Connection::new(params());
        let mut peripheral = Connection::new(params());
        for _ in 0..100 {
            assert_eq!(
                central.next_event_channel(),
                peripheral.next_event_channel()
            );
        }
        assert_eq!(central.event_counter(), 100);
    }

    #[test]
    fn hopping_respects_channel_map_updates() {
        let mut conn = Connection::new(params());
        let narrow = ChannelMap::from_channels(&[4, 9, 23]);
        conn.update_channel_map(narrow);
        for _ in 0..50 {
            let ch = conn.next_event_channel();
            assert!(narrow.is_used(ch.index()), "hopped to unmapped {ch}");
        }
    }

    #[test]
    fn interval_conversion() {
        assert_eq!(params().interval_us(), 30_000);
    }

    #[test]
    fn data_pdu_round_trip() {
        for llid in [Llid::DataContinuation, Llid::DataStart, Llid::Control] {
            let pdu = DataPdu {
                llid,
                nesn: true,
                sn: false,
                md: true,
                payload: vec![1, 2, 3],
            };
            assert_eq!(DataPdu::from_bytes(&pdu.to_bytes()), Some(pdu));
        }
    }

    #[test]
    fn data_pdu_rejects_reserved_llid_and_truncation() {
        assert!(DataPdu::from_bytes(&[0b00, 0]).is_none()); // reserved LLID
        assert!(DataPdu::from_bytes(&[0b10]).is_none()); // no length byte
        assert!(DataPdu::from_bytes(&[0b10, 5, 1, 2]).is_none()); // short payload
    }

    #[test]
    fn empty_pdu_is_valid_keepalive() {
        let pdu = DataPdu {
            llid: Llid::DataContinuation,
            nesn: false,
            sn: false,
            md: false,
            payload: vec![],
        };
        let bytes = pdu.to_bytes();
        assert_eq!(bytes.len(), 2);
        assert_eq!(DataPdu::from_bytes(&bytes), Some(pdu));
    }

    #[test]
    fn full_connection_exchange_over_the_modem() {
        // A data PDU crossing a hopped data channel end to end.
        use crate::modem::BleModem;
        use crate::packet::BlePacket;
        let p = params();
        let mut central = Connection::new(p);
        let mut peripheral = Connection::new(p);
        let modem = BleModem::new(crate::channel::BlePhy::Le2M, 8);
        for _ in 0..5 {
            let tx_ch = central.next_event_channel();
            let rx_ch = peripheral.next_event_channel();
            assert_eq!(tx_ch, rx_ch);
            let pdu = DataPdu {
                llid: Llid::DataStart,
                nesn: false,
                sn: false,
                md: false,
                payload: vec![0x42, central.event_counter() as u8],
            };
            let pkt = BlePacket::new(p.access_address, pdu.to_bytes());
            let air = modem.transmit(&pkt, tx_ch, true);
            let got = modem
                .receive(&air, p.access_address, rx_ch, true)
                .expect("event lost");
            assert!(got.crc_ok());
            assert_eq!(DataPdu::from_bytes(got.pdu()), Some(pdu));
        }
    }
}
