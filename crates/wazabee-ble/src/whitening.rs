//! BLE data whitening (Core spec vol 6 part B §3.2).
//!
//! A 7-bit LFSR with polynomial `x⁷ + x⁴ + 1`, seeded from the channel index,
//! is XORed over the PDU and CRC before modulation. Whitening is its own
//! inverse (a pure keystream XOR), a property WazaBee's transmission primitive
//! exploits: to force arbitrary bits through a whitening modulator, feed it
//! the *de-whitened* bits first (paper §IV-D, requirement 3).

use crate::channel::BleChannel;

/// The whitening/de-whitening keystream generator for one BLE channel.
///
/// # Examples
///
/// ```
/// use wazabee_ble::{BleChannel, Whitener};
/// let ch = BleChannel::new(8).unwrap();
/// let data = vec![0xDE, 0xAD, 0xBE, 0xEF];
/// let w = Whitener::new(ch).whiten_bytes(&data);
/// assert_ne!(w, data);
/// assert_eq!(Whitener::new(ch).whiten_bytes(&w), data); // self-inverse
/// ```
#[derive(Debug, Clone)]
pub struct Whitener {
    /// Register positions 0..6; position 0 is the input end.
    reg: [u8; 7],
}

impl Whitener {
    /// Creates a whitener seeded for `channel`.
    ///
    /// Position 0 is set to 1 and positions 1–6 hold the channel index with
    /// its most significant bit in position 1, per the Core specification.
    pub fn new(channel: BleChannel) -> Self {
        let idx = channel.index();
        let mut reg = [0u8; 7];
        reg[0] = 1;
        for k in 0..6 {
            // Position 1 gets channel bit 5 (MSB), position 6 gets bit 0.
            reg[1 + k] = (idx >> (5 - k)) & 1;
        }
        Whitener { reg }
    }

    /// Produces the next keystream bit and advances the register.
    ///
    /// Output is taken from position 6; the feedback (polynomial x⁷+x⁴+1)
    /// re-enters at position 0 and is XORed into position 4.
    #[inline]
    pub fn next_bit(&mut self) -> u8 {
        let out = self.reg[6];
        let mut next = [0u8; 7];
        next[0] = out;
        next[1] = self.reg[0];
        next[2] = self.reg[1];
        next[3] = self.reg[2];
        next[4] = self.reg[3] ^ out;
        next[5] = self.reg[4];
        next[6] = self.reg[5];
        self.reg = next;
        out
    }

    /// Whitens (or equivalently de-whitens) a bit stream in place.
    pub fn whiten_bits_in_place(&mut self, bits: &mut [u8]) {
        for b in bits {
            *b ^= self.next_bit();
        }
    }

    /// Whitens a bit stream, returning the transformed copy.
    pub fn whiten_bits(mut self, bits: &[u8]) -> Vec<u8> {
        let mut out = bits.to_vec();
        self.whiten_bits_in_place(&mut out);
        out
    }

    /// Whitens a byte stream (bits processed LSB-first within each byte, as
    /// they appear on air).
    pub fn whiten_bytes(self, bytes: &[u8]) -> Vec<u8> {
        let bits = wazabee_dsp::bits::bytes_to_bits_lsb(bytes);
        let out = self.whiten_bits(&bits);
        wazabee_dsp::bits::bits_to_bytes_lsb(&out)
    }

    /// Generates `n` keystream bits without consuming data.
    pub fn keystream(mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_bit()).collect()
    }
}

/// De-whitens bytes for `channel` — an explicit alias of whitening, named for
/// readability at WazaBee call sites where the *inverse* operation is meant.
pub fn dewhiten_bytes(channel: BleChannel, bytes: &[u8]) -> Vec<u8> {
    Whitener::new(channel).whiten_bytes(bytes)
}

/// De-whitens bits for `channel` (alias of whitening, see [`dewhiten_bytes`]).
pub fn dewhiten_bits(channel: BleChannel, bits: &[u8]) -> Vec<u8> {
    Whitener::new(channel).whiten_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u8) -> BleChannel {
        BleChannel::new(i).unwrap()
    }

    #[test]
    fn self_inverse_on_every_channel() {
        let data: Vec<u8> = (0..=200).collect();
        for c in BleChannel::all() {
            let w = Whitener::new(c).whiten_bytes(&data);
            assert_eq!(Whitener::new(c).whiten_bytes(&w), data, "channel {c}");
        }
    }

    #[test]
    fn keystream_period_is_127() {
        // x⁷ + x⁴ + 1 is primitive: the keystream repeats with period 127.
        let ks = Whitener::new(ch(37)).keystream(254);
        assert_eq!(&ks[..127], &ks[127..]);
        // ...and no shorter period divides it (127 is prime: check shift by 1).
        assert_ne!(&ks[..126], &ks[1..127]);
    }

    #[test]
    fn keystream_is_balanced() {
        // A maximal-length 7-bit LFSR emits 64 ones and 63 zeros per period.
        let ks = Whitener::new(ch(0)).keystream(127);
        let ones: usize = ks.iter().map(|&b| b as usize).sum();
        assert_eq!(ones, 64);
    }

    #[test]
    fn different_channels_give_different_keystreams() {
        let a = Whitener::new(ch(8)).keystream(64);
        let b = Whitener::new(ch(9)).keystream(64);
        assert_ne!(a, b);
    }

    #[test]
    fn channels_are_keystream_shifts_of_each_other() {
        // All non-zero LFSR states lie on one cycle, so any two channels'
        // keystreams are cyclic shifts of the same 127-bit m-sequence.
        let a = Whitener::new(ch(3)).keystream(254);
        let b = Whitener::new(ch(21)).keystream(127);
        let found = (0..127).any(|s| a[s..s + 127] == b[..]);
        assert!(found, "keystreams are not shifts of one m-sequence");
    }

    #[test]
    fn seed_register_layout() {
        // Channel 37 = 0b100101: position1..6 = 1,0,0,1,0,1 and position0 = 1.
        let w = Whitener::new(ch(37));
        assert_eq!(w.reg, [1, 1, 0, 0, 1, 0, 1]);
    }

    #[test]
    fn first_output_is_position_six() {
        let mut w = Whitener::new(ch(37));
        // Position 6 of the seed above is 1.
        assert_eq!(w.next_bit(), 1);
    }

    #[test]
    fn dewhiten_alias_matches_whiten() {
        let data = vec![0x12, 0x34, 0x56];
        assert_eq!(
            dewhiten_bytes(ch(8), &data),
            Whitener::new(ch(8)).whiten_bytes(&data)
        );
    }

    #[test]
    fn bitwise_and_bytewise_agree() {
        let data = vec![0xF0, 0x0F, 0xAA];
        let bits = wazabee_dsp::bits::bytes_to_bits_lsb(&data);
        let via_bits =
            wazabee_dsp::bits::bits_to_bytes_lsb(&Whitener::new(ch(5)).whiten_bits(&bits));
        let via_bytes = Whitener::new(ch(5)).whiten_bytes(&data);
        assert_eq!(via_bits, via_bytes);
    }
}
