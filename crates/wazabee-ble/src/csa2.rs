//! Channel Selection Algorithm #2 (Core spec vol 6 part B §4.5.8.3).
//!
//! Extended advertising picks its secondary channel with CSA#2, seeded by the
//! access address and an event counter. Scenario A of the paper depends on
//! this: the attacker cannot choose the channel, only enable advertising with
//! the smallest interval and wait for CSA#2 to land on the target channel.

use serde::{Deserialize, Serialize};

use crate::channel::BleChannel;

/// The set of data channels CSA#2 may choose from.
///
/// # Examples
///
/// ```
/// use wazabee_ble::csa2::ChannelMap;
/// let map = ChannelMap::all_data_channels();
/// assert_eq!(map.used_count(), 37);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelMap {
    /// Bit k set ⇔ data channel k usable (k < 37).
    bits: u64,
}

impl ChannelMap {
    /// A map with all 37 data channels enabled (the default for advertisers).
    pub fn all_data_channels() -> Self {
        ChannelMap {
            bits: (1u64 << 37) - 1,
        }
    }

    /// Builds a map from an explicit channel list; indices ≥ 37 are ignored.
    pub fn from_channels(channels: &[u8]) -> Self {
        let mut bits = 0u64;
        for &c in channels {
            if c < 37 {
                bits |= 1 << c;
            }
        }
        ChannelMap { bits }
    }

    /// Whether data channel `index` is usable.
    pub fn is_used(&self, index: u8) -> bool {
        index < 37 && (self.bits >> index) & 1 == 1
    }

    /// Number of usable channels.
    pub fn used_count(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Usable channels in ascending order.
    pub fn used_channels(&self) -> Vec<u8> {
        (0..37).filter(|&k| self.is_used(k)).collect()
    }
}

impl Default for ChannelMap {
    fn default() -> Self {
        ChannelMap::all_data_channels()
    }
}

/// Bit-reverses each byte of a 16-bit value (the spec's `PERM` operation).
fn perm(v: u16) -> u16 {
    let hi = (v >> 8) as u8;
    let lo = (v & 0xFF) as u8;
    (u16::from(hi.reverse_bits()) << 8) | u16::from(lo.reverse_bits())
}

/// Multiply-add-modulo (the spec's `MAM` operation): `(17·a + b) mod 2¹⁶`.
fn mam(a: u16, b: u16) -> u16 {
    a.wrapping_mul(17).wrapping_add(b)
}

/// The 16-bit channel identifier derived from an access address:
/// `AA[31:16] XOR AA[15:0]`.
pub fn channel_identifier(access_address: u32) -> u16 {
    ((access_address >> 16) as u16) ^ (access_address as u16)
}

/// The event pseudo-random number `prn_e` for one event counter value.
pub fn prn_e(event_counter: u16, channel_id: u16) -> u16 {
    let mut u = event_counter ^ channel_id;
    for _ in 0..3 {
        u = mam(perm(u), channel_id);
    }
    u ^ channel_id
}

/// Selects the data channel used by advertising event `event_counter`.
///
/// Implements the unmapped-channel selection plus the remapping step for
/// channel maps with excluded channels.
///
/// # Panics
///
/// Panics if the channel map is empty (the spec requires ≥ 2 channels; an
/// empty map has no valid selection at all).
pub fn select_channel(access_address: u32, event_counter: u16, map: &ChannelMap) -> BleChannel {
    assert!(map.used_count() > 0, "channel map must not be empty");
    let ch_id = channel_identifier(access_address);
    let prn = prn_e(event_counter, ch_id);
    let unmapped = (prn % 37) as u8;
    let index = if map.is_used(unmapped) {
        unmapped
    } else {
        let used = map.used_channels();
        let remapping_index = (used.len() as u32 * u32::from(prn)) >> 16;
        used[remapping_index as usize]
    };
    BleChannel::new(index).expect("CSA#2 index < 37")
}

/// A stateful advertising-event channel sequencer: yields the CSA#2 channel
/// for successive events.
#[derive(Debug, Clone)]
pub struct EventChannelSequence {
    access_address: u32,
    map: ChannelMap,
    counter: u16,
}

impl EventChannelSequence {
    /// Creates a sequence starting at event counter 0.
    pub fn new(access_address: u32, map: ChannelMap) -> Self {
        EventChannelSequence {
            access_address,
            map,
            counter: 0,
        }
    }

    /// Current event counter.
    pub fn counter(&self) -> u16 {
        self.counter
    }
}

impl Iterator for EventChannelSequence {
    type Item = BleChannel;

    fn next(&mut self) -> Option<BleChannel> {
        let ch = select_channel(self.access_address, self.counter, &self.map);
        self.counter = self.counter.wrapping_add(1);
        Some(ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn channel_identifier_of_adv_access_address() {
        // 0x8E89 XOR 0xBED6 = 0x305F — the worked value in the Core spec.
        assert_eq!(channel_identifier(0x8E89_BED6), 0x305F);
    }

    #[test]
    fn perm_reverses_each_byte() {
        assert_eq!(perm(0x8001), 0x0180);
        assert_eq!(perm(0xF00F), 0x0FF0);
        // Involutive.
        for v in [0x1234u16, 0xFFFF, 0x0000, 0xA5C3] {
            assert_eq!(perm(perm(v)), v);
        }
    }

    #[test]
    fn mam_is_affine() {
        assert_eq!(mam(0, 7), 7);
        assert_eq!(mam(1, 0), 17);
        assert_eq!(mam(0xFFFF, 0), 0xFFFFu16.wrapping_mul(17));
    }

    #[test]
    fn selection_is_deterministic() {
        let map = ChannelMap::all_data_channels();
        let a = select_channel(0x8E89_BED6, 42, &map);
        let b = select_channel(0x8E89_BED6, 42, &map);
        assert_eq!(a, b);
    }

    #[test]
    fn full_map_selection_is_roughly_uniform() {
        // Over all 65536 event counters the 37 channels should each be hit
        // close to 65536/37 ≈ 1771 times.
        let map = ChannelMap::all_data_channels();
        let mut counts: HashMap<u8, u32> = HashMap::new();
        for ev in 0..=u16::MAX {
            let ch = select_channel(0x8E89_BED6, ev, &map);
            *counts.entry(ch.index()).or_default() += 1;
        }
        assert_eq!(counts.len(), 37, "some channel never selected");
        for (&ch, &n) in &counts {
            assert!(
                (1500..=2100).contains(&n),
                "channel {ch} selected {n} times — far from uniform"
            );
        }
    }

    #[test]
    fn remapping_respects_channel_map() {
        let map = ChannelMap::from_channels(&[0, 8, 20, 36]);
        for ev in 0..2000 {
            let ch = select_channel(0xDEAD_BEEF, ev, &map);
            assert!(map.is_used(ch.index()), "event {ev} chose excluded {ch}");
        }
    }

    #[test]
    fn remapping_covers_all_used_channels() {
        let map = ChannelMap::from_channels(&[3, 8, 17]);
        let mut seen = std::collections::HashSet::new();
        for ev in 0..5000 {
            seen.insert(select_channel(0x1234_5678, ev, &map).index());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn different_access_addresses_differ() {
        let map = ChannelMap::all_data_channels();
        let diverging = (0..64u16)
            .filter(|&ev| {
                select_channel(0x8E89_BED6, ev, &map) != select_channel(0x1234_5678, ev, &map)
            })
            .count();
        assert!(diverging > 32);
    }

    #[test]
    fn sequence_iterator_matches_direct_calls() {
        let map = ChannelMap::all_data_channels();
        let seq: Vec<_> = EventChannelSequence::new(0xCAFE_F00D, map)
            .take(16)
            .collect();
        for (ev, ch) in seq.iter().enumerate() {
            assert_eq!(*ch, select_channel(0xCAFE_F00D, ev as u16, &map));
        }
    }

    #[test]
    fn map_helpers() {
        let map = ChannelMap::from_channels(&[0, 5, 36, 40, 255]);
        assert_eq!(map.used_count(), 3);
        assert_eq!(map.used_channels(), vec![0, 5, 36]);
        assert!(!map.is_used(40));
        assert_eq!(ChannelMap::default(), ChannelMap::all_data_channels());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_map_panics() {
        let map = ChannelMap::from_channels(&[]);
        let _ = select_channel(0, 0, &map);
    }
}
