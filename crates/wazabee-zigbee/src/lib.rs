#![warn(missing_docs)]

//! # wazabee-zigbee
//!
//! The Zigbee/XBee application substrate of the WazaBee reproduction (Cayre
//! et al., DSN 2021): the victim network of the paper's attack scenarios.
//!
//! The paper's testbed (§VI-A) is a small home-automation network — an XBee
//! sensor reporting an integer every two seconds to an XBee coordinator that
//! acknowledges and displays it. This crate simulates that network
//! deterministically:
//!
//! * [`at`] — XBee-style AT commands (including the remote `CH` change that
//!   Scenario B abuses for denial of service),
//! * [`xbee`] — over-the-air application payloads,
//! * [`node`] — sensor and coordinator behaviour,
//! * [`network`] — a deterministic event-driven simulator with an air log
//!   for sniffing and an injection port for attackers.
//!
//! ## Example
//!
//! ```
//! use wazabee_radio::Instant;
//! use wazabee_zigbee::ZigbeeNetwork;
//!
//! let mut net = ZigbeeNetwork::paper_testbed();
//! net.run_until(Instant(0).plus_ms(6_500));
//! assert_eq!(net.coordinator().readings().len(), 3);
//! ```

pub mod api;
pub mod at;
pub mod network;
pub mod node;
pub mod xbee;

pub use api::{parse_stream, ApiFrame};
pub use at::{AtCommand, AtStatus};
pub use network::{AirRecord, IqPhyConfig, PhyMode, ZigbeeNetwork};
pub use node::{JoinState, NodeConfig, NodeRole, Reading, XbeeNode};
pub use xbee::XbeePayload;
