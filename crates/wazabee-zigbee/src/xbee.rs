//! The over-the-air application payloads of our XBee-style nodes.
//!
//! A one-byte kind tag selects between plain application data, a remote AT
//! command, and its response. This stands in for Digi's proprietary OTA
//! framing (see DESIGN.md) while preserving the semantics Scenario B needs.

use serde::{Deserialize, Serialize};

use crate::at::{AtCommand, AtStatus};

/// An application-layer payload carried in a MAC data frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum XbeePayload {
    /// Opaque application data (e.g. a sensor reading).
    AppData(Vec<u8>),
    /// A remote AT command addressed to the receiving node.
    RemoteAtCommand {
        /// Correlates the response with the request.
        frame_id: u8,
        /// The command to execute.
        command: AtCommand,
    },
    /// The response to a remote AT command.
    RemoteAtResponse {
        /// Echoed from the request.
        frame_id: u8,
        /// Execution status.
        status: AtStatus,
    },
}

const KIND_APP_DATA: u8 = 0x01;
const KIND_REMOTE_AT: u8 = 0x02;
const KIND_AT_RESPONSE: u8 = 0x03;

impl XbeePayload {
    /// Serialises the payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            XbeePayload::AppData(data) => {
                let mut out = vec![KIND_APP_DATA];
                out.extend_from_slice(data);
                out
            }
            XbeePayload::RemoteAtCommand { frame_id, command } => {
                let mut out = vec![KIND_REMOTE_AT, *frame_id];
                out.extend(command.to_bytes());
                out
            }
            XbeePayload::RemoteAtResponse { frame_id, status } => {
                vec![KIND_AT_RESPONSE, *frame_id, *status as u8]
            }
        }
    }

    /// Parses a payload.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        match *bytes.first()? {
            KIND_APP_DATA => Some(XbeePayload::AppData(bytes[1..].to_vec())),
            KIND_REMOTE_AT if bytes.len() >= 4 => Some(XbeePayload::RemoteAtCommand {
                frame_id: bytes[1],
                command: AtCommand::from_bytes(&bytes[2..])?,
            }),
            KIND_AT_RESPONSE if bytes.len() == 3 => Some(XbeePayload::RemoteAtResponse {
                frame_id: bytes[1],
                status: AtStatus::from_byte(bytes[2])?,
            }),
            _ => None,
        }
    }

    /// Convenience constructor: a little-endian `u16` sensor reading, the
    /// payload shape of the paper's testbed sensor.
    pub fn reading(value: u16) -> Self {
        XbeePayload::AppData(value.to_le_bytes().to_vec())
    }

    /// Extracts a `u16` reading back out of an [`XbeePayload::AppData`].
    pub fn as_reading(&self) -> Option<u16> {
        match self {
            XbeePayload::AppData(d) if d.len() == 2 => Some(u16::from_le_bytes([d[0], d[1]])),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_app_data() {
        let p = XbeePayload::AppData(vec![1, 2, 3]);
        assert_eq!(XbeePayload::from_bytes(&p.to_bytes()), Some(p));
    }

    #[test]
    fn round_trip_remote_at() {
        let p = XbeePayload::RemoteAtCommand {
            frame_id: 9,
            command: AtCommand::Channel(21),
        };
        assert_eq!(XbeePayload::from_bytes(&p.to_bytes()), Some(p));
    }

    #[test]
    fn round_trip_response() {
        let p = XbeePayload::RemoteAtResponse {
            frame_id: 9,
            status: AtStatus::Ok,
        };
        assert_eq!(XbeePayload::from_bytes(&p.to_bytes()), Some(p));
    }

    #[test]
    fn reading_helpers() {
        let p = XbeePayload::reading(0x2A0B);
        assert_eq!(p.as_reading(), Some(0x2A0B));
        assert_eq!(XbeePayload::AppData(vec![1]).as_reading(), None);
        assert_eq!(
            XbeePayload::RemoteAtResponse {
                frame_id: 0,
                status: AtStatus::Ok
            }
            .as_reading(),
            None
        );
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(XbeePayload::from_bytes(&[]), None);
        assert_eq!(XbeePayload::from_bytes(&[0xFF, 1, 2]), None);
        assert_eq!(XbeePayload::from_bytes(&[KIND_REMOTE_AT, 1]), None);
        assert_eq!(XbeePayload::from_bytes(&[KIND_AT_RESPONSE, 1]), None);
        assert_eq!(XbeePayload::from_bytes(&[KIND_AT_RESPONSE, 1, 9]), None);
    }
}
