//! XBee-style node behaviour: the sensor and coordinator of the paper's
//! experimental testbed (§VI-A).

use wazabee_dot154::mac::{Address, FrameType, MacCommandId, MacFrame};
use wazabee_dot154::Dot154Channel;
use wazabee_radio::Instant;

use crate::at::{AtCommand, AtStatus};
use crate::xbee::XbeePayload;

/// Static node configuration (the XBee settings AT commands mutate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// PAN identifier.
    pub pan: u16,
    /// 16-bit short address.
    pub short_addr: u16,
    /// Radio channel.
    pub channel: Dot154Channel,
}

/// What kind of node this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// The coordinator: acknowledges data and records readings.
    Coordinator,
    /// An end device transmitting a counter reading periodically.
    Sensor {
        /// Transmission period in milliseconds (2000 in the paper).
        interval_ms: u64,
    },
    /// A router: relays readings addressed to it one hop onward, keeping
    /// the original MAC source so the coordinator attributes the reading to
    /// the sensor, not the relay. Sensors report to a router by building
    /// with [`XbeeNode::with_report_to`].
    Router {
        /// Short address the relay forwards readings to.
        forward_to: u16,
    },
}

/// One recorded sensor reading on the coordinator's display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reading {
    /// When the reading arrived.
    pub time: Instant,
    /// The reported value.
    pub value: u16,
    /// The short address the frame claimed as source.
    pub reported_by: u16,
}

/// A simulated XBee node.
#[derive(Debug, Clone)]
pub struct XbeeNode {
    /// Current radio/network configuration.
    pub config: NodeConfig,
    role: NodeRole,
    seq: u8,
    counter: u16,
    readings: Vec<Reading>,
    at_log: Vec<AtCommand>,
    join: JoinState,
    /// Coordinator-side: next short address to hand out to an associating
    /// device.
    next_assigned_addr: u16,
    /// EUI-64-style extended identifier used to disambiguate concurrent
    /// association handshakes (all joiners share short address 0xFFFE).
    ext_id: u64,
    /// Where this node's sensor readings are addressed (the coordinator by
    /// default; a router for multi-hop topologies).
    report_to: u16,
}

/// Association progress of an end device (802.15.4 MAC association).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinState {
    /// Operating with a configured address (factory-joined, as in the
    /// paper's testbed).
    Joined,
    /// Searching for a coordinator (broadcasting beacon requests).
    Scanning,
    /// Association request sent, awaiting the response.
    Associating {
        /// The coordinator being joined.
        coordinator: u16,
    },
}

impl XbeeNode {
    /// Creates a node.
    pub fn new(config: NodeConfig, role: NodeRole) -> Self {
        XbeeNode {
            config,
            role,
            seq: 0,
            counter: 0,
            readings: Vec::new(),
            at_log: Vec::new(),
            join: JoinState::Joined,
            next_assigned_addr: 0x0100,
            ext_id: 0,
            report_to: 0x0042,
        }
    }

    /// Addresses this node's sensor readings to `addr` instead of the
    /// default coordinator address 0x0042 — the hook multi-hop topologies
    /// use to report through a [`NodeRole::Router`].
    pub fn with_report_to(mut self, addr: u16) -> Self {
        self.report_to = addr;
        self
    }

    /// Creates an *unjoined* sensor that must first discover a coordinator
    /// and associate (MAC association procedure) before reporting readings.
    ///
    /// `ext_id` is the device's EUI-64-style identifier; concurrent joiners
    /// must use distinct values (real radios burn one in at the factory).
    pub fn new_unjoined_sensor(channel: Dot154Channel, interval_ms: u64) -> Self {
        Self::new_unjoined_sensor_with_id(channel, interval_ms, 0xACE0_F00D_0000_0001)
    }

    /// Like [`XbeeNode::new_unjoined_sensor`] with an explicit extended id.
    pub fn new_unjoined_sensor_with_id(
        channel: Dot154Channel,
        interval_ms: u64,
        ext_id: u64,
    ) -> Self {
        let mut node = XbeeNode::new(
            NodeConfig {
                pan: wazabee_dot154::mac::BROADCAST_PAN,
                short_addr: 0xFFFE,
                channel,
            },
            NodeRole::Sensor { interval_ms },
        );
        node.join = JoinState::Scanning;
        node.ext_id = ext_id;
        node
    }

    /// The node's association state.
    pub fn join_state(&self) -> JoinState {
        self.join
    }

    /// Whether the node is operational on a PAN.
    pub fn is_joined(&self) -> bool {
        self.join == JoinState::Joined
    }

    /// The node's role.
    pub fn role(&self) -> NodeRole {
        self.role
    }

    /// Readings recorded by a coordinator (the paper's "HTML graph").
    pub fn readings(&self) -> &[Reading] {
        &self.readings
    }

    /// AT commands this node has executed (for forensics in tests).
    pub fn at_log(&self) -> &[AtCommand] {
        &self.at_log
    }

    /// The sensor's next timer period, if it has one.
    pub fn timer_interval_ms(&self) -> Option<u64> {
        match self.role {
            NodeRole::Sensor { interval_ms } => Some(interval_ms),
            NodeRole::Coordinator | NodeRole::Router { .. } => None,
        }
    }

    fn next_seq(&mut self) -> u8 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    /// Fires the node's periodic timer; joined sensors emit their reading
    /// frame, unjoined ones keep probing for a coordinator.
    pub fn on_timer(&mut self, _now: Instant) -> Vec<MacFrame> {
        match self.role {
            NodeRole::Sensor { .. } => {
                if self.join != JoinState::Joined {
                    // Re-scan: the earlier probe or association may be lost.
                    self.join = JoinState::Scanning;
                    let seq = self.next_seq();
                    return vec![MacFrame::beacon_request(seq)];
                }
                self.counter = self.counter.wrapping_add(1);
                let seq = self.next_seq();
                let payload = XbeePayload::reading(self.counter).to_bytes();
                vec![MacFrame::data(
                    self.config.pan,
                    self.config.short_addr,
                    self.report_to,
                    seq,
                    payload,
                )]
            }
            NodeRole::Coordinator | NodeRole::Router { .. } => Vec::new(),
        }
    }

    fn addressed_to_me(&self, frame: &MacFrame) -> bool {
        let pan_ok = frame
            .dest_pan
            .is_none_or(|p| p == self.config.pan || p == wazabee_dot154::mac::BROADCAST_PAN);
        let addr_ok = match frame.dest {
            Address::Short(a) => {
                a == self.config.short_addr || a == wazabee_dot154::mac::BROADCAST_SHORT
            }
            Address::None => true,
            Address::Extended(_) => false,
        };
        pan_ok && addr_ok
    }

    /// Handles a received frame, returning any frames to transmit in
    /// response.
    pub fn on_receive(&mut self, frame: &MacFrame, now: Instant) -> Vec<MacFrame> {
        if !self.addressed_to_me(frame) {
            return Vec::new();
        }
        let mut out = Vec::new();
        // Hardware-style immediate ack for acknowledged unicast frames.
        if frame.ack_request
            && matches!(frame.dest, Address::Short(a) if a != wazabee_dot154::mac::BROADCAST_SHORT)
        {
            out.push(MacFrame::ack(frame.sequence));
        }
        match frame.frame_type {
            FrameType::MacCommand => out.extend(self.on_mac_command(frame)),
            FrameType::Data => {
                if let Some(payload) = XbeePayload::from_bytes(&frame.payload) {
                    out.extend(self.on_app_payload(frame, payload, now));
                }
            }
            FrameType::Beacon => {
                // An unjoined sensor answers the first beacon it hears with
                // an association request.
                if self.join == JoinState::Scanning {
                    if let (Some(pan), Address::Short(coordinator)) = (frame.src_pan, frame.src) {
                        self.config.pan = pan;
                        self.join = JoinState::Associating { coordinator };
                        let seq = self.next_seq();
                        let mut payload = vec![MacCommandId::AssociationRequest as u8, 0x80];
                        payload.extend_from_slice(&self.ext_id.to_le_bytes());
                        out.push(MacFrame {
                            frame_type: FrameType::MacCommand,
                            ack_request: true,
                            pan_id_compression: true,
                            sequence: seq,
                            dest_pan: Some(pan),
                            dest: Address::Short(coordinator),
                            src_pan: None,
                            src: Address::Short(self.config.short_addr),
                            payload,
                        });
                    }
                }
            }
            FrameType::Ack => {}
        }
        out
    }

    fn on_mac_command(&mut self, frame: &MacFrame) -> Vec<MacFrame> {
        let mut out = Vec::new();
        match frame.command_id() {
            Some(MacCommandId::BeaconRequest) if self.role == NodeRole::Coordinator => {
                let seq = self.next_seq();
                out.push(MacFrame::beacon(
                    self.config.pan,
                    self.config.short_addr,
                    seq,
                    Vec::new(),
                ));
            }
            Some(MacCommandId::AssociationRequest)
                if self.role == NodeRole::Coordinator && frame.payload.len() >= 10 =>
            {
                if let Address::Short(requester) = frame.src {
                    let requester_ext: [u8; 8] =
                        frame.payload[2..10].try_into().expect("checked length");
                    let assigned = self.next_assigned_addr;
                    // Wrap within the dynamic pool; never hand out the
                    // broadcast or unassigned reserved values.
                    self.next_assigned_addr = if self.next_assigned_addr >= 0xFFF0 {
                        0x0100
                    } else {
                        self.next_assigned_addr + 1
                    };
                    let seq = self.next_seq();
                    let mut payload = vec![MacCommandId::AssociationResponse as u8];
                    payload.extend_from_slice(&assigned.to_le_bytes());
                    payload.push(0x00); // status: association successful
                    payload.extend_from_slice(&requester_ext); // echo the joiner's id
                    out.push(MacFrame {
                        frame_type: FrameType::MacCommand,
                        ack_request: true,
                        pan_id_compression: true,
                        sequence: seq,
                        dest_pan: Some(self.config.pan),
                        dest: Address::Short(requester),
                        src_pan: None,
                        src: Address::Short(self.config.short_addr),
                        payload,
                    });
                }
            }
            Some(MacCommandId::AssociationResponse) => {
                if let JoinState::Associating { coordinator } = self.join {
                    // Accept only a success response from the coordinator we
                    // asked, echoing our own extended id — concurrent joiners
                    // all listen on 0xFFFE, so the id is what disambiguates.
                    if frame.src == Address::Short(coordinator)
                        && frame.payload.len() >= 12
                        && frame.payload[3] == 0x00
                        && frame.payload[4..12] == self.ext_id.to_le_bytes()
                    {
                        self.config.short_addr =
                            u16::from_le_bytes([frame.payload[1], frame.payload[2]]);
                        self.join = JoinState::Joined;
                    }
                }
            }
            _ => {}
        }
        out
    }

    fn on_app_payload(
        &mut self,
        frame: &MacFrame,
        payload: XbeePayload,
        now: Instant,
    ) -> Vec<MacFrame> {
        match payload {
            XbeePayload::AppData(_) => {
                match self.role {
                    NodeRole::Coordinator => {
                        if let Some(value) = payload.as_reading() {
                            let reported_by = match frame.src {
                                Address::Short(a) => a,
                                _ => 0xFFFF,
                            };
                            self.readings.push(Reading {
                                time: now,
                                value,
                                reported_by,
                            });
                        }
                    }
                    NodeRole::Router { forward_to } => {
                        // Relay one hop onward, keeping the original MAC
                        // source so the coordinator's display attributes the
                        // reading to the sensor, not the relay. The relayed
                        // frame rides the router's own sequence space and
                        // CSMA queue.
                        if payload.as_reading().is_some() {
                            if let Address::Short(original_src) = frame.src {
                                let seq = self.next_seq();
                                return vec![MacFrame::data(
                                    self.config.pan,
                                    original_src,
                                    forward_to,
                                    seq,
                                    frame.payload.clone(),
                                )];
                            }
                        }
                    }
                    NodeRole::Sensor { .. } => {}
                }
                Vec::new()
            }
            XbeePayload::RemoteAtCommand { frame_id, command } => {
                let status = self.apply_at(command);
                let src = match frame.src {
                    Address::Short(a) => a,
                    _ => return Vec::new(),
                };
                let seq = self.next_seq();
                let reply = XbeePayload::RemoteAtResponse { frame_id, status };
                vec![MacFrame::data(
                    self.config.pan,
                    self.config.short_addr,
                    src,
                    seq,
                    reply.to_bytes(),
                )]
            }
            XbeePayload::RemoteAtResponse { .. } => Vec::new(),
        }
    }

    fn apply_at(&mut self, command: AtCommand) -> AtStatus {
        let status = match command {
            AtCommand::Channel(ch) => match Dot154Channel::new(ch) {
                Some(channel) => {
                    self.config.channel = channel;
                    AtStatus::Ok
                }
                None => AtStatus::Error,
            },
            AtCommand::PanId(id) => {
                self.config.pan = id;
                AtStatus::Ok
            }
            AtCommand::ShortAddress(a) => {
                self.config.short_addr = a;
                AtStatus::Ok
            }
            AtCommand::Write | AtCommand::ApplyChanges => AtStatus::Ok,
        };
        if status == AtStatus::Ok {
            self.at_log.push(command);
        }
        status
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(n: u8) -> Dot154Channel {
        Dot154Channel::new(n).unwrap()
    }

    fn sensor() -> XbeeNode {
        XbeeNode::new(
            NodeConfig {
                pan: 0x1234,
                short_addr: 0x0063,
                channel: ch(14),
            },
            NodeRole::Sensor { interval_ms: 2000 },
        )
    }

    fn coordinator() -> XbeeNode {
        XbeeNode::new(
            NodeConfig {
                pan: 0x1234,
                short_addr: 0x0042,
                channel: ch(14),
            },
            NodeRole::Coordinator,
        )
    }

    #[test]
    fn sensor_emits_incrementing_counter() {
        let mut s = sensor();
        let f1 = s.on_timer(Instant(0)).pop().unwrap();
        let f2 = s.on_timer(Instant(2_000_000)).pop().unwrap();
        let v1 = XbeePayload::from_bytes(&f1.payload)
            .unwrap()
            .as_reading()
            .unwrap();
        let v2 = XbeePayload::from_bytes(&f2.payload)
            .unwrap()
            .as_reading()
            .unwrap();
        assert_eq!(v2, v1 + 1);
        assert_eq!(f1.dest, Address::Short(0x0042));
        assert!(f1.ack_request);
    }

    #[test]
    fn coordinator_acks_and_records_reading() {
        let mut c = coordinator();
        let mut s = sensor();
        let data = s.on_timer(Instant(0)).pop().unwrap();
        let replies = c.on_receive(&data, Instant(100));
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].frame_type, FrameType::Ack);
        assert_eq!(replies[0].sequence, data.sequence);
        assert_eq!(c.readings().len(), 1);
        assert_eq!(c.readings()[0].value, 1);
        assert_eq!(c.readings()[0].reported_by, 0x0063);
    }

    #[test]
    fn coordinator_answers_beacon_request() {
        let mut c = coordinator();
        let replies = c.on_receive(&MacFrame::beacon_request(1), Instant(0));
        let beacon = replies
            .iter()
            .find(|f| f.frame_type == FrameType::Beacon)
            .expect("no beacon");
        assert_eq!(beacon.src_pan, Some(0x1234));
        assert_eq!(beacon.src, Address::Short(0x0042));
    }

    #[test]
    fn sensor_ignores_beacon_request() {
        let mut s = sensor();
        assert!(s
            .on_receive(&MacFrame::beacon_request(1), Instant(0))
            .is_empty());
    }

    #[test]
    fn remote_at_changes_channel_and_responds() {
        // The DoS step of Scenario B: a forged remote AT command (spoofing
        // the coordinator) moves the sensor to another channel.
        let mut s = sensor();
        let cmd = XbeePayload::RemoteAtCommand {
            frame_id: 7,
            command: AtCommand::Channel(25),
        };
        let forged = MacFrame::data(0x1234, 0x0042, 0x0063, 99, cmd.to_bytes());
        let replies = s.on_receive(&forged, Instant(0));
        assert_eq!(s.config.channel, ch(25));
        assert_eq!(s.at_log(), &[AtCommand::Channel(25)]);
        // Ack + AT response.
        assert!(replies.iter().any(|f| f.frame_type == FrameType::Ack));
        let resp = replies
            .iter()
            .find(|f| f.frame_type == FrameType::Data)
            .unwrap();
        assert_eq!(
            XbeePayload::from_bytes(&resp.payload),
            Some(XbeePayload::RemoteAtResponse {
                frame_id: 7,
                status: AtStatus::Ok
            })
        );
    }

    #[test]
    fn invalid_channel_rejected() {
        let mut s = sensor();
        let cmd = XbeePayload::RemoteAtCommand {
            frame_id: 1,
            command: AtCommand::Channel(42),
        };
        let forged = MacFrame::data(0x1234, 0x0042, 0x0063, 1, cmd.to_bytes());
        let replies = s.on_receive(&forged, Instant(0));
        assert_eq!(s.config.channel, ch(14), "channel must not change");
        let resp = replies
            .iter()
            .find(|f| f.frame_type == FrameType::Data)
            .unwrap();
        assert_eq!(
            XbeePayload::from_bytes(&resp.payload),
            Some(XbeePayload::RemoteAtResponse {
                frame_id: 1,
                status: AtStatus::Error
            })
        );
    }

    fn router(addr: u16, forward_to: u16) -> XbeeNode {
        XbeeNode::new(
            NodeConfig {
                pan: 0x1234,
                short_addr: addr,
                channel: ch(14),
            },
            NodeRole::Router { forward_to },
        )
    }

    #[test]
    fn sensor_reports_to_configured_relay() {
        let mut s = sensor().with_report_to(0x0080);
        let f = s.on_timer(Instant(0)).pop().unwrap();
        assert_eq!(f.dest, Address::Short(0x0080));
        assert!(f.ack_request);
    }

    #[test]
    fn router_forwards_reading_preserving_source() {
        let mut s = sensor().with_report_to(0x0080);
        let mut r = router(0x0080, 0x0042);
        let mut c = coordinator();
        let data = s.on_timer(Instant(0)).pop().unwrap();
        let replies = r.on_receive(&data, Instant(50));
        // The router ACKs the sensor and relays the reading onward.
        assert!(replies.iter().any(|f| f.frame_type == FrameType::Ack));
        let fwd = replies
            .iter()
            .find(|f| f.frame_type == FrameType::Data)
            .expect("forwarded reading");
        assert_eq!(fwd.dest, Address::Short(0x0042));
        assert_eq!(fwd.src, Address::Short(0x0063), "original source kept");
        assert!(fwd.ack_request);
        c.on_receive(fwd, Instant(100));
        assert_eq!(c.readings().len(), 1);
        assert_eq!(c.readings()[0].reported_by, 0x0063);
        assert_eq!(c.readings()[0].value, 1);
    }

    #[test]
    fn router_has_no_timer_and_records_nothing() {
        let mut r = router(0x0080, 0x0042);
        assert_eq!(r.timer_interval_ms(), None);
        assert!(r.on_timer(Instant(0)).is_empty());
        let data = sensor().on_timer(Instant(0)).pop().unwrap();
        // Addressed to 0x0042, not the router: ignored entirely.
        assert!(r.on_receive(&data, Instant(10)).is_empty());
        assert!(r.readings().is_empty());
    }

    #[test]
    fn router_relays_only_readings() {
        let mut r = router(0x0080, 0x0042);
        let cmd = XbeePayload::RemoteAtCommand {
            frame_id: 3,
            command: AtCommand::PanId(0x9999),
        };
        let frame = MacFrame::data(0x1234, 0x0042, 0x0080, 9, cmd.to_bytes());
        let replies = r.on_receive(&frame, Instant(0));
        // AT commands are executed locally, not relayed onward as readings.
        assert!(replies
            .iter()
            .filter(|f| f.frame_type == FrameType::Data)
            .all(|f| {
                matches!(
                    XbeePayload::from_bytes(&f.payload),
                    Some(XbeePayload::RemoteAtResponse { .. })
                )
            }));
        assert_eq!(r.config.pan, 0x9999);
    }

    #[test]
    fn frames_for_other_pans_ignored() {
        let mut s = sensor();
        let other = MacFrame::data(
            0xBEEF,
            0x0042,
            0x0063,
            1,
            XbeePayload::reading(9).to_bytes(),
        );
        assert!(s.on_receive(&other, Instant(0)).is_empty());
    }

    #[test]
    fn frames_for_other_addresses_ignored() {
        let mut c = coordinator();
        let other = MacFrame::data(
            0x1234,
            0x0063,
            0x0077,
            1,
            XbeePayload::reading(9).to_bytes(),
        );
        assert!(c.on_receive(&other, Instant(0)).is_empty());
        assert!(c.readings().is_empty());
    }
}

#[cfg(test)]
mod association_tests {
    use super::*;

    fn ch14() -> Dot154Channel {
        Dot154Channel::new(14).unwrap()
    }

    fn coordinator() -> XbeeNode {
        XbeeNode::new(
            NodeConfig {
                pan: 0x1234,
                short_addr: 0x0042,
                channel: ch14(),
            },
            NodeRole::Coordinator,
        )
    }

    /// Drives a full association handshake between two nodes, returning the
    /// frames exchanged.
    fn associate(sensor: &mut XbeeNode, coord: &mut XbeeNode) {
        let probe = sensor.on_timer(Instant(0));
        assert_eq!(probe.len(), 1, "unjoined sensor must probe");
        let beacons = coord.on_receive(&probe[0], Instant(10));
        let beacon = beacons
            .iter()
            .find(|f| f.frame_type == FrameType::Beacon)
            .expect("beacon");
        let requests = sensor.on_receive(beacon, Instant(20));
        let request = requests
            .iter()
            .find(|f| f.frame_type == FrameType::MacCommand)
            .expect("association request");
        assert_eq!(request.command_id(), Some(MacCommandId::AssociationRequest));
        let responses = coord.on_receive(request, Instant(30));
        let response = responses
            .iter()
            .find(|f| f.frame_type == FrameType::MacCommand)
            .expect("association response");
        let _ = sensor.on_receive(response, Instant(40));
    }

    #[test]
    fn full_association_handshake() {
        let mut sensor = XbeeNode::new_unjoined_sensor(ch14(), 2000);
        let mut coord = coordinator();
        assert_eq!(sensor.join_state(), JoinState::Scanning);
        assert!(!sensor.is_joined());
        associate(&mut sensor, &mut coord);
        assert!(sensor.is_joined());
        assert_eq!(sensor.config.pan, 0x1234);
        assert_eq!(sensor.config.short_addr, 0x0100);
    }

    #[test]
    fn joined_sensor_starts_reporting() {
        let mut sensor = XbeeNode::new_unjoined_sensor(ch14(), 2000);
        let mut coord = coordinator();
        associate(&mut sensor, &mut coord);
        let frames = sensor.on_timer(Instant(100));
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].frame_type, FrameType::Data);
        assert_eq!(frames[0].src, Address::Short(0x0100));
    }

    #[test]
    fn two_sensors_get_distinct_addresses() {
        let mut a = XbeeNode::new_unjoined_sensor_with_id(ch14(), 2000, 0xA);
        let mut b = XbeeNode::new_unjoined_sensor_with_id(ch14(), 2000, 0xB);
        let mut coord = coordinator();
        associate(&mut a, &mut coord);
        associate(&mut b, &mut coord);
        assert_ne!(a.config.short_addr, b.config.short_addr);
        assert!(a.is_joined() && b.is_joined());
    }

    #[test]
    fn unjoined_sensor_keeps_probing_without_a_coordinator() {
        let mut sensor = XbeeNode::new_unjoined_sensor(ch14(), 2000);
        for k in 0..3 {
            let frames = sensor.on_timer(Instant(k * 2_000_000));
            assert_eq!(frames.len(), 1, "probe {k}");
            assert_eq!(frames[0].command_id(), Some(MacCommandId::BeaconRequest));
        }
        assert!(!sensor.is_joined());
    }

    #[test]
    fn response_from_wrong_coordinator_ignored() {
        let mut sensor = XbeeNode::new_unjoined_sensor(ch14(), 2000);
        let mut coord = coordinator();
        // Get the sensor into Associating state.
        let probe = sensor.on_timer(Instant(0));
        let beacons = coord.on_receive(&probe[0], Instant(10));
        let beacon = beacons
            .iter()
            .find(|f| f.frame_type == FrameType::Beacon)
            .unwrap();
        sensor.on_receive(beacon, Instant(20));
        assert!(matches!(sensor.join_state(), JoinState::Associating { .. }));
        // A forged response from a different address must not complete it.
        let mut payload = vec![MacCommandId::AssociationResponse as u8];
        payload.extend_from_slice(&0x6666u16.to_le_bytes());
        payload.push(0x00);
        payload.extend_from_slice(&0xACE0_F00D_0000_0001u64.to_le_bytes());
        let forged = MacFrame {
            frame_type: FrameType::MacCommand,
            ack_request: false,
            pan_id_compression: true,
            sequence: 1,
            dest_pan: Some(0x1234),
            dest: Address::Short(0xFFFE),
            src_pan: None,
            src: Address::Short(0x0666),
            payload,
        };
        sensor.on_receive(&forged, Instant(30));
        assert!(!sensor.is_joined());
    }

    #[test]
    fn failed_status_keeps_sensor_unjoined() {
        let mut sensor = XbeeNode::new_unjoined_sensor(ch14(), 2000);
        let mut coord = coordinator();
        let probe = sensor.on_timer(Instant(0));
        let beacons = coord.on_receive(&probe[0], Instant(10));
        let beacon = beacons
            .iter()
            .find(|f| f.frame_type == FrameType::Beacon)
            .unwrap();
        sensor.on_receive(beacon, Instant(20));
        let mut payload = vec![MacCommandId::AssociationResponse as u8];
        payload.extend_from_slice(&0x0100u16.to_le_bytes());
        payload.push(0x01); // PAN at capacity
        payload.extend_from_slice(&0xACE0_F00D_0000_0001u64.to_le_bytes());
        let response = MacFrame {
            frame_type: FrameType::MacCommand,
            ack_request: false,
            pan_id_compression: true,
            sequence: 1,
            dest_pan: Some(0x1234),
            dest: Address::Short(0xFFFE),
            src_pan: None,
            src: Address::Short(0x0042),
            payload,
        };
        sensor.on_receive(&response, Instant(30));
        assert!(!sensor.is_joined());
    }
}

#[cfg(test)]
mod concurrent_association_tests {
    use super::*;

    /// Two sensors race: the coordinator's response to A must not be
    /// accepted by B (the ambiguity the extended-id echo resolves).
    #[test]
    fn response_is_bound_to_the_requesting_device() {
        let ch = Dot154Channel::new(14).unwrap();
        let mut a = XbeeNode::new_unjoined_sensor_with_id(ch, 2000, 0xAAAA);
        let mut b = XbeeNode::new_unjoined_sensor_with_id(ch, 2000, 0xBBBB);
        let mut coord = XbeeNode::new(
            NodeConfig {
                pan: 0x1234,
                short_addr: 0x0042,
                channel: ch,
            },
            NodeRole::Coordinator,
        );
        // Both sensors hear the same beacon and request concurrently.
        let probe = a.on_timer(Instant(0));
        let beacons = coord.on_receive(&probe[0], Instant(1));
        let beacon = beacons
            .iter()
            .find(|f| f.frame_type == FrameType::Beacon)
            .unwrap()
            .clone();
        let req_a = a.on_receive(&beacon, Instant(2)).pop().unwrap();
        let req_b = b.on_receive(&beacon, Instant(2)).pop().unwrap();
        // The coordinator answers A first; both sensors hear that response
        // (they share short address 0xFFFE on the air).
        let resp_a = coord
            .on_receive(&req_a, Instant(3))
            .into_iter()
            .find(|f| f.frame_type == FrameType::MacCommand)
            .unwrap();
        a.on_receive(&resp_a, Instant(4));
        b.on_receive(&resp_a, Instant(4));
        assert!(a.is_joined());
        assert!(!b.is_joined(), "B stole A's association response");
        // B completes with its own response.
        let resp_b = coord
            .on_receive(&req_b, Instant(5))
            .into_iter()
            .find(|f| f.frame_type == FrameType::MacCommand)
            .unwrap();
        b.on_receive(&resp_b, Instant(6));
        assert!(b.is_joined());
        assert_ne!(a.config.short_addr, b.config.short_addr);
    }
}
