//! A deterministic event-driven Zigbee network simulator.
//!
//! Nodes exchange PSDUs logically per channel; every transmission is also
//! appended to an air log so an external attacker (driven through the IQ-level
//! modems of the other crates) can sniff and inject. This mirrors the paper's
//! testbed (§VI-A): a sensor reporting a counter every two seconds to a
//! coordinator that acknowledges and displays it.

use wazabee_dot154::mac::MacFrame;
use wazabee_dot154::{Dot154Channel, Dot154Modem, Ppdu};
use wazabee_radio::{EventQueue, Instant, Link, LinkConfig, RfFrame};

use crate::node::{NodeConfig, NodeRole, XbeeNode};

/// One frame observed on the simulated air.
#[derive(Debug, Clone, PartialEq)]
pub struct AirRecord {
    /// When the frame was transmitted.
    pub time: Instant,
    /// The channel it was transmitted on.
    pub channel: Dot154Channel,
    /// The PSDU (MAC frame + FCS).
    pub psdu: Vec<u8>,
    /// Index of the transmitting node, or `None` for external injections.
    pub source: Option<usize>,
    /// Set when the PSDU failed `MacFrame::from_psdu` at delivery time and
    /// every radio dropped it — distinguishes "sent but malformed" from
    /// "never sent" in attack experiments.
    pub dropped_bad_psdu: bool,
    /// In [`PhyMode::Iq`]: how many listening receivers failed to recover
    /// this frame at the demodulation level.
    pub phy_failures: u32,
}

#[derive(Debug, Clone)]
enum Event {
    Timer {
        node: usize,
    },
    Deliver {
        channel: Dot154Channel,
        psdu: Vec<u8>,
        skip: Option<usize>,
        /// Index of this frame's entry in the air log, for drop marking.
        log_index: usize,
    },
}

/// Propagation plus processing delay applied to deliveries, in microseconds.
const DELIVERY_DELAY_US: u64 = 192; // one 802.15.4 turnaround time

/// How deliveries reach the nodes' radios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhyMode {
    /// Byte-level broadcast: every PSDU reaches every listening node
    /// verbatim (the original idealised model; default).
    Ideal,
    /// PHY-in-the-loop: each delivery is modulated by the real O-QPSK modem,
    /// pushed through a per-receiver [`Link`] (gain, CFO, timing offset,
    /// noise), and demodulated by the real receiver — frames now live or die
    /// on the waveform math.
    Iq(IqPhyConfig),
}

/// Configuration of the [`PhyMode::Iq`] delivery path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqPhyConfig {
    /// O-QPSK oversampling factor (samples per chip).
    pub samples_per_chip: usize,
    /// Impairments applied per receiver on every delivery.
    pub link: LinkConfig,
    /// Seed deriving each receiver's deterministic link randomness.
    pub seed: u64,
}

impl Default for IqPhyConfig {
    fn default() -> Self {
        IqPhyConfig {
            samples_per_chip: 8,
            link: LinkConfig::office_3m(),
            seed: 0x51B7_B33F,
        }
    }
}

/// The network simulator.
///
/// # Examples
///
/// ```
/// use wazabee_radio::Instant;
/// use wazabee_zigbee::ZigbeeNetwork;
///
/// let mut net = ZigbeeNetwork::paper_testbed();
/// net.run_until(Instant(0).plus_ms(10_500));
/// // Five sensor readings in the first ten seconds, all delivered.
/// assert_eq!(net.coordinator().readings().len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ZigbeeNetwork {
    nodes: Vec<XbeeNode>,
    queue: EventQueue<Event>,
    now: Instant,
    log: Vec<AirRecord>,
    phy: PhyMode,
    /// The shared O-QPSK modem of the IQ path (present only in `Iq` mode).
    modem: Option<Dot154Modem>,
    /// One deterministic link per node, aligned with `nodes` (IQ mode only).
    links: Vec<Link>,
    bad_psdu_drops: u64,
    phy_drops: u64,
}

impl ZigbeeNetwork {
    /// Creates an empty network at time zero.
    pub fn new() -> Self {
        ZigbeeNetwork {
            nodes: Vec::new(),
            queue: EventQueue::new(),
            now: Instant(0),
            log: Vec::new(),
            phy: PhyMode::Ideal,
            modem: None,
            links: Vec::new(),
            bad_psdu_drops: 0,
            phy_drops: 0,
        }
    }

    /// Creates an empty network delivering through the given PHY mode.
    pub fn new_with_phy(phy: PhyMode) -> Self {
        let mut net = ZigbeeNetwork::new();
        net.set_phy(phy);
        net
    }

    /// Switches the delivery PHY. Existing nodes get fresh deterministic
    /// links; call this before running traffic, not mid-flight.
    pub fn set_phy(&mut self, phy: PhyMode) {
        self.phy = phy;
        match phy {
            PhyMode::Ideal => {
                self.modem = None;
                self.links.clear();
            }
            PhyMode::Iq(cfg) => {
                self.modem = Some(Dot154Modem::new(cfg.samples_per_chip));
                self.links = (0..self.nodes.len())
                    .map(|idx| Link::new(cfg.link, cfg.seed ^ (idx as u64).wrapping_mul(0x9E37)))
                    .collect();
            }
        }
    }

    /// The active PHY mode.
    pub fn phy(&self) -> PhyMode {
        self.phy
    }

    /// Frames dropped at delivery because the PSDU failed MAC parsing.
    pub fn bad_psdu_drops(&self) -> u64 {
        self.bad_psdu_drops
    }

    /// Per-receiver demodulation failures accumulated in `Iq` mode.
    pub fn phy_drops(&self) -> u64 {
        self.phy_drops
    }

    /// The paper's testbed: PAN 0x1234 on channel 14, coordinator 0x0042,
    /// sensor 0x0063 reporting every 2 seconds.
    pub fn paper_testbed() -> Self {
        let mut net = ZigbeeNetwork::new();
        let ch14 = Dot154Channel::new(14).expect("channel 14");
        net.add_node(XbeeNode::new(
            NodeConfig {
                pan: 0x1234,
                short_addr: 0x0042,
                channel: ch14,
            },
            NodeRole::Coordinator,
        ));
        net.add_node(XbeeNode::new(
            NodeConfig {
                pan: 0x1234,
                short_addr: 0x0063,
                channel: ch14,
            },
            NodeRole::Sensor { interval_ms: 2000 },
        ));
        net
    }

    /// Adds a node, scheduling its first timer if it has one; returns its
    /// index.
    pub fn add_node(&mut self, node: XbeeNode) -> usize {
        let idx = self.nodes.len();
        if let Some(ms) = node.timer_interval_ms() {
            self.queue
                .schedule(self.now.plus_ms(ms), Event::Timer { node: idx });
        }
        self.nodes.push(node);
        if let PhyMode::Iq(cfg) = self.phy {
            self.links.push(Link::new(
                cfg.link,
                cfg.seed ^ (idx as u64).wrapping_mul(0x9E37),
            ));
        }
        idx
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Read access to a node.
    pub fn node(&self, idx: usize) -> &XbeeNode {
        &self.nodes[idx]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The coordinator node (first node with that role).
    ///
    /// # Panics
    ///
    /// Panics if the network has no coordinator.
    pub fn coordinator(&self) -> &XbeeNode {
        self.nodes
            .iter()
            .find(|n| n.role() == NodeRole::Coordinator)
            .expect("network has no coordinator")
    }

    /// The complete air log.
    pub fn log(&self) -> &[AirRecord] {
        &self.log
    }

    /// Air-log entries from a previous cursor position (for sniffers).
    pub fn log_since(&self, cursor: usize) -> &[AirRecord] {
        &self.log[cursor.min(self.log.len())..]
    }

    /// Injects a PSDU from outside the simulation (the attacker's path).
    /// The frame is logged and delivered to all nodes listening on
    /// `channel`.
    pub fn inject(&mut self, channel: Dot154Channel, psdu: Vec<u8>) {
        let log_index = self.log.len();
        self.log.push(AirRecord {
            time: self.now,
            channel,
            psdu: psdu.clone(),
            source: None,
            dropped_bad_psdu: false,
            phy_failures: 0,
        });
        self.queue.schedule(
            self.now.plus_us(DELIVERY_DELAY_US),
            Event::Deliver {
                channel,
                psdu,
                skip: None,
                log_index,
            },
        );
    }

    fn transmit_from(&mut self, node_idx: usize, frame: &MacFrame) {
        let channel = self.nodes[node_idx].config.channel;
        let psdu = frame.to_psdu();
        let log_index = self.log.len();
        self.log.push(AirRecord {
            time: self.now,
            channel,
            psdu: psdu.clone(),
            source: Some(node_idx),
            dropped_bad_psdu: false,
            phy_failures: 0,
        });
        self.queue.schedule(
            self.now.plus_us(DELIVERY_DELAY_US),
            Event::Deliver {
                channel,
                psdu,
                skip: Some(node_idx),
                log_index,
            },
        );
    }

    /// Decodes what receiver `idx` hears when `air` is emitted on `channel`
    /// in IQ mode: per-link impairments, then the real demodulator.
    fn iq_receive(
        &mut self,
        idx: usize,
        channel: Dot154Channel,
        air: &[wazabee_dsp::Iq],
    ) -> Option<MacFrame> {
        let modem = self.modem.as_ref().expect("IQ mode has a modem");
        let rf = RfFrame::new(channel.center_mhz(), air.to_vec(), modem.sample_rate());
        let heard = self.links[idx].deliver(&rf, channel.center_mhz());
        let rx = modem.receive(&heard)?;
        rx.fcs_ok().then(|| MacFrame::from_psdu(&rx.psdu))?
    }

    /// Runs the simulation until `deadline` (inclusive of events at it).
    /// A deadline in the past is a no-op: simulated time never rewinds.
    pub fn run_until(&mut self, deadline: Instant) {
        if deadline <= self.now {
            return;
        }
        while let Some(when) = self.queue.peek_time() {
            if when > deadline {
                break;
            }
            let (when, event) = self.queue.pop().expect("peeked event");
            self.now = when;
            match event {
                Event::Timer { node } => {
                    let frames = self.nodes[node].on_timer(self.now);
                    for f in frames {
                        self.transmit_from(node, &f);
                    }
                    if let Some(ms) = self.nodes[node].timer_interval_ms() {
                        self.queue
                            .schedule(self.now.plus_ms(ms), Event::Timer { node });
                    }
                }
                Event::Deliver {
                    channel,
                    psdu,
                    skip,
                    log_index,
                } => {
                    let Some(frame) = MacFrame::from_psdu(&psdu) else {
                        // Bad FCS: dropped by every radio — but the attempt
                        // stays visible to forensics.
                        wazabee_telemetry::counter!("zigbee.net.drop.bad_psdu").inc();
                        self.bad_psdu_drops += 1;
                        self.log[log_index].dropped_bad_psdu = true;
                        continue;
                    };
                    // In IQ mode the frame is modulated once and each
                    // receiver demodulates its own impaired copy.
                    let air = match (&self.phy, &self.modem) {
                        (PhyMode::Iq(_), Some(modem)) => match Ppdu::new(psdu.clone()) {
                            Ok(ppdu) => Some(modem.transmit(&ppdu)),
                            Err(_) => {
                                // Oversized for the PHY: nothing airs.
                                wazabee_telemetry::counter!("zigbee.net.drop.bad_psdu").inc();
                                self.bad_psdu_drops += 1;
                                self.log[log_index].dropped_bad_psdu = true;
                                continue;
                            }
                        },
                        _ => None,
                    };
                    for idx in 0..self.nodes.len() {
                        if Some(idx) == skip || self.nodes[idx].config.channel != channel {
                            continue;
                        }
                        let heard = match &air {
                            None => Some(frame.clone()),
                            Some(air) => {
                                let rx = self.iq_receive(idx, channel, air);
                                if rx.is_none() {
                                    wazabee_telemetry::counter!("zigbee.net.drop.phy").inc();
                                    self.phy_drops += 1;
                                    self.log[log_index].phy_failures += 1;
                                }
                                rx
                            }
                        };
                        let Some(heard) = heard else { continue };
                        let replies = self.nodes[idx].on_receive(&heard, self.now);
                        for r in replies {
                            self.transmit_from(idx, &r);
                        }
                    }
                }
            }
        }
        self.now = deadline;
    }
}

impl Default for ZigbeeNetwork {
    fn default() -> Self {
        ZigbeeNetwork::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xbee::XbeePayload;
    use wazabee_dot154::mac::FrameType;

    #[test]
    fn testbed_sensor_reports_every_two_seconds() {
        let mut net = ZigbeeNetwork::paper_testbed();
        net.run_until(Instant(0).plus_ms(21_000));
        let readings = net.coordinator().readings();
        assert_eq!(readings.len(), 10);
        // Counter increments monotonically.
        for (k, r) in readings.iter().enumerate() {
            assert_eq!(r.value, (k + 1) as u16);
            assert_eq!(r.reported_by, 0x0063);
        }
    }

    #[test]
    fn every_data_frame_is_acknowledged() {
        let mut net = ZigbeeNetwork::paper_testbed();
        // 10.5 s: five sensor periods plus the delivery delay of the last ack.
        net.run_until(Instant(0).plus_ms(10_500));
        let data = net
            .log()
            .iter()
            .filter(|r| MacFrame::from_psdu(&r.psdu).map(|f| f.frame_type) == Some(FrameType::Data))
            .count();
        let acks = net
            .log()
            .iter()
            .filter(|r| MacFrame::from_psdu(&r.psdu).map(|f| f.frame_type) == Some(FrameType::Ack))
            .count();
        assert_eq!(data, 5);
        assert_eq!(acks, 5);
    }

    #[test]
    fn injected_beacon_request_draws_a_beacon() {
        let mut net = ZigbeeNetwork::paper_testbed();
        let ch14 = Dot154Channel::new(14).unwrap();
        net.inject(ch14, MacFrame::beacon_request(1).to_psdu());
        net.run_until(Instant(0).plus_ms(100));
        let beacon = net.log().iter().find(|r| {
            MacFrame::from_psdu(&r.psdu).map(|f| f.frame_type) == Some(FrameType::Beacon)
        });
        let beacon = beacon.expect("coordinator must respond with a beacon");
        let f = MacFrame::from_psdu(&beacon.psdu).unwrap();
        assert_eq!(f.src_pan, Some(0x1234));
    }

    #[test]
    fn injection_on_other_channel_is_unheard() {
        let mut net = ZigbeeNetwork::paper_testbed();
        let ch20 = Dot154Channel::new(20).unwrap();
        net.inject(ch20, MacFrame::beacon_request(1).to_psdu());
        net.run_until(Instant(0).plus_ms(100));
        let beacons = net
            .log()
            .iter()
            .filter(|r| {
                MacFrame::from_psdu(&r.psdu).map(|f| f.frame_type) == Some(FrameType::Beacon)
            })
            .count();
        assert_eq!(beacons, 0);
    }

    #[test]
    fn corrupted_injection_dropped() {
        let mut net = ZigbeeNetwork::paper_testbed();
        let ch14 = Dot154Channel::new(14).unwrap();
        let mut psdu = MacFrame::beacon_request(1).to_psdu();
        psdu[0] ^= 0xFF; // break the FCS
        net.inject(ch14, psdu);
        net.run_until(Instant(0).plus_ms(100));
        // Only the injection itself is on the log; no reply.
        assert_eq!(net.log().len(), 1);
        // The drop is counted and recorded on the air-log entry, so attack
        // experiments can tell "sent but malformed" from "never sent".
        assert_eq!(net.bad_psdu_drops(), 1);
        assert!(net.log()[0].dropped_bad_psdu);
    }

    #[test]
    fn clean_frames_are_not_marked_dropped() {
        let mut net = ZigbeeNetwork::paper_testbed();
        net.run_until(Instant(0).plus_ms(4_500));
        assert_eq!(net.bad_psdu_drops(), 0);
        assert!(net.log().iter().all(|r| !r.dropped_bad_psdu));
    }

    #[test]
    fn injected_spoofed_reading_lands_on_display() {
        // The essence of Scenario B's final step.
        let mut net = ZigbeeNetwork::paper_testbed();
        let ch14 = Dot154Channel::new(14).unwrap();
        let fake = MacFrame::data(
            0x1234,
            0x0063,
            0x0042,
            77,
            XbeePayload::reading(9999).to_bytes(),
        );
        net.inject(ch14, fake.to_psdu());
        net.run_until(Instant(0).plus_ms(100));
        let readings = net.coordinator().readings();
        assert_eq!(readings.len(), 1);
        assert_eq!(readings[0].value, 9999);
    }

    #[test]
    fn log_since_cursor() {
        let mut net = ZigbeeNetwork::paper_testbed();
        net.run_until(Instant(0).plus_ms(4_100));
        let cursor = net.log().len();
        assert!(cursor > 0);
        net.run_until(Instant(0).plus_ms(6_100));
        assert!(!net.log_since(cursor).is_empty());
        assert!(net.log_since(9999).is_empty());
    }

    #[test]
    fn time_advances_to_deadline() {
        let mut net = ZigbeeNetwork::new();
        net.run_until(Instant(12345));
        assert_eq!(net.now(), Instant(12345));
    }
}

#[cfg(test)]
mod iq_phy_tests {
    use super::*;
    use crate::xbee::XbeePayload;
    use wazabee_dot154::mac::FrameType;

    fn iq_testbed(link: LinkConfig) -> ZigbeeNetwork {
        let mut net = ZigbeeNetwork::paper_testbed();
        net.set_phy(PhyMode::Iq(IqPhyConfig {
            samples_per_chip: 8,
            link,
            seed: 0xD07_154,
        }));
        net
    }

    #[test]
    fn default_mode_is_ideal() {
        assert_eq!(ZigbeeNetwork::new().phy(), PhyMode::Ideal);
    }

    #[test]
    fn testbed_runs_over_the_iq_phy() {
        // The whole XBee stack unmodified, but every delivery now crosses
        // modulation → office link → demodulation.
        let mut net = iq_testbed(LinkConfig::office_3m());
        net.run_until(Instant(0).plus_ms(6_500));
        let readings = net.coordinator().readings();
        assert_eq!(readings.len(), 3, "phy_drops={}", net.phy_drops());
        for (k, r) in readings.iter().enumerate() {
            assert_eq!(r.value, (k + 1) as u16);
        }
        // Data and acks all survived the office link.
        let acks = net
            .log()
            .iter()
            .filter(|r| MacFrame::from_psdu(&r.psdu).map(|f| f.frame_type) == Some(FrameType::Ack))
            .count();
        assert_eq!(acks, 3);
        assert_eq!(net.phy_drops(), 0);
    }

    #[test]
    fn injected_frame_crosses_the_iq_path() {
        let mut net = iq_testbed(LinkConfig::ideal());
        let ch14 = Dot154Channel::new(14).unwrap();
        let fake = MacFrame::data(
            0x1234,
            0x0063,
            0x0042,
            77,
            XbeePayload::reading(4242).to_bytes(),
        );
        net.inject(ch14, fake.to_psdu());
        net.run_until(Instant(0).plus_ms(100));
        let readings = net.coordinator().readings();
        assert_eq!(readings.len(), 1);
        assert_eq!(readings[0].value, 4242);
    }

    #[test]
    fn hostile_link_shows_up_as_phy_drops() {
        // At -2 dB SNR the O-QPSK receiver loses frames; the network must
        // record those as demodulation-level failures, not silently succeed.
        let link = LinkConfig {
            snr_db: Some(-2.0),
            ..LinkConfig::office_3m()
        };
        let mut net = iq_testbed(link);
        net.run_until(Instant(0).plus_ms(8_500));
        assert!(
            net.phy_drops() > 0,
            "noisy link should drop at least one frame"
        );
        let marked: u32 = net.log().iter().map(|r| r.phy_failures).sum();
        assert_eq!(marked as u64, net.phy_drops());
    }
}

#[cfg(test)]
mod association_network_tests {
    use super::*;
    use crate::node::JoinState;

    #[test]
    fn sensor_joins_over_the_simulated_network() {
        let mut net = ZigbeeNetwork::new();
        let ch14 = Dot154Channel::new(14).unwrap();
        net.add_node(XbeeNode::new(
            NodeConfig {
                pan: 0x1234,
                short_addr: 0x0042,
                channel: ch14,
            },
            NodeRole::Coordinator,
        ));
        let sensor = net.add_node(XbeeNode::new_unjoined_sensor(ch14, 2000));
        assert_eq!(net.node(sensor).join_state(), JoinState::Scanning);
        // First timer fires at 2 s: probe → beacon → request → response.
        net.run_until(Instant(0).plus_ms(2_500));
        assert!(
            net.node(sensor).is_joined(),
            "{:?}",
            net.node(sensor).join_state()
        );
        assert_eq!(net.node(sensor).config.pan, 0x1234);
        // After joining, readings flow: two more periods.
        net.run_until(Instant(0).plus_ms(6_500));
        assert!(
            !net.coordinator().readings().is_empty(),
            "no readings after association"
        );
        assert_eq!(
            net.coordinator().readings()[0].reported_by,
            net.node(sensor).config.short_addr
        );
    }

    #[test]
    fn join_waits_until_a_coordinator_appears() {
        let mut net = ZigbeeNetwork::new();
        let ch14 = Dot154Channel::new(14).unwrap();
        let sensor = net.add_node(XbeeNode::new_unjoined_sensor(ch14, 1000));
        net.run_until(Instant(0).plus_ms(3_500));
        assert!(!net.node(sensor).is_joined());
        // The coordinator shows up late; the next probe finds it.
        net.add_node(XbeeNode::new(
            NodeConfig {
                pan: 0xBEEF,
                short_addr: 0x0001,
                channel: ch14,
            },
            NodeRole::Coordinator,
        ));
        net.run_until(Instant(0).plus_ms(6_500));
        assert!(net.node(sensor).is_joined());
        assert_eq!(net.node(sensor).config.pan, 0xBEEF);
    }
}
