//! XBee serial API framing (API mode 1, unescaped).
//!
//! The paper's testbed drives its XBee transceivers from host applications —
//! the sensor script and the coordinator's HTML graph — over Digi's serial
//! API. The framing is public: `0x7E · length(u16 BE) · frame data ·
//! checksum`, where the checksum is `0xFF − (sum of frame data) & 0xFF`.
//! This module implements the subset those applications use.

use wazabee_dot154::mac::{Address, MacFrame};

/// The frame start delimiter.
pub const START_DELIMITER: u8 = 0x7E;

/// The API checksum: `0xFF − (sum of frame-data bytes) mod 256`.
fn checksum(frame_data: &[u8]) -> u8 {
    0xFFu8.wrapping_sub(frame_data.iter().fold(0u8, |a, &b| a.wrapping_add(b)))
}

/// A parsed API frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiFrame {
    /// Local AT command (type 0x08).
    AtCommand {
        /// Correlation id (0 = no response requested).
        frame_id: u8,
        /// Two-letter command name.
        command: [u8; 2],
        /// Parameter bytes.
        parameter: Vec<u8>,
    },
    /// Local AT command response (type 0x88).
    AtResponse {
        /// Echoed correlation id.
        frame_id: u8,
        /// Echoed command name.
        command: [u8; 2],
        /// 0 = OK, 1 = error.
        status: u8,
        /// Returned value bytes.
        value: Vec<u8>,
    },
    /// Transmit request, 16-bit addressing (type 0x01).
    TxRequest16 {
        /// Correlation id.
        frame_id: u8,
        /// Destination short address.
        dest: u16,
        /// Options bitfield (0x01 = disable ack).
        options: u8,
        /// Application payload.
        data: Vec<u8>,
    },
    /// Transmit status (type 0x89).
    TxStatus {
        /// Echoed correlation id.
        frame_id: u8,
        /// 0 = success, 1 = no ack.
        status: u8,
    },
    /// Received packet, 16-bit addressing (type 0x81).
    RxPacket16 {
        /// Source short address.
        source: u16,
        /// Received signal strength (−dBm).
        rssi: u8,
        /// Options bitfield.
        options: u8,
        /// Application payload.
        data: Vec<u8>,
    },
}

impl ApiFrame {
    /// The frame-type byte.
    pub fn frame_type(&self) -> u8 {
        match self {
            ApiFrame::AtCommand { .. } => 0x08,
            ApiFrame::AtResponse { .. } => 0x88,
            ApiFrame::TxRequest16 { .. } => 0x01,
            ApiFrame::TxStatus { .. } => 0x89,
            ApiFrame::RxPacket16 { .. } => 0x81,
        }
    }

    fn frame_data(&self) -> Vec<u8> {
        let mut d = vec![self.frame_type()];
        match self {
            ApiFrame::AtCommand {
                frame_id,
                command,
                parameter,
            } => {
                d.push(*frame_id);
                d.extend_from_slice(command);
                d.extend_from_slice(parameter);
            }
            ApiFrame::AtResponse {
                frame_id,
                command,
                status,
                value,
            } => {
                d.push(*frame_id);
                d.extend_from_slice(command);
                d.push(*status);
                d.extend_from_slice(value);
            }
            ApiFrame::TxRequest16 {
                frame_id,
                dest,
                options,
                data,
            } => {
                d.push(*frame_id);
                d.extend_from_slice(&dest.to_be_bytes());
                d.push(*options);
                d.extend_from_slice(data);
            }
            ApiFrame::TxStatus { frame_id, status } => {
                d.push(*frame_id);
                d.push(*status);
            }
            ApiFrame::RxPacket16 {
                source,
                rssi,
                options,
                data,
            } => {
                d.extend_from_slice(&source.to_be_bytes());
                d.push(*rssi);
                d.push(*options);
                d.extend_from_slice(data);
            }
        }
        d
    }

    /// Serialises to the on-wire byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let data = self.frame_data();
        let mut out = Vec::with_capacity(4 + data.len());
        out.push(START_DELIMITER);
        out.extend_from_slice(&(data.len() as u16).to_be_bytes());
        let check = checksum(&data);
        out.extend_from_slice(&data);
        out.push(check);
        out
    }

    /// Parses one frame from the head of a byte stream; returns the frame
    /// and the number of bytes consumed.
    ///
    /// Returns `None` on truncation, bad delimiter, bad checksum or an
    /// unknown frame type.
    pub fn from_bytes(bytes: &[u8]) -> Option<(ApiFrame, usize)> {
        if bytes.len() < 5 || bytes[0] != START_DELIMITER {
            return None;
        }
        let len = usize::from(u16::from_be_bytes([bytes[1], bytes[2]]));
        let total = 3 + len + 1;
        if bytes.len() < total || len == 0 {
            return None;
        }
        let data = &bytes[3..3 + len];
        if bytes[3 + len] != checksum(data) {
            return None;
        }
        let frame = match data[0] {
            0x08 if len >= 4 => ApiFrame::AtCommand {
                frame_id: data[1],
                command: [data[2], data[3]],
                parameter: data[4..].to_vec(),
            },
            0x88 if len >= 5 => ApiFrame::AtResponse {
                frame_id: data[1],
                command: [data[2], data[3]],
                status: data[4],
                value: data[5..].to_vec(),
            },
            0x01 if len >= 5 => ApiFrame::TxRequest16 {
                frame_id: data[1],
                dest: u16::from_be_bytes([data[2], data[3]]),
                options: data[4],
                data: data[5..].to_vec(),
            },
            0x89 if len == 3 => ApiFrame::TxStatus {
                frame_id: data[1],
                status: data[2],
            },
            0x81 if len >= 5 => ApiFrame::RxPacket16 {
                source: u16::from_be_bytes([data[1], data[2]]),
                rssi: data[3],
                options: data[4],
                data: data[5..].to_vec(),
            },
            _ => return None,
        };
        Some((frame, total))
    }

    /// Builds the RX indication a module delivers to its host for a received
    /// MAC data frame.
    pub fn rx_indication(frame: &MacFrame, rssi: u8) -> Option<ApiFrame> {
        let source = match frame.src {
            Address::Short(a) => a,
            _ => return None,
        };
        Some(ApiFrame::RxPacket16 {
            source,
            rssi,
            options: 0,
            data: frame.payload.clone(),
        })
    }
}

/// Splits a serial byte stream into API frames, skipping garbage between
/// delimiters (resynchronisation, as real hosts do).
pub fn parse_stream(mut bytes: &[u8]) -> Vec<ApiFrame> {
    let mut frames = Vec::new();
    while !bytes.is_empty() {
        match bytes.iter().position(|&b| b == START_DELIMITER) {
            None => break,
            Some(at) => {
                bytes = &bytes[at..];
                match ApiFrame::from_bytes(bytes) {
                    Some((frame, used)) => {
                        frames.push(frame);
                        bytes = &bytes[used..];
                    }
                    None => bytes = &bytes[1..],
                }
            }
        }
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn digi_documentation_example() {
        // The canonical example from Digi's manual: AT command "MY" with
        // frame id 0x52 → 7E 00 04 08 52 4D 59 FF.
        let frame = ApiFrame::AtCommand {
            frame_id: 0x52,
            command: *b"MY",
            parameter: vec![],
        };
        assert_eq!(
            frame.to_bytes(),
            vec![0x7E, 0x00, 0x04, 0x08, 0x52, 0x4D, 0x59, 0xFF]
        );
    }

    #[test]
    fn round_trip_all_variants() {
        let frames = vec![
            ApiFrame::AtCommand {
                frame_id: 1,
                command: *b"CH",
                parameter: vec![14],
            },
            ApiFrame::AtResponse {
                frame_id: 1,
                command: *b"CH",
                status: 0,
                value: vec![14],
            },
            ApiFrame::TxRequest16 {
                frame_id: 2,
                dest: 0x0042,
                options: 0,
                data: vec![21, 0],
            },
            ApiFrame::TxStatus {
                frame_id: 2,
                status: 0,
            },
            ApiFrame::RxPacket16 {
                source: 0x0063,
                rssi: 40,
                options: 0,
                data: vec![1, 2, 3],
            },
        ];
        for f in frames {
            let bytes = f.to_bytes();
            let (parsed, used) = ApiFrame::from_bytes(&bytes).expect("parse");
            assert_eq!(parsed, f);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn checksum_corruption_rejected() {
        let f = ApiFrame::TxStatus {
            frame_id: 9,
            status: 0,
        };
        let mut bytes = f.to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert!(ApiFrame::from_bytes(&bytes).is_none());
        // ...and corrupting the body is caught by the checksum too.
        let mut bytes = f.to_bytes();
        bytes[4] ^= 0x10;
        assert!(ApiFrame::from_bytes(&bytes).is_none());
    }

    #[test]
    fn stream_parser_resynchronises() {
        let a = ApiFrame::TxStatus {
            frame_id: 1,
            status: 0,
        };
        let b = ApiFrame::AtCommand {
            frame_id: 2,
            command: *b"ID",
            parameter: vec![0x34, 0x12],
        };
        let mut stream = vec![0x00, 0x13, 0x37]; // line noise
        stream.extend(a.to_bytes());
        stream.extend([0x7E, 0x00]); // truncated garbage frame
        stream.extend(b.to_bytes());
        let frames = parse_stream(&stream);
        assert_eq!(frames, vec![a, b]);
    }

    #[test]
    fn rx_indication_from_mac_frame() {
        let mac = MacFrame::data(0x1234, 0x0063, 0x0042, 5, vec![9, 8, 7]);
        let api = ApiFrame::rx_indication(&mac, 42).unwrap();
        match api {
            ApiFrame::RxPacket16 {
                source, rssi, data, ..
            } => {
                assert_eq!(source, 0x0063);
                assert_eq!(rssi, 42);
                assert_eq!(data, vec![9, 8, 7]);
            }
            other => panic!("wrong frame: {other:?}"),
        }
        // Frames without a short source address have no RX indication.
        let ack = MacFrame::ack(1);
        assert!(ApiFrame::rx_indication(&ack, 0).is_none());
    }

    #[test]
    fn truncated_inputs_rejected() {
        assert!(ApiFrame::from_bytes(&[]).is_none());
        assert!(ApiFrame::from_bytes(&[0x7E]).is_none());
        assert!(ApiFrame::from_bytes(&[0x7E, 0x00, 0x04, 0x08]).is_none());
        assert!(ApiFrame::from_bytes(&[0x00, 0x00, 0x01, 0x89, 0x76]).is_none());
    }

    proptest! {
        #[test]
        fn prop_tx_request_round_trip(
            frame_id in any::<u8>(),
            dest in any::<u16>(),
            options in any::<u8>(),
            data in proptest::collection::vec(any::<u8>(), 0..100),
        ) {
            let f = ApiFrame::TxRequest16 { frame_id, dest, options, data };
            let (parsed, _) = ApiFrame::from_bytes(&f.to_bytes()).unwrap();
            prop_assert_eq!(parsed, f);
        }

        #[test]
        fn prop_parser_never_panics_on_garbage(
            bytes in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            let _ = parse_stream(&bytes);
            let _ = ApiFrame::from_bytes(&bytes);
        }
    }
}
