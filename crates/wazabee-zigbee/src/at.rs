//! XBee-style AT commands.
//!
//! Scenario B's denial-of-service step abuses *remote AT commands* — the
//! configuration channel XBee modules expose over the air [Vaccari et al.,
//! 2017] — to force the victim sensor onto another channel. Digi's exact
//! OTA encoding is proprietary; this module implements a semantically
//! equivalent encoding (documented in DESIGN.md) carrying the same commands.

use serde::{Deserialize, Serialize};

/// An AT command with its parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtCommand {
    /// `CH` — set the radio channel (11–26).
    Channel(u8),
    /// `ID` — set the PAN identifier.
    PanId(u16),
    /// `MY` — set the 16-bit source address.
    ShortAddress(u16),
    /// `WR` — write settings to non-volatile memory.
    Write,
    /// `AC` — apply queued changes.
    ApplyChanges,
}

impl AtCommand {
    /// The two-letter AT command name.
    pub fn name(self) -> [u8; 2] {
        match self {
            AtCommand::Channel(_) => *b"CH",
            AtCommand::PanId(_) => *b"ID",
            AtCommand::ShortAddress(_) => *b"MY",
            AtCommand::Write => *b"WR",
            AtCommand::ApplyChanges => *b"AC",
        }
    }

    /// Serialises name + parameter.
    pub fn to_bytes(self) -> Vec<u8> {
        let mut out = self.name().to_vec();
        match self {
            AtCommand::Channel(ch) => out.push(ch),
            AtCommand::PanId(id) => out.extend_from_slice(&id.to_le_bytes()),
            AtCommand::ShortAddress(a) => out.extend_from_slice(&a.to_le_bytes()),
            AtCommand::Write | AtCommand::ApplyChanges => {}
        }
        out
    }

    /// Parses name + parameter.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 2 {
            return None;
        }
        match &bytes[..2] {
            b"CH" if bytes.len() == 3 => Some(AtCommand::Channel(bytes[2])),
            b"ID" if bytes.len() == 4 => {
                Some(AtCommand::PanId(u16::from_le_bytes([bytes[2], bytes[3]])))
            }
            b"MY" if bytes.len() == 4 => Some(AtCommand::ShortAddress(u16::from_le_bytes([
                bytes[2], bytes[3],
            ]))),
            b"WR" if bytes.len() == 2 => Some(AtCommand::Write),
            b"AC" if bytes.len() == 2 => Some(AtCommand::ApplyChanges),
            _ => None,
        }
    }
}

/// Status of an executed AT command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum AtStatus {
    /// The command executed.
    Ok = 0,
    /// The command or parameter was invalid.
    Error = 1,
}

impl AtStatus {
    /// Parses a status byte.
    pub fn from_byte(v: u8) -> Option<Self> {
        match v {
            0 => Some(AtStatus::Ok),
            1 => Some(AtStatus::Error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_commands() {
        for cmd in [
            AtCommand::Channel(14),
            AtCommand::PanId(0x1234),
            AtCommand::ShortAddress(0x0063),
            AtCommand::Write,
            AtCommand::ApplyChanges,
        ] {
            assert_eq!(AtCommand::from_bytes(&cmd.to_bytes()), Some(cmd));
        }
    }

    #[test]
    fn names_are_ascii() {
        assert_eq!(&AtCommand::Channel(11).name(), b"CH");
        assert_eq!(&AtCommand::PanId(0).name(), b"ID");
        assert_eq!(&AtCommand::ShortAddress(0).name(), b"MY");
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(AtCommand::from_bytes(b""), None);
        assert_eq!(AtCommand::from_bytes(b"C"), None);
        assert_eq!(AtCommand::from_bytes(b"CH"), None); // missing parameter
        assert_eq!(AtCommand::from_bytes(b"ID\x01"), None); // short parameter
        assert_eq!(AtCommand::from_bytes(b"ZZ\x00"), None); // unknown name
        assert_eq!(AtCommand::from_bytes(b"WR\x00"), None); // unexpected parameter
    }

    #[test]
    fn status_bytes() {
        assert_eq!(AtStatus::from_byte(0), Some(AtStatus::Ok));
        assert_eq!(AtStatus::from_byte(1), Some(AtStatus::Error));
        assert_eq!(AtStatus::from_byte(7), None);
    }
}
