//! PPDU framing (paper §III-C): preamble · SFD · PHR · PSDU.

use serde::{Deserialize, Serialize};

use crate::dsss::{bytes_to_symbols, spread_symbols};

/// The synchronisation header preamble: four zero bytes (eight `0000`
/// symbols).
pub const PREAMBLE_BYTES: [u8; 4] = [0x00; 4];

/// Start-of-frame delimiter.
///
/// IEEE 802.15.4 specifies the value 0xA7; because symbols are transmitted
/// low nibble first, the on-air symbol order is 7 then 10 — which is why the
/// paper (and some sniffers) print the byte as 0x7A.
pub const SFD: u8 = 0xA7;

/// Maximum PSDU length (the PHR length field is 7 bits).
pub const MAX_PSDU_LEN: usize = 127;

/// Number of symbols in the synchronisation header (preamble + SFD).
pub const SHR_SYMBOLS: usize = 10;

/// A physical-layer protocol data unit: the PSDU plus framing.
///
/// # Examples
///
/// ```
/// use wazabee_dot154::Ppdu;
/// let ppdu = Ppdu::new(vec![0x01, 0x02, 0x03]).unwrap();
/// assert_eq!(ppdu.psdu(), &[0x01, 0x02, 0x03]);
/// assert_eq!(ppdu.to_symbols().len(), 10 + 2 + 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ppdu {
    psdu: Vec<u8>,
}

impl Ppdu {
    /// Wraps a PSDU (MAC frame including FCS).
    ///
    /// # Errors
    ///
    /// Returns the rejected payload when it exceeds [`MAX_PSDU_LEN`] bytes.
    pub fn new(psdu: Vec<u8>) -> Result<Self, Vec<u8>> {
        if psdu.len() > MAX_PSDU_LEN {
            Err(psdu)
        } else {
            Ok(Ppdu { psdu })
        }
    }

    /// The encapsulated PSDU.
    pub fn psdu(&self) -> &[u8] {
        &self.psdu
    }

    /// Consumes the PPDU, returning the PSDU.
    pub fn into_psdu(self) -> Vec<u8> {
        self.psdu
    }

    /// Serialises the full PPDU to bytes: preamble, SFD, PHR (length), PSDU.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6 + self.psdu.len());
        out.extend_from_slice(&PREAMBLE_BYTES);
        out.push(SFD);
        out.push(self.psdu.len() as u8);
        out.extend_from_slice(&self.psdu);
        out
    }

    /// The PPDU as 4-bit symbols in transmission order.
    pub fn to_symbols(&self) -> Vec<u8> {
        bytes_to_symbols(&self.to_bytes())
    }

    /// The PPDU as a DSSS chip stream.
    pub fn to_chips(&self) -> Vec<u8> {
        spread_symbols(&self.to_symbols())
    }

    /// The synchronisation-header symbols every frame starts with: eight
    /// `0` symbols (preamble) then the two SFD symbols.
    pub fn shr_symbols() -> Vec<u8> {
        let mut s = vec![0u8; 8];
        s.push(SFD & 0x0F);
        s.push(SFD >> 4);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_standard() {
        let ppdu = Ppdu::new(vec![0xAB, 0xCD]).unwrap();
        let bytes = ppdu.to_bytes();
        assert_eq!(&bytes[..4], &[0, 0, 0, 0]);
        assert_eq!(bytes[4], 0xA7);
        assert_eq!(bytes[5], 2);
        assert_eq!(&bytes[6..], &[0xAB, 0xCD]);
    }

    #[test]
    fn shr_symbols_are_preamble_then_sfd() {
        let s = Ppdu::shr_symbols();
        assert_eq!(s.len(), SHR_SYMBOLS);
        assert_eq!(&s[..8], &[0; 8]);
        assert_eq!(&s[8..], &[0x7, 0xA]); // low nibble of 0xA7 first
    }

    #[test]
    fn chip_count() {
        let ppdu = Ppdu::new(vec![0; 10]).unwrap();
        // (4 preamble + 1 SFD + 1 PHR + 10 PSDU) bytes × 2 symbols × 32 chips.
        assert_eq!(ppdu.to_chips().len(), 16 * 2 * 32);
    }

    #[test]
    fn length_limit_enforced() {
        assert!(Ppdu::new(vec![0; 127]).is_ok());
        let rejected = Ppdu::new(vec![0; 128]);
        assert_eq!(rejected.unwrap_err().len(), 128);
    }

    #[test]
    fn empty_psdu_is_legal() {
        let ppdu = Ppdu::new(vec![]).unwrap();
        assert_eq!(ppdu.to_bytes()[5], 0);
        assert_eq!(ppdu.to_symbols().len(), 12);
    }

    #[test]
    fn into_psdu_round_trip() {
        let data = vec![9, 8, 7];
        let ppdu = Ppdu::new(data.clone()).unwrap();
        assert_eq!(ppdu.into_psdu(), data);
    }
}
