//! The 802.15.4 DSSS pseudo-noise sequences (paper Table I).
//!
//! Each 4-bit symbol `(b0 b1 b2 b3)` — `b0` being the least significant bit,
//! transmitted first — is replaced by one of sixteen 32-chip PN sequences.
//! The family has a tight structure the tests verify: symbols 1–7 are 4-chip
//! right-rotations of symbol 0, and symbols 8–15 are symbols 0–7 with every
//! odd-indexed chip inverted.

use crate::channel::CHIPS_PER_SYMBOL;

/// The sixteen PN sequences, indexed by symbol value, exactly as printed in
/// paper Table I (chip `c0` first).
pub const PN_SEQUENCES: [[u8; 32]; 16] = [
    // 0: 0000
    [
        1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1,
        1, 0,
    ],
    // 1: 1000
    [
        1, 1, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0,
        1, 0,
    ],
    // 2: 0100
    [
        0, 0, 1, 0, 1, 1, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0,
        1, 0,
    ],
    // 3: 1100
    [
        0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1,
        0, 1,
    ],
    // 4: 0010
    [
        0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0,
        1, 1,
    ],
    // 5: 1010
    [
        0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 1, 1,
        0, 0,
    ],
    // 6: 0110
    [
        1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0, 1, 1, 0, 1, 1, 0,
        0, 1,
    ],
    // 7: 1110
    [
        1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0, 1, 1,
        0, 1,
    ],
    // 8: 0001
    [
        1, 0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0,
        1, 1,
    ],
    // 9: 1001
    [
        1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 1,
        1, 1,
    ],
    // 10: 0101
    [
        0, 1, 1, 1, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0, 1,
        1, 1,
    ],
    // 11: 1101
    [
        0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0, 0, 0,
        0, 0,
    ],
    // 12: 0011
    [
        0, 0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 0, 1,
        1, 0,
    ],
    // 13: 1011
    [
        0, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0, 0, 1, 0,
        0, 1,
    ],
    // 14: 0111
    [
        1, 0, 0, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1,
        0, 0,
    ],
    // 15: 1111
    [
        1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1, 1, 1, 0,
        0, 0,
    ],
];

/// Returns the PN sequence for a symbol value.
///
/// # Panics
///
/// Panics if `symbol` is not in 0..16.
pub fn pn_sequence(symbol: u8) -> &'static [u8; 32] {
    &PN_SEQUENCES[usize::from(symbol)]
}

/// Hamming distance between a received 32-chip block and each of the sixteen
/// PN sequences; returns `(best_symbol, best_distance)`.
///
/// Ties resolve to the lowest symbol value, matching a deterministic
/// hardware correlator.
///
/// # Panics
///
/// Panics if `chips` is not exactly 32 entries long.
pub fn closest_symbol(chips: &[u8]) -> (u8, usize) {
    assert_eq!(chips.len(), CHIPS_PER_SYMBOL, "expected one 32-chip block");
    closest_symbol_packed(wazabee_dsp::packed::pack_u32(chips))
}

/// The sixteen 32-chip PN sequences packed LSB-first into `u32` words,
/// precomputed once — the fast-path chip-domain despreading table.
pub fn pn_sequences_packed() -> &'static [u32; 16] {
    static TABLE: std::sync::OnceLock<[u32; 16]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| std::array::from_fn(|s| wazabee_dsp::packed::pack_u32(&PN_SEQUENCES[s])))
}

/// Packed chip-domain despreading: `chips` holds one 32-chip block LSB-first;
/// returns `(best_symbol, best_distance)` with the same tie-breaking as
/// [`closest_symbol`].
pub fn closest_symbol_packed(chips: u32) -> (u8, usize) {
    let table = pn_sequences_packed();
    let mut best = (0u8, usize::MAX);
    for (sym, &pn) in table.iter().enumerate() {
        let d = (chips ^ pn).count_ones() as usize;
        if d < best.1 {
            best = (sym as u8, d);
        }
    }
    best
}

/// Minimum pairwise Hamming distance of the PN family — the error margin the
/// Hamming-despreading of the paper (§IV-D) relies on.
pub fn min_pairwise_distance() -> usize {
    let mut min = usize::MAX;
    for (a, seq_a) in PN_SEQUENCES.iter().enumerate() {
        for seq_b in PN_SEQUENCES.iter().skip(a + 1) {
            min = min.min(wazabee_dsp::bits::hamming(seq_a, seq_b));
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sequences_have_32_chips_and_are_distinct() {
        for (a, seq_a) in PN_SEQUENCES.iter().enumerate() {
            for (b, seq_b) in PN_SEQUENCES.iter().enumerate().skip(a + 1) {
                assert_ne!(seq_a, seq_b, "symbols {a} and {b} collide");
            }
        }
    }

    #[test]
    fn symbols_1_to_7_are_rotations_of_symbol_0() {
        // Symbol s (1..=7) is symbol 0 rotated right by 4·s chips.
        for (s, seq) in PN_SEQUENCES.iter().enumerate().take(8).skip(1) {
            let shift = 4 * s;
            for (i, &chip) in PN_SEQUENCES[0].iter().enumerate() {
                assert_eq!(seq[(i + shift) % 32], chip, "symbol {s} chip {i}");
            }
        }
    }

    #[test]
    fn symbols_8_to_15_are_odd_chip_conjugates() {
        // Symbol s+8 equals symbol s with every odd-indexed chip inverted.
        for s in 0..8usize {
            for (i, &chip) in PN_SEQUENCES[s].iter().enumerate() {
                let expect = chip ^ (i as u8 & 1);
                assert_eq!(PN_SEQUENCES[s + 8][i], expect, "symbol {} chip {i}", s + 8);
            }
        }
    }

    #[test]
    fn sequences_are_balanced() {
        // Every PN sequence carries 16 ones and 16 zeros.
        for (s, pn) in PN_SEQUENCES.iter().enumerate() {
            let ones: u8 = pn.iter().sum();
            assert_eq!(ones, 16, "symbol {s}");
        }
    }

    #[test]
    fn full_complement_is_not_in_the_family() {
        // Inverting all 32 chips never yields another PN sequence — this is
        // what makes MSK-domain despreading unambiguous.
        for (s, pn) in PN_SEQUENCES.iter().enumerate() {
            let comp: Vec<u8> = pn.iter().map(|&c| c ^ 1).collect();
            for (t, other) in PN_SEQUENCES.iter().enumerate() {
                assert_ne!(comp.as_slice(), other.as_slice(), "NOT({s}) == {t}");
            }
        }
    }

    #[test]
    fn closest_symbol_is_exact_on_clean_chips() {
        for s in 0..16u8 {
            let (sym, d) = closest_symbol(pn_sequence(s));
            assert_eq!((sym, d), (s, 0));
        }
    }

    #[test]
    fn closest_symbol_survives_chip_errors() {
        // With min pairwise distance d_min, up to ⌊(d_min−1)/2⌋ chip flips
        // are always corrected.
        let budget = (min_pairwise_distance() - 1) / 2;
        assert!(budget >= 5, "PN family weaker than expected: {budget}");
        for s in 0..16u8 {
            let mut chips = *pn_sequence(s);
            for k in 0..budget {
                chips[(k * 7) % 32] ^= 1;
            }
            let (sym, d) = closest_symbol(&chips);
            assert_eq!(sym, s);
            assert_eq!(d, budget);
        }
    }

    #[test]
    fn min_pairwise_distance_is_large() {
        // The 802.15.4 PN family's minimum distance in the chip domain.
        let d = min_pairwise_distance();
        assert!((12..=20).contains(&d), "unexpected d_min {d}");
    }

    #[test]
    #[should_panic(expected = "32-chip block")]
    fn closest_symbol_rejects_wrong_length() {
        let _ = closest_symbol(&[0u8; 31]);
    }
}
