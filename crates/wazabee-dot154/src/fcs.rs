//! The 802.15.4 Frame Check Sequence: CRC-16 with polynomial
//! `x¹⁶ + x¹² + x⁵ + 1` (ITU-T), zero preset, bits processed LSB-first —
//! the parameterisation known as CRC-16/KERMIT.

/// Computes the FCS over a MAC frame (MHR + payload).
///
/// # Examples
///
/// ```
/// use wazabee_dot154::fcs::fcs16;
/// // The standard KERMIT check value.
/// assert_eq!(fcs16(b"123456789"), 0x2189);
/// ```
pub fn fcs16(data: &[u8]) -> u16 {
    let mut crc = 0u16;
    for &byte in data {
        crc ^= u16::from(byte);
        for _ in 0..8 {
            if crc & 1 == 1 {
                crc = (crc >> 1) ^ 0x8408; // reflected 0x1021
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// Appends the 2-byte FCS (little-endian) to a frame.
pub fn append_fcs(frame: &[u8]) -> Vec<u8> {
    let mut out = frame.to_vec();
    out.extend_from_slice(&fcs16(frame).to_le_bytes());
    out
}

/// Checks and strips a trailing FCS; returns the payload on success.
pub fn check_and_strip_fcs(frame_with_fcs: &[u8]) -> Option<&[u8]> {
    if frame_with_fcs.len() < 2 {
        return None;
    }
    let (body, fcs) = frame_with_fcs.split_at(frame_with_fcs.len() - 2);
    let expect = fcs16(body).to_le_bytes();
    (fcs == expect).then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn kermit_check_value() {
        assert_eq!(fcs16(b"123456789"), 0x2189);
    }

    #[test]
    fn empty_frame_fcs_is_zero() {
        assert_eq!(fcs16(&[]), 0x0000);
    }

    #[test]
    fn append_then_check_round_trip() {
        let frame = vec![0x41, 0x88, 0x01, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0xAB];
        let with = append_fcs(&frame);
        assert_eq!(with.len(), frame.len() + 2);
        assert_eq!(check_and_strip_fcs(&with), Some(frame.as_slice()));
    }

    #[test]
    fn corruption_detected() {
        let with = append_fcs(&[1, 2, 3, 4]);
        for byte in 0..with.len() {
            for bit in 0..8 {
                let mut bad = with.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    check_and_strip_fcs(&bad).is_none(),
                    "flip byte {byte} bit {bit} passed"
                );
            }
        }
    }

    #[test]
    fn too_short_rejected() {
        assert!(check_and_strip_fcs(&[]).is_none());
        assert!(check_and_strip_fcs(&[0x00]).is_none());
    }

    proptest! {
        #[test]
        fn prop_round_trip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let with = append_fcs(&data);
            prop_assert_eq!(check_and_strip_fcs(&with), Some(data.as_slice()));
        }

        #[test]
        fn prop_linearity(a in proptest::collection::vec(any::<u8>(), 16),
                          b in proptest::collection::vec(any::<u8>(), 16)) {
            let x: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
            prop_assert_eq!(fcs16(&a) ^ fcs16(&b), fcs16(&x));
        }
    }
}
