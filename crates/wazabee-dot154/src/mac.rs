//! 802.15.4 MAC-layer frames: frame control, addressing, and the frame kinds
//! the attack scenarios need (data, ack, beacon, MAC commands).

use serde::{Deserialize, Serialize};

/// MAC frame type (frame-control bits 0–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum FrameType {
    /// Beacon frame.
    Beacon = 0,
    /// Data frame.
    Data = 1,
    /// Acknowledgement frame.
    Ack = 2,
    /// MAC command frame.
    MacCommand = 3,
}

impl FrameType {
    fn from_bits(v: u16) -> Option<Self> {
        Some(match v & 0x7 {
            0 => FrameType::Beacon,
            1 => FrameType::Data,
            2 => FrameType::Ack,
            3 => FrameType::MacCommand,
            _ => return None,
        })
    }
}

/// MAC command identifiers (first payload byte of a command frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MacCommandId {
    /// Association request.
    AssociationRequest = 0x01,
    /// Association response.
    AssociationResponse = 0x02,
    /// Disassociation notification.
    DisassociationNotification = 0x03,
    /// Data request.
    DataRequest = 0x04,
    /// PAN-ID conflict notification.
    PanIdConflict = 0x05,
    /// Orphan notification.
    OrphanNotification = 0x06,
    /// Beacon request — the probe Scenario B's active scan transmits.
    BeaconRequest = 0x07,
    /// Coordinator realignment.
    CoordinatorRealignment = 0x08,
    /// GTS request.
    GtsRequest = 0x09,
}

impl MacCommandId {
    /// Parses a command identifier byte.
    pub fn from_byte(v: u8) -> Option<Self> {
        Some(match v {
            0x01 => MacCommandId::AssociationRequest,
            0x02 => MacCommandId::AssociationResponse,
            0x03 => MacCommandId::DisassociationNotification,
            0x04 => MacCommandId::DataRequest,
            0x05 => MacCommandId::PanIdConflict,
            0x06 => MacCommandId::OrphanNotification,
            0x07 => MacCommandId::BeaconRequest,
            0x08 => MacCommandId::CoordinatorRealignment,
            0x09 => MacCommandId::GtsRequest,
            _ => return None,
        })
    }
}

/// A MAC address: absent, 16-bit short, or 64-bit extended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Address {
    /// No address present.
    None,
    /// 16-bit short address.
    Short(u16),
    /// 64-bit extended (EUI-64) address.
    Extended(u64),
}

impl Address {
    fn mode_bits(self) -> u16 {
        match self {
            Address::None => 0,
            Address::Short(_) => 2,
            Address::Extended(_) => 3,
        }
    }

    fn write(self, out: &mut Vec<u8>) {
        match self {
            Address::None => {}
            Address::Short(a) => out.extend_from_slice(&a.to_le_bytes()),
            Address::Extended(a) => out.extend_from_slice(&a.to_le_bytes()),
        }
    }

    fn read(mode: u16, bytes: &[u8], at: &mut usize) -> Option<Address> {
        match mode {
            0 => Some(Address::None),
            2 => {
                let v = u16::from_le_bytes(bytes.get(*at..*at + 2)?.try_into().ok()?);
                *at += 2;
                Some(Address::Short(v))
            }
            3 => {
                let v = u64::from_le_bytes(bytes.get(*at..*at + 8)?.try_into().ok()?);
                *at += 8;
                Some(Address::Extended(v))
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Address::None => write!(f, "-"),
            Address::Short(a) => write!(f, "0x{a:04X}"),
            Address::Extended(a) => write!(f, "0x{a:016X}"),
        }
    }
}

/// The broadcast PAN identifier.
pub const BROADCAST_PAN: u16 = 0xFFFF;
/// The broadcast short address.
pub const BROADCAST_SHORT: u16 = 0xFFFF;

/// A parsed (or to-be-serialised) MAC frame, excluding the FCS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacFrame {
    /// Frame type.
    pub frame_type: FrameType,
    /// Acknowledgement requested.
    pub ack_request: bool,
    /// PAN-ID compression: the source PAN equals the destination PAN and is
    /// omitted on air.
    pub pan_id_compression: bool,
    /// Sequence number.
    pub sequence: u8,
    /// Destination PAN (present when a destination address is).
    pub dest_pan: Option<u16>,
    /// Destination address.
    pub dest: Address,
    /// Source PAN (omitted under PAN-ID compression).
    pub src_pan: Option<u16>,
    /// Source address.
    pub src: Address,
    /// MAC payload.
    pub payload: Vec<u8>,
}

impl MacFrame {
    /// Builds an intra-PAN data frame with short addressing (the common case
    /// in the paper's testbed network).
    pub fn data(pan: u16, src: u16, dest: u16, seq: u8, payload: Vec<u8>) -> Self {
        MacFrame {
            frame_type: FrameType::Data,
            ack_request: true,
            pan_id_compression: true,
            sequence: seq,
            dest_pan: Some(pan),
            dest: Address::Short(dest),
            src_pan: None,
            src: Address::Short(src),
            payload,
        }
    }

    /// Builds an acknowledgement frame for a sequence number.
    pub fn ack(seq: u8) -> Self {
        MacFrame {
            frame_type: FrameType::Ack,
            ack_request: false,
            pan_id_compression: false,
            sequence: seq,
            dest_pan: None,
            dest: Address::None,
            src_pan: None,
            src: Address::None,
            payload: Vec::new(),
        }
    }

    /// Builds the broadcast beacon-request command used by active scanning
    /// (Scenario B step 1).
    pub fn beacon_request(seq: u8) -> Self {
        MacFrame {
            frame_type: FrameType::MacCommand,
            ack_request: false,
            pan_id_compression: false,
            sequence: seq,
            dest_pan: Some(BROADCAST_PAN),
            dest: Address::Short(BROADCAST_SHORT),
            src_pan: None,
            src: Address::None,
            payload: vec![MacCommandId::BeaconRequest as u8],
        }
    }

    /// Builds a beacon frame advertising a coordinator on `pan`.
    ///
    /// The payload carries the 2-byte superframe specification (we use the
    /// beacon-enabled-free value 0xCFFF: association permitted, coordinator)
    /// followed by empty GTS/pending fields and the beacon payload.
    pub fn beacon(pan: u16, coordinator: u16, seq: u8, beacon_payload: Vec<u8>) -> Self {
        let mut payload = vec![0xFF, 0xCF, 0x00, 0x00];
        payload.extend(beacon_payload);
        MacFrame {
            frame_type: FrameType::Beacon,
            ack_request: false,
            pan_id_compression: false,
            sequence: seq,
            dest_pan: None,
            dest: Address::None,
            src_pan: Some(pan),
            src: Address::Short(coordinator),
            payload,
        }
    }

    /// The MAC command identifier, for command frames with a payload.
    pub fn command_id(&self) -> Option<MacCommandId> {
        if self.frame_type != FrameType::MacCommand {
            return None;
        }
        MacCommandId::from_byte(*self.payload.first()?)
    }

    /// Serialises the frame (MHR + payload, no FCS).
    pub fn to_bytes(&self) -> Vec<u8> {
        let fc: u16 = (self.frame_type as u16)
            | (u16::from(self.ack_request) << 5)
            | (u16::from(self.pan_id_compression) << 6)
            | (self.dest.mode_bits() << 10)
            | (self.src.mode_bits() << 14);
        let mut out = Vec::with_capacity(11 + self.payload.len());
        out.extend_from_slice(&fc.to_le_bytes());
        out.push(self.sequence);
        if self.dest != Address::None {
            out.extend_from_slice(&self.dest_pan.unwrap_or(BROADCAST_PAN).to_le_bytes());
            self.dest.write(&mut out);
        }
        if self.src != Address::None {
            if !self.pan_id_compression {
                out.extend_from_slice(&self.src_pan.unwrap_or(BROADCAST_PAN).to_le_bytes());
            }
            self.src.write(&mut out);
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Serialises the frame and appends its FCS — ready for a PPDU.
    pub fn to_psdu(&self) -> Vec<u8> {
        crate::fcs::append_fcs(&self.to_bytes())
    }

    /// Parses a frame from MHR+payload bytes (no FCS).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 3 {
            return None;
        }
        let fc = u16::from_le_bytes([bytes[0], bytes[1]]);
        let frame_type = FrameType::from_bits(fc)?;
        let ack_request = fc & (1 << 5) != 0;
        let pan_id_compression = fc & (1 << 6) != 0;
        let dest_mode = (fc >> 10) & 0x3;
        let src_mode = (fc >> 14) & 0x3;
        let sequence = bytes[2];
        let mut at = 3usize;
        let mut dest_pan = None;
        if dest_mode != 0 {
            dest_pan = Some(u16::from_le_bytes(bytes.get(at..at + 2)?.try_into().ok()?));
            at += 2;
        }
        let dest = Address::read(dest_mode, bytes, &mut at)?;
        let mut src_pan = None;
        if src_mode != 0 && !pan_id_compression {
            src_pan = Some(u16::from_le_bytes(bytes.get(at..at + 2)?.try_into().ok()?));
            at += 2;
        }
        let src = Address::read(src_mode, bytes, &mut at)?;
        Some(MacFrame {
            frame_type,
            ack_request,
            pan_id_compression,
            sequence,
            dest_pan,
            dest,
            src_pan,
            src,
            payload: bytes[at..].to_vec(),
        })
    }

    /// Parses a frame from a PSDU (MHR + payload + FCS), verifying the FCS.
    pub fn from_psdu(psdu: &[u8]) -> Option<Self> {
        Self::from_bytes(crate::fcs::check_and_strip_fcs(psdu)?)
    }

    /// Effective source PAN: the explicit one, or the destination PAN under
    /// compression.
    pub fn effective_src_pan(&self) -> Option<u16> {
        self.src_pan.or(if self.pan_id_compression {
            self.dest_pan
        } else {
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn data_frame_round_trip() {
        let f = MacFrame::data(0x1234, 0x0063, 0x0042, 7, vec![0xAB, 0xCD]);
        let parsed = MacFrame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(parsed, f);
        assert_eq!(parsed.effective_src_pan(), Some(0x1234));
    }

    #[test]
    fn psdu_round_trip_with_fcs() {
        let f = MacFrame::data(0x1234, 0x0063, 0x0042, 1, vec![42]);
        let psdu = f.to_psdu();
        assert_eq!(MacFrame::from_psdu(&psdu), Some(f));
        let mut bad = psdu.clone();
        bad[0] ^= 0x01;
        assert_eq!(MacFrame::from_psdu(&bad), None);
    }

    #[test]
    fn ack_is_minimal() {
        let f = MacFrame::ack(9);
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), 3); // frame control + sequence only
        assert_eq!(MacFrame::from_bytes(&bytes), Some(f));
    }

    #[test]
    fn beacon_request_is_broadcast_command() {
        let f = MacFrame::beacon_request(3);
        assert_eq!(f.command_id(), Some(MacCommandId::BeaconRequest));
        assert_eq!(f.dest, Address::Short(BROADCAST_SHORT));
        assert_eq!(f.dest_pan, Some(BROADCAST_PAN));
        let parsed = MacFrame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn beacon_carries_pan_and_coordinator() {
        let f = MacFrame::beacon(0x1234, 0x0042, 11, vec![1, 2]);
        let parsed = MacFrame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(parsed.frame_type, FrameType::Beacon);
        assert_eq!(parsed.src_pan, Some(0x1234));
        assert_eq!(parsed.src, Address::Short(0x0042));
        assert_eq!(&parsed.payload[4..], &[1, 2]);
    }

    #[test]
    fn extended_addresses_round_trip() {
        let f = MacFrame {
            frame_type: FrameType::Data,
            ack_request: false,
            pan_id_compression: false,
            sequence: 200,
            dest_pan: Some(0xBEEF),
            dest: Address::Extended(0x0011_2233_4455_6677),
            src_pan: Some(0xCAFE),
            src: Address::Extended(0x8899_AABB_CCDD_EEFF),
            payload: vec![5; 10],
        };
        assert_eq!(MacFrame::from_bytes(&f.to_bytes()), Some(f));
    }

    #[test]
    fn truncated_frames_rejected() {
        let f = MacFrame::data(0x1234, 1, 2, 3, vec![9, 9, 9]);
        let bytes = f.to_bytes();
        for cut in 0..9 {
            assert!(MacFrame::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn command_id_parsing() {
        for v in 1..=9u8 {
            assert!(MacCommandId::from_byte(v).is_some());
        }
        assert!(MacCommandId::from_byte(0).is_none());
        assert!(MacCommandId::from_byte(0x0A).is_none());
        // Non-command frames have no command id.
        assert_eq!(MacFrame::ack(0).command_id(), None);
    }

    #[test]
    fn address_display() {
        assert_eq!(format!("{}", Address::Short(0x63)), "0x0063");
        assert_eq!(format!("{}", Address::None), "-");
    }

    proptest! {
        #[test]
        fn prop_data_frame_round_trip(
            pan in any::<u16>(), src in any::<u16>(), dest in any::<u16>(),
            seq in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..80),
        ) {
            let f = MacFrame::data(pan, src, dest, seq, payload);
            prop_assert_eq!(MacFrame::from_bytes(&f.to_bytes()), Some(f));
        }

        #[test]
        fn prop_psdu_never_panics_on_garbage(
            bytes in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let _ = MacFrame::from_psdu(&bytes);
            let _ = MacFrame::from_bytes(&bytes);
        }
    }
}
