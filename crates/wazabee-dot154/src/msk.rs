//! The exact chip-domain ↔ MSK-domain mapping of O-QPSK with half-sine
//! pulse shaping (paper §IV-B/IV-C).
//!
//! Over each chip interval `[i·Tc, (i+1)·Tc]` the O-QPSK waveform's phase
//! ramps by exactly ±π/2; the direction depends only on the two chips whose
//! half-sine pulses overlap the interval and on the rail parity:
//!
//! ```text
//! m_i = c_{i-1} ⊕ c_i ⊕ (i odd ? 1 : 0)
//! ```
//!
//! where `m_i = 1` encodes a counter-clockwise (+π/2) rotation. A sequence of
//! `n` chips therefore maps to `n − 1` *internal* MSK bits — the paper's
//! "length n−1" observation — plus one boundary bit per junction with the
//! previous chip. These functions are the ground truth the paper's
//! Algorithm 1 is validated against in the `wazabee` crate.

/// Converts a chip stream to its internal MSK bits (`chips.len() − 1` bits).
///
/// `first_index_odd` says whether chip 0 of the slice sits at an odd global
/// chip position (i.e. on the Q rail). Frames start at index 0 (even).
///
/// # Examples
///
/// ```
/// use wazabee_dot154::msk::chips_to_msk;
/// // Chips 1,1 starting at an even position: interval 1 is odd-parity,
/// // equal chips → m = 1⊕1⊕1 = 1 (counter-clockwise).
/// assert_eq!(chips_to_msk(&[1, 1], false), vec![1]);
/// ```
pub fn chips_to_msk(chips: &[u8], first_index_odd: bool) -> Vec<u8> {
    if chips.len() < 2 {
        return Vec::new();
    }
    let base = usize::from(first_index_odd);
    chips
        .windows(2)
        .enumerate()
        .map(|(k, w)| {
            let i = base + k + 1; // global index of the interval's right chip
            (w[0] ^ w[1]) ^ (i as u8 & 1)
        })
        .collect()
}

/// The boundary MSK bit joining chip `prev` (at global index `right_index−1`)
/// to chip `next` (at `right_index`).
pub fn boundary_msk_bit(prev: u8, next: u8, right_index_odd: bool) -> u8 {
    (prev ^ next) ^ u8::from(right_index_odd)
}

/// Converts a full frame chip stream (starting at global index 0) to the
/// complete MSK bit stream a BLE-style FSK modulator must emit.
///
/// The stream has exactly `chips.len()` bits: one leading bit for the ramp
/// into chip 0 (computed against `virtual_prev_chip`, free for the
/// transmitter to choose) followed by the `chips.len() − 1` internal bits.
pub fn frame_chips_to_msk(chips: &[u8], virtual_prev_chip: u8) -> Vec<u8> {
    if chips.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(chips.len());
    out.push(boundary_msk_bit(virtual_prev_chip, chips[0], false));
    out.extend(chips_to_msk(chips, false));
    out
}

/// Reconstructs chips from MSK bits, given the chip preceding the first bit.
///
/// `bits[k]` is the transition into the chip at global index
/// `start_index + k`; reconstruction is the XOR recursion inverted:
/// `c_i = c_{i-1} ⊕ m_i ⊕ (i odd)`.
pub fn msk_to_chips(bits: &[u8], prev_chip: u8, start_index_odd: bool) -> Vec<u8> {
    let mut chips = Vec::with_capacity(bits.len());
    let mut prev = prev_chip & 1;
    let mut odd = start_index_odd;
    for &m in bits {
        let c = prev ^ (m & 1) ^ u8::from(odd);
        chips.push(c);
        prev = c;
        odd = !odd;
    }
    chips
}

/// The 31-bit internal MSK image of one 32-chip PN sequence placed at a
/// symbol boundary (its first chip at an even global index).
pub fn pn_msk_image(symbol: u8) -> Vec<u8> {
    chips_to_msk(crate::pn::pn_sequence(symbol), false)
}

/// All sixteen 31-bit MSK images, indexed by symbol — the correspondence
/// table of paper §IV-C, derived from the waveform rather than Algorithm 1.
pub fn msk_correspondence_table() -> [[u8; 31]; 16] {
    let mut table = [[0u8; 31]; 16];
    for (s, row) in table.iter_mut().enumerate() {
        let img = pn_msk_image(s as u8);
        row.copy_from_slice(&img);
    }
    table
}

/// The sixteen 31-bit MSK images packed LSB-first into `u32` words,
/// precomputed once — the fast-path despreading table.
pub fn msk_correspondence_table_packed() -> &'static [u32; 16] {
    static TABLE: std::sync::OnceLock<[u32; 16]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let table = msk_correspondence_table();
        std::array::from_fn(|s| wazabee_dsp::packed::pack_u32(&table[s]))
    })
}

/// Finds the symbol whose MSK image is closest (Hamming) to a received
/// 31-bit block; returns `(symbol, distance)`.
///
/// A thin shim over [`closest_symbol_msk_packed`]: the block is packed into
/// a `u32` and matched with sixteen XOR + `count_ones` operations. The
/// scalar byte-per-bit reference survives as [`closest_symbol_msk_scalar`].
///
/// # Panics
///
/// Panics if `bits` is not exactly 31 entries long.
pub fn closest_symbol_msk(bits: &[u8]) -> (u8, usize) {
    assert_eq!(bits.len(), 31, "expected a 31-bit internal MSK block");
    closest_symbol_msk_packed(wazabee_dsp::packed::pack_u32(bits))
}

/// Packed despreading against the waveform-exact MSK images: `block` holds
/// the 31 received bits LSB-first (bit 31 must be clear); returns
/// `(symbol, distance)`. This runs per received symbol on the hot receive
/// path — sixteen XOR + `count_ones` against the cached packed table.
pub fn closest_symbol_msk_packed(block: u32) -> (u8, usize) {
    let table = msk_correspondence_table_packed();
    let mut best = (0u8, usize::MAX);
    for (s, &row) in table.iter().enumerate() {
        let d = (block ^ row).count_ones() as usize;
        if d < best.1 {
            best = (s as u8, d);
        }
    }
    best
}

/// The scalar byte-per-bit reference implementation of
/// [`closest_symbol_msk`], kept for property tests and micro-benchmarks.
///
/// # Panics
///
/// Panics if `bits` is not exactly 31 entries long.
pub fn closest_symbol_msk_scalar(bits: &[u8]) -> (u8, usize) {
    assert_eq!(bits.len(), 31, "expected a 31-bit internal MSK block");
    static TABLE: std::sync::OnceLock<[[u8; 31]; 16]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(msk_correspondence_table);
    let mut best = (0u8, usize::MAX);
    for (s, row) in table.iter().enumerate() {
        let d = wazabee_dsp::bits::hamming(bits, row);
        if d < best.1 {
            best = (s as u8, d);
        }
    }
    best
}

/// Minimum pairwise Hamming distance between the sixteen 31-bit MSK images.
pub fn min_pairwise_msk_distance() -> usize {
    let table = msk_correspondence_table();
    let mut min = usize::MAX;
    for a in 0..16 {
        for b in (a + 1)..16 {
            min = min.min(wazabee_dsp::bits::hamming(&table[a], &table[b]));
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pn::{pn_sequence, PN_SEQUENCES};
    use proptest::prelude::*;

    #[test]
    fn two_chip_cases_match_hand_derivation() {
        // i=1 (odd interval): equal chips → CCW (1); differing → CW (0).
        assert_eq!(chips_to_msk(&[1, 1], false), vec![1]);
        assert_eq!(chips_to_msk(&[1, 0], false), vec![0]);
        // At odd start, interval index is even: equal chips → CW (0).
        assert_eq!(chips_to_msk(&[1, 1], true), vec![0]);
    }

    #[test]
    fn round_trip_chips_msk_chips() {
        let chips = pn_sequence(5);
        let msk = chips_to_msk(chips, false);
        let back = msk_to_chips(&msk, chips[0], true);
        assert_eq!(&back[..], &chips[1..]);
    }

    #[test]
    fn frame_stream_length_equals_chip_count() {
        let chips: Vec<u8> = PN_SEQUENCES[3].into_iter().chain(PN_SEQUENCES[9]).collect();
        let msk = frame_chips_to_msk(&chips, 0);
        assert_eq!(msk.len(), 64);
        // Reconstructing from the full stream recovers every chip.
        let back = msk_to_chips(&msk, 0, false);
        assert_eq!(back, chips);
    }

    #[test]
    fn images_are_31_bits_and_distinct() {
        let table = msk_correspondence_table();
        for a in 0..16 {
            for b in (a + 1)..16 {
                assert_ne!(table[a], table[b], "MSK images of {a} and {b} collide");
            }
        }
    }

    #[test]
    fn image_family_structure_follows_pn_structure() {
        // Conjugate symbols (s vs s+8) invert odd chips; in the MSK domain
        // that inverts *every* transition bit.
        let table = msk_correspondence_table();
        for s in 0..8usize {
            for (k, &bit) in table[s].iter().enumerate() {
                assert_eq!(bit ^ 1, table[s + 8][k], "symbol {s} bit {k}");
            }
        }
    }

    #[test]
    fn msk_min_distance_supports_hamming_despreading() {
        let d = min_pairwise_msk_distance();
        // Conjugate pairs are complementary (distance 31); the binding
        // constraint comes from rotations. The paper's attack relies on this
        // margin being comfortably positive.
        assert!(d >= 10, "MSK-domain d_min too small: {d}");
    }

    #[test]
    fn closest_symbol_corrects_errors_within_half_dmin() {
        let budget = (min_pairwise_msk_distance() - 1) / 2;
        for s in 0..16u8 {
            let mut img = pn_msk_image(s);
            for k in 0..budget {
                img[(k * 5) % 31] ^= 1;
            }
            assert_eq!(closest_symbol_msk(&img).0, s, "symbol {s}");
        }
    }

    #[test]
    fn packed_despreading_agrees_with_scalar() {
        // Every image, with an assortment of bitflips, decodes identically
        // through the scalar and packed paths.
        for s in 0..16u8 {
            let mut img = pn_msk_image(s);
            for flips in 0..6usize {
                assert_eq!(
                    closest_symbol_msk(&img),
                    closest_symbol_msk_scalar(&img),
                    "symbol {s} after {flips} flips"
                );
                img[(usize::from(s) + 7 * flips) % 31] ^= 1;
            }
        }
    }

    #[test]
    fn packed_table_matches_bit_table() {
        let packed = msk_correspondence_table_packed();
        let table = msk_correspondence_table();
        for s in 0..16usize {
            assert_eq!(packed[s], wazabee_dsp::packed::pack_u32(&table[s]), "{s}");
            assert_eq!(packed[s] >> 31, 0, "image {s} must fit in 31 bits");
        }
    }

    #[test]
    fn boundary_bit_parity() {
        assert_eq!(boundary_msk_bit(1, 1, true), 1);
        assert_eq!(boundary_msk_bit(1, 1, false), 0);
        assert_eq!(boundary_msk_bit(0, 1, false), 1);
    }

    proptest! {
        #[test]
        fn prop_round_trip_arbitrary_chips(
            chips in proptest::collection::vec(0u8..=1, 2..200),
            prev in 0u8..=1,
        ) {
            let msk = frame_chips_to_msk(&chips, prev);
            let back = msk_to_chips(&msk, prev, false);
            prop_assert_eq!(back, chips);
        }

        #[test]
        fn prop_complementing_chips_preserves_internal_msk(
            chips in proptest::collection::vec(0u8..=1, 2..100),
        ) {
            // The internal MSK image only sees chip differences, so the
            // complemented chip stream has the same image.
            let comp: Vec<u8> = chips.iter().map(|c| c ^ 1).collect();
            prop_assert_eq!(chips_to_msk(&chips, false), chips_to_msk(&comp, false));
        }

        #[test]
        fn prop_concatenation_is_images_plus_boundary(
            a in 0u8..16, b in 0u8..16,
        ) {
            // The MSK stream of two concatenated symbols is image(a) ·
            // boundary · image(b).
            let chips: Vec<u8> = pn_sequence(a).iter().chain(pn_sequence(b)).copied().collect();
            let msk = chips_to_msk(&chips, false);
            prop_assert_eq!(&msk[..31], &pn_msk_image(a)[..]);
            prop_assert_eq!(&msk[32..], &pn_msk_image(b)[..]);
            let boundary = boundary_msk_bit(pn_sequence(a)[31], pn_sequence(b)[0], false);
            prop_assert_eq!(msk[31], boundary);
        }
    }
}
