//! O-QPSK modulation with half-sine pulse shaping (paper §III-C, Figures 2–3)
//! and a coherent chip-domain receiver.
//!
//! Even chips ride the in-phase rail, odd chips the quadrature rail delayed by
//! one chip period `Tb`; each chip is a half-sine pulse spanning `2·Tb`. The
//! resulting waveform has a constant envelope and a continuous phase that
//! moves by exactly ±π/2 per chip period — i.e. it *is* MSK, which is the
//! entire basis of the WazaBee attack.

use wazabee_dsp::halfsine::{half_sine_pulse, half_sine_pulse_f32};
use wazabee_dsp::iq::Iq;
use wazabee_dsp::IqBuf;

/// Modulates a chip stream (0/1 values) to complex baseband at
/// `samples_per_chip` oversampling.
///
/// Output spans `(chips.len() + 1) · samples_per_chip` samples: the final
/// odd-rail pulse extends one chip period past the last chip boundary.
///
/// # Panics
///
/// Panics if `samples_per_chip` is zero.
pub fn modulate_chips(chips: &[u8], samples_per_chip: usize) -> Vec<Iq> {
    assert!(samples_per_chip > 0, "need at least one sample per chip");
    let spc = samples_per_chip;
    let pulse = half_sine_pulse(spc);
    let n = (chips.len() + 1) * spc;
    let mut i_rail = vec![0.0f64; n];
    let mut q_rail = vec![0.0f64; n];
    for (k, &c) in chips.iter().enumerate() {
        let v = if c & 1 == 1 { 1.0 } else { -1.0 };
        let rail = if k % 2 == 0 { &mut i_rail } else { &mut q_rail };
        let base = k * spc;
        for (j, &p) in pulse.iter().enumerate() {
            if base + j < n {
                rail[base + j] += v * p;
            }
        }
    }
    i_rail
        .into_iter()
        .zip(q_rail)
        .map(|(i, q)| Iq::new(i, q))
        .collect()
}

/// Planar form of [`modulate_chips`]: the even/odd chip rails *are* the I/Q
/// rails of an [`IqBuf`], so O-QPSK modulation is naturally planar — each
/// half-sine pulse placement is one SIMD [`wazabee_dsp::simd::axpy`] on a
/// single rail and the two rails never interleave.
///
/// The default transmit path stays `f64` (the committed waveform artifacts
/// pin it); this is the kernel the planar pipeline benchmarks and the parity
/// tests exercise.
///
/// # Panics
///
/// Panics if `samples_per_chip` is zero.
pub fn modulate_chips_planar(chips: &[u8], samples_per_chip: usize) -> IqBuf {
    assert!(samples_per_chip > 0, "need at least one sample per chip");
    let spc = samples_per_chip;
    let pulse = half_sine_pulse_f32(spc);
    let n = (chips.len() + 1) * spc;
    let mut buf = IqBuf::new();
    buf.resize(n);
    let (i_rail, q_rail) = buf.rails_mut();
    for (k, &c) in chips.iter().enumerate() {
        let v = if c & 1 == 1 { 1.0f32 } else { -1.0f32 };
        let rail: &mut [f32] = if k % 2 == 0 { i_rail } else { q_rail };
        let base = k * spc;
        let span = pulse.len().min(n - base);
        wazabee_dsp::simd::axpy(&mut rail[base..base + span], &pulse[..span], v);
    }
    buf
}

/// Time-domain traces of one O-QPSK modulation — the data behind paper
/// Figure 2.
#[derive(Debug, Clone)]
pub struct OqpskTraces {
    /// The rectangular modulating chip signal m(t) (±1 per chip period).
    pub m: Vec<f64>,
    /// In-phase rail I(t) (half-sine pulses, even chips).
    pub i: Vec<f64>,
    /// Quadrature rail Q(t) (half-sine pulses, odd chips, delayed Tb).
    pub q: Vec<f64>,
    /// The signal envelope |s(t)|.
    pub envelope: Vec<f64>,
    /// Unwrapped phase of s(t) in radians.
    pub phase: Vec<f64>,
}

/// Computes the Figure 2 traces for a chip pattern.
pub fn traces(chips: &[u8], samples_per_chip: usize) -> OqpskTraces {
    let samples = modulate_chips(chips, samples_per_chip);
    let m: Vec<f64> = chips
        .iter()
        .flat_map(|&c| std::iter::repeat_n(if c & 1 == 1 { 1.0 } else { -1.0 }, samples_per_chip))
        .collect();
    let i: Vec<f64> = samples.iter().map(|s| s.i).collect();
    let q: Vec<f64> = samples.iter().map(|s| s.q).collect();
    let envelope: Vec<f64> = samples.iter().map(|s| s.amplitude()).collect();
    let phase = wazabee_dsp::discriminator::phase_trajectory(&samples);
    OqpskTraces {
        m,
        i,
        q,
        envelope,
        phase,
    }
}

/// A coherent O-QPSK receiver: synchronises on a known chip template via
/// complex correlation (recovering timing *and* carrier phase), derotates,
/// matched-filters both rails and slices hard chips.
///
/// This is the "true" 802.15.4 demodulator used to show that WazaBee's
/// GFSK-generated waveform really decodes on a standards-style receiver —
/// not merely on another FSK discriminator.
#[derive(Debug, Clone)]
pub struct CoherentReceiver {
    samples_per_chip: usize,
}

/// Result of coherent synchronisation.
#[derive(Debug, Clone, Copy)]
pub struct CoherentSync {
    /// Sample index where the template alignment peaked.
    pub sample_index: usize,
    /// Estimated carrier phase in radians.
    pub carrier_phase: f64,
    /// Normalised correlation magnitude at the peak (≈1 for a clean match).
    pub quality: f64,
}

impl CoherentReceiver {
    /// Creates a receiver at the given oversampling.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_chip` is zero.
    pub fn new(samples_per_chip: usize) -> Self {
        assert!(samples_per_chip > 0, "need at least one sample per chip");
        CoherentReceiver { samples_per_chip }
    }

    /// Correlates `rx` against the waveform of `template_chips`, returning
    /// the best alignment if its quality reaches `min_quality` (0..1).
    pub fn synchronize(
        &self,
        rx: &[Iq],
        template_chips: &[u8],
        min_quality: f64,
    ) -> Option<CoherentSync> {
        let template = modulate_chips(template_chips, self.samples_per_chip);
        if rx.len() < template.len() || template.is_empty() {
            return None;
        }
        let energy: f64 = template.iter().map(|s| s.power()).sum();
        let mut best: Option<CoherentSync> = None;
        for lag in 0..=rx.len() - template.len() {
            let mut acc = Iq::ZERO;
            for (k, t) in template.iter().enumerate() {
                acc += rx[lag + k] * t.conj();
            }
            let quality = acc.amplitude() / energy;
            if best.is_none_or(|b| quality > b.quality) {
                best = Some(CoherentSync {
                    sample_index: lag,
                    carrier_phase: acc.phase(),
                    quality,
                });
            }
        }
        best.filter(|b| b.quality >= min_quality)
    }

    /// Demodulates hard chips from `rx`, assuming chip 0 begins at
    /// `sync.sample_index` with carrier phase `sync.carrier_phase`.
    ///
    /// Each rail is matched-filtered with the half-sine pulse centred on its
    /// chip and sliced by sign.
    pub fn demodulate_chips(&self, rx: &[Iq], sync: &CoherentSync, max_chips: usize) -> Vec<u8> {
        let spc = self.samples_per_chip;
        let pulse = half_sine_pulse(spc);
        let derot = Iq::from_polar(1.0, -sync.carrier_phase);
        let mut chips = Vec::new();
        for k in 0..max_chips {
            let base = sync.sample_index + k * spc;
            if base + pulse.len() > rx.len() {
                break;
            }
            let mut acc = 0.0;
            for (j, &p) in pulse.iter().enumerate() {
                let s = rx[base + j] * derot;
                let rail = if k % 2 == 0 { s.i } else { s.q };
                acc += rail * p;
            }
            chips.push(u8::from(acc >= 0.0));
        }
        chips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsss::spread_bytes;
    use crate::msk::frame_chips_to_msk;
    use wazabee_dsp::AwgnSource;

    #[test]
    fn constant_envelope_in_steady_state() {
        // Paper §III-C: the amplitude of the envelope remains constant.
        let chips: Vec<u8> = (0..64).map(|k| (k * 7 % 3 == 0) as u8).collect();
        let samples = modulate_chips(&chips, 16);
        let spc = 16;
        // Skip the ramp-in/out (first and last chip period).
        for s in &samples[spc..samples.len() - 2 * spc] {
            assert!(
                (s.amplitude() - 1.0).abs() < 1e-9,
                "envelope broke: {}",
                s.amplitude()
            );
        }
    }

    #[test]
    fn phase_moves_quarter_pi_per_chip() {
        let chips = [1u8, 1, 0, 1, 0, 0, 1, 0];
        let spc = 16;
        let samples = modulate_chips(&chips, spc);
        let phase = wazabee_dsp::discriminator::phase_trajectory(&samples);
        // Between consecutive chip-boundary samples the phase changes ±π/2.
        for k in 1..chips.len() {
            let d = phase[(k + 1) * spc] - phase[k * spc];
            assert!(
                (d.abs() - std::f64::consts::FRAC_PI_2).abs() < 1e-6,
                "chip {k}: phase step {d}"
            );
        }
    }

    #[test]
    fn phase_direction_matches_msk_mapping() {
        // The waveform's per-chip rotation must equal the closed-form MSK
        // bits — the keystone of the whole attack.
        let chips = spread_bytes(&[0x42, 0x13]);
        let spc = 8;
        let samples = modulate_chips(&chips, spc);
        let phase = wazabee_dsp::discriminator::phase_trajectory(&samples);
        let msk = frame_chips_to_msk(&chips, 0);
        // Interval i spans samples [i·spc, (i+1)·spc]; skip i = 0 whose
        // direction depends on the modulator's ramp-in convention.
        for (i, &m) in msk.iter().enumerate().skip(1) {
            let d = phase[(i + 1) * spc] - phase[i * spc];
            let expect = if m == 1 { 1.0 } else { -1.0 } * std::f64::consts::FRAC_PI_2;
            assert!(
                (d - expect).abs() < 1e-6,
                "interval {i}: phase {d}, msk bit {m}"
            );
        }
    }

    #[test]
    fn traces_have_half_sine_rails() {
        let t = traces(&[1, 1, 1, 1], 32);
        // I rail peaks at chip centres of even chips (t = Tb, 3Tb, ...).
        assert!((t.i[32] - 1.0).abs() < 1e-9);
        assert!((t.q[64] - 1.0).abs() < 1e-9);
        assert_eq!(t.m.len(), 4 * 32);
        // Envelope constant once both rails are active.
        for &e in &t.envelope[32..4 * 32] {
            assert!((e - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn coherent_loopback_clean() {
        let psdu = vec![0xDE, 0xAD, 0xBE, 0xEF];
        let chips = spread_bytes(&psdu);
        let spc = 8;
        let samples = modulate_chips(&chips, spc);
        let rxr = CoherentReceiver::new(spc);
        let template = &chips[..64];
        let sync = rxr.synchronize(&samples, template, 0.5).unwrap();
        assert_eq!(sync.sample_index, 0);
        let decoded = rxr.demodulate_chips(&samples, &sync, chips.len());
        assert_eq!(decoded, chips);
    }

    #[test]
    fn coherent_recovers_carrier_phase() {
        let chips = spread_bytes(&[0x77, 0x11, 0x22]);
        let spc = 8;
        let phase_offset = 1.1;
        let samples: Vec<Iq> = modulate_chips(&chips, spc)
            .into_iter()
            .map(|s| s.rotate(phase_offset))
            .collect();
        let rxr = CoherentReceiver::new(spc);
        let sync = rxr.synchronize(&samples, &chips[..64], 0.5).unwrap();
        assert!(
            (sync.carrier_phase - phase_offset).abs() < 0.05,
            "estimated {}",
            sync.carrier_phase
        );
        let decoded = rxr.demodulate_chips(&samples, &sync, chips.len());
        assert_eq!(decoded, chips);
    }

    #[test]
    fn coherent_survives_noise() {
        // Non-repeating payload so the sync template has a unique alignment.
        let chips = spread_bytes(&[0x10, 0x32, 0x54, 0x76, 0x98, 0xBA]);
        let spc = 8;
        let mut samples = modulate_chips(&chips, spc);
        AwgnSource::from_snr_db(3, 8.0, 1.0).add_to(&mut samples);
        let rxr = CoherentReceiver::new(spc);
        let sync = rxr.synchronize(&samples, &chips[..64], 0.3).unwrap();
        let decoded = rxr.demodulate_chips(&samples, &sync, chips.len());
        // A noisy sync may land a sample late and drop the final chip.
        let n = decoded.len().min(chips.len());
        assert!(n >= chips.len() - 1, "lost {} chips", chips.len() - n);
        let errors = wazabee_dsp::bits::hamming(&decoded[..n], &chips[..n]);
        assert!(
            errors < chips.len() / 20,
            "{errors}/{n} chip errors at 8 dB"
        );
    }

    #[test]
    fn sync_fails_below_quality_floor() {
        let spc = 8;
        let mut noise = vec![Iq::ZERO; 4096];
        AwgnSource::new(4, 0.5).add_to(&mut noise);
        let rxr = CoherentReceiver::new(spc);
        let template = spread_bytes(&[0x00]);
        assert!(rxr.synchronize(&noise, &template[..64], 0.6).is_none());
    }

    #[test]
    fn modulate_output_length() {
        assert_eq!(modulate_chips(&[1, 0, 1], 4).len(), 16);
        assert!(modulate_chips(&[], 4).len() == 4);
    }

    #[test]
    fn planar_modulation_tracks_interleaved() {
        let chips = spread_bytes(&[0xA5, 0x3C, 0xF0]);
        for spc in [1, 4, 8] {
            let f64_wave = modulate_chips(&chips, spc);
            let planar = modulate_chips_planar(&chips, spc);
            assert_eq!(planar.len(), f64_wave.len());
            for (k, s) in f64_wave.iter().enumerate() {
                let (pi, pq) = planar.get(k);
                assert!(
                    (pi as f64 - s.i).abs() < 1e-6 && (pq as f64 - s.q).abs() < 1e-6,
                    "spc {spc} sample {k}: planar ({pi}, {pq}) vs f64 ({}, {})",
                    s.i,
                    s.q
                );
            }
        }
    }
}
