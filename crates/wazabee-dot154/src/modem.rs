//! A complete 802.15.4 modem: PPDUs in, IQ out — and back.
//!
//! Transmission uses the standards O-QPSK half-sine modulator. The primary
//! receiver works in the *MSK view*: an FM discriminator recovers the per-chip
//! phase-rotation directions, the synchronisation header is found by pattern
//! correlation, and symbols are recovered by minimum-Hamming matching of the
//! 31-bit MSK images — phase-offset invariant and exactly the shape of
//! receiver the paper's attack drives (§IV-D). A coherent chip-domain
//! receiver lives in [`crate::oqpsk`] for cross-validation.

use wazabee_dsp::fir::integrate_and_dump;
use wazabee_dsp::iq::Iq;

use crate::channel::CHIPS_PER_SYMBOL;
use crate::dsss::symbols_to_bytes;
use crate::fcs::check_and_strip_fcs;
use crate::frame::{Ppdu, SHR_SYMBOLS};
use crate::msk::{chips_to_msk, closest_symbol_msk_packed};
use crate::oqpsk::modulate_chips;

/// Default sync-pattern error tolerance of [`Dot154Modem::receive`], in bits
/// out of the 319-bit SHR image.
pub const DEFAULT_MAX_SHR_ERRORS: usize = 32;

/// Mean discriminator output over (up to) the first 8192 samples, scaled to
/// Hz — a coarse carrier-frequency-offset figure recorded in decode traces.
/// Streamed: no intermediate discriminator vector is allocated.
fn estimate_cfo_hz(samples: &[Iq], sample_rate: f64) -> Option<f64> {
    const CFO_WINDOW: usize = 8192;
    let window = &samples[..samples.len().min(CFO_WINDOW)];
    let mean = wazabee_dsp::discriminator::mean_frequency(window)?;
    Some(mean * sample_rate / std::f64::consts::TAU)
}

/// A frame recovered from the air.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedPpdu {
    /// The recovered PSDU (MAC frame including FCS).
    pub psdu: Vec<u8>,
    /// Total chip-domain errors accumulated while despreading the PSDU.
    pub chip_errors: usize,
    /// Bit errors inside the synchronisation header pattern.
    pub shr_errors: usize,
}

impl ReceivedPpdu {
    /// Whether the trailing FCS validates.
    pub fn fcs_ok(&self) -> bool {
        check_and_strip_fcs(&self.psdu).is_some()
    }

    /// The MAC frame without its FCS, if the FCS validates.
    pub fn mac_frame(&self) -> Option<&[u8]> {
        check_and_strip_fcs(&self.psdu)
    }
}

/// An 802.15.4 physical-layer modem.
///
/// # Examples
///
/// ```
/// use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
///
/// let modem = Dot154Modem::new(8);
/// let psdu = append_fcs(&[0x01, 0x08, 0x42]);
/// let ppdu = Ppdu::new(psdu.clone()).unwrap();
/// let air = modem.transmit(&ppdu);
/// let rx = modem.receive(&air).unwrap();
/// assert_eq!(rx.psdu, psdu);
/// assert!(rx.fcs_ok());
/// ```
#[derive(Debug, Clone)]
pub struct Dot154Modem {
    samples_per_chip: usize,
    max_shr_errors: usize,
}

impl Dot154Modem {
    /// Creates a modem at the given oversampling factor.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_chip` is less than 2.
    pub fn new(samples_per_chip: usize) -> Self {
        assert!(samples_per_chip >= 2, "need at least 2 samples per chip");
        Dot154Modem {
            samples_per_chip,
            max_shr_errors: DEFAULT_MAX_SHR_ERRORS,
        }
    }

    /// Adjusts the SHR correlator tolerance (bits out of 319).
    pub fn with_max_shr_errors(mut self, max: usize) -> Self {
        self.max_shr_errors = max;
        self
    }

    /// Oversampling factor.
    pub fn samples_per_chip(&self) -> usize {
        self.samples_per_chip
    }

    /// Simulation sample rate in samples per second (chip rate × oversampling).
    pub fn sample_rate(&self) -> f64 {
        crate::channel::CHIP_RATE * self.samples_per_chip as f64
    }

    /// Modulates a PPDU to complex baseband.
    pub fn transmit(&self, ppdu: &Ppdu) -> Vec<Iq> {
        let _t = wazabee_telemetry::timed_scope!("dot154.oqpsk.modulate_ns");
        modulate_chips(&ppdu.to_chips(), self.samples_per_chip)
    }

    /// The 319-bit MSK image of the synchronisation header (preamble + SFD),
    /// used as the receiver's sync pattern. Computed once and cached — the
    /// receiver consults it on every frame.
    pub fn shr_msk_image() -> Vec<u8> {
        Self::shr_msk_image_packed().to_bits()
    }

    /// The SHR MSK image in word-packed form — the shape the receiver's
    /// correlator actually consumes. Computed once and cached.
    pub fn shr_msk_image_packed() -> &'static wazabee_dsp::PackedBits {
        static IMAGE: std::sync::OnceLock<wazabee_dsp::PackedBits> = std::sync::OnceLock::new();
        IMAGE.get_or_init(|| {
            let shr_chips = crate::dsss::spread_symbols(&Ppdu::shr_symbols());
            wazabee_dsp::PackedBits::from_bits(&chips_to_msk(&shr_chips, false))
        })
    }

    /// Demodulates per-chip MSK hard bits at a given sample offset.
    fn msk_bits_at_offset(&self, samples: &[Iq], offset: usize) -> Vec<u8> {
        let freq = wazabee_dsp::discriminator::discriminate(samples);
        if offset >= freq.len() {
            return Vec::new();
        }
        let per_chip = integrate_and_dump(&freq[offset..], self.samples_per_chip);
        wazabee_dsp::bits::nrz_to_bits(&per_chip)
    }

    /// Receives a frame using the MSK-view pipeline.
    ///
    /// Returns `None` when no synchronisation header is found or the stream
    /// ends before the announced PSDU completes. Every attempt emits a
    /// flight-recorder [`DecodeTrace`](wazabee_flightrec::DecodeTrace) when a
    /// recorder is installed.
    pub fn receive(&self, samples: &[Iq]) -> Option<ReceivedPpdu> {
        let mut tr = wazabee_flightrec::begin("dot154.rx");
        if tr.active() {
            tr.tap_iq(samples, self.sample_rate(), None);
            if let Some(cfo) = estimate_cfo_hz(samples, self.sample_rate()) {
                tr.cfo_hz(cfo);
            }
        }
        match self.receive_traced(samples, &mut tr) {
            Ok(rx) => {
                let ok = rx.fcs_ok();
                if ok {
                    wazabee_telemetry::counter!("dot154.fcs.ok").inc();
                } else {
                    wazabee_telemetry::counter!("dot154.fcs.fail").inc();
                    wazabee_telemetry::counter!("dot154.rx.fail.fcs").inc();
                }
                tr.deliver(&rx.psdu, ok, wazabee_flightrec::FrameKind::Dot154);
                Some(rx)
            }
            Err(failure) => {
                match failure {
                    wazabee_flightrec::RxFailure::NoSync => {
                        wazabee_telemetry::counter!("dot154.rx.fail.no_sync").inc()
                    }
                    _ => wazabee_telemetry::counter!("dot154.rx.fail.truncated").inc(),
                }
                tr.fail(failure);
                None
            }
        }
    }

    /// The MSK-view pipeline proper, reporting every outcome as a typed
    /// [`RxFailure`](wazabee_flightrec::RxFailure) and annotating the trace
    /// handle as it goes.
    fn receive_traced(
        &self,
        samples: &[Iq],
        tr: &mut wazabee_flightrec::TraceHandle,
    ) -> Result<ReceivedPpdu, wazabee_flightrec::RxFailure> {
        use wazabee_flightrec::RxFailure;
        let _t = wazabee_telemetry::timed_scope!("dot154.msk_rx_ns");
        let shr = Self::shr_msk_image_packed();
        let mut best: Option<(usize, wazabee_dsp::correlate::PatternMatch)> = None;
        let mut cached_bits: Option<wazabee_dsp::PackedBits> = None;
        for offset in 0..self.samples_per_chip {
            let bits =
                wazabee_dsp::PackedBits::from_bits(&self.msk_bits_at_offset(samples, offset));
            if let Some(m) =
                wazabee_dsp::packed::find_pattern_packed(&bits, shr, 0, self.max_shr_errors)
            {
                if best.as_ref().is_none_or(|(_, b)| m.errors < b.errors) {
                    best = Some((offset, m));
                    cached_bits = Some(bits);
                    if m.errors == 0 {
                        break;
                    }
                }
            }
        }
        match &best {
            Some((_, m)) => {
                wazabee_telemetry::counter!("dot154.sync.hit").inc();
                wazabee_telemetry::value_histogram!("dot154.shr_errors", 0.0, 64.0)
                    .record(m.errors as f64);
            }
            None => wazabee_telemetry::counter!("dot154.sync.miss").inc(),
        }
        let (offset, m) = best.ok_or(RxFailure::NoSync)?;
        tr.sync(m.errors, m.index, offset, shr.len());
        let bits = cached_bits.expect("bits cached with best match");
        // `m.index` is the stream position of MSK bit i = 1 (the first
        // internal transition of the frame). Symbol k's 31 internal bits sit
        // at stream positions m.index + 32k .. + 32k + 31, extracted straight
        // from the packed stream as one `u32` block.
        let symbol_block = |k: usize| -> Option<u32> {
            let start = m.index + 32 * k;
            let end = start + CHIPS_PER_SYMBOL - 1;
            (end <= bits.len()).then(|| bits.extract_u32(start, CHIPS_PER_SYMBOL - 1))
        };
        // PHR is the symbol pair right after the 10 SHR symbols.
        let phr_lo =
            closest_symbol_msk_packed(symbol_block(SHR_SYMBOLS).ok_or(RxFailure::TruncatedFrame)?);
        let phr_hi = closest_symbol_msk_packed(
            symbol_block(SHR_SYMBOLS + 1).ok_or(RxFailure::TruncatedFrame)?,
        );
        let psdu_len = usize::from((phr_hi.0 << 4) | phr_lo.0) & 0x7F;
        let mut symbols = Vec::with_capacity(psdu_len * 2);
        let mut chip_errors = phr_lo.1 + phr_hi.1;
        for k in 0..psdu_len * 2 {
            let block = symbol_block(SHR_SYMBOLS + 2 + k).ok_or(RxFailure::TruncatedFrame)?;
            let (sym, errs) = closest_symbol_msk_packed(block);
            tr.despread(errs);
            wazabee_telemetry::counter!("dot154.despread.symbols").inc();
            wazabee_telemetry::value_histogram!("dot154.despread_hamming", 0.0, 32.0)
                .record(errs as f64);
            symbols.push(sym);
            chip_errors += errs;
        }
        Ok(ReceivedPpdu {
            psdu: symbols_to_bytes(&symbols),
            chip_errors,
            shr_errors: m.errors,
        })
    }

    /// Receives a frame with the coherent chip-domain receiver of
    /// [`crate::oqpsk`] — slower, but it validates the waveform (not just the
    /// discriminator view).
    pub fn receive_coherent(&self, samples: &[Iq]) -> Option<ReceivedPpdu> {
        let shr_chips = crate::dsss::spread_symbols(&Ppdu::shr_symbols());
        let rxr = crate::oqpsk::CoherentReceiver::new(self.samples_per_chip);
        let sync = rxr.synchronize(samples, &shr_chips, 0.55)?;
        let max_chips = (samples.len() - sync.sample_index) / self.samples_per_chip;
        let chips = rxr.demodulate_chips(samples, &sync, max_chips);
        if chips.len() < (SHR_SYMBOLS + 2) * CHIPS_PER_SYMBOL {
            return None;
        }
        let payload_chips = &chips[SHR_SYMBOLS * CHIPS_PER_SYMBOL..];
        let head = crate::dsss::despread_chips(&payload_chips[..2 * CHIPS_PER_SYMBOL]);
        let psdu_len = usize::from((head[1].symbol << 4) | head[0].symbol) & 0x7F;
        let need = (2 + psdu_len * 2) * CHIPS_PER_SYMBOL;
        if payload_chips.len() < need {
            return None;
        }
        let (bytes, chip_errors) =
            crate::dsss::despread_to_bytes(&payload_chips[2 * CHIPS_PER_SYMBOL..need]);
        Some(ReceivedPpdu {
            psdu: bytes,
            chip_errors: chip_errors + head[0].chip_errors + head[1].chip_errors,
            shr_errors: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fcs::append_fcs;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use wazabee_dsp::AwgnSource;

    fn frame(seed: u64, payload: usize) -> Ppdu {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mac: Vec<u8> = (0..payload).map(|_| rng.gen()).collect();
        Ppdu::new(append_fcs(&mac)).unwrap()
    }

    #[test]
    fn loopback_clean() {
        let m = Dot154Modem::new(8);
        for (seed, payload) in [(1u64, 0usize), (2, 5), (3, 30), (4, 100)] {
            let ppdu = frame(seed, payload);
            let rx = m.receive(&m.transmit(&ppdu)).unwrap();
            assert_eq!(rx.psdu, ppdu.psdu(), "payload {payload}");
            assert_eq!(rx.chip_errors, 0);
            assert!(rx.fcs_ok());
        }
    }

    #[test]
    fn loopback_coherent_clean() {
        let m = Dot154Modem::new(8);
        let ppdu = frame(5, 24);
        let rx = m.receive_coherent(&m.transmit(&ppdu)).unwrap();
        assert_eq!(rx.psdu, ppdu.psdu());
        assert!(rx.fcs_ok());
    }

    #[test]
    fn both_receivers_agree_under_noise() {
        let m = Dot154Modem::new(8);
        let ppdu = frame(6, 20);
        let mut air = m.transmit(&ppdu);
        AwgnSource::from_snr_db(7, 10.0, 1.0).add_to(&mut air);
        let a = m.receive(&air).unwrap();
        let b = m.receive_coherent(&air).unwrap();
        assert_eq!(a.psdu, ppdu.psdu());
        assert_eq!(b.psdu, ppdu.psdu());
        assert!(a.fcs_ok() && b.fcs_ok());
    }

    #[test]
    fn receiver_locks_at_any_sample_phase() {
        let m = Dot154Modem::new(8);
        let ppdu = frame(8, 12);
        let air = m.transmit(&ppdu);
        for cut in [0usize, 1, 3, 5, 7, 11] {
            let rx = m.receive(&air[cut..]).unwrap();
            assert_eq!(rx.psdu, ppdu.psdu(), "cut {cut}");
        }
    }

    #[test]
    fn no_frame_in_noise() {
        let m = Dot154Modem::new(8);
        let mut noise = vec![Iq::ZERO; 30_000];
        AwgnSource::new(9, 0.7).add_to(&mut noise);
        assert!(m.receive(&noise).is_none());
    }

    #[test]
    fn truncated_frame_returns_none() {
        let m = Dot154Modem::new(8);
        let ppdu = frame(10, 40);
        let air = m.transmit(&ppdu);
        // Cut the buffer in the middle of the PSDU.
        let cut = air.len() * 2 / 3;
        assert!(m.receive(&air[..cut]).is_none());
    }

    #[test]
    fn corrupted_fcs_reported() {
        let m = Dot154Modem::new(8);
        let mut psdu = append_fcs(&[1, 2, 3, 4]);
        let last = psdu.len() - 1;
        psdu[last] ^= 0xFF; // break the FCS before modulation
        let ppdu = Ppdu::new(psdu.clone()).unwrap();
        let rx = m.receive(&m.transmit(&ppdu)).unwrap();
        assert_eq!(rx.psdu, psdu);
        assert!(!rx.fcs_ok());
        assert!(rx.mac_frame().is_none());
    }

    #[test]
    fn shr_image_has_expected_length() {
        // 10 symbols × 32 chips → 319 internal MSK bits.
        assert_eq!(Dot154Modem::shr_msk_image().len(), 319);
    }

    #[test]
    fn sample_rate() {
        assert_eq!(Dot154Modem::new(8).sample_rate(), 16.0e6);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn rejects_undersampling() {
        let _ = Dot154Modem::new(1);
    }
}

impl ReceivedPpdu {
    /// Link quality indicator in 0–255, derived from the chip-error rate of
    /// the despread PSDU (255 = error-free, 0 = at the correction limit of
    /// ≈ 8 errors per 32-chip symbol).
    pub fn lqi(&self) -> u8 {
        let symbols = (self.psdu.len() * 2 + 2).max(1); // + PHR
        let errors_per_symbol = self.chip_errors as f64 / symbols as f64;
        let quality = 1.0 - (errors_per_symbol / 8.0).min(1.0);
        (quality * 255.0).round() as u8
    }
}

#[cfg(test)]
mod lqi_tests {
    use super::*;

    #[test]
    fn clean_frame_has_max_lqi() {
        let r = ReceivedPpdu {
            psdu: vec![0; 10],
            chip_errors: 0,
            shr_errors: 0,
        };
        assert_eq!(r.lqi(), 255);
    }

    #[test]
    fn lqi_decreases_with_errors() {
        let mk = |e| ReceivedPpdu {
            psdu: vec![0; 10],
            chip_errors: e,
            shr_errors: 0,
        };
        assert!(mk(10).lqi() > mk(60).lqi());
        assert!(mk(60).lqi() > mk(150).lqi());
    }

    #[test]
    fn lqi_saturates_at_zero() {
        let r = ReceivedPpdu {
            psdu: vec![0; 2],
            chip_errors: 10_000,
            shr_errors: 0,
        };
        assert_eq!(r.lqi(), 0);
    }
}
