#![warn(missing_docs)]

//! # wazabee-dot154
//!
//! Bit-accurate IEEE 802.15.4 PHY and MAC substrate for the WazaBee
//! reproduction (Cayre et al., DSN 2021).
//!
//! Models the full transmit and receive chain of paper §III-C:
//!
//! * the 2.4 GHz channel plan ([`channel`]),
//! * the sixteen DSSS PN sequences of paper Table I ([`pn`]),
//! * spreading/despreading with minimum-Hamming symbol decisions ([`dsss`]),
//! * the exact O-QPSK-half-sine ↔ MSK correspondence ([`msk`]),
//! * O-QPSK modulation and a coherent chip-domain receiver ([`oqpsk`]),
//! * PPDU framing ([`frame`]), the FCS ([`fcs`]) and MAC frames ([`mac`]),
//! * a complete modem with an MSK-view reference receiver ([`modem`]).
//!
//! ## Example
//!
//! ```
//! use wazabee_dot154::{fcs::append_fcs, mac::MacFrame, Dot154Modem, Ppdu};
//!
//! // A sensor reading crossing a clean simulated channel.
//! let frame = MacFrame::data(0x1234, 0x0063, 0x0042, 1, vec![21]);
//! let ppdu = Ppdu::new(frame.to_psdu()).unwrap();
//! let modem = Dot154Modem::new(8);
//! let rx = modem.receive(&modem.transmit(&ppdu)).unwrap();
//! assert!(rx.fcs_ok());
//! assert_eq!(MacFrame::from_psdu(&rx.psdu), Some(frame));
//! ```

pub mod channel;
pub mod csma;
pub mod dsss;
pub mod fcs;
pub mod frame;
pub mod mac;
pub mod modem;
pub mod msk;
pub mod oqpsk;
pub mod pn;

pub use channel::Dot154Channel;
pub use csma::{CsmaBackoff, CsmaConfig, CsmaStep};
pub use frame::Ppdu;
pub use mac::MacFrame;
pub use modem::{Dot154Modem, ReceivedPpdu};
pub use pn::PN_SEQUENCES;
