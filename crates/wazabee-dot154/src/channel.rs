//! 802.15.4 channel plan in the 2.4 GHz ISM band (paper §III-C).
//!
//! Sixteen channels, numbered 11 to 26, each 2 MHz wide, spaced 5 MHz apart:
//! `fc = 2405 + 5·(k − 11)` MHz (paper equation 6).

use serde::{Deserialize, Serialize};

/// A validated 802.15.4 channel number (11–26).
///
/// # Examples
///
/// ```
/// use wazabee_dot154::Dot154Channel;
/// let ch = Dot154Channel::new(14).unwrap();
/// assert_eq!(ch.center_mhz(), 2420); // the channel of the paper's testbed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dot154Channel(u8);

impl Dot154Channel {
    /// First valid channel number.
    pub const MIN: u8 = 11;
    /// Last valid channel number.
    pub const MAX: u8 = 26;

    /// Creates a channel, rejecting numbers outside 11–26.
    pub fn new(number: u8) -> Option<Self> {
        (Self::MIN..=Self::MAX)
            .contains(&number)
            .then_some(Dot154Channel(number))
    }

    /// The channel number (11–26).
    pub fn number(self) -> u8 {
        self.0
    }

    /// Centre frequency in MHz (paper equation 6).
    pub fn center_mhz(self) -> u32 {
        2405 + 5 * (self.0 as u32 - 11)
    }

    /// Looks a channel up by centre frequency.
    pub fn from_center_mhz(freq_mhz: u32) -> Option<Self> {
        Self::all().find(|c| c.center_mhz() == freq_mhz)
    }

    /// Iterator over all 16 channels in ascending order.
    pub fn all() -> impl Iterator<Item = Dot154Channel> {
        (Self::MIN..=Self::MAX).map(Dot154Channel)
    }

    /// The next channel up, wrapping from 26 back to 11 (used by active
    /// scanning in Scenario B).
    pub fn next_wrapping(self) -> Dot154Channel {
        if self.0 == Self::MAX {
            Dot154Channel(Self::MIN)
        } else {
            Dot154Channel(self.0 + 1)
        }
    }
}

impl std::fmt::Display for Dot154Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "802.15.4 ch {} ({} MHz)", self.0, self.center_mhz())
    }
}

/// Chip rate in the 2.4 GHz band: 2 Mchip/s (paper §III-C).
pub const CHIP_RATE: f64 = 2.0e6;
/// PPDU bit rate before spreading: 250 kbit/s.
pub const BIT_RATE: f64 = 250.0e3;
/// Chips per 4-bit symbol.
pub const CHIPS_PER_SYMBOL: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_paper_equation_6() {
        for ch in Dot154Channel::all() {
            assert_eq!(ch.center_mhz(), 2405 + 5 * (ch.number() as u32 - 11));
        }
        assert_eq!(Dot154Channel::new(11).unwrap().center_mhz(), 2405);
        assert_eq!(Dot154Channel::new(26).unwrap().center_mhz(), 2480);
    }

    #[test]
    fn validation_bounds() {
        assert!(Dot154Channel::new(10).is_none());
        assert!(Dot154Channel::new(27).is_none());
        assert!(Dot154Channel::new(11).is_some());
        assert!(Dot154Channel::new(26).is_some());
    }

    #[test]
    fn sixteen_channels_spaced_5mhz() {
        let chans: Vec<_> = Dot154Channel::all().collect();
        assert_eq!(chans.len(), 16);
        for w in chans.windows(2) {
            assert_eq!(w[1].center_mhz() - w[0].center_mhz(), 5);
        }
    }

    #[test]
    fn from_center_round_trip() {
        for ch in Dot154Channel::all() {
            assert_eq!(Dot154Channel::from_center_mhz(ch.center_mhz()), Some(ch));
        }
        assert_eq!(Dot154Channel::from_center_mhz(2406), None);
    }

    #[test]
    fn scan_wrapping() {
        let mut ch = Dot154Channel::new(25).unwrap();
        ch = ch.next_wrapping();
        assert_eq!(ch.number(), 26);
        ch = ch.next_wrapping();
        assert_eq!(ch.number(), 11);
    }

    #[test]
    fn rate_constants() {
        assert_eq!(CHIP_RATE / BIT_RATE, 8.0); // 32 chips per 4 bits
        assert_eq!(CHIPS_PER_SYMBOL, 32);
    }
}
