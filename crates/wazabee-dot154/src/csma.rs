//! Unslotted CSMA/CA: the 802.15.4 medium-access discipline (std §6.2.5).
//!
//! The paper's attack scenarios play out on a *contended* channel — the
//! WazaBee injector keys up against legitimate Zigbee traffic that obeys
//! carrier sensing. This module provides the MAC-layer pieces a spectrum
//! simulator needs: the standard timing constants, a pure backoff state
//! machine (the caller supplies randomness and the clock), and frame-airtime
//! arithmetic derived from the 2.4 GHz PHY rates.
//!
//! The state machine is deliberately free of time and RNG state so it stays
//! deterministic under any event-driven driver: every random draw is an
//! input, every delay an output.

use crate::channel::CHIPS_PER_SYMBOL;
use crate::frame::SHR_SYMBOLS;

/// Symbol duration in the 2.4 GHz band: 32 chips at 2 Mchip/s = 16 µs.
pub const SYMBOL_US: u64 = 16;

/// `aUnitBackoffPeriod`: 20 symbols = 320 µs.
pub const UNIT_BACKOFF_US: u64 = 20 * SYMBOL_US;

/// CCA detection time: 8 symbols = 128 µs.
pub const CCA_US: u64 = 8 * SYMBOL_US;

/// `aTurnaroundTime`: RX/TX turnaround, 12 symbols = 192 µs.
pub const TURNAROUND_US: u64 = 12 * SYMBOL_US;

/// Airtime of an immediate acknowledgement (5-byte PSDU).
pub const ACK_AIRTIME_US: u64 = frame_airtime_us(5);

/// `macAckWaitDuration` rounded up to whole microseconds: turnaround plus
/// the ACK frame itself plus one unit backoff of slack.
pub const ACK_WAIT_US: u64 = TURNAROUND_US + ACK_AIRTIME_US + UNIT_BACKOFF_US;

/// Airtime of a full PPDU carrying `psdu_len` bytes: SHR (10 symbols) + PHR
/// (2 symbols) + 2 symbols per PSDU byte, at 16 µs per symbol.
pub const fn frame_airtime_us(psdu_len: usize) -> u64 {
    ((SHR_SYMBOLS + 2 + 2 * psdu_len) as u64) * SYMBOL_US
}

/// Samples spanned by a PPDU at `samples_per_chip` oversampling, including
/// the one-chip tail of the last Q-branch half-sine pulse (O-QPSK's
/// half-chip offset rounds up to a full chip of extra waveform).
pub const fn frame_samples(psdu_len: usize, samples_per_chip: usize) -> usize {
    ((SHR_SYMBOLS + 2 + 2 * psdu_len) * CHIPS_PER_SYMBOL + 1) * samples_per_chip
}

/// Configuration of the unslotted CSMA/CA algorithm and the retry policy
/// layered on top of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsmaConfig {
    /// `macMinBE`: initial backoff exponent.
    pub min_be: u8,
    /// `macMaxBE`: backoff exponent ceiling.
    pub max_be: u8,
    /// `macMaxCSMABackoffs`: CCA-busy tolerance before the attempt fails.
    pub max_csma_backoffs: u8,
    /// `macMaxFrameRetries`: retransmissions after a missed acknowledgement
    /// (or a channel-access failure) before the frame is abandoned.
    pub max_frame_retries: u8,
}

impl Default for CsmaConfig {
    fn default() -> Self {
        CsmaConfig {
            min_be: 3,
            max_be: 5,
            max_csma_backoffs: 4,
            max_frame_retries: 3,
        }
    }
}

/// What the state machine wants the driver to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsmaStep {
    /// Wait this many microseconds, then perform a CCA.
    Backoff(u64),
    /// Too many busy CCAs: this transmission attempt failed at channel
    /// access (`CHANNEL_ACCESS_FAILURE`).
    Failure,
}

/// One unslotted CSMA/CA attempt: NB/BE bookkeeping per std §6.2.5.1.
///
/// The driver calls [`CsmaBackoff::backoff`] to learn the delay before the
/// next CCA, performs the CCA itself (it owns the spectrum), and reports a
/// busy channel with [`CsmaBackoff::channel_busy`]. A clear CCA means the
/// frame transmits after `aTurnaroundTime`; the machine is then done.
///
/// # Examples
///
/// ```
/// use wazabee_dot154::csma::{CsmaBackoff, CsmaConfig, CsmaStep, UNIT_BACKOFF_US};
///
/// let mut csma = CsmaBackoff::new(CsmaConfig::default());
/// // First backoff draws from 0..2^3 unit periods.
/// let delay = csma.backoff(7);
/// assert_eq!(delay, 7 * UNIT_BACKOFF_US);
/// // The channel was busy: exponent grows, another backoff follows.
/// assert!(matches!(csma.channel_busy(11), CsmaStep::Backoff(_)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsmaBackoff {
    config: CsmaConfig,
    /// Number of busy CCAs so far (NB).
    nb: u8,
    /// Current backoff exponent (BE).
    be: u8,
}

impl CsmaBackoff {
    /// Starts a fresh attempt: NB = 0, BE = `macMinBE`.
    pub fn new(config: CsmaConfig) -> Self {
        CsmaBackoff {
            config,
            nb: 0,
            be: config.min_be,
        }
    }

    /// Number of busy CCAs observed in this attempt.
    pub fn busy_ccas(&self) -> u8 {
        self.nb
    }

    /// Current backoff exponent.
    pub fn exponent(&self) -> u8 {
        self.be
    }

    /// The backoff delay before the next CCA, in microseconds: `draw` is an
    /// unbounded random value the machine reduces modulo the `2^BE` window.
    pub fn backoff(&self, draw: u64) -> u64 {
        let window = 1u64 << self.be.min(15);
        (draw % window) * UNIT_BACKOFF_US
    }

    /// Reports a busy CCA. Returns the next step: another backoff (with the
    /// grown exponent already applied, reduced from `draw`), or failure when
    /// NB exceeds `macMaxCSMABackoffs`.
    pub fn channel_busy(&mut self, draw: u64) -> CsmaStep {
        self.nb += 1;
        self.be = (self.be + 1).min(self.config.max_be);
        if self.nb > self.config.max_csma_backoffs {
            CsmaStep::Failure
        } else {
            CsmaStep::Backoff(self.backoff(draw))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_the_standard() {
        assert_eq!(SYMBOL_US, 16);
        assert_eq!(UNIT_BACKOFF_US, 320);
        assert_eq!(CCA_US, 128);
        assert_eq!(TURNAROUND_US, 192);
    }

    #[test]
    fn airtime_of_known_frames() {
        // An ACK: 10 SHR + 2 PHR + 10 payload symbols = 22 × 16 µs.
        assert_eq!(frame_airtime_us(5), 352);
        assert_eq!(ACK_AIRTIME_US, 352);
        // The maximum PSDU: (12 + 254) symbols.
        assert_eq!(frame_airtime_us(127), 4256);
    }

    #[test]
    fn frame_samples_matches_modulator_output() {
        use crate::fcs::append_fcs;
        use crate::frame::Ppdu;
        use crate::Dot154Modem;
        let psdu = append_fcs(&[1, 2, 3, 4, 5, 6]);
        let air = Dot154Modem::new(8).transmit(&Ppdu::new(psdu.clone()).unwrap());
        assert_eq!(air.len(), frame_samples(psdu.len(), 8));
    }

    #[test]
    fn backoff_window_follows_exponent() {
        let mut csma = CsmaBackoff::new(CsmaConfig::default());
        // BE = 3: window is 0..8 unit periods.
        assert_eq!(csma.backoff(8), 0);
        assert_eq!(csma.backoff(9), UNIT_BACKOFF_US);
        // One busy CCA: BE = 4, window 0..16.
        csma.channel_busy(0);
        assert_eq!(csma.backoff(15), 15 * UNIT_BACKOFF_US);
        assert_eq!(csma.backoff(16), 0);
    }

    #[test]
    fn exponent_caps_at_max_be() {
        let mut csma = CsmaBackoff::new(CsmaConfig::default());
        csma.channel_busy(0);
        csma.channel_busy(0);
        csma.channel_busy(0);
        assert_eq!(csma.exponent(), 5);
    }

    #[test]
    fn fails_after_max_backoffs() {
        let cfg = CsmaConfig::default();
        let mut csma = CsmaBackoff::new(cfg);
        for _ in 0..cfg.max_csma_backoffs {
            assert!(matches!(csma.channel_busy(1), CsmaStep::Backoff(_)));
        }
        assert_eq!(csma.channel_busy(1), CsmaStep::Failure);
        assert_eq!(csma.busy_ccas(), cfg.max_csma_backoffs + 1);
    }

    #[test]
    fn fresh_attempt_resets_state() {
        let mut csma = CsmaBackoff::new(CsmaConfig::default());
        csma.channel_busy(0);
        let fresh = CsmaBackoff::new(CsmaConfig::default());
        assert_eq!(fresh.busy_ccas(), 0);
        assert_eq!(fresh.exponent(), 3);
        assert_ne!(csma.exponent(), fresh.exponent());
    }
}
