//! Direct Sequence Spread Spectrum: byte stream ↔ chip stream (paper §III-C).
//!
//! Each byte splits into two 4-bit symbols — least significant nibble first —
//! and each symbol is replaced by its 32-chip PN sequence. Despreading uses
//! minimum Hamming distance, exactly as the paper's reception primitive does,
//! which tolerates both modulation-approximation errors and channel bitflips.

use crate::channel::CHIPS_PER_SYMBOL;
use crate::pn::{closest_symbol, pn_sequence};

/// Splits bytes into 4-bit symbols, least significant nibble first.
pub fn bytes_to_symbols(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(b & 0x0F);
        out.push(b >> 4);
    }
    out
}

/// Packs 4-bit symbols back into bytes (LSB nibble first).
///
/// # Panics
///
/// Panics if the symbol count is odd.
pub fn symbols_to_bytes(symbols: &[u8]) -> Vec<u8> {
    assert!(symbols.len().is_multiple_of(2), "symbol count must be even");
    symbols
        .chunks_exact(2)
        .map(|p| (p[0] & 0x0F) | (p[1] << 4))
        .collect()
}

/// Spreads 4-bit symbols to chips.
///
/// # Panics
///
/// Panics if any symbol value exceeds 15.
pub fn spread_symbols(symbols: &[u8]) -> Vec<u8> {
    let mut chips = Vec::with_capacity(symbols.len() * CHIPS_PER_SYMBOL);
    for &s in symbols {
        assert!(s < 16, "symbol value {s} out of range");
        chips.extend_from_slice(pn_sequence(s));
    }
    chips
}

/// Spreads a byte stream straight to chips.
pub fn spread_bytes(bytes: &[u8]) -> Vec<u8> {
    spread_symbols(&bytes_to_symbols(bytes))
}

/// One despread symbol with its decoding confidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DespreadSymbol {
    /// The recovered 4-bit symbol.
    pub symbol: u8,
    /// Chip errors against the winning PN sequence.
    pub chip_errors: usize,
}

/// Despreads a chip stream into symbols by minimum-Hamming matching per
/// 32-chip block; trailing partial blocks are discarded.
pub fn despread_chips(chips: &[u8]) -> Vec<DespreadSymbol> {
    chips
        .chunks_exact(CHIPS_PER_SYMBOL)
        .map(|block| {
            let (symbol, chip_errors) = closest_symbol(block);
            DespreadSymbol {
                symbol,
                chip_errors,
            }
        })
        .collect()
}

/// Despreads a chip stream straight to bytes, also returning the total chip
/// error count (a link-quality indicator).
pub fn despread_to_bytes(chips: &[u8]) -> (Vec<u8>, usize) {
    let symbols = despread_chips(chips);
    let total_errors = symbols.iter().map(|s| s.chip_errors).sum();
    let mut values: Vec<u8> = symbols.iter().map(|s| s.symbol).collect();
    if values.len() % 2 == 1 {
        values.pop();
    }
    (symbols_to_bytes(&values), total_errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nibble_order_is_lsb_first() {
        assert_eq!(bytes_to_symbols(&[0xA7]), vec![0x7, 0xA]);
        assert_eq!(symbols_to_bytes(&[0x7, 0xA]), vec![0xA7]);
    }

    #[test]
    fn spread_length() {
        assert_eq!(spread_bytes(&[0x00]).len(), 64);
        assert_eq!(spread_bytes(&[1, 2, 3]).len(), 192);
    }

    #[test]
    fn clean_round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        let chips = spread_bytes(&data);
        let (bytes, errors) = despread_to_bytes(&chips);
        assert_eq!(bytes, data);
        assert_eq!(errors, 0);
    }

    #[test]
    fn despread_reports_chip_errors() {
        let mut chips = spread_bytes(&[0x5A]);
        chips[3] ^= 1;
        chips[40] ^= 1;
        chips[41] ^= 1;
        let symbols = despread_chips(&chips);
        assert_eq!(symbols[0].chip_errors, 1);
        assert_eq!(symbols[1].chip_errors, 2);
        let (bytes, errors) = despread_to_bytes(&chips);
        assert_eq!(bytes, vec![0x5A]);
        assert_eq!(errors, 3);
    }

    #[test]
    fn partial_trailing_block_discarded() {
        let mut chips = spread_bytes(&[0xFF]);
        chips.extend_from_slice(&[1; 17]);
        let (bytes, _) = despread_to_bytes(&chips);
        assert_eq!(bytes, vec![0xFF]);
    }

    #[test]
    fn odd_symbol_count_truncated_to_bytes() {
        let chips = spread_symbols(&[1, 2, 3]);
        let (bytes, _) = despread_to_bytes(&chips);
        assert_eq!(bytes, vec![0x21]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn spread_rejects_bad_symbol() {
        let _ = spread_symbols(&[16]);
    }

    proptest! {
        #[test]
        fn prop_round_trip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let chips = spread_bytes(&data);
            let (bytes, errors) = despread_to_bytes(&chips);
            prop_assert_eq!(bytes, data);
            prop_assert_eq!(errors, 0);
        }

        #[test]
        fn prop_error_correction_up_to_five_chips_per_symbol(
            data in proptest::collection::vec(any::<u8>(), 1..16),
            seed in any::<u64>(),
        ) {
            // Flip 5 chips in every 32-chip block — always within the
            // correction budget of the PN family.
            let mut chips = spread_bytes(&data);
            let mut state = seed;
            for block in chips.chunks_exact_mut(32) {
                let mut flipped = std::collections::HashSet::new();
                while flipped.len() < 5 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    flipped.insert((state >> 33) as usize % 32);
                }
                for &k in &flipped {
                    block[k] ^= 1;
                }
            }
            let (bytes, errors) = despread_to_bytes(&chips);
            prop_assert_eq!(bytes, data.clone());
            prop_assert_eq!(errors, data.len() * 10);
        }
    }
}
