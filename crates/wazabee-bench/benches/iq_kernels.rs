//! Measures the planar SIMD sample-domain kernels against the scalar
//! references they are pinned to.
//!
//! Every blocked kernel in `wazabee_dsp::simd` keeps a `*_scalar` twin with
//! the identical arithmetic; the parity proptests guarantee bitwise equality,
//! and this bench shows what the explicit-width blocking buys. Run in both
//! feature states (telemetry on and off) — the kernels carry stage tags, so
//! the disabled build also witnesses that instrumentation compiles out:
//!
//! ```sh
//! cargo bench -p wazabee-bench --bench iq_kernels
//! cargo bench -p wazabee-bench --bench iq_kernels --no-default-features
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wazabee_dsp::simd::{
    accumulate_interleaved_at, accumulate_interleaved_at_scalar, axpy, axpy_scalar,
    discriminate_planar_into, discriminate_planar_scalar_into, fir_planar_into,
    fir_planar_scalar_into, window_sums_into, window_sums_scalar_into,
};
use wazabee_dsp::{Iq, IqBuf};

const N: usize = 1 << 14;
const SPS: usize = 8;

fn rails(seed: u64, n: usize) -> (Vec<f32>, Vec<f32>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut i = Vec::with_capacity(n);
    let mut q = Vec::with_capacity(n);
    for _ in 0..n {
        i.push(rng.gen_range(-1.0f32..1.0));
        q.push(rng.gen_range(-1.0f32..1.0));
    }
    (i, q)
}

fn bench_iq_kernels(c: &mut Criterion) {
    let (i, q) = rails(7, N);
    let diffs = {
        let mut d = Vec::new();
        discriminate_planar_into(&i, &q, &mut d);
        d
    };
    let interleaved: Vec<Iq> = i
        .iter()
        .zip(&q)
        .map(|(&a, &b)| Iq::new(f64::from(a), f64::from(b)))
        .collect();
    let mut planar = IqBuf::new();
    planar.extend_interleaved(&interleaved);
    let taps: Vec<f32> = (0..25).map(|k| ((k as f32) - 12.0) / 144.0).collect();

    let mut g = c.benchmark_group("iq_kernels");
    g.throughput(Throughput::Elements(N as u64));

    let mut out = Vec::with_capacity(N);
    g.bench_function("discriminate_simd", |b| {
        b.iter(|| {
            out.clear();
            discriminate_planar_into(std::hint::black_box(&i), std::hint::black_box(&q), &mut out);
        })
    });
    g.bench_function("discriminate_scalar", |b| {
        b.iter(|| {
            out.clear();
            discriminate_planar_scalar_into(
                std::hint::black_box(&i),
                std::hint::black_box(&q),
                &mut out,
            );
        })
    });

    let mut sums = Vec::with_capacity(N / SPS);
    g.bench_function("window_sums_simd", |b| {
        b.iter(|| {
            sums.clear();
            window_sums_into(std::hint::black_box(&diffs), SPS, &mut sums);
        })
    });
    g.bench_function("window_sums_scalar", |b| {
        b.iter(|| {
            sums.clear();
            window_sums_scalar_into(std::hint::black_box(&diffs), SPS, &mut sums);
        })
    });

    let mut dst = vec![0.0f32; N];
    g.bench_function("axpy_simd", |b| {
        b.iter(|| axpy(&mut dst, std::hint::black_box(&i), 0.75))
    });
    g.bench_function("axpy_scalar", |b| {
        b.iter(|| axpy_scalar(&mut dst, std::hint::black_box(&i), 0.75))
    });

    let mut acc = IqBuf::new();
    acc.resize(N + 64);
    g.bench_function("superpose_accumulate_simd", |b| {
        b.iter(|| accumulate_interleaved_at(&mut acc, std::hint::black_box(&interleaved), 32, 0.5))
    });
    g.bench_function("superpose_accumulate_scalar", |b| {
        b.iter(|| {
            accumulate_interleaved_at_scalar(&mut acc, std::hint::black_box(&interleaved), 32, 0.5)
        })
    });

    let mut fir_out = IqBuf::new();
    g.bench_function("fir_planar_simd", |b| {
        b.iter(|| fir_planar_into(&taps, std::hint::black_box(planar.as_slice()), &mut fir_out))
    });
    g.bench_function("fir_planar_scalar", |b| {
        b.iter(|| {
            fir_planar_scalar_into(&taps, std::hint::black_box(planar.as_slice()), &mut fir_out)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_iq_kernels);
criterion_main!(benches);
