//! Criterion benchmarks of the waveform-layer building blocks: how fast the
//! simulated radios modulate and demodulate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use wazabee_ble::gfsk::{demodulate_aligned, modulate, GfskParams};
use wazabee_ble::{BleChannel, BleModem, BlePacket, BlePhy, Whitener};
use wazabee_dot154::dsss::{despread_to_bytes, spread_bytes};
use wazabee_dot154::oqpsk::modulate_chips;
use wazabee_dot154::{Dot154Modem, Ppdu};

fn bench_gfsk(c: &mut Criterion) {
    let params = GfskParams::ble(BlePhy::Le2M, 8);
    let bits: Vec<u8> = (0..2048).map(|k| (k * 7 % 3 == 0) as u8).collect();
    let mut g = c.benchmark_group("gfsk");
    g.throughput(Throughput::Elements(bits.len() as u64));
    g.bench_function("modulate_2048_bits", |b| {
        b.iter(|| modulate(&params, std::hint::black_box(&bits)))
    });
    let iq = modulate(&params, &bits);
    g.bench_function("demodulate_2048_bits", |b| {
        b.iter(|| demodulate_aligned(&params, std::hint::black_box(&iq), 0))
    });
    g.finish();
}

fn bench_oqpsk(c: &mut Criterion) {
    let psdu: Vec<u8> = (0..32).collect();
    let chips = spread_bytes(&psdu);
    let mut g = c.benchmark_group("oqpsk");
    g.throughput(Throughput::Elements(chips.len() as u64));
    g.bench_function("modulate_2048_chips", |b| {
        b.iter(|| modulate_chips(std::hint::black_box(&chips), 8))
    });
    g.bench_function("despread_2048_chips", |b| {
        b.iter(|| despread_to_bytes(std::hint::black_box(&chips)))
    });
    g.finish();
}

fn bench_packet_paths(c: &mut Criterion) {
    let ch = BleChannel::new(8).expect("channel 8");
    let ble = BleModem::new(BlePhy::Le2M, 8);
    let pkt = BlePacket::advertising((0..40u8).map(|k| if k == 1 { 38 } else { k }).collect());
    let zigbee = Dot154Modem::new(8);
    let ppdu = Ppdu::new(wazabee_dot154::fcs::append_fcs(&[0x42; 20])).expect("fits");
    let mut g = c.benchmark_group("packet_paths");
    g.bench_function("ble_packet_tx", |b| {
        b.iter(|| ble.transmit(std::hint::black_box(&pkt), ch, true))
    });
    let air_ble = ble.transmit(&pkt, ch, true);
    g.bench_function("ble_packet_rx", |b| {
        b.iter(|| {
            ble.receive(
                std::hint::black_box(&air_ble),
                pkt.access_address(),
                ch,
                true,
            )
        })
    });
    g.bench_function("dot154_ppdu_tx", |b| {
        b.iter(|| zigbee.transmit(std::hint::black_box(&ppdu)))
    });
    let air_z = zigbee.transmit(&ppdu);
    g.bench_function("dot154_ppdu_rx_msk_view", |b| {
        b.iter(|| zigbee.receive(std::hint::black_box(&air_z)))
    });
    g.finish();
}

fn bench_whitening(c: &mut Criterion) {
    let ch = BleChannel::new(8).expect("channel 8");
    let data: Vec<u8> = (0..=255).collect();
    c.bench_function("whiten_256_bytes", |b| {
        b.iter_batched(
            || Whitener::new(ch),
            |w| w.whiten_bytes(std::hint::black_box(&data)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gfsk, bench_oqpsk, bench_packet_paths, bench_whitening
}
criterion_main!(benches);
