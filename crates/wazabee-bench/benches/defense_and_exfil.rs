//! Criterion benchmarks of the extension layers: the IDS pipeline and the
//! covert exfiltration channel.

use criterion::{criterion_group, criterion_main, Criterion};
use wazabee::exfil::{exfil_frames, ExfilCollector, ExfilConfig};
use wazabee::{cross_similarity, WaveformFamily};
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, MacFrame, Ppdu};
use wazabee_dsp::spectrum::{periodogram, summarize};
use wazabee_dsp::Iq;
use wazabee_ids::{detect_bursts, BurstDetectorConfig, ChannelMonitor, Classifier, MonitorConfig};

fn padded_zigbee_burst() -> Vec<Iq> {
    let modem = Dot154Modem::new(8);
    let ppdu = Ppdu::new(append_fcs(&[0x42; 12])).unwrap();
    let mut buf = vec![Iq::ZERO; 600];
    buf.extend(modem.transmit(&ppdu));
    buf.extend(vec![Iq::ZERO; 600]);
    buf
}

fn bench_ids(c: &mut Criterion) {
    let burst = padded_zigbee_burst();
    c.bench_function("ids_burst_detection", |b| {
        b.iter(|| {
            detect_bursts(
                std::hint::black_box(&burst),
                &BurstDetectorConfig::default(),
            )
        })
    });
    let classifier = Classifier::new(2420, 8);
    c.bench_function("ids_classify_burst", |b| {
        b.iter(|| classifier.classify(std::hint::black_box(&burst)))
    });
    let mut g = c.benchmark_group("ids_observe");
    g.sample_size(10);
    g.bench_function("full_window", |b| {
        let mut monitor = ChannelMonitor::new(2420, 8, MonitorConfig::default());
        b.iter(|| monitor.observe(std::hint::black_box(&burst)))
    });
    g.finish();
}

fn bench_spectrum(c: &mut Criterion) {
    let burst = padded_zigbee_burst();
    c.bench_function("periodogram_burst", |b| {
        b.iter(|| periodogram(std::hint::black_box(&burst)))
    });
    c.bench_function("spectrum_summary", |b| {
        b.iter(|| summarize(std::hint::black_box(&burst), 16.0e6))
    });
}

fn bench_exfil(c: &mut Criterion) {
    let data = vec![0xA5u8; 1024];
    let cfg = ExfilConfig::default();
    c.bench_function("exfil_chunking_1k", |b| {
        b.iter(|| exfil_frames(std::hint::black_box(&data), 1, &cfg))
    });
    let frames: Vec<MacFrame> = exfil_frames(&data, 1, &cfg)
        .unwrap()
        .iter()
        .map(|f| MacFrame::from_psdu(f.psdu()).unwrap())
        .collect();
    c.bench_function("exfil_reassembly_1k", |b| {
        b.iter(|| {
            let mut collector = ExfilCollector::new();
            let mut out = None;
            for f in &frames {
                out = collector.ingest(std::hint::black_box(f)).or(out);
            }
            out
        })
    });
}

fn bench_similarity(c: &mut Criterion) {
    let mut g = c.benchmark_group("similarity");
    g.sample_size(10);
    g.bench_function("gfsk_vs_oqpsk_512_bits", |b| {
        b.iter(|| {
            cross_similarity(
                WaveformFamily::ble_le2m(),
                WaveformFamily::OqpskHalfSine,
                512,
                8,
                12.0,
                1,
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ids, bench_spectrum, bench_exfil, bench_similarity
}
criterion_main!(benches);
