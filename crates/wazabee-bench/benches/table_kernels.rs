//! Criterion benchmarks of the per-frame kernels behind each table of the
//! paper: one Table III cell iteration (reception and transmission), the
//! Table I / §IV-C conversions, and the Table II lookups.

use criterion::{criterion_group, criterion_main, Criterion};
use wazabee::msk::{correspondence_table, pn_to_msk_algorithm1};
use wazabee::{ble_channel_for_zigbee, WazaBeeRx, WazaBeeTx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::pn::pn_sequence;
use wazabee_dot154::{Dot154Channel, Dot154Modem, MacFrame, Ppdu};
use wazabee_radio::{Link, LinkConfig, RfFrame};

fn table3_frame(c: &mut Criterion) {
    let sps = 8;
    let zigbee = Dot154Modem::new(sps);
    let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");
    let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");
    let ppdu = Ppdu::new(MacFrame::data(0x1234, 0x63, 0x42, 1, vec![1, 2]).to_psdu()).unwrap();
    let mut g = c.benchmark_group("table3_frame");
    g.sample_size(10);
    g.bench_function("reception_primitive", |b| {
        let mut link = Link::new(LinkConfig::office_3m(), 1);
        b.iter(|| {
            let air = zigbee.transmit(&ppdu);
            let heard = link.deliver(&RfFrame::new(2420, air, zigbee.sample_rate()), 2420);
            rx.receive(std::hint::black_box(&heard))
        })
    });
    g.bench_function("transmission_primitive", |b| {
        let mut link = Link::new(LinkConfig::office_3m(), 2);
        b.iter(|| {
            let air = tx.transmit(&ppdu);
            let heard = link.deliver(&RfFrame::new(2420, air, zigbee.sample_rate()), 2420);
            zigbee.receive(std::hint::black_box(&heard))
        })
    });
    g.finish();
}

fn table1_conversions(c: &mut Criterion) {
    c.bench_function("algorithm1_one_sequence", |b| {
        b.iter(|| pn_to_msk_algorithm1(std::hint::black_box(pn_sequence(7))))
    });
    c.bench_function("algorithm1_full_table", |b| b.iter(correspondence_table));
}

fn table2_lookups(c: &mut Criterion) {
    let channels: Vec<_> = Dot154Channel::all().collect();
    c.bench_function("table2_lookup_all", |b| {
        b.iter(|| {
            channels
                .iter()
                .filter_map(|&z| ble_channel_for_zigbee(std::hint::black_box(z)))
                .count()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = table3_frame, table1_conversions, table2_lookups
}
criterion_main!(benches);
