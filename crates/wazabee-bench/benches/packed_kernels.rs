//! Criterion benchmarks of the packed-bitstream kernels against their scalar
//! references: sync-pattern correlation (short 32-bit access address and the
//! long 319-bit SHR image) and 31-bit MSK-block despreading.
//!
//! These are the inner loops of every receive path; the packed variants are
//! the fast path the modems actually run, the scalar variants are the
//! byte-per-bit references kept for property testing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use wazabee::msk::{correspondence_table, despread_msk_block_packed, despread_msk_block_scalar};
use wazabee_dot154::Dot154Modem;
use wazabee_dsp::correlate::{find_pattern, find_pattern_scalar};
use wazabee_dsp::packed::find_pattern_packed;
use wazabee_dsp::PackedBits;

/// A deterministic pseudo-random bit stream (no RNG needed — an LCG walk).
fn bit_stream(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 62) & 1) as u8
        })
        .collect()
}

fn correlate_benches(c: &mut Criterion) {
    const STREAM_BITS: usize = 16_384;
    let stream = bit_stream(STREAM_BITS, 0xC0FFEE);
    let packed_stream = PackedBits::from_bits(&stream);
    // A 32-bit pattern planted near the end so the correlator scans the
    // whole stream (worst case), and the 319-bit SHR image absent entirely.
    let mut planted = stream.clone();
    let short_pattern = bit_stream(32, 0xACCE55);
    let at = STREAM_BITS - 64;
    planted[at..at + 32].copy_from_slice(&short_pattern);
    let packed_planted = PackedBits::from_bits(&planted);
    let packed_short = PackedBits::from_bits(&short_pattern);
    let shr = Dot154Modem::shr_msk_image();
    let packed_shr = Dot154Modem::shr_msk_image_packed();

    let mut g = c.benchmark_group("correlate_short_32bit");
    g.throughput(Throughput::Elements(STREAM_BITS as u64));
    g.bench_function("packed", |b| {
        b.iter(|| {
            find_pattern_packed(
                std::hint::black_box(&packed_planted),
                std::hint::black_box(&packed_short),
                0,
                2,
            )
        })
    });
    g.bench_function("scalar", |b| {
        b.iter(|| {
            find_pattern_scalar(
                std::hint::black_box(&planted),
                std::hint::black_box(&short_pattern),
                0,
                2,
            )
        })
    });
    g.bench_function("shim", |b| {
        b.iter(|| {
            find_pattern(
                std::hint::black_box(&planted),
                std::hint::black_box(&short_pattern),
                0,
                2,
            )
        })
    });
    g.finish();

    let mut g = c.benchmark_group("correlate_long_319bit_miss");
    g.throughput(Throughput::Elements(STREAM_BITS as u64));
    g.bench_function("packed", |b| {
        b.iter(|| {
            find_pattern_packed(
                std::hint::black_box(&packed_stream),
                std::hint::black_box(packed_shr),
                0,
                32,
            )
        })
    });
    g.bench_function("scalar", |b| {
        b.iter(|| {
            find_pattern_scalar(
                std::hint::black_box(&stream),
                std::hint::black_box(&shr),
                0,
                32,
            )
        })
    });
    g.finish();
}

fn despread_benches(c: &mut Criterion) {
    const SYMBOLS: usize = 4_096;
    let table = correspondence_table();
    let blocks: Vec<[u8; 31]> = (0..SYMBOLS)
        .map(|k| {
            let mut b = table[k % 16];
            b[(k * 7) % 31] ^= (k % 3 == 0) as u8;
            b
        })
        .collect();
    let flat: Vec<u8> = blocks.iter().flatten().copied().collect();
    let stream = PackedBits::from_bits(&flat);

    let mut g = c.benchmark_group("despread_msk_block");
    g.throughput(Throughput::Elements(SYMBOLS as u64));
    g.bench_function("packed", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in 0..SYMBOLS {
                let block = stream.extract_u32(k * 31, 31);
                let (sym, d) = despread_msk_block_packed(std::hint::black_box(block));
                acc += usize::from(sym) + d;
            }
            acc
        })
    });
    g.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for blk in &blocks {
                let (sym, d) = despread_msk_block_scalar(std::hint::black_box(blk));
                acc += usize::from(sym) + d;
            }
            acc
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = correlate_benches, despread_benches
}
criterion_main!(benches);
