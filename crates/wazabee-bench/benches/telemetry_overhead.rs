//! Measures what the telemetry instrumentation costs the modem hot paths.
//!
//! Run twice and compare:
//!
//! ```sh
//! cargo bench -p wazabee-bench --bench telemetry_overhead
//! cargo bench -p wazabee-bench --bench telemetry_overhead --no-default-features
//! ```
//!
//! With the `telemetry` feature off every counter/histogram/span call site
//! compiles to an empty inline no-op, so the two runs must agree to within
//! measurement noise. The `zero_cost_when_disabled` smoke test in
//! `wazabee-bench` asserts the disabled build really is dead code.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use wazabee_ble::gfsk::{demodulate_aligned, modulate, GfskParams};
use wazabee_ble::BlePhy;
use wazabee_dot154::dsss::{despread_to_bytes, spread_bytes};

fn bench_instrumented_kernels(c: &mut Criterion) {
    let params = GfskParams::ble(BlePhy::Le2M, 8);
    let bits: Vec<u8> = (0..2048).map(|k| (k * 7 % 3 == 0) as u8).collect();
    let iq = modulate(&params, &bits);
    let psdu: Vec<u8> = (0..32).collect();
    let chips = spread_bytes(&psdu);

    let mut g = c.benchmark_group("telemetry_overhead");
    g.throughput(Throughput::Elements(bits.len() as u64));
    g.bench_function("gfsk_modulate", |b| {
        b.iter(|| modulate(&params, std::hint::black_box(&bits)))
    });
    g.bench_function("gfsk_demodulate", |b| {
        b.iter(|| demodulate_aligned(&params, std::hint::black_box(&iq), 0))
    });
    g.bench_function("dsss_despread", |b| {
        b.iter(|| despread_to_bytes(std::hint::black_box(&chips)))
    });
    g.finish();

    // Bare-primitive cost so regressions in the counter fast path are visible
    // without the modem arithmetic drowning them out.
    let mut p = c.benchmark_group("telemetry_primitives");
    p.bench_function("counter_inc", |b| {
        b.iter(|| wazabee_telemetry::counter!("bench.counter").inc())
    });
    p.bench_function("value_histogram_record", |b| {
        b.iter(|| {
            wazabee_telemetry::value_histogram!("bench.vhist", 0.0, 64.0)
                .record(std::hint::black_box(17.0))
        })
    });
    // Labeled lookup pays a label-set build + map probe per call; a cached
    // handle amortises that to one atomic add, matching the flat counter.
    p.bench_function("labeled_counter_inc_lookup", |b| {
        b.iter(|| {
            wazabee_telemetry::labeled_counter!("bench.labeled")
                .inc(&[("channel", std::hint::black_box("15"))])
        })
    });
    p.bench_function("labeled_counter_inc_cached", |b| {
        let handle = wazabee_telemetry::labeled_counter!("bench.labeled.cached")
            .handle(&[("channel", "15")]);
        b.iter(|| handle.inc())
    });
    p.bench_function("labeled_histogram_record_lookup", |b| {
        b.iter(|| {
            wazabee_telemetry::labeled_histogram!("bench.labeled.hist", 0.0, 64.0)
                .record(&[("stage", std::hint::black_box("fir"))], 17.0)
        })
    });
    p.bench_function("stage_guard_enter_drop", |b| {
        b.iter(|| {
            let _s = wazabee_telemetry::stage!("bench.stage");
            std::hint::black_box(());
        })
    });
    p.bench_function("wall_series_record", |b| {
        b.iter(|| wazabee_telemetry::timeseries!("bench.series", std::hint::black_box(1.0)))
    });
    // Causal span with args: two trace-ring appends (enter + exit) plus the
    // per-thread stack bookkeeping — the cost of one `span!("rx.decode", ...)`
    // around a committing decode attempt.
    p.bench_function("span_with_args_enter_drop", |b| {
        b.iter(|| {
            let _s = wazabee_telemetry::span!(
                "bench.span",
                frame = std::hint::black_box(7u64),
                chan = 15u8
            );
            std::hint::black_box(());
        })
    });
    // One trace-ring append alone (instant event with args), isolating the
    // ring's mutex + VecDeque push from the span stack machinery.
    p.bench_function("trace_ring_append", |b| {
        b.iter(|| {
            wazabee_telemetry::event!("bench.instant", seq = std::hint::black_box(3u64));
        })
    });
    // One watchdog tick over a single armed rule: registry scan, counter
    // sum, compare, latch check.
    p.bench_function("health_rule_evaluate", |b| {
        wazabee_telemetry::health_rule!(
            "bench.health",
            wazabee_telemetry::Signal::counter("bench.counter"),
            > 1e18
        );
        b.iter(|| std::hint::black_box(wazabee_telemetry::evaluate_health()))
    });
    p.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_instrumented_kernels
}
criterion_main!(benches);
