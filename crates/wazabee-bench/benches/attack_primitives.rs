//! Criterion benchmarks of the attack-level operations: Scenario A payload
//! crafting and one advertising event, Scenario B PHY round trips, CSA#2.

use criterion::{criterion_group, criterion_main, Criterion};
use wazabee::scenario_a::craft_manufacturer_data;
use wazabee::{encode_ppdu_msk, prewhiten_bits};
use wazabee_ble::adv::BleAddress;
use wazabee_ble::csa2::{select_channel, ChannelMap};
use wazabee_ble::BleChannel;
use wazabee_chips::Smartphone;
use wazabee_dot154::fcs::append_fcs;
use wazabee_dot154::Ppdu;

fn scenario_a_ops(c: &mut Criterion) {
    let ppdu = Ppdu::new(append_fcs(&[1, 2, 3, 4, 5, 6, 7, 8])).unwrap();
    let ch8 = BleChannel::new(8).expect("channel 8");
    c.bench_function("craft_manufacturer_data", |b| {
        b.iter(|| craft_manufacturer_data(std::hint::black_box(&ppdu), ch8))
    });
    c.bench_function("encode_ppdu_msk", |b| {
        b.iter(|| encode_ppdu_msk(std::hint::black_box(&ppdu)))
    });
    let bits = encode_ppdu_msk(&ppdu);
    c.bench_function("prewhiten_bits", |b| {
        b.iter(|| prewhiten_bits(std::hint::black_box(&bits), ch8))
    });
    let mut g = c.benchmark_group("advertising_event");
    g.sample_size(10);
    g.bench_function("smartphone_event", |b| {
        let mut phone = Smartphone::new(BleAddress::new([1, 2, 3, 4, 5, 6]), 8);
        phone
            .set_manufacturer_data(craft_manufacturer_data(&ppdu, ch8).unwrap())
            .unwrap();
        b.iter(|| phone.advertising_event())
    });
    g.finish();
}

fn csa2_ops(c: &mut Criterion) {
    let map = ChannelMap::all_data_channels();
    c.bench_function("csa2_select_channel", |b| {
        let mut ev = 0u16;
        b.iter(|| {
            ev = ev.wrapping_add(1);
            select_channel(0x8E89_BED6, std::hint::black_box(ev), &map)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = scenario_a_ops, csa2_ops
}
criterion_main!(benches);
