//! Deterministic parallel sweep driver.
//!
//! Every experiment in this crate is a grid of independent cells (channels ×
//! chips, SNR points, ablation knobs) whose per-cell seeds are derived from
//! the configuration alone — never from execution order. That makes the grid
//! embarrassingly parallel *and* reproducible: cells fan out over scoped
//! worker threads and results merge back in input order, so the output is
//! byte-identical whether one thread runs or sixteen do.
//!
//! The implementation lives in [`wazabee_dsp::par`] so the spectrum
//! simulator's channel shards and cluster decodes can run on the same
//! infrastructure; this module re-exports it under the historical path.

pub use wazabee_dsp::par::{default_threads, par_map, par_map_with};
