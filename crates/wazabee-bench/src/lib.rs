//! # wazabee-bench
//!
//! The benchmark harness of the WazaBee reproduction: one regenerator per
//! table and figure of the paper (Cayre et al., DSN 2021), plus ablation
//! studies for the design decisions called out in DESIGN.md.
//!
//! The heart of the crate is [`table3`], the engine behind the paper's main
//! evaluation (Table III): transmission and reception primitive assessment
//! over all sixteen Zigbee channels on two chip models, under an office
//! channel shared with WiFi on channels 6 and 11.

pub mod sweep;
pub mod table3;

pub use sweep::{default_threads, par_map, par_map_with};
pub use table3::{run_primitive, ChannelResult, Primitive, Table3Config};
