//! The Table III experiment engine: reception and transmission primitive
//! assessment (paper §V).
//!
//! Protocol, as in the paper: one hundred 802.15.4 frames carrying an
//! incrementing counter cross 3 metres of office air on every Zigbee channel;
//! each frame is classified *valid* (received, FCS intact, counter matches),
//! *corrupted* (received but integrity broken) or *lost*. The office air
//! carries WiFi on channels 6 and 11, which is what dents the channels
//! around 2437 and 2462 MHz.

use wazabee::{WazaBeeRx, WazaBeeTx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_chips::ChipCapabilities;
use wazabee_dot154::{Dot154Channel, Dot154Modem, MacFrame, Ppdu};
use wazabee_radio::{Link, LinkConfig, RfFrame, WifiChannel, WifiInterferer};

/// Which primitive is under assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Zigbee transmitter → diverted BLE chip (paper's first experiment).
    Reception,
    /// Diverted BLE chip → Zigbee receiver (paper's second experiment).
    Transmission,
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Primitive::Reception => write!(f, "reception"),
            Primitive::Transmission => write!(f, "transmission"),
        }
    }
}

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Table3Config {
    /// Frames per channel (100 in the paper).
    pub frames: usize,
    /// Link SNR in dB before per-chip quality adjustment.
    pub snr_db: f64,
    /// Whether the WiFi interferers on channels 6 and 11 are present.
    pub wifi: bool,
    /// Simulation oversampling factor.
    pub samples_per_symbol: usize,
    /// Base random seed (frames, noise and bursts derive from it).
    pub seed: u64,
    /// Worker threads for the channel sweep: `None` defers to
    /// [`crate::sweep::default_threads`] (the `WAZABEE_THREADS` environment
    /// variable, else available parallelism). Results are byte-identical at
    /// any thread count — every channel derives its own seed.
    pub threads: Option<usize>,
}

impl Default for Table3Config {
    fn default() -> Self {
        Table3Config {
            // 3 dB stands in for every real-world impairment of the paper's
            // office testbed; it is calibrated so the nRF52832 baseline
            // reproduces the paper's ≈98.6% clean-channel validity, with the
            // CC1352-R1's +1.5 dB front end then landing near-perfect.
            frames: 100,
            snr_db: 4.3,
            wifi: true,
            samples_per_symbol: 8,
            seed: 0x0DA7_AB34,
            threads: None,
        }
    }
}

impl Table3Config {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Table3Config {
            frames: 10,
            ..Table3Config::default()
        }
    }
}

/// Per-channel outcome counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelResult {
    /// The Zigbee channel.
    pub channel: Dot154Channel,
    /// Frames received with intact integrity and correct counter.
    pub valid: usize,
    /// Frames received but failing the FCS (or mangled content).
    pub corrupted: usize,
    /// Frames never received.
    pub lost: usize,
}

impl ChannelResult {
    /// Valid-frame ratio in 0..=1.
    pub fn valid_ratio(&self) -> f64 {
        let total = self.valid + self.corrupted + self.lost;
        if total == 0 {
            0.0
        } else {
            self.valid as f64 / total as f64
        }
    }
}

fn make_link(cfg: &Table3Config, chip: &ChipCapabilities, channel_seed: u64) -> Link {
    let link_cfg = LinkConfig {
        snr_db: Some(cfg.snr_db + chip.rx_quality_db),
        ..LinkConfig::office_3m()
    };
    let chip_seed = chip
        .name
        .bytes()
        .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(u64::from(b)));
    let mut link = Link::new(link_cfg, cfg.seed ^ channel_seed ^ chip_seed);
    if cfg.wifi {
        // A cleaner front end (better channel filtering) admits less
        // adjacent-spectrum energy.
        let selectivity = 10f64.powf(-chip.rx_quality_db / 10.0);
        for wifi in [6u8, 11] {
            let mut interferer =
                WifiInterferer::office(WifiChannel::new(wifi).expect("WiFi channel"));
            interferer.power *= selectivity;
            link.add_interferer(interferer);
        }
    }
    link
}

/// The counter frame of the paper's protocol.
fn counter_frame(counter: u16) -> Ppdu {
    let mac = MacFrame::data(
        0x1234,
        0x0063,
        0x0042,
        counter as u8,
        counter.to_le_bytes().to_vec(),
    );
    Ppdu::new(mac.to_psdu()).expect("counter frame fits")
}

/// Classifies a received PSDU against the expectation.
fn classify(result: Option<(Vec<u8>, bool)>, expected: &Ppdu, out: &mut ChannelResult) {
    match result {
        None => out.lost += 1,
        Some((psdu, fcs_ok)) => {
            if fcs_ok && psdu == expected.psdu() {
                out.valid += 1;
            } else {
                out.corrupted += 1;
            }
        }
    }
}

/// Runs one primitive for one chip over all sixteen channels.
///
/// The channels are swept in parallel via [`crate::sweep::par_map_with`]
/// at `cfg.threads` workers; each channel seeds its own link from the
/// configuration alone, so the results are byte-identical at any thread
/// count.
///
/// # Panics
///
/// Panics if `cfg.frames` is zero.
pub fn run_primitive(
    chip: &ChipCapabilities,
    primitive: Primitive,
    cfg: &Table3Config,
) -> Vec<ChannelResult> {
    assert!(cfg.frames > 0, "need at least one frame");
    let sps = cfg.samples_per_symbol;
    let zigbee = Dot154Modem::new(sps);
    let ble_tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");
    let ble_rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");

    crate::sweep::par_map_with(cfg.threads, Dot154Channel::all().collect(), |channel| {
        let mut link = make_link(cfg, chip, u64::from(channel.number()) << 32);
        let mut out = ChannelResult {
            channel,
            valid: 0,
            corrupted: 0,
            lost: 0,
        };
        let mhz = channel.center_mhz();
        for k in 0..cfg.frames {
            let ppdu = counter_frame(k as u16);
            let rx_result = match primitive {
                Primitive::Reception => {
                    // Genuine Zigbee TX, diverted BLE RX.
                    let air = zigbee.transmit(&ppdu);
                    let heard = link.deliver(&RfFrame::new(mhz, air, zigbee.sample_rate()), mhz);
                    ble_rx
                        .receive(&heard)
                        .map(|r| (r.fcs_ok(), r))
                        .map(|(f, r)| (r.psdu, f))
                }
                Primitive::Transmission => {
                    // Diverted BLE TX, genuine Zigbee RX (the RZUSBStick).
                    let air = ble_tx.transmit(&ppdu);
                    let heard = link.deliver(&RfFrame::new(mhz, air, zigbee.sample_rate()), mhz);
                    zigbee
                        .receive(&heard)
                        .map(|r| (r.fcs_ok(), r))
                        .map(|(f, r)| (r.psdu, f))
                }
            };
            classify(rx_result, &ppdu, &mut out);
        }
        out
    })
}

/// Renders results in the paper's table layout.
pub fn render_table(
    chip_a: &str,
    rx_a: &[ChannelResult],
    tx_a: &[ChannelResult],
    chip_b: &str,
    rx_b: &[ChannelResult],
    tx_b: &[ChannelResult],
) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<9}| {:^23} | {:^23}\n",
        "", "Reception primitive", "Transmission primitive"
    ));
    s.push_str(&format!(
        "{:<9}| {:^11}| {:^11}| {:^11}| {:^11}\n",
        "Channel", chip_a, chip_b, chip_a, chip_b
    ));
    s.push_str(&format!(
        "{:<9}| {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5}\n",
        "", "valid", "corr", "valid", "corr", "valid", "corr", "valid", "corr"
    ));
    s.push_str(&"-".repeat(64));
    s.push('\n');
    for k in 0..rx_a.len() {
        s.push_str(&format!(
            "{:<9}| {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5}\n",
            rx_a[k].channel.number(),
            rx_a[k].valid,
            rx_a[k].corrupted,
            rx_b[k].valid,
            rx_b[k].corrupted,
            tx_a[k].valid,
            tx_a[k].corrupted,
            tx_b[k].valid,
            tx_b[k].corrupted,
        ));
    }
    let avg = |r: &[ChannelResult]| {
        100.0 * r.iter().map(|c| c.valid_ratio()).sum::<f64>() / r.len() as f64
    };
    s.push_str(&"-".repeat(64));
    s.push('\n');
    s.push_str(&format!(
        "{:<9}| {:>10.2}% | {:>10.2}% | {:>10.2}% | {:>10.2}%\n",
        "avg valid",
        avg(rx_a),
        avg(rx_b),
        avg(tx_a),
        avg(tx_b),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_chips::{cc1352r1, nrf52832};

    #[test]
    fn clean_channel_is_near_perfect() {
        let cfg = Table3Config {
            frames: 8,
            wifi: false,
            snr_db: 22.0,
            ..Table3Config::default()
        };
        let results = run_primitive(&nrf52832(), Primitive::Reception, &cfg);
        assert_eq!(results.len(), 16);
        for r in &results {
            assert_eq!(r.valid, 8, "channel {} lost frames without WiFi", r.channel);
        }
    }

    #[test]
    fn transmission_primitive_works_too() {
        let cfg = Table3Config {
            frames: 6,
            wifi: false,
            snr_db: 22.0,
            ..Table3Config::default()
        };
        let results = run_primitive(&nrf52832(), Primitive::Transmission, &cfg);
        for r in &results {
            assert_eq!(r.valid, 6, "channel {}", r.channel);
        }
    }

    #[test]
    fn wifi_dents_only_overlapping_channels() {
        let cfg = Table3Config {
            frames: 30,
            wifi: true,
            snr_db: 22.0,
            ..Table3Config::default()
        };
        let results = run_primitive(&cc1352r1(), Primitive::Reception, &cfg);
        let by_channel = |n: u8| {
            results
                .iter()
                .find(|r| r.channel.number() == n)
                .copied()
                .expect("channel present")
        };
        // The testbed channel (14) is clear of both WiFi channels.
        assert_eq!(by_channel(14).valid, 30);
        assert_eq!(by_channel(11).valid, 30);
        // The overlapped channels lose or corrupt at least one frame between
        // them (burst probability 0.18 over 30 frames × 5 channels).
        let dented: usize = [16, 17, 18, 21, 22, 23]
            .iter()
            .map(|&n| 30 - by_channel(n).valid)
            .sum();
        assert!(dented > 0, "WiFi interference had no effect at all");
    }

    #[test]
    fn results_are_deterministic() {
        let cfg = Table3Config {
            frames: 5,
            ..Table3Config::default()
        };
        let a = run_primitive(&nrf52832(), Primitive::Reception, &cfg);
        let b = run_primitive(&nrf52832(), Primitive::Reception, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn render_produces_sixteen_rows() {
        let cfg = Table3Config {
            frames: 2,
            wifi: false,
            ..Table3Config::default()
        };
        let rx = run_primitive(&nrf52832(), Primitive::Reception, &cfg);
        let tx = run_primitive(&nrf52832(), Primitive::Transmission, &cfg);
        let table = render_table("nRF52832", &rx, &tx, "CC1352-R1", &rx, &tx);
        assert_eq!(
            table
                .lines()
                .filter(|l| l.starts_with(char::is_numeric))
                .count(),
            16
        );
        assert!(table.contains("avg valid"));
    }

    #[test]
    fn valid_ratio_math() {
        let r = ChannelResult {
            channel: Dot154Channel::new(11).unwrap(),
            valid: 3,
            corrupted: 1,
            lost: 0,
        };
        assert!((r.valid_ratio() - 0.75).abs() < 1e-12);
    }
}
