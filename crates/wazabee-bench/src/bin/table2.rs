//! Regenerates paper Table II: the Zigbee/BLE channels sharing a centre
//! frequency — the subset reachable by chips without arbitrary tuning.
//!
//! Run with: `cargo run -p wazabee-bench --bin table2`

use wazabee::common_channels;

fn main() {
    println!("Table II — Zigbee and BLE common channels");
    println!(
        "{:>15} | {:>12} | {:>22}",
        "Zigbee channel", "BLE channel", "centre frequency (fc)"
    );
    println!("{}", "-".repeat(56));
    for row in common_channels() {
        println!(
            "{:>15} | {:>12} | {:>18} MHz",
            row.zigbee.number(),
            row.ble.index(),
            row.center_mhz()
        );
    }
}
