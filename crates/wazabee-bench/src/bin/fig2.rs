//! Regenerates paper Figure 2: the temporal traces of an O-QPSK-with-half-
//! sine modulation — m(t), I(t), Q(t) and the constant-envelope signal.
//!
//! Emits CSV (sample, m, i, q, envelope, phase).
//!
//! Run with: `cargo run -p wazabee-bench --bin fig2`

use wazabee_dot154::oqpsk::traces;

fn main() {
    // The chip pattern drawn in the paper's figure.
    let chips = [1u8, 1, 0, 1, 0, 0, 1, 0];
    let spc = 32;
    let t = traces(&chips, spc);
    println!(
        "# Figure 2 — O-QPSK with half-sine pulse shaping, chips {:?}",
        chips
    );
    println!("sample,m,i,q,envelope,phase_rad");
    for k in 0..t.i.len() {
        let m = t.m.get(k).copied().unwrap_or(0.0);
        println!(
            "{k},{m:.1},{:.6},{:.6},{:.6},{:.6}",
            t.i[k], t.q[k], t.envelope[k], t.phase[k]
        );
    }
    let steady = &t.envelope[spc..t.envelope.len() - 2 * spc];
    let min = steady.iter().cloned().fold(f64::MAX, f64::min);
    let max = steady.iter().cloned().fold(f64::MIN, f64::max);
    eprintln!("# check: steady-state envelope in [{min:.6}, {max:.6}] (constant = 1)");
}
