//! Regenerates paper Figure 1: the I/Q-plane behaviour of 2-FSK — a `1`
//! rotates the phasor counter-clockwise, a `0` clockwise.
//!
//! Emits CSV (sample, bit, i, q, phase) suitable for plotting.
//!
//! Run with: `cargo run -p wazabee-bench --bin fig1`

use wazabee_ble::gfsk::{modulate, GfskParams};
use wazabee_ble::BlePhy;
use wazabee_dsp::discriminator::phase_trajectory;

fn main() {
    let p = GfskParams::msk(BlePhy::Le2M, 16);
    println!("# Figure 1 — I/Q representation of 2-FSK (h = 0.5)");
    println!("bit,sample,i,q,phase_rad");
    for bit in [1u8, 0u8] {
        let tx = modulate(&p, &[bit; 4]);
        let phases = phase_trajectory(&tx);
        for (k, (s, ph)) in tx.iter().zip(&phases).enumerate() {
            println!("{bit},{k},{:.6},{:.6},{:.6}", s.i, s.q, ph);
        }
    }
    let one = modulate(&p, &[1; 4]);
    let zero = modulate(&p, &[0; 4]);
    let d1 = phase_trajectory(&one);
    let d0 = phase_trajectory(&zero);
    eprintln!(
        "# check: ones rotate counter-clockwise (final phase {:+.3} rad), zeros clockwise ({:+.3} rad)",
        d1.last().unwrap(),
        d0.last().unwrap()
    );
}
