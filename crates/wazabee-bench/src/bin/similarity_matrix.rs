//! The modulation-similarity matrix (the paper's §VIII future-work
//! proposal): cross-demodulation agreement between waveform families at a
//! reference SNR, predicting which protocol pairs are pivot-compatible.
//!
//! Run with: `cargo run --release -p wazabee-bench --bin similarity_matrix [snr_db]`

use wazabee::{similarity_matrix, WaveformFamily};

fn main() {
    let snr: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12.0);
    let families = [
        WaveformFamily::Fsk {
            modulation_index: 0.5,
        },
        WaveformFamily::ble_le2m(),
        WaveformFamily::Gfsk {
            modulation_index: 0.45,
            bt: 0.5,
        },
        WaveformFamily::Fsk {
            modulation_index: 0.25,
        },
        WaveformFamily::OqpskHalfSine,
        WaveformFamily::Ook,
    ];
    println!("# Cross-demodulation agreement at {snr} dB SNR (1.0 = pivot-compatible, 0.5 = uncorrelated)");
    print!("{:<20}", "tx \\ rx");
    for f in &families {
        print!("{:>18}", f.name());
    }
    println!();
    let matrix = similarity_matrix(&families, 2048, 8, snr, 2021);
    for (i, row) in matrix.iter().enumerate() {
        print!("{:<20}", families[i].name());
        for score in row {
            print!("{:>18.3}", score.agreement);
        }
        println!();
    }
    println!();
    println!("# WazaBee works because GFSK(h=0.5) x O-QPSK-halfsine stays near 1.0;");
    println!("# OOK rows/columns stay near 0.5: amplitude modulations are not divertible to FSK.");
}
