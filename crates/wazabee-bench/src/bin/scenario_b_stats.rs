//! Statistics for Scenario B (paper Figure 5): step-by-step completion of
//! the four-stage tracker attack across repeated runs with different link
//! seeds.
//!
//! Run with: `cargo run --release -p wazabee-bench --bin scenario_b_stats [runs]`

use wazabee::TrackerAttack;
use wazabee_radio::{Link, LinkConfig};
use wazabee_zigbee::ZigbeeNetwork;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("# Scenario B statistics — {runs} full attack runs over the office link");
    println!("run,scan_ok,eavesdrop_ok,dos_ok,fakes_accepted,complete");
    let mut complete = 0usize;
    for run in 0..runs {
        let mut net = ZigbeeNetwork::paper_testbed();
        let mut attack = TrackerAttack::new(8).expect("ESB 2M");
        let mut link = Link::new(LinkConfig::office_3m(), 5000 + run as u64);
        let report = attack.execute(&mut net, &mut link);
        if report.complete() {
            complete += 1;
        }
        println!(
            "{run},{},{},{},{},{}",
            report.discovered.is_some(),
            report.sensor.is_some(),
            report.dos_acknowledged,
            report.fake_readings_accepted,
            report.complete()
        );
    }
    println!();
    println!("# {complete}/{runs} runs completed all four steps");
}
