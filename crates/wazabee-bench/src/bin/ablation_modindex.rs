//! Ablation: BLE permits modulation indices from 0.45 to 0.55 (paper
//! §III-B); WazaBee's theory assumes exactly 0.5 (MSK). How much does a
//! non-ideal index cost the reception primitive?
//!
//! Run with: `cargo run --release -p wazabee-bench --bin ablation_modindex [frames]`

use wazabee::WazaBeeTx;
use wazabee_ble::gfsk::GfskParams;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
use wazabee_radio::{Link, LinkConfig, RfFrame};

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let sps = 8;
    let zigbee = Dot154Modem::new(sps);
    println!("# TX primitive frame delivery vs BLE modulation index (h), {frames} frames each");
    println!("h,valid,corrupted,lost,chip_errors_per_frame");
    // Each index seeds its own link; the parallel sweep keeps output order.
    let cells: Vec<f64> = vec![0.45, 0.48, 0.50, 0.52, 0.55];
    let lines = wazabee_bench::sweep::par_map(cells, |h| {
        let params = GfskParams {
            modulation_index: h,
            ..GfskParams::ble(BlePhy::Le2M, sps)
        };
        let modem = BleModem::with_params(BlePhy::Le2M, params);
        let tx = WazaBeeTx::new(modem).expect("2 Mbit/s");
        let mut link = Link::new(LinkConfig::office_3m(), (h * 1000.0) as u64);
        let (mut valid, mut corrupted, mut lost, mut chip_errs) = (0, 0, 0, 0usize);
        for k in 0..frames {
            let ppdu = Ppdu::new(append_fcs(&[k as u8, 0xA5, 0x5A, k as u8])).unwrap();
            let air = tx.transmit(&ppdu);
            let heard = link.deliver(&RfFrame::new(2420, air, zigbee.sample_rate()), 2420);
            match zigbee.receive(&heard) {
                Some(r) if r.fcs_ok() && r.psdu == ppdu.psdu() => {
                    valid += 1;
                    chip_errs += r.chip_errors;
                }
                Some(_) => corrupted += 1,
                None => lost += 1,
            }
        }
        format!(
            "{h:.2},{valid},{corrupted},{lost},{:.1}",
            chip_errs as f64 / valid.max(1) as f64
        )
    });
    for line in lines {
        println!("{line}");
    }
}
