//! Network-scale simulation sweep: how does the PHY-in-the-loop spectrum
//! simulator behave — and how fast does it run — as the network grows?
//!
//! Two topology families:
//!
//! * **Single-channel stars** (the original sweep): one coordinator and
//!   `n − 1` fast-reporting sensors contending on channel 14 — the
//!   worst-case contention cell.
//! * **Multi-channel PANs** (128–1024 nodes): the network splits across
//!   4–16 IEEE 802.15.4 channels, one PAN per channel with its own
//!   coordinator, a router relaying half the sensors' readings (two-hop
//!   paths), and paper-faithful sensor periods (§VI-A reports every 2 s).
//!   These cells exercise the channel-sharded simulator: each channel is an
//!   independent shard advanced in conservative lookahead windows.
//!
//! Every frame is genuinely modulated, superposed and demodulated, so the
//! reported delivery ratios and collision counts come out of the waveform
//! math, not a packet-loss model.
//!
//! Small cells run in parallel through the deterministic sweep driver
//! (`WAZABEE_THREADS` workers, one thread per cell); the large multi-channel
//! cells run one at a time with the thread budget spent *inside* the
//! simulator, across channel shards. Per-cell results are seed-reproducible
//! and independent of either choice.
//!
//! Writes `BENCH_netsim.json` (hand-formatted — the vendored serde is a
//! no-op shim) to the current directory or the path given with `--out`.
//!
//! Run with:
//! `cargo run --release -p wazabee-bench --bin netsim_scale [--smoke] [--out PATH]
//!  [--timeseries PATH] [--linger-ms N] [--shard-check PREFIX]`
//!
//! Live observability: with `WAZABEE_TELEMETRY_ADDR` set, a snapshot server
//! answers mid-run metric/profile requests (`--linger-ms` keeps it up after
//! the sweep so a poller can attach). `--timeseries PATH` runs one extra
//! attacked multi-channel cell with the sim-time timeline enabled and writes
//! its deterministic per-node `timeseries.jsonl` artifact — attacker onset
//! shows as the injector's `node.tx_total` series stepping off zero.
//!
//! `--shard-check PREFIX` runs a single 256-node / 8-channel attacked cell
//! and writes `PREFIX.log` (the committed event log) and `PREFIX.jsonl`
//! (the sim-time timeline): ci.sh runs it under `WAZABEE_THREADS=1` and
//! `=4` and byte-compares both files — the shard-equivalence gate.

use std::time::Instant as WallInstant;

use wazabee_dot154::mac::MacFrame;
use wazabee_dot154::Dot154Channel;
use wazabee_radio::Instant;
use wazabee_sim::{SimConfig, SpectrumSim};
use wazabee_zigbee::{NodeConfig, NodeRole, XbeeNode, XbeePayload};

const PAN: u16 = 0x1234;
const COORD: u16 = 0x0042;
/// Per-channel router short address in multi-channel cells.
const ROUTER: u16 = 0x0080;
/// Forged source address the injector claims.
const ATTACKER_SRC: u16 = 0xBEEF;
/// First channel of a multi-channel cell (channels run 11, 12, …).
const FIRST_CHANNEL: u8 = 11;

/// One sweep cell: a network size, channel spread, and whether the attacker
/// is on the air.
#[derive(Debug, Clone, Copy)]
struct Cell {
    nodes: usize,
    /// Populated 802.15.4 channels; 1 = the original single-channel star.
    channels: usize,
    attacker: bool,
    traffic_ms: u64,
}

/// What one cell measured.
struct CellResult {
    cell: Cell,
    readings_sent: u64,
    readings_delivered: u64,
    delivery_ratio: f64,
    collisions: u64,
    collision_rate: f64,
    cca_busy: u64,
    retries: u64,
    frames_abandoned: u64,
    total_tx: u64,
    wall_secs: f64,
    sim_wall_ratio: f64,
}

/// Drain window after the traffic deadline, so readings handed to the MAC
/// late in the window can still finish their data/ACK handshake (two hops
/// of it, for routed readings).
const DRAIN_MS: u64 = 50;

fn cell_seed(cell: Cell) -> u64 {
    // Every cell gets its own seed so no two cells share backoff draws.
    0x5EED_BEE5
        ^ (cell.nodes as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (cell.channels as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (cell.attacker as u64).wrapping_mul(0xD134_2543_DE82_EF95)
}

/// The original single-channel star: one coordinator, `n − 1` sensors with
/// fast (60–180 ms) periods — maximal contention on channel 14.
fn build_star(sim: &mut SpectrumSim, cell: Cell) {
    let ch = Dot154Channel::new(14).expect("channel 14 is valid");
    sim.add_zigbee(XbeeNode::new(
        NodeConfig {
            pan: PAN,
            short_addr: COORD,
            channel: ch,
        },
        NodeRole::Coordinator,
    ));
    for i in 0..cell.nodes - 1 {
        // Distinct periods (13 is invertible mod 120) so the timer phases
        // spread out instead of firing in lockstep.
        let interval_ms = 60 + (i as u64 * 13) % 120;
        sim.add_zigbee(XbeeNode::new(
            NodeConfig {
                pan: PAN,
                short_addr: 0x0100 + i as u16,
                channel: ch,
            },
            NodeRole::Sensor { interval_ms },
        ));
    }
}

/// A multi-channel deployment: nodes split evenly across `cell.channels`
/// adjacent channels, one PAN per channel with its own coordinator and a
/// router; odd-indexed sensors report through the router (two radio hops),
/// even-indexed ones straight to the coordinator. Sensor periods are
/// paper-faithful (§VI-A: readings every 2 s) — 1.0–2.0 s spread so phases
/// decorrelate.
fn build_multichannel(sim: &mut SpectrumSim, cell: Cell) {
    let per = cell.nodes / cell.channels;
    let rem = cell.nodes % cell.channels;
    let mut next_sensor_addr = 0x0100u16;
    for ci in 0..cell.channels {
        let ch = Dot154Channel::new(FIRST_CHANNEL + ci as u8).expect("channel in 11..=26");
        let pan = 0x1200 + ci as u16;
        let n_here = per + usize::from(ci < rem);
        sim.add_zigbee(XbeeNode::new(
            NodeConfig {
                pan,
                short_addr: COORD,
                channel: ch,
            },
            NodeRole::Coordinator,
        ));
        let has_router = n_here >= 3;
        if has_router {
            sim.add_zigbee(XbeeNode::new(
                NodeConfig {
                    pan,
                    short_addr: ROUTER,
                    channel: ch,
                },
                NodeRole::Router { forward_to: COORD },
            ));
        }
        let sensors = n_here.saturating_sub(1 + usize::from(has_router));
        for s in 0..sensors {
            let addr = next_sensor_addr;
            next_sensor_addr += 1;
            // 37 is invertible mod 1000: periods spread over 1.0–2.0 s.
            let interval_ms = 1_000 + (addr as u64 * 37) % 1_000;
            let node = XbeeNode::new(
                NodeConfig {
                    pan,
                    short_addr: addr,
                    channel: ch,
                },
                NodeRole::Sensor { interval_ms },
            );
            let node = if has_router && s % 2 == 1 {
                node.with_report_to(ROUTER)
            } else {
                node
            };
            sim.add_zigbee(node);
        }
    }
}

fn run_cell(cell: Cell) -> CellResult {
    run_cell_with(cell, None, None).0
}

/// Runs one cell; with `timeline_interval_us` set, records the sim-time
/// timeline at that interval and returns its JSONL rendering. `threads`
/// overrides [`SimConfig::threads`] (None inherits `WAZABEE_THREADS`).
fn run_cell_with(
    cell: Cell,
    timeline_interval_us: Option<u64>,
    threads: Option<usize>,
) -> (CellResult, Option<String>, Vec<String>) {
    let mut cfg = SimConfig::ideal();
    cfg.seed = cell_seed(cell);
    cfg.threads = threads;
    let mut sim = SpectrumSim::new(cfg);
    if let Some(interval) = timeline_interval_us {
        sim.enable_timeline(interval);
    }

    if cell.channels <= 1 {
        build_star(&mut sim, cell);
    } else {
        build_multichannel(&mut sim, cell);
    }

    let traffic_end = Instant(0).plus_ms(cell.traffic_ms);
    if cell.attacker {
        // A WazaBee injector keying forged readings every 7 ms with no
        // carrier sense: collisions with legitimate traffic are guaranteed.
        // In multi-channel cells it camps on the first channel.
        let (atk_ch, atk_pan) = if cell.channels <= 1 {
            (Dot154Channel::new(14).expect("valid"), PAN)
        } else {
            (Dot154Channel::new(FIRST_CHANNEL).expect("valid"), 0x1200)
        };
        let attacker = sim.add_wazabee_injector(atk_ch, 1.0);
        let mut t = Instant(0).plus_ms(5);
        let mut seq = 0u8;
        while t < traffic_end {
            let forged = MacFrame::data(
                atk_pan,
                ATTACKER_SRC,
                COORD,
                seq,
                XbeePayload::reading(0x7A7A).to_bytes(),
            );
            sim.inject_at(attacker, t, forged);
            t = t.plus_ms(7);
            seq = seq.wrapping_add(1);
        }
    }

    sim.set_traffic_deadline(traffic_end);
    let wall = WallInstant::now();
    sim.run_until(traffic_end.plus_ms(DRAIN_MS));
    let wall_secs = wall.elapsed().as_secs_f64().max(1e-9);

    let report = sim.report();
    let total_tx: u64 = sim.nodes().map(|n| n.tx_count()).sum();
    let sim_secs = (cell.traffic_ms + DRAIN_MS) as f64 / 1e3;
    let result = CellResult {
        cell,
        readings_sent: report.readings_sent,
        readings_delivered: report.readings_delivered,
        delivery_ratio: report.delivery_ratio,
        collisions: report.stats.collisions,
        collision_rate: report.stats.collisions as f64 / total_tx.max(1) as f64,
        cca_busy: report.stats.cca_busy,
        retries: report.stats.retries,
        frames_abandoned: report.stats.frames_abandoned,
        total_tx,
        wall_secs,
        sim_wall_ratio: sim_secs / wall_secs,
    };
    let timeline = timeline_interval_us.map(|_| sim.timeline_jsonl());
    let log = sim.event_log().to_vec();
    {
        // Per-cell delivery gauge: the watchdog's gauge_min rule watches the
        // worst cell across the whole (possibly parallel) sweep.
        let nodes = cell.nodes.to_string();
        let attacker = if cell.attacker { "true" } else { "false" };
        wazabee_telemetry::labeled_gauge!("netsim.delivery_ratio").set(
            &[("nodes", &nodes), ("attacker", attacker)],
            result.delivery_ratio,
        );
    }
    (result, timeline, log)
}

/// The `--shard-check` mode: one 256-node / 8-channel attacked cell with
/// the timeline on, committed artifacts written to `PREFIX.log` and
/// `PREFIX.jsonl`. Running this under different `WAZABEE_THREADS` values
/// must produce byte-identical files.
fn shard_check(prefix: &str) {
    let cell = Cell {
        nodes: 256,
        channels: 8,
        attacker: true,
        traffic_ms: 2_000,
    };
    let (result, timeline, log) = run_cell_with(cell, Some(10_000), None);
    let mut log_text = log.join("\n");
    log_text.push('\n');
    std::fs::write(format!("{prefix}.log"), log_text).expect("write event log");
    std::fs::write(
        format!("{prefix}.jsonl"),
        timeline.expect("timeline enabled"),
    )
    .expect("write timeline");
    eprintln!(
        "shard-check: n={} ch={} sent={} delivered={} collisions={} -> {prefix}.log/.jsonl",
        cell.nodes,
        cell.channels,
        result.readings_sent,
        result.readings_delivered,
        result.collisions,
    );
}

fn main() {
    let mut smoke = false;
    let mut attacker = true;
    let mut out_path = "BENCH_netsim.json".to_string();
    let mut timeseries_path: Option<String> = None;
    let mut shard_check_prefix: Option<String> = None;
    let mut linger_ms = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--no-attacker" => attacker = false,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            "--timeseries" => match args.next() {
                Some(p) => timeseries_path = Some(p),
                None => {
                    eprintln!("--timeseries requires a path");
                    std::process::exit(2);
                }
            },
            "--shard-check" => match args.next() {
                Some(p) => shard_check_prefix = Some(p),
                None => {
                    eprintln!("--shard-check requires a path prefix");
                    std::process::exit(2);
                }
            },
            "--linger-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => linger_ms = ms,
                None => {
                    eprintln!("--linger-ms requires a millisecond count");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "usage: netsim_scale [--smoke] [--no-attacker] [--out PATH] \
                     [--timeseries PATH] [--linger-ms N] [--shard-check PREFIX]   (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(prefix) = shard_check_prefix {
        shard_check(&prefix);
        return;
    }

    // Declarative health: the watchdog evaluates these over the live metric
    // registry; latched alerts surface in the console summary, in
    // `snapshot_json()["alerts"]`, and as a 503 from the `/healthz` route.
    // Carrier-sense-free injections discriminate attacked from clean runs
    // (legitimate CSMA collisions are routine at 1024 nodes, so raw
    // collision counts no longer do); the delivery floor catches degraded
    // large cells; extra frames mean an IDS watcher saw traffic the MAC log
    // cannot explain.
    wazabee_telemetry::health_rule!(
        "netsim.injection",
        wazabee_telemetry::Signal::counter("sim.injected"),
        > 0
    );
    wazabee_telemetry::health_rule!(
        "netsim.delivery.degraded",
        wazabee_telemetry::Signal::gauge_min("netsim.delivery_ratio"),
        < 0.95
    );
    wazabee_telemetry::health_rule!(
        "netsim.ids.extra_frames",
        wazabee_telemetry::Signal::counter("ids.stream.extra_frames"),
        > 0
    );
    wazabee_telemetry::start_watchdog(std::time::Duration::from_millis(100));

    match wazabee_telemetry::serve_from_env() {
        Ok(Some(addr)) => eprintln!("telemetry snapshot server on {addr}"),
        Ok(None) => {}
        Err(e) => eprintln!("telemetry snapshot server failed to start: {e}"),
    }

    // Single-channel stars (fast-reporting, maximal contention) plus
    // multi-channel deployments (paper-faithful 1–2 s periods, routed
    // two-hop paths) up to 1024 nodes over 16 channels.
    let (star_counts, star_traffic_ms): (&[usize], u64) = if smoke {
        (&[4, 8], 120)
    } else {
        (&[4, 8, 16, 32, 64], 400)
    };
    // Multi-channel traffic windows must cover the 1–2 s sensor periods.
    let multi: &[(usize, usize, u64)] = if smoke {
        &[(32, 4, 2_000), (1024, 16, 2_000)]
    } else {
        &[
            (128, 4, 2_000),
            (256, 8, 2_000),
            (512, 16, 2_000),
            (1024, 16, 2_000),
        ]
    };
    let threads = wazabee_bench::sweep::default_threads();

    let arms: &[bool] = if attacker { &[false, true] } else { &[false] };
    let mut cells: Vec<Cell> = star_counts
        .iter()
        .flat_map(|&nodes| {
            arms.iter().map(move |&attacker| Cell {
                nodes,
                channels: 1,
                attacker,
                traffic_ms: star_traffic_ms,
            })
        })
        .collect();
    cells.extend(multi.iter().flat_map(|&(nodes, channels, traffic_ms)| {
        arms.iter().map(move |&attacker| Cell {
            nodes,
            channels,
            attacker,
            traffic_ms,
        })
    }));
    eprintln!("sweeping {} cells on {threads} thread(s) ...", cells.len());

    // Small cells fan out across the sweep driver (one thread per cell, the
    // simulator kept single-threaded); large multi-channel cells run one at
    // a time with the thread budget spent across channel shards instead.
    // Committed results are identical either way — this only shapes wall
    // time.
    let split: Vec<(usize, Cell, bool)> = cells
        .iter()
        .copied()
        .enumerate()
        .map(|(k, c)| (k, c, c.nodes >= 128))
        .collect();
    let small: Vec<(usize, Cell)> = split
        .iter()
        .filter(|&&(_, _, big)| !big)
        .map(|&(k, c, _)| (k, c))
        .collect();
    let large: Vec<(usize, Cell)> = split
        .iter()
        .filter(|&&(_, _, big)| big)
        .map(|&(k, c, _)| (k, c))
        .collect();
    let mut slots: Vec<Option<CellResult>> = (0..cells.len()).map(|_| None).collect();
    for (k, r) in
        wazabee_bench::sweep::par_map(small, |(k, c)| (k, run_cell_with(c, None, Some(1)).0))
    {
        slots[k] = Some(r);
    }
    for (k, c) in large {
        slots[k] = Some(run_cell(c));
    }
    let results: Vec<CellResult> = slots.into_iter().map(|s| s.expect("cell ran")).collect();

    let mut rows = String::new();
    for (k, r) in results.iter().enumerate() {
        println!(
            "n={:4} ch={:2} attacker={:5} sent={:4} delivered={:4} ratio={:.3} collisions={:3} \
             retries={:3} abandoned={:2} sim/wall={:7.1}x",
            r.cell.nodes,
            r.cell.channels,
            r.cell.attacker,
            r.readings_sent,
            r.readings_delivered,
            r.delivery_ratio,
            r.collisions,
            r.retries,
            r.frames_abandoned,
            r.sim_wall_ratio,
        );
        rows.push_str(&format!(
            "    {{\n      \"nodes\": {},\n      \"channels\": {},\n      \"attacker\": {},\n      \"traffic_ms\": {},\n      \"readings_sent\": {},\n      \"readings_delivered\": {},\n      \"delivery_ratio\": {:.6},\n      \"collisions\": {},\n      \"collision_rate\": {:.6},\n      \"cca_busy\": {},\n      \"retries\": {},\n      \"frames_abandoned\": {},\n      \"total_tx\": {},\n      \"wall_secs\": {:.6},\n      \"sim_wall_ratio\": {:.3}\n    }}{}\n",
            r.cell.nodes,
            r.cell.channels,
            r.cell.attacker,
            r.cell.traffic_ms,
            r.readings_sent,
            r.readings_delivered,
            r.delivery_ratio,
            r.collisions,
            r.collision_rate,
            r.cca_busy,
            r.retries,
            r.frames_abandoned,
            r.total_tx,
            r.wall_secs,
            r.sim_wall_ratio,
            if k + 1 < results.len() { "," } else { "" },
        ));
    }

    // Hand-formatted JSON: the vendored serde derive is a no-op shim.
    let json = format!(
        "{{\n  \"bench\": \"netsim_scale\",\n  \"smoke\": {smoke},\n  \"threads\": {threads},\n  \"drain_ms\": {DRAIN_MS},\n  \"cells\": [\n{rows}  ]\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write benchmark artifact");
    eprintln!("wrote {out_path}");

    if let Some(ts_path) = timeseries_path {
        // One dedicated attacked multi-channel cell with the sim-time
        // timeline on: the artifact is deterministic (sim-time sampling of
        // sim state only), byte-identical at any WAZABEE_THREADS or IQ
        // chunk size.
        let cell = Cell {
            nodes: 32,
            channels: 4,
            attacker: true,
            traffic_ms: 2_000,
        };
        let (_, timeline, _) = run_cell_with(cell, Some(10_000), None);
        let jsonl = timeline.expect("timeline was enabled");
        std::fs::write(&ts_path, jsonl).expect("write timeseries artifact");
        eprintln!("wrote {ts_path}");
    }

    print!("{}", wazabee_telemetry::profile_summary());

    for a in wazabee_telemetry::evaluate_health() {
        if a.latched {
            eprintln!(
                "health alert: {} ({} {} {}, value {:?})",
                a.name,
                a.signal.metric(),
                a.cmp.symbol(),
                a.threshold,
                a.value,
            );
        }
    }
    match wazabee_telemetry::dump_trace_from_env() {
        Ok(true) => {
            if let Ok(p) = std::env::var(wazabee_telemetry::ENV_TRACE_OUT) {
                eprintln!("wrote Chrome trace to {p}");
            }
        }
        Ok(false) => {}
        Err(e) => eprintln!("trace dump failed: {e}"),
    }

    if linger_ms > 0 {
        // Keep the process (and the snapshot server) alive so a poller can
        // attach after the sweep finishes — used by ci.sh.
        eprintln!("lingering {linger_ms} ms for snapshot pollers ...");
        std::thread::sleep(std::time::Duration::from_millis(linger_ms));
    }
}
