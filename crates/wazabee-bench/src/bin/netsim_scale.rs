//! Network-scale simulation sweep: how does the PHY-in-the-loop spectrum
//! simulator behave — and how fast does it run — as the network grows?
//!
//! Each sweep cell builds a star network (one coordinator, `n − 1` periodic
//! sensors) on `wazabee-sim`'s shared medium and runs a fixed traffic window
//! under the noiseless `ideal` configuration, with and without a WazaBee
//! injector hammering the channel. Every frame is genuinely modulated,
//! superposed and demodulated, so the reported delivery ratios and collision
//! counts come out of the waveform math, not a packet-loss model.
//!
//! Cells run in parallel through the deterministic sweep driver
//! (`WAZABEE_THREADS` workers); per-cell results are seed-reproducible.
//!
//! Writes `BENCH_netsim.json` (hand-formatted — the vendored serde is a
//! no-op shim) to the current directory or the path given with `--out`.
//!
//! Run with:
//! `cargo run --release -p wazabee-bench --bin netsim_scale [--smoke] [--out PATH]
//!  [--timeseries PATH] [--linger-ms N]`
//!
//! Live observability: with `WAZABEE_TELEMETRY_ADDR` set, a snapshot server
//! answers mid-run metric/profile requests (`--linger-ms` keeps it up after
//! the sweep so a poller can attach). `--timeseries PATH` runs one extra
//! attacked cell with the sim-time timeline enabled and writes its
//! deterministic per-node `timeseries.jsonl` artifact — attacker onset shows
//! as the injector's `node.tx_total` series stepping off zero.

use std::time::Instant as WallInstant;

use wazabee_dot154::mac::MacFrame;
use wazabee_dot154::Dot154Channel;
use wazabee_radio::Instant;
use wazabee_sim::{SimConfig, SpectrumSim};
use wazabee_zigbee::{NodeConfig, NodeRole, XbeeNode, XbeePayload};

const PAN: u16 = 0x1234;
const COORD: u16 = 0x0042;
/// Forged source address the injector claims.
const ATTACKER_SRC: u16 = 0xBEEF;

/// One sweep cell: a network size and whether the attacker is on the air.
#[derive(Debug, Clone, Copy)]
struct Cell {
    nodes: usize,
    attacker: bool,
    traffic_ms: u64,
}

/// What one cell measured.
struct CellResult {
    cell: Cell,
    readings_sent: u64,
    readings_delivered: u64,
    delivery_ratio: f64,
    collisions: u64,
    collision_rate: f64,
    cca_busy: u64,
    retries: u64,
    frames_abandoned: u64,
    total_tx: u64,
    wall_secs: f64,
    sim_wall_ratio: f64,
}

/// Drain window after the traffic deadline, so readings handed to the MAC
/// late in the window can still finish their data/ACK handshake.
const DRAIN_MS: u64 = 50;

fn run_cell(cell: Cell) -> CellResult {
    run_cell_with(cell, None).0
}

/// Runs one cell; with `timeline_interval_us` set, records the sim-time
/// timeline at that interval and returns its JSONL rendering.
fn run_cell_with(cell: Cell, timeline_interval_us: Option<u64>) -> (CellResult, Option<String>) {
    let ch = Dot154Channel::new(14).expect("channel 14 is valid");
    let mut cfg = SimConfig::ideal();
    // Every cell gets its own seed so no two cells share backoff draws.
    cfg.seed = 0x5EED_BEE5
        ^ (cell.nodes as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (cell.attacker as u64).wrapping_mul(0xD134_2543_DE82_EF95);
    let mut sim = SpectrumSim::new(cfg);

    sim.add_zigbee(XbeeNode::new(
        NodeConfig {
            pan: PAN,
            short_addr: COORD,
            channel: ch,
        },
        NodeRole::Coordinator,
    ));
    for i in 0..cell.nodes - 1 {
        // Distinct periods (13 is invertible mod 120) so the timer phases
        // spread out instead of firing in lockstep.
        let interval_ms = 60 + (i as u64 * 13) % 120;
        sim.add_zigbee(XbeeNode::new(
            NodeConfig {
                pan: PAN,
                short_addr: 0x0100 + i as u16,
                channel: ch,
            },
            NodeRole::Sensor { interval_ms },
        ));
    }

    let traffic_end = Instant(0).plus_ms(cell.traffic_ms);
    if cell.attacker {
        // A WazaBee injector keying forged readings every 7 ms with no
        // carrier sense: collisions with legitimate traffic are guaranteed.
        let attacker = sim.add_wazabee_injector(ch, 1.0);
        let mut t = Instant(0).plus_ms(5);
        let mut seq = 0u8;
        while t < traffic_end {
            let forged = MacFrame::data(
                PAN,
                ATTACKER_SRC,
                COORD,
                seq,
                XbeePayload::reading(0x7A7A).to_bytes(),
            );
            sim.inject_at(attacker, t, forged);
            t = t.plus_ms(7);
            seq = seq.wrapping_add(1);
        }
    }

    sim.set_traffic_deadline(traffic_end);
    if let Some(interval) = timeline_interval_us {
        sim.enable_timeline(interval);
    }
    let wall = WallInstant::now();
    sim.run_until(traffic_end.plus_ms(DRAIN_MS));
    let wall_secs = wall.elapsed().as_secs_f64().max(1e-9);

    let report = sim.report();
    let total_tx: u64 = sim.nodes().iter().map(|n| n.tx_count()).sum();
    let sim_secs = (cell.traffic_ms + DRAIN_MS) as f64 / 1e3;
    let result = CellResult {
        cell,
        readings_sent: report.readings_sent,
        readings_delivered: report.readings_delivered,
        delivery_ratio: report.delivery_ratio,
        collisions: report.stats.collisions,
        collision_rate: report.stats.collisions as f64 / total_tx.max(1) as f64,
        cca_busy: report.stats.cca_busy,
        retries: report.stats.retries,
        frames_abandoned: report.stats.frames_abandoned,
        total_tx,
        wall_secs,
        sim_wall_ratio: sim_secs / wall_secs,
    };
    let timeline = timeline_interval_us.map(|_| sim.timeline_jsonl());
    {
        // Per-cell delivery gauge: the watchdog's gauge_min rule watches the
        // worst cell across the whole (possibly parallel) sweep.
        let nodes = cell.nodes.to_string();
        let attacker = if cell.attacker { "true" } else { "false" };
        wazabee_telemetry::labeled_gauge!("netsim.delivery_ratio").set(
            &[("nodes", &nodes), ("attacker", attacker)],
            result.delivery_ratio,
        );
    }
    (result, timeline)
}

fn main() {
    let mut smoke = false;
    let mut attacker = true;
    let mut out_path = "BENCH_netsim.json".to_string();
    let mut timeseries_path: Option<String> = None;
    let mut linger_ms = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--no-attacker" => attacker = false,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            "--timeseries" => match args.next() {
                Some(p) => timeseries_path = Some(p),
                None => {
                    eprintln!("--timeseries requires a path");
                    std::process::exit(2);
                }
            },
            "--linger-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => linger_ms = ms,
                None => {
                    eprintln!("--linger-ms requires a millisecond count");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "usage: netsim_scale [--smoke] [--no-attacker] [--out PATH] \
                     [--timeseries PATH] [--linger-ms N]   (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }

    // Declarative health: the watchdog evaluates these over the live metric
    // registry; latched alerts surface in the console summary, in
    // `snapshot_json()["alerts"]`, and as a 503 from the `/healthz` route.
    // Collisions discriminate attacked from clean smoke runs (clean small
    // cells never collide); the delivery floor catches degraded large cells;
    // extra frames mean an IDS watcher saw traffic the MAC log cannot explain.
    wazabee_telemetry::health_rule!(
        "netsim.collisions",
        wazabee_telemetry::Signal::counter("sim.collisions"),
        > 0
    );
    wazabee_telemetry::health_rule!(
        "netsim.delivery.degraded",
        wazabee_telemetry::Signal::gauge_min("netsim.delivery_ratio"),
        < 0.95
    );
    wazabee_telemetry::health_rule!(
        "netsim.ids.extra_frames",
        wazabee_telemetry::Signal::counter("ids.stream.extra_frames"),
        > 0
    );
    wazabee_telemetry::start_watchdog(std::time::Duration::from_millis(100));

    match wazabee_telemetry::serve_from_env() {
        Ok(Some(addr)) => eprintln!("telemetry snapshot server on {addr}"),
        Ok(None) => {}
        Err(e) => eprintln!("telemetry snapshot server failed to start: {e}"),
    }

    let (counts, traffic_ms): (&[usize], u64) = if smoke {
        (&[4, 8], 120)
    } else {
        (&[4, 8, 16, 32, 64], 400)
    };
    let threads = wazabee_bench::sweep::default_threads();

    let cells: Vec<Cell> = counts
        .iter()
        .flat_map(|&nodes| {
            let arms: &[bool] = if attacker { &[false, true] } else { &[false] };
            arms.iter().map(move |&attacker| Cell {
                nodes,
                attacker,
                traffic_ms,
            })
        })
        .collect();
    eprintln!(
        "sweeping {} cells ({traffic_ms} ms traffic each) on {threads} thread(s) ...",
        cells.len()
    );
    let results = wazabee_bench::sweep::par_map(cells, run_cell);

    let mut rows = String::new();
    for (k, r) in results.iter().enumerate() {
        println!(
            "n={:2} attacker={:5} sent={:3} delivered={:3} ratio={:.3} collisions={:3} \
             retries={:3} abandoned={:2} sim/wall={:7.1}x",
            r.cell.nodes,
            r.cell.attacker,
            r.readings_sent,
            r.readings_delivered,
            r.delivery_ratio,
            r.collisions,
            r.retries,
            r.frames_abandoned,
            r.sim_wall_ratio,
        );
        rows.push_str(&format!(
            "    {{\n      \"nodes\": {},\n      \"attacker\": {},\n      \"readings_sent\": {},\n      \"readings_delivered\": {},\n      \"delivery_ratio\": {:.6},\n      \"collisions\": {},\n      \"collision_rate\": {:.6},\n      \"cca_busy\": {},\n      \"retries\": {},\n      \"frames_abandoned\": {},\n      \"total_tx\": {},\n      \"wall_secs\": {:.6},\n      \"sim_wall_ratio\": {:.3}\n    }}{}\n",
            r.cell.nodes,
            r.cell.attacker,
            r.readings_sent,
            r.readings_delivered,
            r.delivery_ratio,
            r.collisions,
            r.collision_rate,
            r.cca_busy,
            r.retries,
            r.frames_abandoned,
            r.total_tx,
            r.wall_secs,
            r.sim_wall_ratio,
            if k + 1 < results.len() { "," } else { "" },
        ));
    }

    // Hand-formatted JSON: the vendored serde derive is a no-op shim.
    let json = format!(
        "{{\n  \"bench\": \"netsim_scale\",\n  \"smoke\": {smoke},\n  \"threads\": {threads},\n  \"traffic_ms\": {traffic_ms},\n  \"drain_ms\": {DRAIN_MS},\n  \"cells\": [\n{rows}  ]\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write benchmark artifact");
    eprintln!("wrote {out_path}");

    if let Some(ts_path) = timeseries_path {
        // One dedicated attacked cell with the sim-time timeline on: the
        // artifact is deterministic (sim-time sampling of sim state only),
        // byte-identical at any WAZABEE_THREADS or IQ chunk size.
        let cell = Cell {
            nodes: counts[0],
            attacker: true,
            traffic_ms,
        };
        let (_, timeline) = run_cell_with(cell, Some(10_000));
        let jsonl = timeline.expect("timeline was enabled");
        std::fs::write(&ts_path, jsonl).expect("write timeseries artifact");
        eprintln!("wrote {ts_path}");
    }

    print!("{}", wazabee_telemetry::profile_summary());

    for a in wazabee_telemetry::evaluate_health() {
        if a.latched {
            eprintln!(
                "health alert: {} ({} {} {}, value {:?})",
                a.name,
                a.signal.metric(),
                a.cmp.symbol(),
                a.threshold,
                a.value,
            );
        }
    }
    match wazabee_telemetry::dump_trace_from_env() {
        Ok(true) => {
            if let Ok(p) = std::env::var(wazabee_telemetry::ENV_TRACE_OUT) {
                eprintln!("wrote Chrome trace to {p}");
            }
        }
        Ok(false) => {}
        Err(e) => eprintln!("trace dump failed: {e}"),
    }

    if linger_ms > 0 {
        // Keep the process (and the snapshot server) alive so a poller can
        // attach after the sweep finishes — used by ci.sh.
        eprintln!("lingering {linger_ms} ms for snapshot pollers ...");
        std::thread::sleep(std::time::Duration::from_millis(linger_ms));
    }
}
