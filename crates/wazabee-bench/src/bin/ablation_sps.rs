//! Ablation: simulator fidelity vs oversampling factor (DESIGN.md decision
//! 4). The attack's conclusions should not depend on the simulation grid.
//!
//! Run with: `cargo run --release -p wazabee-bench --bin ablation_sps [frames]`

use wazabee::{WazaBeeRx, WazaBeeTx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
use wazabee_radio::{Link, LinkConfig, RfFrame};

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    println!("# Cross-technology link quality vs samples per symbol ({frames} frames per cell)");
    println!("sps,direction,valid,chip_errors_per_frame");
    let mut cells = Vec::new();
    for sps in [4usize, 8, 16] {
        for dir in ["ble_to_zigbee", "zigbee_to_ble"] {
            cells.push((sps, dir));
        }
    }
    // Each cell builds its own modems and seeds its own link; the parallel
    // sweep keeps output order.
    let lines = wazabee_bench::sweep::par_map(cells, |(sps, dir)| {
        let zigbee = Dot154Modem::new(sps);
        let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");
        let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");
        let mut link = Link::new(LinkConfig::office_3m(), sps as u64);
        let (mut valid, mut errs) = (0usize, 0usize);
        for k in 0..frames {
            let ppdu = Ppdu::new(append_fcs(&[k as u8; 8])).unwrap();
            let result = if dir == "ble_to_zigbee" {
                let air = tx.transmit(&ppdu);
                let heard = link.deliver(&RfFrame::new(2420, air, zigbee.sample_rate()), 2420);
                zigbee
                    .receive(&heard)
                    .map(|r| (r.fcs_ok(), r.psdu, r.chip_errors))
                    .map(|(f, p, c)| (p, c, f))
            } else {
                let air = zigbee.transmit(&ppdu);
                let heard = link.deliver(&RfFrame::new(2420, air, zigbee.sample_rate()), 2420);
                rx.receive(&heard)
                    .map(|r| (r.fcs_ok(), r.psdu.clone(), r.chip_errors))
                    .map(|(f, p, c)| (p, c, f))
            };
            if let Some((psdu, ce, fcs)) = result {
                if fcs && psdu == ppdu.psdu() {
                    valid += 1;
                    errs += ce;
                }
            }
        }
        format!(
            "{sps},{dir},{valid},{:.2}",
            errs as f64 / valid.max(1) as f64
        )
    });
    for line in lines {
        println!("{line}");
    }
}
