//! Ablation: the RX primitive's access-address correlator tolerance
//! (DESIGN.md decision 5). Too strict loses frames in noise; too loose
//! risks syncing on garbage.
//!
//! Run with: `cargo run --release -p wazabee-bench --bin ablation_sync [frames]`

use wazabee::WazaBeeRx;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
use wazabee_dsp::{AwgnSource, Iq};
use wazabee_radio::{Link, LinkConfig, RfFrame};

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let sps = 8;
    let zigbee = Dot154Modem::new(sps);
    println!("# RX sync tolerance sweep at 7 dB SNR ({frames} frames; plus false-sync probe on pure noise)");
    println!("max_sync_errors,valid,lost,false_syncs_in_noise");
    // Each tolerance seeds its own link and noise probes; the parallel sweep
    // keeps output order.
    let cells: Vec<usize> = vec![0, 1, 2, 3, 5, 8];
    let lines = wazabee_bench::sweep::par_map(cells, |tol| {
        let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps))
            .expect("LE 2M")
            .with_max_sync_errors(tol);
        let cfg = LinkConfig {
            snr_db: Some(7.0),
            ..LinkConfig::office_3m()
        };
        let mut link = Link::new(cfg, tol as u64 + 9);
        let (mut valid, mut lost) = (0usize, 0usize);
        for k in 0..frames {
            let ppdu = Ppdu::new(append_fcs(&[k as u8; 6])).unwrap();
            let air = zigbee.transmit(&ppdu);
            let heard = link.deliver(&RfFrame::new(2420, air, zigbee.sample_rate()), 2420);
            match rx.receive(&heard) {
                Some(r) if r.fcs_ok() && r.psdu == ppdu.psdu() => valid += 1,
                _ => lost += 1,
            }
        }
        // False-sync probe: how often does pure noise trip the correlator?
        let mut false_syncs = 0usize;
        for probe in 0..20 {
            let mut noise = vec![Iq::ZERO; 20_000];
            AwgnSource::new(1_000 + probe, 0.7).add_to(&mut noise);
            if rx.receive(&noise).is_some() {
                false_syncs += 1;
            }
        }
        format!("{tol},{valid},{lost},{false_syncs}/20")
    });
    for line in lines {
        println!("{line}");
    }
}
