//! RX-pipeline throughput benchmark: how fast does the packed-bitstream
//! receive path chew through captures, and how much faster is the packed
//! despreading kernel than the scalar reference?
//!
//! Measures:
//! * end-to-end reception-primitive throughput in frames per second over a
//!   batch of pre-generated IQ captures, swept in parallel via the
//!   deterministic sweep driver (`WAZABEE_THREADS` workers),
//! * despreading throughput in Msymbols per second for the packed `u32`
//!   kernel and the scalar byte-per-bit reference, plus their ratio.
//!
//! Writes `BENCH_rx_throughput.json` (hand-formatted — the vendored serde is
//! a no-op shim) to the current directory or the path given with `--out`.
//!
//! Run with:
//! `cargo run --release -p wazabee-bench --bin rx_throughput [--smoke] [--out PATH]`

use std::time::Instant;

use wazabee::msk::{correspondence_table, despread_msk_block_packed, despread_msk_block_scalar};
use wazabee::WazaBeeRx;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
use wazabee_dsp::PackedBits;
use wazabee_radio::{Link, LinkConfig, RfFrame};

/// One pre-generated capture: the on-air IQ of a counter frame after the
/// office channel, paired with the PSDU it should decode to.
struct Capture {
    air: Vec<wazabee_dsp::Iq>,
    psdu: Vec<u8>,
}

fn generate_captures(count: usize, sps: usize) -> Vec<Capture> {
    let zigbee = Dot154Modem::new(sps);
    let cfg = LinkConfig {
        snr_db: Some(14.0),
        ..LinkConfig::office_3m()
    };
    (0..count)
        .map(|k| {
            let ppdu = Ppdu::new(append_fcs(&[k as u8, 0x5A, 0xA5, k as u8, 1, 2, 3, 4])).unwrap();
            let air = zigbee.transmit(&ppdu);
            let mut link = Link::new(cfg, 0xBEE5 + k as u64);
            let heard = link.deliver(&RfFrame::new(2420, air, zigbee.sample_rate()), 2420);
            Capture {
                air: heard,
                psdu: ppdu.psdu().to_vec(),
            }
        })
        .collect()
}

/// End-to-end RX throughput: decode every capture with the reception
/// primitive, in parallel, and report (decoded, frames_per_sec).
fn bench_rx(captures: &[Capture], sps: usize) -> (usize, f64, f64) {
    let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");
    let start = Instant::now();
    let decoded = wazabee_bench::sweep::par_map(captures.iter().collect(), |c| {
        rx.receive(&c.air)
            .is_some_and(|r| r.fcs_ok() && r.psdu == c.psdu) as usize
    })
    .into_iter()
    .sum();
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (decoded, captures.len() as f64 / secs, secs)
}

/// Despreading micro-benchmark: a long stream of noisy 31-bit MSK blocks is
/// despread with the packed kernel and the scalar reference; both checksums
/// must agree. Returns (packed Msym/s, scalar Msym/s).
fn bench_despread(symbols: usize) -> (f64, f64) {
    // Deterministic pseudo-noisy blocks derived from the real table.
    let table = correspondence_table();
    let blocks: Vec<[u8; 31]> = (0..symbols)
        .map(|k| {
            let mut b = table[k % 16];
            b[(k * 7) % 31] ^= (k % 3 == 0) as u8;
            b[(k * 13) % 31] ^= (k % 5 == 0) as u8;
            b
        })
        .collect();
    // One contiguous packed stream, as the receive path sees it.
    let flat: Vec<u8> = blocks.iter().flatten().copied().collect();
    let stream = PackedBits::from_bits(&flat);

    let start = Instant::now();
    let mut packed_sum = 0usize;
    for k in 0..symbols {
        let block = stream.extract_u32(k * 31, 31);
        let (sym, d) = despread_msk_block_packed(block);
        packed_sum += usize::from(sym) + d;
    }
    let packed_secs = start.elapsed().as_secs_f64().max(1e-9);

    let start = Instant::now();
    let mut scalar_sum = 0usize;
    for b in &blocks {
        let (sym, d) = despread_msk_block_scalar(b);
        scalar_sum += usize::from(sym) + d;
    }
    let scalar_secs = start.elapsed().as_secs_f64().max(1e-9);

    assert_eq!(packed_sum, scalar_sum, "packed/scalar despread divergence");
    let msym = |secs: f64| symbols as f64 / secs / 1e6;
    (msym(packed_secs), msym(scalar_secs))
}

/// Discriminator micro-benchmark over real capture IQ: the planar `f32` SIMD
/// kernel versus the interleaved `f64` reference the receive path used before
/// going planar. Returns (simd Msamples/s, f64 Msamples/s).
fn bench_discriminate(captures: &[Capture], passes: usize) -> (f64, f64) {
    let all: Vec<wazabee_dsp::Iq> = captures.iter().flat_map(|c| c.air.clone()).collect();
    let planar = wazabee_dsp::IqBuf::from_interleaved(&all);
    let n = all.len();

    let start = Instant::now();
    let mut out_f32 = Vec::with_capacity(n);
    for _ in 0..passes {
        out_f32.clear();
        wazabee_dsp::simd::discriminate_planar_into(planar.i(), planar.q(), &mut out_f32);
    }
    let simd_secs = start.elapsed().as_secs_f64().max(1e-9);

    let start = Instant::now();
    let mut out_f64 = Vec::with_capacity(n);
    for _ in 0..passes {
        out_f64.clear();
        wazabee_dsp::discriminator::discriminate_into(&all, &mut out_f64);
    }
    let f64_secs = start.elapsed().as_secs_f64().max(1e-9);

    assert_eq!(
        out_f32.len(),
        out_f64.len(),
        "discriminator length divergence"
    );
    let msps = |secs: f64| (n * passes) as f64 / secs / 1e6;
    (msps(simd_secs), msps(f64_secs))
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_rx_throughput.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("usage: rx_throughput [--smoke] [--out PATH]   (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    match wazabee_telemetry::serve_from_env() {
        Ok(Some(addr)) => eprintln!("telemetry snapshot server on {addr}"),
        Ok(None) => {}
        Err(e) => eprintln!("telemetry snapshot server failed to start: {e}"),
    }

    let sps = 8;
    let (frames, symbols) = if smoke { (8, 200_000) } else { (64, 2_000_000) };
    let threads = wazabee_bench::sweep::default_threads();

    eprintln!("generating {frames} captures ...");
    let captures = generate_captures(frames, sps);
    eprintln!("decoding on {threads} thread(s) ...");
    let (decoded, frames_per_sec, rx_secs) = bench_rx(&captures, sps);
    eprintln!("despreading {symbols} symbols, packed vs scalar ...");
    let (packed_msym, scalar_msym) = bench_despread(symbols);
    let speedup = packed_msym / scalar_msym;
    eprintln!("discriminating capture IQ, planar f32 vs interleaved f64 ...");
    let (simd_msps, f64_msps) = bench_discriminate(&captures, if smoke { 4 } else { 16 });
    let simd_speedup = simd_msps / f64_msps;

    println!("rx: {decoded}/{frames} frames decoded in {rx_secs:.3} s = {frames_per_sec:.1} frames/sec ({threads} threads)");
    println!("despread: packed {packed_msym:.2} Msym/s, scalar {scalar_msym:.2} Msym/s");
    println!("despread speedup (packed/scalar): {speedup:.2}x");
    println!(
        "discriminate: planar {simd_msps:.2} Msamples/s, f64 {f64_msps:.2} Msamples/s -> simd_speedup {simd_speedup:.2}x"
    );

    // Hand-formatted JSON: the vendored serde derive is a no-op shim.
    let json = format!(
        "{{\n  \"bench\": \"rx_throughput\",\n  \"smoke\": {smoke},\n  \"threads\": {threads},\n  \"rx\": {{\n    \"frames\": {frames},\n    \"decoded\": {decoded},\n    \"seconds\": {rx_secs:.6},\n    \"frames_per_sec\": {frames_per_sec:.3}\n  }},\n  \"despread\": {{\n    \"symbols\": {symbols},\n    \"packed_msymbols_per_sec\": {packed_msym:.3},\n    \"scalar_msymbols_per_sec\": {scalar_msym:.3},\n    \"speedup\": {speedup:.3}\n  }},\n  \"discriminate\": {{\n    \"simd_msamples_per_sec\": {simd_msps:.3},\n    \"f64_msamples_per_sec\": {f64_msps:.3},\n    \"simd_speedup\": {simd_speedup:.3}\n  }}\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write benchmark artifact");
    eprintln!("wrote {out_path}");
    print!("{}", wazabee_telemetry::profile_summary());
}
