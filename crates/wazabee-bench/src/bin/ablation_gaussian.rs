//! Ablation: the paper's theory neglects the Gaussian filter (§IV-B1) and
//! relies on Hamming-distance despreading to absorb the resulting chip
//! errors. How many errors does BT = 0.5 shaping actually introduce, versus
//! the ideal rectangular (pure MSK) modulator?
//!
//! Run with: `cargo run --release -p wazabee-bench --bin ablation_gaussian [frames]`

use wazabee::WazaBeeTx;
use wazabee_ble::gfsk::GfskParams;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
use wazabee_radio::{Link, LinkConfig, RfFrame};

fn run(shaping: &str, params: GfskParams, frames: usize, snr_db: f64) -> (usize, f64) {
    let sps = 8;
    let zigbee = Dot154Modem::new(sps);
    let tx = WazaBeeTx::new(BleModem::with_params(BlePhy::Le2M, params)).expect("2 Mbit/s");
    let cfg = LinkConfig {
        snr_db: Some(snr_db),
        ..LinkConfig::office_3m()
    };
    let mut link = Link::new(cfg, 77);
    let (mut valid, mut chip_errs) = (0usize, 0usize);
    for k in 0..frames {
        let ppdu = Ppdu::new(append_fcs(&[k as u8; 12])).unwrap();
        let air = tx.transmit(&ppdu);
        let heard = link.deliver(&RfFrame::new(2420, air, zigbee.sample_rate()), 2420);
        if let Some(r) = zigbee.receive(&heard) {
            if r.fcs_ok() {
                valid += 1;
                chip_errs += r.chip_errors;
            }
        }
    }
    let _ = shaping;
    (valid, chip_errs as f64 / valid.max(1) as f64)
}

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    println!("# Gaussian-filter cost on the TX primitive ({frames} frames per cell)");
    println!("snr_db,shaping,valid,chip_errors_per_frame");
    let mut cells = Vec::new();
    for snr in [8.0, 10.0, 12.0, 16.0, 22.0] {
        cells.push((snr, "BT=0.5", "gaussian", GfskParams::ble(BlePhy::Le2M, 8)));
        cells.push((snr, "rectangular", "rect", GfskParams::msk(BlePhy::Le2M, 8)));
    }
    // Each cell seeds its own link; the parallel sweep keeps output order.
    let lines = wazabee_bench::sweep::par_map(cells, |(snr, label, shaping, params)| {
        let (v, e) = run(shaping, params, frames, snr);
        format!("{snr},{label},{v},{e:.2}")
    });
    for line in lines {
        println!("{line}");
    }
}
