//! Ablation: carrier-frequency offset tolerance. Real BLE crystals drift by
//! tens of kHz; how much CFO can the cross-technology link absorb before the
//! discriminator's decision threshold shifts too far?
//!
//! Run with: `cargo run --release -p wazabee-bench --bin ablation_cfo [frames]`

use wazabee::{WazaBeeRx, WazaBeeTx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
use wazabee_radio::{Link, LinkConfig, RfFrame};

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let sps = 8;
    let zigbee = Dot154Modem::new(sps);
    let tx = WazaBeeTx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");
    let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");
    println!(
        "# Cross-technology link vs carrier frequency offset ({frames} frames per cell, 18 dB)"
    );
    println!("cfo_khz,direction,valid,chip_errors_per_frame");
    let mut cells = Vec::new();
    for cfo_khz in [0.0, 20.0, 50.0, 100.0, 150.0, 200.0, 300.0] {
        for dir in ["ble_to_zigbee", "zigbee_to_ble"] {
            cells.push((cfo_khz, dir));
        }
    }
    // Each cell seeds its own link; the parallel sweep keeps output order.
    let lines = wazabee_bench::sweep::par_map(cells, |(cfo_khz, dir)| {
        let cfg = LinkConfig {
            snr_db: Some(18.0),
            cfo_hz: cfo_khz * 1e3,
            ..LinkConfig::office_3m()
        };
        let mut link = Link::new(cfg, cfo_khz as u64 + 1);
        let (mut valid, mut errs) = (0usize, 0usize);
        for k in 0..frames {
            let ppdu = Ppdu::new(append_fcs(&[k as u8; 8])).unwrap();
            let got = if dir == "ble_to_zigbee" {
                let heard = link.deliver(
                    &RfFrame::new(2420, tx.transmit(&ppdu), zigbee.sample_rate()),
                    2420,
                );
                zigbee
                    .receive(&heard)
                    .map(|r| (r.fcs_ok(), r.psdu, r.chip_errors))
            } else {
                let heard = link.deliver(
                    &RfFrame::new(2420, zigbee.transmit(&ppdu), zigbee.sample_rate()),
                    2420,
                );
                rx.receive(&heard)
                    .map(|r| (r.fcs_ok(), r.psdu.clone(), r.chip_errors))
            };
            if let Some((fcs, psdu, ce)) = got {
                if fcs && psdu == ppdu.psdu() {
                    valid += 1;
                    errs += ce;
                }
            }
        }
        format!(
            "{cfo_khz},{dir},{valid},{:.2}",
            errs as f64 / valid.max(1) as f64
        )
    });
    for line in lines {
        println!("{line}");
    }
}
