//! Regenerates paper Figure 3: the O-QPSK constellation with half-sine
//! pulse shaping — four states, every transition a ±π/2 rotation whose
//! direction is set by the incoming (even or odd) chip.
//!
//! Run with: `cargo run -p wazabee-bench --bin fig3`

use wazabee_dot154::oqpsk::modulate_chips;
use wazabee_dsp::discriminator::phase_trajectory;

fn main() {
    println!("# Figure 3 — I/Q representation of O-QPSK with half-sine pulse shaping");
    println!("# Constellation states (at half-chip instants): label = (even chip, odd chip)");
    for (label, angle) in [("11", 45.0), ("01", 135.0), ("00", 225.0), ("10", 315.0)] {
        let rad = angle * std::f64::consts::PI / 180.0;
        println!(
            "state {label}: ({:+.4}, {:+.4}) at {angle}°",
            rad.cos(),
            rad.sin()
        );
    }
    println!();
    println!("# Transitions: every chip rotates the phase by ±π/2");
    println!("prev_chip,new_chip,rail,rotation");
    let spc = 32;
    for rail in ["even", "odd"] {
        for prev in [0u8, 1] {
            for new in [0u8, 1] {
                // Build a 4-chip context placing (prev, new) on the wanted rail.
                let chips: Vec<u8> = if rail == "even" {
                    vec![1, prev, new, 1] // transition during interval 2 (even chip arrives)
                } else {
                    vec![prev, new, 1, 1] // transition during interval 1 (odd chip arrives)
                };
                let samples = modulate_chips(&chips, spc);
                let phase = phase_trajectory(&samples);
                let idx = if rail == "even" { 2 } else { 1 };
                let d = phase[(idx + 1) * spc] - phase[idx * spc];
                let dir = if d > 0.0 {
                    "+π/2 (CCW, msk 1)"
                } else {
                    "-π/2 (CW, msk 0)"
                };
                println!("{prev},{new},{rail},{dir}");
            }
        }
    }
}
