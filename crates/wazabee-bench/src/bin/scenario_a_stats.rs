//! Statistics for Scenario A (paper Figure 4): the probability that the
//! extended-advertising injection lands on the target Zigbee channel, and
//! how many events an attacker needs for the first successful injection.
//!
//! Run with: `cargo run --release -p wazabee-bench --bin scenario_a_stats [phones] [events]`

use wazabee::scenario_a::{EventOutcome, ScenarioA};
use wazabee_ble::adv::BleAddress;
use wazabee_chips::Smartphone;
use wazabee_dot154::{fcs::append_fcs, Dot154Channel, Ppdu};
use wazabee_radio::{Link, LinkConfig};

fn main() {
    let phones: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let events: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let target = Dot154Channel::new(14).expect("channel 14");
    let ppdu = Ppdu::new(append_fcs(&[0x01, 0x39, 0x05])).expect("fits");

    println!(
        "# Scenario A statistics — {phones} phones x {events} advertising events, target {target}"
    );
    println!("phone,access_address,events,on_target,injected,first_success_event");
    let mut total_events = 0usize;
    let mut total_injected = 0usize;
    let mut first_successes = Vec::new();
    for p in 0..phones {
        let phone = Smartphone::new(BleAddress::new([p as u8, 0x4F, 0x33, 0x21, 0x8A, 0xC5]), 8);
        let aa = phone.access_address();
        let mut scenario = ScenarioA::new(phone, target, 8).expect("Table II channel");
        scenario.arm(&ppdu).expect("fits");
        let mut link = Link::new(LinkConfig::office_3m(), 1000 + p as u64);
        let outcomes = scenario.run_events(events, &mut link);
        let on_target = outcomes
            .iter()
            .filter(|o| !matches!(o, EventOutcome::WrongChannel(_)))
            .count();
        let injected = outcomes
            .iter()
            .filter(|o| matches!(o, EventOutcome::Injected(_)))
            .count();
        let first = outcomes
            .iter()
            .position(|o| matches!(o, EventOutcome::Injected(_)));
        if let Some(f) = first {
            first_successes.push(f + 1);
        }
        println!(
            "{p},0x{aa:08X},{events},{on_target},{injected},{}",
            first
                .map(|f| (f + 1).to_string())
                .unwrap_or_else(|| "-".into())
        );
        total_events += events;
        total_injected += injected;
    }
    println!();
    if total_events > 0 {
        println!(
            "# aggregate injection rate: {:.2}% per event (CSA#2 uniform over 37 channels => 2.70%)",
            100.0 * total_injected as f64 / total_events as f64
        );
    } else {
        println!("# no events run");
    }
    if !first_successes.is_empty() {
        let mean = first_successes.iter().sum::<usize>() as f64 / first_successes.len() as f64;
        println!(
            "# first success after {mean:.1} events on average (geometric expectation 37); \
             {} of {phones} phones succeeded within {events} events",
            first_successes.len()
        );
    }
}
