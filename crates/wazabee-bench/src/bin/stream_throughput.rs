//! Streaming-receiver benchmark: how fast does `StreamingRx` chew through a
//! long chunk-fed capture holding many frames and decoy bursts, and how many
//! frames does resync-after-failure recover that the old first-attempt-only
//! receiver lost?
//!
//! Measures:
//! * sustained streaming throughput in frames per second over one long
//!   multi-frame buffer (decoy false-sync bursts interleaved every ~8th
//!   frame), fed in fixed 4096-sample chunks as an SDR front-end would,
//! * the resync ablation on a decoy-then-frames fixture: frames recovered
//!   with re-arming versus the old stop-at-first-attempt behaviour.
//!
//! Writes `BENCH_stream_throughput.json` (hand-formatted — the vendored
//! serde is a no-op shim) to the current directory or the path given with
//! `--out`.
//!
//! Run with:
//! `cargo run --release -p wazabee-bench --bin stream_throughput [--smoke] [--out PATH] [--engine planar|reference|both]`
//!
//! `--engine planar` / `--engine reference` run exactly one decode engine so
//! the end-of-run stage profile attributes `dsp.*` self-time to that engine
//! alone (both engines share stage names); the default `both` also re-streams
//! through the f64 reference engine and reports `simd_speedup`.

use std::time::Instant;

use wazabee::WazaBeeRx;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::msk::frame_chips_to_msk;
use wazabee_dot154::pn::pn_sequence;
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
use wazabee_dsp::Iq;
use wazabee_radio::{Link, LinkConfig, RfFrame};

/// Chunk size of the simulated SDR front-end, in samples.
const CHUNK_SAMPLES: usize = 4096;

/// A decoy burst: the access-address sync pattern followed by a non-SFD
/// symbol — the correlator fires, the SFD check kills the attempt, and a
/// first-attempt-only receiver would abandon everything behind it.
fn decoy_burst(ble: &BleModem) -> Vec<Iq> {
    let mut bits: Vec<u8> = (0..wazabee::tx::TX_WARMUP_BITS)
        .map(|k| (k % 2) as u8)
        .collect();
    let mut chips = pn_sequence(0).to_vec();
    chips.extend(pn_sequence(5));
    bits.extend(frame_chips_to_msk(&chips, 0));
    ble.transmit_raw(&bits)
}

/// One long capture: `frames` office-channel deliveries back to back, with a
/// decoy burst spliced in before every ~8th frame.
fn build_stream(frames: usize, sps: usize) -> Vec<Iq> {
    let zigbee = Dot154Modem::new(sps);
    let ble = BleModem::new(BlePhy::Le2M, sps);
    let cfg = LinkConfig {
        snr_db: Some(16.0),
        ..LinkConfig::office_3m()
    };
    let mut buf = Vec::new();
    for k in 0..frames {
        if k % 8 == 3 {
            buf.extend(decoy_burst(&ble));
        }
        let ppdu = Ppdu::new(append_fcs(&[k as u8, 0xA5, 1, 2, 3, 4, 5, 6])).unwrap();
        let air = zigbee.transmit(&ppdu);
        let mut link = Link::new(cfg, 0x57EA + k as u64);
        buf.extend(link.deliver(&RfFrame::new(2420, air, zigbee.sample_rate()), 2420));
    }
    buf
}

/// Feeds `buf` through a fresh streaming receiver in fixed-size chunks,
/// returning every committed result.
fn stream_all(
    rx: &WazaBeeRx<BleModem>,
    buf: &[Iq],
) -> Vec<Result<wazabee_dot154::ReceivedPpdu, wazabee::WazaBeeError>> {
    let mut stream = rx.stream();
    let mut results = Vec::new();
    for chunk in buf.chunks(CHUNK_SAMPLES) {
        results.extend(stream.push(chunk));
        // Wall-clock time series: committed-frame count after each chunk, so
        // a live snapshot poller can watch decode progress mid-run.
        wazabee_telemetry::timeseries!("stream.results_total", results.len() as f64);
    }
    results.extend(stream.finish());
    results
}

/// Same capture through the retained interleaved-`f64` reference engine —
/// the pre-SIMD per-lane path — for the `simd_speedup` row.
fn stream_all_reference(
    rx: &WazaBeeRx<BleModem>,
    buf: &[Iq],
) -> Vec<Result<wazabee_dot154::ReceivedPpdu, wazabee::WazaBeeError>> {
    let mut stream = rx.stream_reference();
    let mut results = Vec::new();
    for chunk in buf.chunks(CHUNK_SAMPLES) {
        results.extend(stream.push(chunk));
    }
    results.extend(stream.finish());
    results
}

/// Which decode engine(s) the run exercises. `Both` (the default) times the
/// planar engine and then re-streams through the f64 reference for the
/// `simd_speedup` row; the single-engine modes exist so the stage profiler
/// sees exactly one engine's spans — the two share `dsp.*` stage names, so a
/// mixed run cannot attribute self-time to either path.
#[derive(PartialEq, Clone, Copy)]
enum Engine {
    Planar,
    Reference,
    Both,
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_stream_throughput.json".to_string();
    let mut engine = Engine::Both;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            "--engine" => match args.next().as_deref() {
                Some("planar") => engine = Engine::Planar,
                Some("reference") => engine = Engine::Reference,
                Some("both") => engine = Engine::Both,
                other => {
                    eprintln!("--engine takes planar|reference|both (got {other:?})");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "usage: stream_throughput [--smoke] [--out PATH] [--engine planar|reference|both]   (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }

    // Health rules over the streaming decode path: more than half the
    // committed frames failing their FCS, or the despread p95 Hamming
    // distance drifting toward the reject threshold, means the radio
    // diversion itself has gone wrong — not just one noisy frame.
    wazabee_telemetry::health_rule!(
        "stream.fcs.failing",
        wazabee_telemetry::Signal::ratio("wazabee.rx.fcs.fail", "wazabee.stream.frames"),
        > 0.5
    );
    wazabee_telemetry::health_rule!(
        "stream.despread.drifting",
        wazabee_telemetry::Signal::quantile("wazabee.rx.despread_hamming", 0.95),
        > 12.0
    );
    wazabee_telemetry::start_watchdog(std::time::Duration::from_millis(100));

    match wazabee_telemetry::serve_from_env() {
        Ok(Some(addr)) => eprintln!("telemetry snapshot server on {addr}"),
        Ok(None) => {}
        Err(e) => eprintln!("telemetry snapshot server failed to start: {e}"),
    }

    let sps = 8;
    let frames = if smoke { 8 } else { 64 };
    let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps)).expect("LE 2M");

    eprintln!("building a {frames}-frame stream with decoy bursts ...");
    let buf = build_stream(frames, sps);
    eprintln!(
        "streaming {} samples in {CHUNK_SAMPLES}-sample chunks ...",
        buf.len()
    );
    let start = Instant::now();
    let results = if engine == Engine::Reference {
        stream_all_reference(&rx, &buf)
    } else {
        stream_all(&rx, &buf)
    };
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let recovered = results
        .iter()
        .filter(|r| r.as_ref().is_ok_and(|f| f.fcs_ok()))
        .count();
    let frames_per_sec = frames as f64 / secs;

    let (ref_frames_per_sec, simd_speedup) = if engine == Engine::Both {
        eprintln!("re-streaming through the f64 reference engine ...");
        let ref_start = Instant::now();
        let ref_results = stream_all_reference(&rx, &buf);
        let ref_secs = ref_start.elapsed().as_secs_f64().max(1e-9);
        let ref_recovered = ref_results
            .iter()
            .filter(|r| r.as_ref().is_ok_and(|f| f.fcs_ok()))
            .count();
        if ref_recovered != recovered {
            eprintln!(
                "warning: reference engine recovered {ref_recovered} frames vs planar {recovered}"
            );
        }
        let ref_fps = frames as f64 / ref_secs;
        (ref_fps, frames_per_sec / ref_fps)
    } else {
        (f64::NAN, f64::NAN)
    };

    // Resync ablation fixture: a decoy burst in front of three clean frames.
    // `with_resync` streams the whole fixture; `without_resync` models the
    // old receiver, which committed to the first attempt and stopped.
    eprintln!("resync ablation fixture: decoy + 3 frames ...");
    let zigbee = Dot154Modem::new(sps);
    let ble = BleModem::new(BlePhy::Le2M, sps);
    let mut fixture = decoy_burst(&ble);
    for k in 0..3u8 {
        fixture.extend(vec![Iq::ZERO; 700 + 200 * usize::from(k)]);
        let ppdu = Ppdu::new(append_fcs(&[0xF0 | k, 0x0D, 1, 2])).unwrap();
        fixture.extend(zigbee.transmit(&ppdu));
    }
    let fixture_results = if engine == Engine::Reference {
        stream_all_reference(&rx, &fixture)
    } else {
        stream_all(&rx, &fixture)
    };
    let with_resync = fixture_results
        .iter()
        .filter(|r| r.as_ref().is_ok_and(|f| f.fcs_ok()))
        .count();
    let without_resync = usize::from(matches!(fixture_results.first(), Some(Ok(_))));

    println!(
        "stream: {recovered}/{frames} frames recovered in {secs:.3} s = {frames_per_sec:.1} frames/sec ({} attempts)",
        results.len()
    );
    if engine == Engine::Both {
        println!(
            "reference engine: {ref_frames_per_sec:.1} frames/sec -> simd_speedup {simd_speedup:.2}x"
        );
    }
    println!("fixture: {with_resync}/3 frames with resync, {without_resync}/3 without");

    // Hand-formatted JSON: the vendored serde derive is a no-op shim. The
    // reference rows are null in single-engine profiling runs — only the
    // default dual-engine run measures a speedup.
    let (ref_fps_json, speedup_json) = if engine == Engine::Both {
        (
            format!("{ref_frames_per_sec:.3}"),
            format!("{simd_speedup:.3}"),
        )
    } else {
        ("null".to_string(), "null".to_string())
    };
    let json = format!(
        "{{\n  \"bench\": \"stream_throughput\",\n  \"smoke\": {smoke},\n  \"stream\": {{\n    \"frames\": {frames},\n    \"recovered\": {recovered},\n    \"chunk_samples\": {CHUNK_SAMPLES},\n    \"seconds\": {secs:.6},\n    \"frames_per_sec\": {frames_per_sec:.3},\n    \"reference_frames_per_sec\": {ref_fps_json},\n    \"simd_speedup\": {speedup_json}\n  }},\n  \"fixture\": {{\n    \"frames\": 3,\n    \"recovered_with_resync\": {with_resync},\n    \"recovered_without_resync\": {without_resync}\n  }}\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write benchmark artifact");
    eprintln!("wrote {out_path}");
    print!("{}", wazabee_telemetry::profile_summary());

    for a in wazabee_telemetry::evaluate_health() {
        if a.latched {
            eprintln!("health alert: {} (value {:?})", a.name, a.value);
        }
    }
    match wazabee_telemetry::dump_trace_from_env() {
        Ok(true) => {
            if let Ok(p) = std::env::var(wazabee_telemetry::ENV_TRACE_OUT) {
                eprintln!("wrote Chrome trace to {p}");
            }
        }
        Ok(false) => {}
        Err(e) => eprintln!("trace dump failed: {e}"),
    }
}
