//! Serve-plane benchmark: many concurrent loopback client sessions against
//! one `wazabee-serve` worker pool.
//!
//! Spawns N client threads, each opening its own TCP connection to a local
//! [`wazabee_serve::Server`], announcing a session name and streaming a
//! clean multi-frame 802.15.4 capture through the length-prefixed wire
//! protocol — even-numbered sessions as cf32, odd-numbered as u8 offset-128,
//! so both wire codecs are on the hot path. Clients pace their chunks on a
//! fixed interval, the way a real SDR front-end delivers samples at its
//! sample rate: the serve plane is measured on *sustained* concurrent
//! streaming, not on draining an instantaneous burst in whatever order the
//! thread scheduler happens to run the ingest threads. After all clients
//! finish the server is drained via graceful shutdown and every session's
//! report is folded into:
//!
//! * aggregate decoded frames per second across the whole pool,
//! * per-session decode latency percentiles (p50 of session medians, worst
//!   session p99),
//! * a fairness row: min/max per-session throughput ratio — the multi-tenant
//!   property that no session starves while a neighbour firehoses.
//!
//! Writes `BENCH_serve.json` (hand-formatted — the vendored serde is a no-op
//! shim) to the current directory or the path given with `--out`.
//!
//! Run with:
//! `cargo run --release -p wazabee-bench --bin serve_throughput [--smoke] [--sessions N] [--frames N] [--workers N] [--pace-ms MS] [--out PATH]`

use std::io::Write;
use std::time::{Duration, Instant};

use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
use wazabee_dsp::io::SampleFormat;
use wazabee_dsp::{Iq, IqBuf};
use wazabee_serve::{proto, ServeConfig, Server};

/// Samples per wire record — the simulated SDR front-end's chunk size.
const CHUNK_SAMPLES: usize = 4096;

/// One clean capture for a session: `frames` deliveries with varied silence
/// gaps, unique payload bytes per (session, frame) so recovery is checkable.
fn build_capture(session: usize, frames: usize, sps: usize) -> Vec<Iq> {
    let zigbee = Dot154Modem::new(sps);
    let mut buf = vec![Iq::ZERO; 500];
    for k in 0..frames {
        let ppdu = Ppdu::new(append_fcs(&[
            session as u8,
            k as u8,
            0xA5,
            0x5A,
            1,
            2,
            3,
            4,
        ]))
        .unwrap();
        buf.extend(zigbee.transmit(&ppdu));
        buf.extend(vec![Iq::ZERO; 600 + 100 * (k % 5)]);
    }
    buf
}

/// Streams one capture over one TCP connection in wire-protocol records.
///
/// Every client connects and announces itself, then waits on the shared
/// barrier before streaming samples — so the fairness row measures steady
/// multi-tenant service, not the cold-start head start of whichever session
/// happened to be accepted first. Chunks are sent on an absolute schedule
/// (`release + k * pace`) like an SDR front-end delivering samples in real
/// time; with every session on the same schedule, equal workloads should
/// finish together and the fairness ratio exposes any session the pool lets
/// fall behind.
fn run_client(
    addr: std::net::SocketAddr,
    session: usize,
    capture: &[Iq],
    start: &std::sync::Barrier,
    pace: Duration,
) {
    let format = if session.is_multiple_of(2) {
        SampleFormat::Cf32
    } else {
        SampleFormat::U8Offset128
    };
    let mut conn = std::net::TcpStream::connect(addr).expect("connect loopback");
    proto::write_hello(&mut conn, &format!("client-{session:02}")).expect("hello");
    conn.flush().expect("flush hello");
    start.wait();
    let release = Instant::now();
    let mut planar = IqBuf::with_capacity(CHUNK_SAMPLES);
    for (k, chunk) in capture.chunks(CHUNK_SAMPLES).enumerate() {
        let due = release + pace * k as u32;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        planar.clear();
        planar.extend_interleaved(chunk);
        let payload = format.encode(planar.as_slice());
        proto::write_samples(&mut conn, format, &payload).expect("samples");
    }
    proto::write_end(&mut conn).expect("end");
    conn.flush().expect("flush");
}

/// Parses the numeric operand of `flag` off the argument stream or exits.
fn parse_usize(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("{flag} requires a number");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut sessions_arg: Option<usize> = None;
    let mut frames_arg: Option<usize> = None;
    let mut workers = 4usize;
    let mut pace_ms = 40u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--sessions" => sessions_arg = Some(parse_usize(&mut args, "--sessions")),
            "--frames" => frames_arg = Some(parse_usize(&mut args, "--frames")),
            "--workers" => workers = parse_usize(&mut args, "--workers"),
            "--pace-ms" => pace_ms = parse_usize(&mut args, "--pace-ms") as u64,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "usage: serve_throughput [--smoke] [--sessions N] [--frames N] [--workers N] [--pace-ms MS] [--out PATH]   (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    let sessions = sessions_arg.unwrap_or(if smoke { 8 } else { 64 });
    let frames_per_session = frames_arg.unwrap_or(if smoke { 4 } else { 8 });
    let pace = Duration::from_millis(pace_ms);

    // A protocol error or a dropped chunk on the loopback socket path means
    // the serve plane itself is broken, not the radio.
    wazabee_telemetry::health_rule!(
        "serve.proto.corrupt",
        wazabee_telemetry::Signal::counter("serve.proto.errors"),
        > 0.0
    );
    wazabee_telemetry::health_rule!(
        "serve.socket.dropping",
        wazabee_telemetry::Signal::counter("serve.chunks.dropped"),
        > 0.0
    );
    wazabee_telemetry::start_watchdog(std::time::Duration::from_millis(100));
    match wazabee_telemetry::serve_from_env() {
        Ok(Some(addr)) => eprintln!("telemetry snapshot server on {addr}"),
        Ok(None) => {}
        Err(e) => eprintln!("telemetry snapshot server failed to start: {e}"),
    }

    let sps = 8;
    eprintln!("building {sessions} captures of {frames_per_session} frames ...");
    let captures: Vec<Vec<Iq>> = (0..sessions)
        .map(|s| build_capture(s, frames_per_session, sps))
        .collect();

    let queue_chunks = 32;
    let mut server = Server::start(ServeConfig {
        workers,
        queue_chunks,
        sps,
        ..ServeConfig::default()
    });
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind loopback");
    eprintln!(
        "serve plane on {addr}: {workers} workers, {sessions} concurrent client sessions, one chunk per {pace_ms} ms each ..."
    );

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(sessions + 1));
    let clients: Vec<_> = captures
        .into_iter()
        .enumerate()
        .map(|(s, capture)| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::Builder::new()
                .name(format!("serve-bench-client-{s:02}"))
                .spawn(move || run_client(addr, s, &capture, &barrier, pace))
                .expect("spawn client")
        })
        .collect();
    // Hold every client at the barrier until the server has *registered*
    // all sessions: connect() succeeds out of the listen backlog long before
    // the accept loop (competing for CPU with the decode plane) registers
    // the session, and a late-registered session would measure a shorter —
    // unfairly fast — service window.
    while server.active_sessions() < sessions {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let start = Instant::now();
    barrier.wait();
    for c in clients {
        c.join().expect("client thread");
    }
    let summary = server.shutdown();
    let secs = start.elapsed().as_secs_f64().max(1e-9);

    let total_frames = (sessions * frames_per_session) as u64;
    let recovered: u64 = summary.reports.iter().map(|r| r.frames - r.crc_fail).sum();
    let crc_fail: u64 = summary.reports.iter().map(|r| r.crc_fail).sum();
    let dropped: u64 = summary.reports.iter().map(|r| r.chunks_dropped).sum();
    let aggregate_fps = recovered as f64 / secs;

    let mut p50s: Vec<u64> = summary.reports.iter().map(|r| r.latency_p50_us).collect();
    p50s.sort_unstable();
    let p50_us = p50s.get(p50s.len() / 2).copied().unwrap_or(0);
    let p99_us = summary
        .reports
        .iter()
        .map(|r| r.latency_p99_us)
        .max()
        .unwrap_or(0);

    // Fairness races equal workloads: every client is released from one
    // barrier at `start`, so a session's throughput is its frame count over
    // the time from that common release to its report committing. (The
    // report's own `frames_per_sec` spans only the session's service window,
    // whose start scatters with thread scheduling under load.)
    let session_fps: Vec<f64> = summary
        .reports
        .iter()
        .map(|r| {
            let secs = r.finished.saturating_duration_since(start).as_secs_f64();
            if secs > 0.0 {
                r.frames as f64 / secs
            } else {
                0.0
            }
        })
        .collect();
    let min_fps = session_fps.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_fps = session_fps.iter().cloned().fold(0.0f64, f64::max);
    let fairness = if max_fps > 0.0 {
        min_fps / max_fps
    } else {
        0.0
    };

    println!(
        "serve: {recovered}/{total_frames} frames across {sessions} sessions in {secs:.3} s = {aggregate_fps:.1} frames/sec aggregate"
    );
    println!(
        "latency: p50 {p50_us} us (median session), p99 {p99_us} us (worst session); fairness min/max {fairness:.3}"
    );
    if recovered != total_frames || crc_fail != 0 || dropped != 0 {
        eprintln!(
            "warning: recovered {recovered}/{total_frames}, crc_fail {crc_fail}, dropped {dropped}"
        );
    }

    // Hand-formatted JSON: the vendored serde derive is a no-op shim.
    let mut rows = String::new();
    for (k, r) in summary.reports.iter().enumerate() {
        let sep = if k + 1 == summary.reports.len() {
            ""
        } else {
            ","
        };
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"frames\": {}, \"crc_fail\": {}, \"p50_us\": {}, \"p99_us\": {}, \"duration_s\": {:.6}, \"fps\": {:.3}}}{sep}\n",
            r.name, r.frames, r.crc_fail, r.latency_p50_us, r.latency_p99_us, r.duration_s, session_fps[k]
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"smoke\": {smoke},\n  \"sessions\": {sessions},\n  \"frames_per_session\": {frames_per_session},\n  \"workers\": {workers},\n  \"queue_chunks\": {queue_chunks},\n  \"chunk_samples\": {CHUNK_SAMPLES},\n  \"pace_ms\": {pace_ms},\n  \"total_frames\": {total_frames},\n  \"recovered\": {recovered},\n  \"crc_fail\": {crc_fail},\n  \"chunks_dropped\": {dropped},\n  \"seconds\": {secs:.6},\n  \"aggregate_frames_per_sec\": {aggregate_fps:.3},\n  \"latency_us\": {{\n    \"p50\": {p50_us},\n    \"p99\": {p99_us}\n  }},\n  \"fairness\": {{\n    \"min_session_fps\": {min_fps:.3},\n    \"max_session_fps\": {max_fps:.3},\n    \"min_max_ratio\": {fairness:.3}\n  }},\n  \"sessions_detail\": [\n{rows}  ]\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write benchmark artifact");
    eprintln!("wrote {out_path}");
    print!("{}", wazabee_telemetry::profile_summary());

    for a in wazabee_telemetry::evaluate_health() {
        if a.latched {
            eprintln!("health alert: {} (value {:?})", a.name, a.value);
        }
    }
    match wazabee_telemetry::dump_trace_from_env() {
        Ok(true) => {
            if let Ok(p) = std::env::var(wazabee_telemetry::ENV_TRACE_OUT) {
                eprintln!("wrote Chrome trace to {p}");
            }
        }
        Ok(false) => {}
        Err(e) => eprintln!("trace dump failed: {e}"),
    }
}
