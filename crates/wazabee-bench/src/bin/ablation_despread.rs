//! Ablation: despreading with the paper's Algorithm-1 table versus the
//! waveform-exact MSK images (DESIGN.md decision 1). The Algorithm-1 table
//! is off by at most one bit per symbol; does it ever cost a frame?
//!
//! Run with: `cargo run --release -p wazabee-bench --bin ablation_despread [frames]`

use wazabee::{DespreadTable, WazaBeeRx};
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
use wazabee_radio::{Link, LinkConfig, RfFrame};

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let sps = 8;
    let zigbee = Dot154Modem::new(sps);
    println!(
        "# RX primitive: Algorithm-1 table vs waveform-exact table ({frames} frames per cell)"
    );
    println!("snr_db,table,valid,chip_errors_per_frame");
    let mut cells = Vec::new();
    for snr in [6.0, 8.0, 10.0, 14.0, 20.0] {
        for (name, table) in [
            ("algorithm1", DespreadTable::Algorithm1),
            ("waveform", DespreadTable::Waveform),
        ] {
            cells.push((snr, name, table));
        }
    }
    // Every cell seeds its own link, so the sweep parallelises without
    // changing a byte of the output.
    let lines = wazabee_bench::sweep::par_map(cells, |(snr, name, table)| {
        let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, sps))
            .expect("LE 2M")
            .with_table(table);
        let cfg = LinkConfig {
            snr_db: Some(snr),
            ..LinkConfig::office_3m()
        };
        let mut link = Link::new(cfg, 4242);
        let (mut valid, mut errs) = (0usize, 0usize);
        for k in 0..frames {
            let ppdu = Ppdu::new(append_fcs(&[k as u8, 1, 2, 3, 4, 5])).unwrap();
            let air = zigbee.transmit(&ppdu);
            let heard = link.deliver(&RfFrame::new(2420, air, zigbee.sample_rate()), 2420);
            if let Some(r) = rx.receive(&heard) {
                if r.fcs_ok() && r.psdu == ppdu.psdu() {
                    valid += 1;
                    errs += r.chip_errors;
                }
            }
        }
        format!(
            "{snr},{name},{valid},{:.2}",
            errs as f64 / valid.max(1) as f64
        )
    });
    for line in lines {
        println!("{line}");
    }
}
