//! Regenerates paper Table III: reception and transmission primitive
//! assessment — 100 counter frames per Zigbee channel, per chip, across a
//! simulated 3 m office link with WiFi on channels 6 and 11.
//!
//! Run with: `cargo run --release -p wazabee-bench --bin table3 [frames|--fast]`
//!
//! `--fast` selects the 10-frame smoke configuration. The channel sweep runs
//! on `WAZABEE_THREADS` worker threads (default: available parallelism) and
//! its output is byte-identical at any thread count.

use wazabee_bench::table3::{render_table, run_primitive, Primitive, Table3Config};
use wazabee_chips::{cc1352r1, nrf52832};

fn main() {
    let cfg = match std::env::args().nth(1).as_deref() {
        None => Table3Config::default(),
        Some("--fast") => Table3Config::quick(),
        Some(arg) => match arg.parse() {
            Ok(n) if n >= 1 => Table3Config {
                frames: n,
                ..Table3Config::default()
            },
            _ => {
                eprintln!("usage: table3 [frames>=1 | --fast]   (got {arg:?})");
                std::process::exit(2);
            }
        },
    };
    eprintln!(
        "running Table III: {} frames x 16 channels x 2 chips x 2 primitives ({} threads) ...",
        cfg.frames,
        wazabee_bench::sweep::default_threads()
    );
    let nrf = nrf52832();
    let cc = cc1352r1();
    let rx_nrf = run_primitive(&nrf, Primitive::Reception, &cfg);
    eprintln!("  nRF52832 reception done");
    let rx_cc = run_primitive(&cc, Primitive::Reception, &cfg);
    eprintln!("  CC1352-R1 reception done");
    let tx_nrf = run_primitive(&nrf, Primitive::Transmission, &cfg);
    eprintln!("  nRF52832 transmission done");
    let tx_cc = run_primitive(&cc, Primitive::Transmission, &cfg);
    eprintln!("  CC1352-R1 transmission done");
    println!("Table III — reception and transmission primitives assessment");
    println!(
        "({} frames per cell; 'corr' = received with integrity corruption)",
        cfg.frames
    );
    println!();
    print!(
        "{}",
        render_table("nRF52832", &rx_nrf, &tx_nrf, "CC1352-R1", &rx_cc, &tx_cc)
    );
    println!();
    println!(
        "paper reference: avg valid RX 98.625% (nRF52832) / 99.375% (CC1352-R1); \
         avg valid TX 97.5% / 99.438%; dips on channels 17-18 (WiFi 6) and 21-23 (WiFi 11)"
    );
}
