//! Regenerates paper Table I (the symbol → PN sequence map) together with
//! the §IV-C MSK correspondence table the attack derives from it.
//!
//! Run with: `cargo run -p wazabee-bench --bin table1`

use wazabee::msk::correspondence_table;
use wazabee_dot154::pn::PN_SEQUENCES;

fn bits(b: &[u8]) -> String {
    b.chunks(8)
        .map(|c| c.iter().map(|&x| char::from(b'0' + x)).collect::<String>())
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    println!("Table I — block / PN sequence correspondence (b0 first, c0 first)");
    println!("{:<8} PN sequence (c0..c31)", "block");
    for (symbol, pn) in PN_SEQUENCES.iter().enumerate() {
        let block: String = (0..4)
            .map(|k| char::from(b'0' + ((symbol >> k) & 1) as u8))
            .collect();
        println!("{block:<8} {}", bits(pn));
    }
    println!();
    println!("Derived MSK correspondence table (paper §IV-C, Algorithm 1; 31 bits per symbol)");
    println!("{:<8} MSK sequence (m0..m30)", "block");
    for (symbol, msk) in correspondence_table().iter().enumerate() {
        let block: String = (0..4)
            .map(|k| char::from(b'0' + ((symbol >> k) & 1) as u8))
            .collect();
        println!("{block:<8} {}", bits(msk));
    }
}
