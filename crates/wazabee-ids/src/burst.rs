//! Energy-based burst detection: the front end of a radio monitor.
//!
//! The paper's countermeasure discussion (§VII) points at intrusion
//! detection systems that watch signal strength across frequency bands.
//! This module segments a monitored channel's IQ stream into transmission
//! bursts by windowed power thresholding.

use wazabee_dsp::iq::Iq;

/// One detected transmission burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// First sample of the burst.
    pub start: usize,
    /// One past the last sample.
    pub end: usize,
}

impl Burst {
    /// Burst length in samples.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the burst is empty (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Burst duration in microseconds at a given sample rate.
    pub fn duration_us(&self, sample_rate: f64) -> f64 {
        self.len() as f64 / sample_rate * 1.0e6
    }
}

/// Configuration of the burst detector.
#[derive(Debug, Clone, Copy)]
pub struct BurstDetectorConfig {
    /// Power threshold (linear) above which a window counts as active.
    pub threshold: f64,
    /// Window length in samples for power averaging.
    pub window: usize,
    /// Bursts closer than this many samples are merged.
    pub merge_gap: usize,
    /// Bursts shorter than this many samples are discarded.
    pub min_len: usize,
}

impl Default for BurstDetectorConfig {
    fn default() -> Self {
        BurstDetectorConfig {
            threshold: 0.25,
            window: 32,
            merge_gap: 64,
            min_len: 128,
        }
    }
}

/// Segments an IQ stream into bursts.
///
/// # Panics
///
/// Panics if the window length is zero.
pub fn detect_bursts(samples: &[Iq], cfg: &BurstDetectorConfig) -> Vec<Burst> {
    assert!(cfg.window > 0, "window must be non-zero");
    let mut active: Vec<(usize, usize)> = Vec::new();
    let mut current: Option<(usize, usize)> = None;
    let mut k = 0;
    while k + cfg.window <= samples.len() {
        let power: f64 = samples[k..k + cfg.window]
            .iter()
            .map(|s| s.power())
            .sum::<f64>()
            / cfg.window as f64;
        if power >= cfg.threshold {
            current = match current {
                Some((s, _)) => Some((s, k + cfg.window)),
                None => Some((k, k + cfg.window)),
            };
        } else if let Some(span) = current.take() {
            active.push(span);
        }
        k += cfg.window;
    }
    if let Some(span) = current {
        active.push(span);
    }
    // Merge nearby spans, then filter short ones.
    let mut merged: Vec<Burst> = Vec::new();
    for (s, e) in active {
        match merged.last_mut() {
            Some(last) if s.saturating_sub(last.end) <= cfg.merge_gap => last.end = e,
            _ => merged.push(Burst { start: s, end: e }),
        }
    }
    merged.retain(|b| b.len() >= cfg.min_len);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_dsp::{AwgnSource, Nco};

    fn silence(n: usize) -> Vec<Iq> {
        vec![Iq::ZERO; n]
    }

    fn tone(n: usize) -> Vec<Iq> {
        let mut nco = Nco::new(0.3e6, 16.0e6);
        (0..n).map(|_| nco.next_sample()).collect()
    }

    #[test]
    fn finds_a_single_burst() {
        let mut buf = silence(1000);
        buf.extend(tone(2000));
        buf.extend(silence(1000));
        let bursts = detect_bursts(&buf, &BurstDetectorConfig::default());
        assert_eq!(bursts.len(), 1);
        let b = bursts[0];
        assert!(b.start >= 900 && b.start <= 1100, "start {}", b.start);
        assert!(b.end >= 2900 && b.end <= 3100, "end {}", b.end);
    }

    #[test]
    fn finds_two_separated_bursts() {
        let mut buf = silence(500);
        buf.extend(tone(1500));
        buf.extend(silence(2000));
        buf.extend(tone(1500));
        buf.extend(silence(500));
        let bursts = detect_bursts(&buf, &BurstDetectorConfig::default());
        assert_eq!(bursts.len(), 2);
        assert!(bursts[0].end < bursts[1].start);
    }

    #[test]
    fn merges_bursts_across_small_gaps() {
        let mut buf = silence(500);
        buf.extend(tone(800));
        buf.extend(silence(40)); // below merge_gap
        buf.extend(tone(800));
        buf.extend(silence(500));
        let bursts = detect_bursts(&buf, &BurstDetectorConfig::default());
        assert_eq!(bursts.len(), 1);
    }

    #[test]
    fn ignores_noise_floor_and_short_blips() {
        let mut buf = silence(8000);
        AwgnSource::new(1, 0.2).add_to(&mut buf); // power 0.08 < threshold
        buf.splice(4000..4064, tone(64)); // too short
        let bursts = detect_bursts(&buf, &BurstDetectorConfig::default());
        assert!(bursts.is_empty(), "{bursts:?}");
    }

    #[test]
    fn burst_at_end_of_buffer_is_closed() {
        let mut buf = silence(500);
        buf.extend(tone(1000));
        let bursts = detect_bursts(&buf, &BurstDetectorConfig::default());
        assert_eq!(bursts.len(), 1);
        assert!(bursts[0].end >= 1400);
    }

    #[test]
    fn duration_math() {
        let b = Burst {
            start: 100,
            end: 1700,
        };
        assert_eq!(b.len(), 1600);
        assert!((b.duration_us(16.0e6) - 100.0).abs() < 1e-9);
        assert!(!b.is_empty());
    }
}
