#![warn(missing_docs)]

//! # wazabee-ids
//!
//! A multi-protocol radio intrusion detection system against WazaBee-style
//! cross-technology attacks — the countermeasure direction of paper §VII and
//! the authors' announced future work (§VIII).
//!
//! The paper argues that environments exposed to BLE devices must be
//! monitored under the assumption that attacks may arrive *through 802.15.4*,
//! and points at radio-level IDSes (RadIoT) that watch multiple protocols at
//! once. This crate builds that monitor on top of the workspace's simulated
//! radios:
//!
//! * [`burst`] — energy-based burst segmentation,
//! * [`classify`] — per-burst decoding under both the BLE and 802.15.4
//!   grammars (including the double-valid WazaBee signature),
//! * [`detector`] — alerts: cross-protocol frames, non-whitelisted 802.15.4
//!   traffic, and burst-rate anomalies.
//!
//! ## Example
//!
//! ```
//! use wazabee_ids::{Alert, ChannelMonitor, MonitorConfig};
//! use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};
//! use wazabee_dsp::Iq;
//!
//! // A monitor on 2420 MHz where no Zigbee deployment is expected.
//! let mut monitor = ChannelMonitor::new(2420, 8, MonitorConfig::default());
//! let rogue = Dot154Modem::new(8).transmit(&Ppdu::new(append_fcs(&[1, 2])).unwrap());
//! let mut window = vec![Iq::ZERO; 512];
//! window.extend(rogue);
//! window.extend(vec![Iq::ZERO; 512]);
//! let alerts = monitor.observe(&window);
//! assert!(alerts.iter().any(|a| matches!(a, Alert::UnexpectedDot154 { .. })));
//! ```

pub mod burst;
pub mod classify;
pub mod detector;

pub use burst::{detect_bursts, Burst, BurstDetectorConfig};
pub use classify::{Classification, Classifier};
pub use detector::{Alert, ChannelMonitor, MonitorConfig};
