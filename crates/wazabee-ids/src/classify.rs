//! Protocol classification of a captured burst.
//!
//! The monitor tries each protocol's receiver on the burst; whichever
//! synchronises and parses wins. Crucially — and this is the WazaBee
//! signature — *both* may succeed at once: a BLE extended advertisement
//! whose whitened payload embeds a decodable 802.15.4 frame.

use serde::{Deserialize, Serialize};
use wazabee_ble::{AuxAdvInd, BleChannel, BleModem, BlePhy};
use wazabee_dot154::{Dot154Modem, ReceivedPpdu};
use wazabee_dsp::iq::Iq;

/// What a burst decoded as.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// A BLE packet, if the burst carries one (advertising access address,
    /// LE 1M or LE 2M).
    pub ble: Option<BleDecode>,
    /// An 802.15.4 frame, if the burst carries one.
    pub dot154: Option<Dot154Decode>,
}

/// A successful BLE decode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BleDecode {
    /// PHY that synchronised.
    pub phy_2m: bool,
    /// The PDU bytes.
    pub pdu: Vec<u8>,
    /// CRC validity.
    pub crc_ok: bool,
}

/// A successful 802.15.4 decode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dot154Decode {
    /// The PSDU bytes.
    pub psdu: Vec<u8>,
    /// FCS validity.
    pub fcs_ok: bool,
}

impl Classification {
    /// The WazaBee Scenario-A signature: one emission valid under *both*
    /// protocol grammars.
    pub fn is_cross_protocol(&self) -> bool {
        matches!(&self.ble, Some(b) if b.crc_ok) && matches!(&self.dot154, Some(d) if d.fcs_ok)
    }

    /// Pure 802.15.4 (no valid BLE framing).
    pub fn is_dot154_only(&self) -> bool {
        matches!(&self.dot154, Some(d) if d.fcs_ok) && !matches!(&self.ble, Some(b) if b.crc_ok)
    }

    /// Pure BLE.
    pub fn is_ble_only(&self) -> bool {
        matches!(&self.ble, Some(b) if b.crc_ok) && !matches!(&self.dot154, Some(d) if d.fcs_ok)
    }
}

/// A multi-protocol burst classifier for one monitored channel.
#[derive(Debug, Clone)]
pub struct Classifier {
    ble_1m: BleModem,
    ble_2m: BleModem,
    dot154: Dot154Modem,
    /// The BLE channel whose whitening applies on this frequency (if the
    /// monitored frequency is a BLE channel centre).
    ble_channel: Option<BleChannel>,
    /// Access addresses worth trying (always includes the advertising one).
    known_access_addresses: Vec<u32>,
}

impl Classifier {
    /// Creates a classifier for a monitored centre frequency.
    ///
    /// `samples_per_symbol` is the oversampling of the 2 Msym/s capture; the
    /// LE 1M decoder doubles it so both modems agree on the sample rate.
    pub fn new(center_mhz: u32, samples_per_symbol: usize) -> Self {
        Classifier {
            ble_1m: BleModem::new(BlePhy::Le1M, samples_per_symbol * 2),
            ble_2m: BleModem::new(BlePhy::Le2M, samples_per_symbol),
            dot154: Dot154Modem::new(samples_per_symbol),
            ble_channel: BleChannel::from_center_mhz(center_mhz),
            known_access_addresses: vec![wazabee_ble::ADV_ACCESS_ADDRESS],
        }
    }

    /// Registers an access address the monitor has learned (e.g. from an
    /// `ADV_EXT_IND`'s AuxPtr chain or connection sniffing).
    pub fn learn_access_address(&mut self, aa: u32) {
        if !self.known_access_addresses.contains(&aa) {
            self.known_access_addresses.push(aa);
        }
    }

    /// The monitored BLE channel, if the frequency is a BLE centre.
    pub fn ble_channel(&self) -> Option<BleChannel> {
        self.ble_channel
    }

    /// Attempts a BLE decode with every known access address on both PHYs.
    pub fn try_ble(&self, samples: &[Iq]) -> Option<BleDecode> {
        let channel = self.ble_channel?;
        let mut best: Option<BleDecode> = None;
        for &aa in &self.known_access_addresses {
            for (modem, phy_2m) in [(&self.ble_2m, true), (&self.ble_1m, false)] {
                if let Some(pkt) = modem.receive(samples, aa, channel, true) {
                    let decode = BleDecode {
                        phy_2m,
                        pdu: pkt.pdu().to_vec(),
                        crc_ok: pkt.crc_ok(),
                    };
                    if decode.crc_ok {
                        return Some(decode);
                    }
                    best.get_or_insert(decode);
                }
            }
        }
        best
    }

    /// Attempts an 802.15.4 decode.
    pub fn try_dot154(&self, samples: &[Iq]) -> Option<Dot154Decode> {
        self.dot154
            .receive(samples)
            .map(|r: ReceivedPpdu| Dot154Decode {
                fcs_ok: r.fcs_ok(),
                psdu: r.psdu,
            })
    }

    /// Classifies one burst under both protocol grammars.
    pub fn classify(&self, samples: &[Iq]) -> Classification {
        Classification {
            ble: self.try_ble(samples),
            dot154: self.try_dot154(samples),
        }
    }

    /// Extracts the advertiser context from a BLE decode when it is an
    /// extended advertisement (used for forensics and AA learning).
    pub fn parse_aux_adv(decode: &BleDecode) -> Option<AuxAdvInd> {
        AuxAdvInd::from_bytes(&decode.pdu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_ble::BlePacket;

    #[test]
    fn le1m_advertising_on_the_shared_capture_rate_decodes() {
        // The monitor captures at the 2 Msym/s grid; a legacy LE 1M
        // advertisement must still classify as BLE.
        let c = classifier();
        let modem = BleModem::new(BlePhy::Le1M, 16); // same 16 Msps capture
        let ch = BleChannel::new(8).unwrap();
        let pkt = BlePacket::advertising(vec![0x02, 0x02, 9, 9]);
        let burst = modem.transmit(&pkt, ch, true);
        let cls = c.classify(&burst);
        assert!(cls.is_ble_only(), "{cls:?}");
        assert!(!cls.ble.unwrap().phy_2m);
    }

    #[test]
    fn parse_aux_adv_extracts_the_advertiser() {
        let aux = wazabee_ble::AuxAdvInd::with_manufacturer_data(
            wazabee_ble::adv::BleAddress::new([1, 2, 3, 4, 5, 6]),
            7,
            0x59,
            vec![1],
        );
        let decode = BleDecode {
            phy_2m: true,
            pdu: aux.to_bytes(),
            crc_ok: true,
        };
        let parsed = Classifier::parse_aux_adv(&decode).unwrap();
        assert_eq!(parsed, aux);
    }

    fn classifier() -> Classifier {
        Classifier::new(2420, 8)
    }

    #[test]
    fn classifies_plain_ble_advertising() {
        let c = classifier();
        let modem = BleModem::new(BlePhy::Le2M, 8);
        let ch = BleChannel::new(8).unwrap();
        let pkt = BlePacket::advertising(vec![0x02, 0x03, 1, 2, 3]);
        let burst = modem.transmit(&pkt, ch, true);
        let cls = c.classify(&burst);
        assert!(cls.is_ble_only(), "{cls:?}");
        assert!(!cls.is_cross_protocol());
    }

    #[test]
    fn classifies_plain_dot154() {
        let c = classifier();
        let modem = Dot154Modem::new(8);
        let ppdu = wazabee_dot154::Ppdu::new(wazabee_dot154::fcs::append_fcs(&[9, 9])).unwrap();
        let burst = modem.transmit(&ppdu);
        let cls = c.classify(&burst);
        assert!(cls.is_dot154_only(), "{cls:?}");
    }

    #[test]
    fn non_ble_frequency_never_decodes_ble() {
        // 2405 MHz (Zigbee 11) is not a BLE channel centre: whitening is
        // undefined there, so the monitor only runs the 802.15.4 grammar.
        let c = Classifier::new(2405, 8);
        assert!(c.ble_channel().is_none());
        let modem = BleModem::new(BlePhy::Le2M, 8);
        let pkt = BlePacket::advertising(vec![0x02, 0x01, 0xFF]);
        let burst = modem.transmit(&pkt, BleChannel::new(8).unwrap(), true);
        assert!(c.try_ble(&burst).is_none());
    }

    #[test]
    fn learned_access_addresses_are_deduplicated() {
        let mut c = classifier();
        c.learn_access_address(0x1234_5678);
        c.learn_access_address(0x1234_5678);
        c.learn_access_address(wazabee_ble::ADV_ACCESS_ADDRESS);
        assert_eq!(c.known_access_addresses.len(), 2);
    }

    #[test]
    fn noise_classifies_as_nothing() {
        let c = classifier();
        let mut noise = vec![Iq::ZERO; 30_000];
        wazabee_dsp::AwgnSource::new(3, 0.6).add_to(&mut noise);
        let cls = c.classify(&noise);
        assert!(cls.ble.is_none() || !cls.ble.as_ref().unwrap().crc_ok);
        assert!(cls.dot154.is_none());
    }
}
