//! The WazaBee-aware intrusion detector (paper §VII).
//!
//! Three detection strategies, layered:
//!
//! 1. **Cross-protocol signature** — one burst valid under both the BLE and
//!    802.15.4 grammars is the smoking gun of a Scenario-A injection (an
//!    `AUX_ADV_IND` whose whitened payload embeds a Zigbee frame).
//! 2. **Protocol whitelist** — 802.15.4 activity on a frequency where no
//!    Zigbee network is deployed (the "protocol that is not supposed to be
//!    monitored" covert-channel case of the paper's introduction).
//! 3. **Traffic anomaly** — a protocol-agnostic rate model per channel
//!    (RadIoT-style [Roux et al., NCA'18]): alert when the burst rate jumps
//!    far beyond the learned baseline.

use serde::{Deserialize, Serialize};
use wazabee::WazaBeeRx;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dsp::iq::Iq;

use crate::burst::{detect_bursts, BurstDetectorConfig};
use crate::classify::Classifier;

/// An alert raised by the monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Alert {
    /// One emission parsed as both a valid BLE packet and a valid 802.15.4
    /// frame — a cross-technology injection.
    CrossProtocolFrame {
        /// Monitored centre frequency.
        center_mhz: u32,
        /// The embedded 802.15.4 PSDU.
        psdu: Vec<u8>,
        /// The carrying BLE PDU.
        ble_pdu: Vec<u8>,
    },
    /// Valid 802.15.4 traffic on a frequency not in the deployment
    /// whitelist.
    UnexpectedDot154 {
        /// Monitored centre frequency.
        center_mhz: u32,
        /// The PSDU observed.
        psdu: Vec<u8>,
    },
    /// Burst rate far above the learned baseline.
    TrafficAnomaly {
        /// Monitored centre frequency.
        center_mhz: u32,
        /// Bursts in the offending observation.
        observed: usize,
        /// Baseline (EWMA) bursts per observation.
        baseline: f64,
    },
}

impl Alert {
    /// The frequency the alert concerns.
    pub fn center_mhz(&self) -> u32 {
        match self {
            Alert::CrossProtocolFrame { center_mhz, .. }
            | Alert::UnexpectedDot154 { center_mhz, .. }
            | Alert::TrafficAnomaly { center_mhz, .. } => *center_mhz,
        }
    }
}

/// Configuration of one channel monitor.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Burst segmentation parameters.
    pub burst: BurstDetectorConfig,
    /// Whether legitimate 802.15.4 traffic is expected on this frequency.
    pub dot154_whitelisted: bool,
    /// EWMA smoothing factor for the burst-rate baseline.
    pub ewma_alpha: f64,
    /// Anomaly threshold: alert when observed > factor × baseline + margin.
    pub anomaly_factor: f64,
    /// Flat margin added to the anomaly threshold (suppresses alerts while
    /// the baseline is still warming up).
    pub anomaly_margin: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            burst: BurstDetectorConfig::default(),
            dot154_whitelisted: false,
            ewma_alpha: 0.2,
            anomaly_factor: 3.0,
            anomaly_margin: 2.0,
        }
    }
}

/// A per-frequency WazaBee monitor.
#[derive(Debug, Clone)]
pub struct ChannelMonitor {
    center_mhz: u32,
    classifier: Classifier,
    /// A diverted-BLE 802.15.4 sniffer for the streaming sweep: a coalesced
    /// burst can hold several back-to-back frames, and the one-shot
    /// classifier reports at most the first.
    sniffer: WazaBeeRx<BleModem>,
    config: MonitorConfig,
    baseline_rate: f64,
    observations: u64,
}

impl ChannelMonitor {
    /// Creates a monitor for a centre frequency.
    pub fn new(center_mhz: u32, samples_per_symbol: usize, config: MonitorConfig) -> Self {
        ChannelMonitor {
            center_mhz,
            classifier: Classifier::new(center_mhz, samples_per_symbol),
            sniffer: WazaBeeRx::new(BleModem::new(BlePhy::Le2M, samples_per_symbol))
                .expect("LE 2M runs at the 2 Msym/s the attack requires"),
            config,
            baseline_rate: 0.0,
            observations: 0,
        }
    }

    /// The monitored frequency.
    pub fn center_mhz(&self) -> u32 {
        self.center_mhz
    }

    /// Current learned burst-rate baseline.
    pub fn baseline_rate(&self) -> f64 {
        self.baseline_rate
    }

    /// Mutable access to the classifier (e.g. to teach it access addresses).
    pub fn classifier_mut(&mut self) -> &mut Classifier {
        &mut self.classifier
    }

    /// Processes one observation window of IQ samples, returning any alerts.
    pub fn observe(&mut self, samples: &[Iq]) -> Vec<Alert> {
        let _t = wazabee_telemetry::timed_scope!("ids.observe_ns");
        let mut alerts = Vec::new();
        let bursts = detect_bursts(samples, &self.config.burst);
        wazabee_telemetry::counter!("ids.bursts").add(bursts.len() as u64);

        // Traffic anomaly check against the learned baseline.
        let observed = bursts.len();
        let mut anomalous = false;
        if self.observations >= 3 {
            let threshold =
                self.config.anomaly_factor * self.baseline_rate + self.config.anomaly_margin;
            if (observed as f64) > threshold {
                anomalous = true;
                alerts.push(Alert::TrafficAnomaly {
                    center_mhz: self.center_mhz,
                    observed,
                    baseline: self.baseline_rate,
                });
            }
        }
        // Anomalous windows are excluded from the EWMA so a sustained storm
        // cannot teach the monitor that storms are normal.
        if !anomalous {
            self.baseline_rate = if self.observations == 0 {
                observed as f64
            } else {
                (1.0 - self.config.ewma_alpha) * self.baseline_rate
                    + self.config.ewma_alpha * observed as f64
            };
        }
        self.observations += 1;

        // Per-burst protocol analysis. Capture with a guard margin so edge
        // quantisation of the energy detector never starves the decoders.
        let guard = 4 * self.config.burst.window;
        for burst in &bursts {
            let start = burst.start.saturating_sub(guard);
            let end = (burst.end + guard).min(samples.len());
            let slice = &samples[start..end];
            let cls = self.classifier.classify(slice);
            if cls.is_cross_protocol() {
                alerts.push(Alert::CrossProtocolFrame {
                    center_mhz: self.center_mhz,
                    psdu: cls.dot154.as_ref().expect("checked").psdu.clone(),
                    ble_pdu: cls.ble.as_ref().expect("checked").pdu.clone(),
                });
            } else if cls.is_dot154_only() && !self.config.dot154_whitelisted {
                alerts.push(Alert::UnexpectedDot154 {
                    center_mhz: self.center_mhz,
                    psdu: cls.dot154.as_ref().expect("checked").psdu.clone(),
                });
            }
            // Streaming sweep: a merged burst can carry several frames
            // back-to-back, and the one-shot classifier stops at the first.
            // The re-arming receiver recovers the rest; the frame the
            // classifier already reported is deduplicated away.
            let mut stream = self.sniffer.stream();
            let mut results = stream.push(slice);
            results.extend(stream.finish());
            let mut extra: Vec<Vec<u8>> = results
                .into_iter()
                .filter_map(Result::ok)
                .filter(|f| f.fcs_ok())
                .map(|f| f.psdu)
                .collect();
            if let Some(first) = cls.dot154.as_ref().filter(|d| d.fcs_ok) {
                if let Some(pos) = extra.iter().position(|p| *p == first.psdu) {
                    extra.remove(pos);
                }
            }
            wazabee_telemetry::counter!("ids.stream.extra_frames").add(extra.len() as u64);
            if !self.config.dot154_whitelisted {
                for psdu in extra {
                    alerts.push(Alert::UnexpectedDot154 {
                        center_mhz: self.center_mhz,
                        psdu,
                    });
                }
            }
        }
        wazabee_telemetry::counter!("ids.alerts").add(alerts.len() as u64);
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_ble::{BleChannel, BleModem, BlePacket, BlePhy};
    use wazabee_dot154::{fcs::append_fcs, Dot154Modem, Ppdu};

    fn pad(samples: Vec<Iq>) -> Vec<Iq> {
        let mut buf = vec![Iq::ZERO; 512];
        buf.extend(samples);
        buf.extend(vec![Iq::ZERO; 512]);
        buf
    }

    fn monitor(whitelisted: bool) -> ChannelMonitor {
        let config = MonitorConfig {
            dot154_whitelisted: whitelisted,
            ..MonitorConfig::default()
        };
        ChannelMonitor::new(2420, 8, config)
    }

    #[test]
    fn legitimate_ble_raises_nothing() {
        let mut m = monitor(false);
        let modem = BleModem::new(BlePhy::Le2M, 8);
        let pkt = BlePacket::advertising(vec![0x02, 0x02, 1, 2]);
        let burst = pad(modem.transmit(&pkt, BleChannel::new(8).unwrap(), true));
        assert!(m.observe(&burst).is_empty());
    }

    #[test]
    fn whitelisted_dot154_raises_nothing() {
        let mut m = monitor(true);
        let modem = Dot154Modem::new(8);
        let ppdu = Ppdu::new(append_fcs(&[1, 2, 3])).unwrap();
        let burst = pad(modem.transmit(&ppdu));
        assert!(m.observe(&burst).is_empty());
    }

    #[test]
    fn unexpected_dot154_is_flagged() {
        let mut m = monitor(false);
        let modem = Dot154Modem::new(8);
        let ppdu = Ppdu::new(append_fcs(&[0xDE, 0xAD])).unwrap();
        let burst = pad(modem.transmit(&ppdu));
        let alerts = m.observe(&burst);
        assert!(
            alerts
                .iter()
                .any(|a| matches!(a, Alert::UnexpectedDot154 { psdu, .. } if *psdu == ppdu.psdu())),
            "{alerts:?}"
        );
    }

    #[test]
    fn back_to_back_frames_in_one_burst_both_flagged() {
        // Two frames separated by less than the detector's merge gap fuse
        // into a single burst; the streaming sweep must flag both, not just
        // the one the one-shot classifier reaches.
        let mut m = monitor(false);
        let modem = Dot154Modem::new(8);
        let a = Ppdu::new(append_fcs(&[0x11, 0x22])).unwrap();
        let b = Ppdu::new(append_fcs(&[0x33, 0x44, 0x55])).unwrap();
        let mut air = modem.transmit(&a);
        air.extend(vec![Iq::ZERO; 48]); // < merge_gap (64): one burst
        air.extend(modem.transmit(&b));
        let alerts = m.observe(&pad(air));
        let flagged: Vec<&Vec<u8>> = alerts
            .iter()
            .filter_map(|al| match al {
                Alert::UnexpectedDot154 { psdu, .. } => Some(psdu),
                _ => None,
            })
            .collect();
        assert!(flagged.iter().any(|p| **p == a.psdu()), "{alerts:?}");
        assert!(flagged.iter().any(|p| **p == b.psdu()), "{alerts:?}");
        assert_eq!(flagged.len(), 2, "no duplicate alerts: {alerts:?}");
    }

    #[test]
    fn burst_storm_raises_anomaly() {
        let mut m = monitor(true);
        let modem = Dot154Modem::new(8);
        let one = |k: u8| {
            let ppdu = Ppdu::new(append_fcs(&[k])).unwrap();
            modem.transmit(&ppdu)
        };
        // Warm up the baseline: one burst per window.
        for k in 0..5 {
            let w = pad(one(k));
            assert!(m.observe(&w).is_empty(), "warm-up window {k}");
        }
        // Storm window: ten bursts.
        let mut storm = Vec::new();
        for k in 0..10 {
            storm.extend(pad(one(100 + k)));
        }
        let alerts = m.observe(&storm);
        assert!(
            alerts
                .iter()
                .any(|a| matches!(a, Alert::TrafficAnomaly { observed: 10, .. })),
            "{alerts:?}"
        );
    }

    #[test]
    fn baseline_tracks_rate() {
        let mut m = monitor(true);
        let modem = Dot154Modem::new(8);
        let ppdu = Ppdu::new(append_fcs(&[7])).unwrap();
        for _ in 0..6 {
            let w = pad(modem.transmit(&ppdu));
            m.observe(&w);
        }
        assert!(m.baseline_rate() > 0.5, "baseline {}", m.baseline_rate());
        assert_eq!(m.center_mhz(), 2420);
    }

    #[test]
    fn alert_frequency_accessor() {
        let a = Alert::TrafficAnomaly {
            center_mhz: 2450,
            observed: 9,
            baseline: 1.0,
        };
        assert_eq!(a.center_mhz(), 2450);
    }
}
