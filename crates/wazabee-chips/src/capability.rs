//! Radio-chip capability models.
//!
//! The paper's §IV-D lists four requirements a chip must meet for the full
//! attack: a 2 Mbit/s rate, tunability onto Zigbee frequencies, control of
//! the modulator input, and access to the raw demodulator output. Real parts
//! differ in which knobs they expose; these models encode exactly that.

/// What a given chip's radio lets attacker code do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipCapabilities {
    /// Marketing name of the part.
    pub name: &'static str,
    /// Supports the BLE 5 LE 2M PHY (requirement 1, the native path).
    pub le_2m: bool,
    /// Supports Enhanced ShockBurst at 2 Mbit/s (the nRF51822 fallback).
    pub esb_2m: bool,
    /// Whitening can be turned off (requirement 3, the easy path).
    pub whitening_disable: bool,
    /// CRC checking can be turned off so invalid frames reach the host
    /// (requirement 4).
    pub crc_disable: bool,
    /// The synthesiser accepts arbitrary frequencies in the ISM band
    /// (requirement 2); otherwise only BLE channel centres are reachable and
    /// the attack is limited to the paper's Table II subset.
    pub arbitrary_frequency: bool,
    /// The access-address / sync-word register is freely writable.
    pub custom_access_address: bool,
    /// Attacker code reaches radio registers at all. `false` models the
    /// unrooted smartphone of Scenario A, where only the high-level
    /// advertising API is reachable.
    pub register_access: bool,
    /// Receiver quality offset in dB relative to the nRF52832 baseline —
    /// Table III shows the CC1352-R1 receiving slightly more cleanly.
    pub rx_quality_db: f64,
}

impl ChipCapabilities {
    /// Whether the chip can run the full WazaBee transmission primitive.
    pub fn can_raw_transmit(&self) -> bool {
        self.register_access && (self.le_2m || self.esb_2m)
    }

    /// Whether the chip can run the full WazaBee reception primitive.
    pub fn can_raw_receive(&self) -> bool {
        self.can_raw_transmit() && self.custom_access_address && self.crc_disable
    }

    /// Whether the chip can tune to a given frequency in MHz.
    pub fn can_tune_mhz(&self, mhz: u32) -> bool {
        if !(2400..=2500).contains(&mhz) {
            return false;
        }
        if self.arbitrary_frequency {
            true
        } else {
            wazabee_ble::BleChannel::from_center_mhz(mhz).is_some()
        }
    }
}

/// The Nordic Semiconductor nRF52832 of the paper's first proof of concept:
/// a highly configurable radio exposing every knob the attack wants.
pub fn nrf52832() -> ChipCapabilities {
    ChipCapabilities {
        name: "nRF52832",
        le_2m: true,
        esb_2m: true,
        whitening_disable: true,
        crc_disable: true,
        arbitrary_frequency: true,
        custom_access_address: true,
        register_access: true,
        rx_quality_db: 0.0,
    }
}

/// The Texas Instruments CC1352-R1 of the paper's second proof of concept:
/// fewer configuration options, but everything the attack needs through the
/// common TI BLE API — and a slightly cleaner receiver (Table III).
pub fn cc1352r1() -> ChipCapabilities {
    ChipCapabilities {
        name: "CC1352-R1",
        le_2m: true,
        esb_2m: false,
        whitening_disable: true,
        crc_disable: true,
        arbitrary_frequency: true,
        custom_access_address: true,
        register_access: true,
        rx_quality_db: 1.5,
    }
}

/// The Nordic nRF51822 inside the Gablys tracker of Scenario B: no LE 2M,
/// but ESB at 2 Mbit/s substitutes — at a small receive-quality cost the
/// paper notes.
pub fn nrf51822() -> ChipCapabilities {
    ChipCapabilities {
        name: "nRF51822",
        le_2m: false,
        esb_2m: true,
        whitening_disable: true,
        crc_disable: true,
        arbitrary_frequency: true,
        custom_access_address: true,
        register_access: true,
        rx_quality_db: -1.0,
    }
}

/// An unrooted BLE 5 smartphone (Scenario A): only the standard extended
/// advertising API is reachable, so no register, whitening, CRC or frequency
/// control at all — and yet a transmission primitive still exists.
pub fn smartphone_ble5() -> ChipCapabilities {
    ChipCapabilities {
        name: "BLE 5 smartphone (unrooted)",
        le_2m: true,
        esb_2m: false,
        whitening_disable: false,
        crc_disable: false,
        arbitrary_frequency: false,
        custom_access_address: false,
        register_access: false,
        rx_quality_db: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poc_chips_run_both_primitives() {
        for caps in [nrf52832(), cc1352r1(), nrf51822()] {
            assert!(caps.can_raw_transmit(), "{}", caps.name);
            assert!(caps.can_raw_receive(), "{}", caps.name);
        }
    }

    #[test]
    fn smartphone_runs_neither_raw_primitive() {
        let phone = smartphone_ble5();
        assert!(!phone.can_raw_transmit());
        assert!(!phone.can_raw_receive());
        // ...and yet it supports LE 2M — the PHY Scenario A rides on.
        assert!(phone.le_2m);
    }

    #[test]
    fn nrf51822_lacks_le2m_but_has_esb() {
        let caps = nrf51822();
        assert!(!caps.le_2m);
        assert!(caps.esb_2m);
        assert!(caps.can_raw_transmit());
    }

    #[test]
    fn arbitrary_frequency_chips_reach_all_zigbee_channels() {
        for caps in [nrf52832(), cc1352r1(), nrf51822()] {
            for z in wazabee_dot154::Dot154Channel::all() {
                assert!(caps.can_tune_mhz(z.center_mhz()), "{} ch {z}", caps.name);
            }
        }
    }

    #[test]
    fn ble_only_tuning_reaches_only_table2_channels() {
        let phone = smartphone_ble5();
        let reachable: Vec<u8> = wazabee_dot154::Dot154Channel::all()
            .filter(|z| phone.can_tune_mhz(z.center_mhz()))
            .map(|z| z.number())
            .collect();
        assert_eq!(reachable, vec![12, 14, 16, 18, 20, 22, 24, 26]);
    }

    #[test]
    fn out_of_band_rejected() {
        assert!(!nrf52832().can_tune_mhz(2399));
        assert!(!nrf52832().can_tune_mhz(2501));
        assert!(nrf52832().can_tune_mhz(2405)); // Zigbee 11, not a BLE centre
        assert!(!smartphone_ble5().can_tune_mhz(2405));
    }

    #[test]
    fn cc1352_receives_cleaner_than_nrf52832() {
        assert!(cc1352r1().rx_quality_db > nrf52832().rx_quality_db);
        assert!(nrf51822().rx_quality_db < nrf52832().rx_quality_db);
    }
}

/// A smartphone whose Broadcom/Cypress BLE controller firmware has been
/// patched with InternalBlue [Mantz et al., MobiSys'19] — the escalation the
/// paper sketches at the end of §VI-B: with firmware patching, both WazaBee
/// primitives become available on an off-the-shelf phone.
pub fn smartphone_internalblue() -> ChipCapabilities {
    ChipCapabilities {
        name: "BLE 5 smartphone (InternalBlue-patched)",
        register_access: true,
        whitening_disable: true,
        crc_disable: true,
        custom_access_address: true,
        ..smartphone_ble5()
    }
}

#[cfg(test)]
mod internalblue_tests {
    use super::*;

    #[test]
    fn patched_phone_runs_both_primitives() {
        let caps = smartphone_internalblue();
        assert!(caps.can_raw_transmit());
        assert!(caps.can_raw_receive());
        // ...but its synthesiser is still BLE-channel-bound: the Table II
        // subset is the reachable attack surface.
        assert!(caps.can_tune_mhz(2420));
        assert!(!caps.can_tune_mhz(2405));
    }

    #[test]
    fn stock_phone_differs_only_in_firmware_knobs() {
        let stock = smartphone_ble5();
        let patched = smartphone_internalblue();
        assert_eq!(stock.le_2m, patched.le_2m);
        assert_eq!(stock.arbitrary_frequency, patched.arbitrary_frequency);
        assert!(!stock.register_access && patched.register_access);
    }
}
