//! The unrooted-smartphone model of Scenario A.
//!
//! Attacker code on the phone reaches only the standard extended-advertising
//! API: it may set advertising data and enable advertising with the LE 2M
//! secondary PHY, but it controls neither the secondary channel (Channel
//! Selection Algorithm #2 does), nor whitening, nor the access address. The
//! model emits, per advertising event, the `ADV_EXT_IND` packets on the
//! primary channels and the `AUX_ADV_IND` on the CSA#2-selected secondary
//! channel — exactly the frames a real BLE 5 controller would.

use wazabee_ble::adv::{AdvExtInd, AuxAdvInd, AuxPtr, BleAddress};
use wazabee_ble::csa2::{select_channel, ChannelMap};
use wazabee_ble::{BleChannel, BleModem, BlePacket, BlePhy};
use wazabee_dsp::iq::Iq;

/// Maximum manufacturer-data bytes the advertising API accepts (the PDU
/// length byte caps the payload; see `wazabee_ble::adv`).
pub const MAX_MANUFACTURER_DATA: usize = 241;

/// One advertising event as emitted on air.
#[derive(Debug, Clone)]
pub struct AdvertisingEvent {
    /// The event counter value this event used.
    pub event_counter: u16,
    /// The CSA#2-selected secondary channel.
    pub aux_channel: BleChannel,
    /// The `AUX_ADV_IND` waveform (LE 2M, whitened for `aux_channel`).
    pub aux_samples: Vec<Iq>,
    /// The `ADV_EXT_IND` waveforms on the primary channels (LE 1M).
    pub primary: Vec<(BleChannel, Vec<Iq>)>,
}

/// A BLE 5 smartphone controller restricted to the public advertising API.
#[derive(Debug, Clone)]
pub struct Smartphone {
    modem_1m: BleModem,
    modem_2m: BleModem,
    address: BleAddress,
    access_address: u32,
    company_id: u16,
    adv_data: Option<Vec<u8>>,
    adi: u16,
    event_counter: u16,
    channel_map: ChannelMap,
}

impl Smartphone {
    /// Creates a phone with a fixed advertiser address. The extended
    /// advertising access address is controller-chosen; we derive it
    /// deterministically from the address so simulations are reproducible.
    pub fn new(address: BleAddress, samples_per_symbol: usize) -> Self {
        let a = address.0;
        let access_address = u32::from_le_bytes([a[0], a[1], a[2], a[3]]) ^ 0xA5A5_5A5A;
        Smartphone {
            modem_1m: BleModem::new(BlePhy::Le1M, samples_per_symbol),
            modem_2m: BleModem::new(BlePhy::Le2M, samples_per_symbol),
            address,
            access_address,
            company_id: 0x0059, // Nordic's company id, as good as any
            adv_data: None,
            adi: 0x1D07,
            event_counter: 0,
            channel_map: ChannelMap::all_data_channels(),
        }
    }

    /// The controller-chosen extended-advertising access address. Attacker
    /// code can *read* this through HCI but cannot choose it.
    pub fn access_address(&self) -> u32 {
        self.access_address
    }

    /// The advertising event counter.
    pub fn event_counter(&self) -> u16 {
        self.event_counter
    }

    /// The public API: sets manufacturer-specific advertising data.
    ///
    /// # Errors
    ///
    /// Returns the rejected payload when it exceeds
    /// [`MAX_MANUFACTURER_DATA`] bytes.
    pub fn set_manufacturer_data(&mut self, data: Vec<u8>) -> Result<(), Vec<u8>> {
        if data.len() > MAX_MANUFACTURER_DATA {
            return Err(data);
        }
        self.adv_data = Some(data);
        Ok(())
    }

    /// The secondary channel CSA#2 will pick for a given event counter —
    /// the attacker can compute this (the algorithm is public) but cannot
    /// influence it.
    pub fn predicted_channel(&self, event_counter: u16) -> BleChannel {
        select_channel(self.access_address, event_counter, &self.channel_map)
    }

    /// Runs one advertising event, emitting the primary `ADV_EXT_IND`s and
    /// the secondary `AUX_ADV_IND`, and advancing the event counter.
    ///
    /// Returns `None` while no advertising data is configured.
    pub fn advertising_event(&mut self) -> Option<AdvertisingEvent> {
        let data = self.adv_data.clone()?;
        let event_counter = self.event_counter;
        let aux_channel = self.predicted_channel(event_counter);
        self.event_counter = self.event_counter.wrapping_add(1);

        // Primary ADV_EXT_INDs point at the aux packet.
        let aux_ptr = AuxPtr {
            channel_index: aux_channel.index(),
            aux_offset_30us: 10,
            aux_phy_2m: true,
        };
        let ext = AdvExtInd {
            adi: self.adi,
            aux_ptr,
        };
        let ext_packet = BlePacket::new(wazabee_ble::ADV_ACCESS_ADDRESS, ext.to_bytes());
        let primary = BleChannel::ADVERTISING
            .iter()
            .map(|&ch| (ch, self.modem_1m.transmit(&ext_packet, ch, true)))
            .collect();

        // The AUX_ADV_IND carries the manufacturer data on the secondary
        // channel at 2 Mbit/s, whitened for that channel by the controller.
        let aux = AuxAdvInd::with_manufacturer_data(self.address, self.adi, self.company_id, data);
        let aux_packet = BlePacket::new(self.access_address, aux.to_bytes());
        let aux_samples = self.modem_2m.transmit(&aux_packet, aux_channel, true);

        Some(AdvertisingEvent {
            event_counter,
            aux_channel,
            aux_samples,
            primary,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phone() -> Smartphone {
        Smartphone::new(BleAddress::new([1, 2, 3, 4, 5, 6]), 8)
    }

    #[test]
    fn no_event_without_data() {
        let mut p = phone();
        assert!(p.advertising_event().is_none());
    }

    #[test]
    fn event_emits_primaries_and_aux() {
        let mut p = phone();
        p.set_manufacturer_data(vec![1, 2, 3]).unwrap();
        let ev = p.advertising_event().unwrap();
        assert_eq!(ev.primary.len(), 3);
        let chans: Vec<u8> = ev.primary.iter().map(|(c, _)| c.index()).collect();
        assert_eq!(chans, vec![37, 38, 39]);
        assert!(ev.aux_channel.is_data());
        assert!(!ev.aux_samples.is_empty());
    }

    #[test]
    fn counter_advances_and_channels_follow_csa2() {
        let mut p = phone();
        p.set_manufacturer_data(vec![0]).unwrap();
        let predicted: Vec<BleChannel> = (0..8).map(|e| p.predicted_channel(e)).collect();
        for expect in predicted {
            let ev = p.advertising_event().unwrap();
            assert_eq!(ev.aux_channel, expect);
        }
        assert_eq!(p.event_counter(), 8);
    }

    #[test]
    fn aux_packet_parses_back_as_extended_advertising() {
        let mut p = phone();
        let marker = vec![0xDE, 0xAD, 0xBE, 0xEF];
        p.set_manufacturer_data(marker.clone()).unwrap();
        let ev = p.advertising_event().unwrap();
        // A legitimate BLE receiver on the aux channel decodes the PDU.
        let rx = p
            .modem_2m
            .receive(&ev.aux_samples, p.access_address(), ev.aux_channel, true)
            .unwrap();
        assert!(rx.crc_ok());
        let aux = AuxAdvInd::from_bytes(rx.pdu()).unwrap();
        // Manufacturer AD structure: len, 0xFF, company(2), data.
        assert_eq!(&aux.adv_data[4..], marker.as_slice());
    }

    #[test]
    fn data_length_enforced() {
        let mut p = phone();
        assert!(p
            .set_manufacturer_data(vec![0; MAX_MANUFACTURER_DATA])
            .is_ok());
        assert!(p
            .set_manufacturer_data(vec![0; MAX_MANUFACTURER_DATA + 1])
            .is_err());
    }

    #[test]
    fn different_phones_have_different_access_addresses() {
        let a = Smartphone::new(BleAddress::new([1, 2, 3, 4, 5, 6]), 8);
        let b = Smartphone::new(BleAddress::new([9, 9, 9, 9, 9, 9]), 8);
        assert_ne!(a.access_address(), b.access_address());
    }
}
