#![warn(missing_docs)]

//! # wazabee-chips
//!
//! Capability-accurate radio chip models for the WazaBee reproduction
//! (Cayre et al., DSN 2021).
//!
//! The paper demonstrates the attack on an nRF52832 and a CC1352-R1, extends
//! it to an nRF51822-based tracker (Scenario B) and an unrooted BLE 5
//! smartphone (Scenario A). Each model encodes which of the §IV-D
//! requirements the part satisfies:
//!
//! * [`capability`] — per-chip capability sheets,
//! * [`radio`] — a runtime radio model gating modem access and tuning,
//! * [`smartphone`] — the high-level-API-only extended-advertising path.
//!
//! ## Example
//!
//! ```
//! use wazabee_chips::{nrf52832, smartphone_ble5, ChipRadio};
//!
//! let mut dev = ChipRadio::new(nrf52832(), 8);
//! dev.tune_mhz(2420).unwrap();          // arbitrary-frequency synthesiser
//! dev.check_raw_receive().unwrap();     // all four requirements met
//!
//! let phone = ChipRadio::new(smartphone_ble5(), 8);
//! assert!(phone.two_mbps_modem().is_err()); // no raw path on a phone
//! ```

pub mod capability;
pub mod radio;
pub mod smartphone;

pub use capability::{
    cc1352r1, nrf51822, nrf52832, smartphone_ble5, smartphone_internalblue, ChipCapabilities,
};
pub use radio::{ChipError, ChipRadio, TwoMbpsModem};
pub use smartphone::{AdvertisingEvent, Smartphone, MAX_MANUFACTURER_DATA};
