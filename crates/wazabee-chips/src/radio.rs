//! A runtime radio model: capabilities + modems + a synthesiser.

use wazabee_ble::{BleModem, BlePhy};
use wazabee_esb::EsbModem;

use crate::capability::ChipCapabilities;

/// Errors raised when firmware asks a chip for something its radio cannot do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipError {
    /// The synthesiser cannot reach the requested frequency.
    CannotTune {
        /// The requested frequency in MHz.
        mhz: u32,
    },
    /// A required capability is absent.
    MissingCapability {
        /// The capability that is missing.
        capability: &'static str,
    },
}

impl std::fmt::Display for ChipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChipError::CannotTune { mhz } => write!(f, "cannot tune to {mhz} MHz"),
            ChipError::MissingCapability { capability } => {
                write!(f, "missing capability: {capability}")
            }
        }
    }
}

impl std::error::Error for ChipError {}

/// The 2 Mbit/s modem a chip offers for diversion: the LE 2M PHY when the
/// part has it, otherwise Enhanced ShockBurst.
#[derive(Debug, Clone)]
pub enum TwoMbpsModem {
    /// BLE LE 2M — the native WazaBee path.
    Ble(BleModem),
    /// Enhanced ShockBurst at 2 Mbit/s — the nRF51822 fallback of Scenario B.
    Esb(EsbModem),
}

/// A chip's radio, as attacker firmware sees it.
///
/// # Examples
///
/// ```
/// use wazabee_chips::{nrf52832, ChipRadio};
/// let mut radio = ChipRadio::new(nrf52832(), 8);
/// radio.tune_mhz(2420).unwrap(); // Zigbee channel 14
/// assert_eq!(radio.tuned_mhz(), Some(2420));
/// ```
#[derive(Debug, Clone)]
pub struct ChipRadio {
    caps: ChipCapabilities,
    samples_per_symbol: usize,
    tuned_mhz: Option<u32>,
}

impl ChipRadio {
    /// Creates a radio model for a chip at the given simulation oversampling.
    pub fn new(caps: ChipCapabilities, samples_per_symbol: usize) -> Self {
        ChipRadio {
            caps,
            samples_per_symbol,
            tuned_mhz: None,
        }
    }

    /// The chip's capability sheet.
    pub fn capabilities(&self) -> &ChipCapabilities {
        &self.caps
    }

    /// The currently tuned centre frequency, if any.
    pub fn tuned_mhz(&self) -> Option<u32> {
        self.tuned_mhz
    }

    /// Tunes the synthesiser.
    ///
    /// # Errors
    ///
    /// [`ChipError::CannotTune`] when the frequency is out of band or, on
    /// chips without arbitrary-frequency support, not a BLE channel centre.
    pub fn tune_mhz(&mut self, mhz: u32) -> Result<(), ChipError> {
        if !self.caps.can_tune_mhz(mhz) {
            return Err(ChipError::CannotTune { mhz });
        }
        self.tuned_mhz = Some(mhz);
        Ok(())
    }

    /// Hands out the chip's 2 Mbit/s modem for raw diversion.
    ///
    /// # Errors
    ///
    /// [`ChipError::MissingCapability`] when firmware has no register access
    /// or no 2 Mbit/s mode exists.
    pub fn two_mbps_modem(&self) -> Result<TwoMbpsModem, ChipError> {
        if !self.caps.register_access {
            return Err(ChipError::MissingCapability {
                capability: "raw register access",
            });
        }
        if self.caps.le_2m {
            Ok(TwoMbpsModem::Ble(BleModem::new(
                BlePhy::Le2M,
                self.samples_per_symbol,
            )))
        } else if self.caps.esb_2m {
            Ok(TwoMbpsModem::Esb(EsbModem::new(self.samples_per_symbol)))
        } else {
            Err(ChipError::MissingCapability {
                capability: "2 Mbit/s PHY",
            })
        }
    }

    /// Verifies the chip can run the reception primitive (custom access
    /// address + CRC disable on top of raw transmit).
    ///
    /// # Errors
    ///
    /// [`ChipError::MissingCapability`] naming the first missing knob.
    pub fn check_raw_receive(&self) -> Result<(), ChipError> {
        if !self.caps.custom_access_address {
            return Err(ChipError::MissingCapability {
                capability: "custom access address",
            });
        }
        if !self.caps.crc_disable {
            return Err(ChipError::MissingCapability {
                capability: "CRC disable",
            });
        }
        self.two_mbps_modem().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::{cc1352r1, nrf51822, nrf52832, smartphone_ble5};

    #[test]
    fn nrf52832_full_attack_path() {
        let mut radio = ChipRadio::new(nrf52832(), 8);
        radio.tune_mhz(2405).unwrap();
        assert!(matches!(radio.two_mbps_modem(), Ok(TwoMbpsModem::Ble(_))));
        radio.check_raw_receive().unwrap();
    }

    #[test]
    fn nrf51822_falls_back_to_esb() {
        let radio = ChipRadio::new(nrf51822(), 8);
        assert!(matches!(radio.two_mbps_modem(), Ok(TwoMbpsModem::Esb(_))));
    }

    #[test]
    fn smartphone_has_no_raw_path() {
        let mut radio = ChipRadio::new(smartphone_ble5(), 8);
        assert_eq!(
            radio.two_mbps_modem().unwrap_err(),
            ChipError::MissingCapability {
                capability: "raw register access"
            }
        );
        // BLE-centre tuning only.
        assert!(radio.tune_mhz(2420).is_ok()); // BLE channel 8
        assert_eq!(
            radio.tune_mhz(2405).unwrap_err(),
            ChipError::CannotTune { mhz: 2405 }
        );
    }

    #[test]
    fn cc1352_receive_path_ok() {
        ChipRadio::new(cc1352r1(), 8).check_raw_receive().unwrap();
    }

    #[test]
    fn tune_state_tracked() {
        let mut radio = ChipRadio::new(nrf52832(), 8);
        assert_eq!(radio.tuned_mhz(), None);
        radio.tune_mhz(2480).unwrap();
        assert_eq!(radio.tuned_mhz(), Some(2480));
        assert!(radio.tune_mhz(2600).is_err());
        // A failed tune leaves the synthesiser where it was.
        assert_eq!(radio.tuned_mhz(), Some(2480));
    }

    #[test]
    fn errors_display() {
        assert!(ChipError::CannotTune { mhz: 2425 }
            .to_string()
            .contains("2425"));
        let e = ChipError::MissingCapability {
            capability: "CRC disable",
        };
        assert!(e.to_string().contains("CRC"));
    }
}
