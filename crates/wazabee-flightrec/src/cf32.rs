//! `.cf32` IQ dumps — the interleaved little-endian `f32` I/Q sample format
//! SDR tooling (GNU Radio file sinks, inspectrum, `sigmf` converters)
//! consumes directly — plus the JSON sidecar describing each dump.
//!
//! The codec itself lives in [`wazabee_dsp::io`] (re-exported here for
//! compatibility) so the flight recorder, the serve ingest plane and the
//! file tails all share one IQ-format codepath; this module keeps the
//! recorder-specific [`IqSidecar`] metadata.

use std::fmt::Write as _;

pub use wazabee_dsp::io::{read_cf32, write_cf32};

/// Metadata written next to every `.cf32` dump, as a small JSON object.
#[derive(Debug, Clone, PartialEq)]
pub struct IqSidecar {
    /// The [`crate::DecodeTrace`] id this window belongs to.
    pub trace_id: u64,
    /// Decoder layer that captured the window.
    pub layer: String,
    /// Sample rate in samples per second.
    pub sample_rate: f64,
    /// Carrier centre frequency in MHz, when known.
    pub center_mhz: Option<u32>,
    /// What triggered the dump (a failure reason, or `"always"`).
    pub trigger: String,
    /// Samples kept in the `.cf32` file.
    pub samples: usize,
    /// Samples in the original capture buffer (≥ `samples`; the window is
    /// bounded by the recorder's configured size).
    pub samples_total: usize,
    /// File name of the companion `.cf32` dump.
    pub cf32_file: String,
}

impl IqSidecar {
    /// Renders the sidecar as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        let _ = write!(
            out,
            "{{\"trace_id\":{},\"layer\":\"{}\",\"sample_rate\":{}",
            self.trace_id, self.layer, self.sample_rate
        );
        match self.center_mhz {
            Some(m) => {
                let _ = write!(out, ",\"center_mhz\":{m}");
            }
            None => out.push_str(",\"center_mhz\":null"),
        }
        let _ = write!(
            out,
            ",\"trigger\":\"{}\",\"samples\":{},\"samples_total\":{},\"cf32_file\":\"{}\"}}",
            self.trigger, self.samples, self.samples_total, self.cf32_file
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wazabee_dsp::Iq;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wzb-cf32-{}-{name}", std::process::id()))
    }

    #[test]
    fn cf32_round_trip_is_f32_exact() {
        let path = tmp("rt.cf32");
        let samples: Vec<Iq> = (0..257)
            .map(|k| Iq::from_polar(1.0, k as f64 * 0.1))
            .collect();
        write_cf32(&path, &samples).unwrap();
        let back = read_cf32(&path).unwrap();
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(&back) {
            assert!((a.i - b.i).abs() < 1e-6 && (a.q - b.q).abs() < 1e-6);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_ragged_file() {
        let path = tmp("ragged.cf32");
        std::fs::write(&path, [0u8; 13]).unwrap();
        assert!(read_cf32(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sidecar_json_is_balanced() {
        let s = IqSidecar {
            trace_id: 42,
            layer: "wazabee.rx".into(),
            sample_rate: 16.0e6,
            center_mhz: Some(2420),
            trigger: "truncated".into(),
            samples: 100,
            samples_total: 5000,
            cf32_file: "trace-00000042.cf32".into(),
        };
        let j = s.to_json();
        assert!(j.contains("\"trace_id\":42"), "{j}");
        assert!(j.contains("\"center_mhz\":2420"), "{j}");
        assert!(j.contains("\"trigger\":\"truncated\""), "{j}");
        assert_eq!(j.matches('"').count() % 2, 0, "{j}");
    }
}
