//! Minimal classic-PCAP writer and reader for 802.15.4 captures.
//!
//! The writer produces files Wireshark opens directly: the classic
//! little-endian microsecond format (magic `0xa1b2c3d4`, version 2.4) with
//! `LINKTYPE_IEEE802_15_4_WITHFCS` (frames carry their trailing FCS) or
//! `LINKTYPE_IEEE802_15_4_NOFCS` (FCS stripped). The reader exists so tests
//! can round-trip captures without external tooling.

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

/// IEEE 802.15.4 with the 2-byte FCS present at the end of each frame.
pub const LINKTYPE_IEEE802_15_4_WITHFCS: u32 = 195;
/// IEEE 802.15.4 with the FCS stripped from each frame.
pub const LINKTYPE_IEEE802_15_4_NOFCS: u32 = 230;

/// Classic PCAP magic for microsecond timestamps, written little-endian.
pub const PCAP_MAGIC_US: u32 = 0xa1b2_c3d4;

const SNAPLEN: u32 = 65_535;

/// An append-only classic-PCAP file.
#[derive(Debug)]
pub struct PcapWriter {
    w: BufWriter<File>,
    linktype: u32,
    packets: u64,
}

impl PcapWriter {
    /// Creates (truncating) a PCAP file at `path` and writes the global
    /// header for `linktype`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn create(path: &Path, linktype: u32) -> io::Result<Self> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&PCAP_MAGIC_US.to_le_bytes())?;
        w.write_all(&2u16.to_le_bytes())?; // version major
        w.write_all(&4u16.to_le_bytes())?; // version minor
        w.write_all(&0i32.to_le_bytes())?; // thiszone
        w.write_all(&0u32.to_le_bytes())?; // sigfigs
        w.write_all(&SNAPLEN.to_le_bytes())?;
        w.write_all(&linktype.to_le_bytes())?;
        Ok(PcapWriter {
            w,
            linktype,
            packets: 0,
        })
    }

    /// The file's link-layer type.
    pub fn linktype(&self) -> u32 {
        self.linktype
    }

    /// Packets written so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Appends one packet with the given timestamp (microseconds since the
    /// Unix epoch) and returns its index in the file.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn write_packet(&mut self, ts_us: u64, bytes: &[u8]) -> io::Result<u64> {
        let len = bytes.len().min(SNAPLEN as usize) as u32;
        self.w
            .write_all(&((ts_us / 1_000_000) as u32).to_le_bytes())?;
        self.w
            .write_all(&((ts_us % 1_000_000) as u32).to_le_bytes())?;
        self.w.write_all(&len.to_le_bytes())?; // captured length
        self.w.write_all(&len.to_le_bytes())?; // original length
        self.w.write_all(&bytes[..len as usize])?;
        let index = self.packets;
        self.packets += 1;
        Ok(index)
    }

    /// Flushes buffered data to disk.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// One packet read back from a PCAP file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Timestamp in microseconds since the Unix epoch.
    pub ts_us: u64,
    /// Captured packet bytes.
    pub bytes: Vec<u8>,
}

/// A fully parsed PCAP file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapFile {
    /// Link-layer type from the global header.
    pub linktype: u32,
    /// All packets, in file order.
    pub packets: Vec<PcapPacket>,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn u32le(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Reads a little-endian microsecond classic-PCAP file in full.
///
/// # Errors
///
/// Fails on IO errors, a wrong magic, or a truncated packet record.
pub fn read_pcap(path: &Path) -> io::Result<PcapFile> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < 24 {
        return Err(bad("pcap shorter than its global header"));
    }
    if u32le(&raw[0..4]) != PCAP_MAGIC_US {
        return Err(bad("not a little-endian microsecond pcap"));
    }
    let linktype = u32le(&raw[20..24]);
    let mut packets = Vec::new();
    let mut at = 24usize;
    while at < raw.len() {
        if at + 16 > raw.len() {
            return Err(bad("truncated packet header"));
        }
        let ts_s = u64::from(u32le(&raw[at..at + 4]));
        let ts_us = u64::from(u32le(&raw[at + 4..at + 8]));
        let cap_len = u32le(&raw[at + 8..at + 12]) as usize;
        at += 16;
        if at + cap_len > raw.len() {
            return Err(bad("truncated packet body"));
        }
        packets.push(PcapPacket {
            ts_us: ts_s * 1_000_000 + ts_us,
            bytes: raw[at..at + cap_len].to_vec(),
        });
        at += cap_len;
    }
    Ok(PcapFile { linktype, packets })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wzb-pcap-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trips_packets_and_linktype() {
        let path = tmp("rt.pcap");
        let mut w = PcapWriter::create(&path, LINKTYPE_IEEE802_15_4_WITHFCS).unwrap();
        assert_eq!(w.write_packet(1_000_007, &[1, 2, 3]).unwrap(), 0);
        assert_eq!(w.write_packet(2_500_000, &[0xAA; 40]).unwrap(), 1);
        w.flush().unwrap();
        drop(w);
        let f = read_pcap(&path).unwrap();
        assert_eq!(f.linktype, LINKTYPE_IEEE802_15_4_WITHFCS);
        assert_eq!(f.packets.len(), 2);
        assert_eq!(f.packets[0].bytes, vec![1, 2, 3]);
        assert_eq!(f.packets[0].ts_us, 1_000_007);
        assert_eq!(f.packets[1].bytes, vec![0xAA; 40]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("bad.pcap");
        std::fs::write(&path, [0u8; 40]).unwrap();
        assert!(read_pcap(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_body() {
        let path = tmp("cut.pcap");
        let mut w = PcapWriter::create(&path, LINKTYPE_IEEE802_15_4_NOFCS).unwrap();
        w.write_packet(0, &[9; 10]).unwrap();
        w.flush().unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(read_pcap(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
