#![warn(missing_docs)]

//! # wazabee-flightrec
//!
//! The flight recorder of the WazaBee stack: forensic, per-frame
//! observability for the RX chain the paper's whole argument rests on
//! (§IV-D, Tables III–IV). Where `wazabee-telemetry` answers *"what fraction
//! of frames failed?"*, this crate answers *"which stage killed which frame,
//! and what did its baseband look like?"*:
//!
//! * [`DecodeTrace`] — one provenance record per RX attempt: sync
//!   correlation quality, CFO estimate, the Hamming distance of every
//!   despread symbol decision, and a typed [`RxFailure`] naming the stage
//!   that killed the attempt (or the delivered frame and its checksum
//!   verdict).
//! * IQ capture taps — a bounded window of the complex-baseband samples
//!   under decode, dumped on failure (or always) as `.cf32` (interleaved
//!   little-endian `f32` I/Q, the format SDR tooling replays directly) plus
//!   a JSON sidecar naming the trace, sample rate and trigger.
//! * Frame export — decoded 802.15.4 frames as a Wireshark-ready PCAP
//!   ([`pcap::LINKTYPE_IEEE802_15_4_WITHFCS`] /
//!   [`pcap::LINKTYPE_IEEE802_15_4_NOFCS`]) and a JSONL frame log linking
//!   every frame to its [`DecodeTrace`] and IQ artifact.
//!
//! ## Activation
//!
//! Nothing is recorded until a configuration is installed — either
//! explicitly via [`FlightRecorder::builder`] or from the
//! [`ENV_CAPTURE_DIR`] (`WAZABEE_CAPTURE_DIR`) environment variable via
//! [`init_from_env`]. Instrumented decoders call [`begin`] and feed the
//! returned [`TraceHandle`]; with no recorder installed the handle is inert,
//! and with the `enabled` cargo feature off (mirroring the `telemetry`
//! feature of the sibling crates) every hook compiles to an empty inline
//! no-op.
//!
//! ## Example
//!
//! ```
//! use wazabee_flightrec as fr;
//!
//! let dir = std::env::temp_dir().join(format!("fr-doc-{}", std::process::id()));
//! fr::FlightRecorder::builder().capture_dir(&dir).install().unwrap();
//!
//! let mut tr = fr::begin("doc.rx");
//! tr.sync(1, 640, 3, 32);
//! tr.despread(0);
//! tr.despread(2);
//! tr.fail(fr::RxFailure::TruncatedFrame);
//!
//! fr::flush().unwrap();
//! # #[cfg(feature = "enabled")]
//! assert!(fr::recent_traces().iter().any(|t| t.chip_errors() == 2));
//! fr::reset();
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod cf32;
pub mod pcap;
mod recorder;
mod trace;

pub use cf32::{read_cf32, write_cf32, IqSidecar};
pub use recorder::{
    begin, capture_dir, flush, init_from_env, is_active, recent_traces, reset, stats, CaptureStats,
    FlightRecorder, FlightRecorderBuilder, IqCaptureMode, TraceHandle, DEFAULT_IQ_WINDOW,
    DEFAULT_RING_CAPACITY, FRAME_LOG_FILE, PCAP_FILE,
};
pub use trace::{DecodeTrace, FrameKind, RxFailure, SyncInfo};

/// Environment variable naming the capture directory (see [`init_from_env`]).
pub const ENV_CAPTURE_DIR: &str = "WAZABEE_CAPTURE_DIR";
