//! The global flight recorder: configuration, the per-attempt
//! [`TraceHandle`] hook, and the artifact writers (PCAP, JSONL frame log,
//! `.cf32` IQ windows).
//!
//! The recorder is process-global, like the telemetry registry: demodulators
//! deep in the stack call [`begin`] without threading a handle through every
//! layer. Until a configuration is installed every hook is a cheap
//! early-return; with the `enabled` cargo feature off the hooks compile to
//! empty inline no-ops entirely.

/// When the recorder dumps the IQ window of an RX attempt to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IqCaptureMode {
    /// Never write IQ windows.
    Off,
    /// Write the window of every attempt that ends in a failure (including
    /// delivered frames with a bad checksum). The default.
    #[default]
    OnFailure,
    /// Write the window of every attempt.
    Always,
}

/// Counters describing what the recorder has produced so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Traces finalized into the in-memory ring.
    pub traces: u64,
    /// Lines appended to the JSONL frame log.
    pub frames_logged: u64,
    /// Frames appended to the PCAP.
    pub pcap_frames: u64,
    /// `.cf32` IQ windows written.
    pub iq_dumps: u64,
}

/// File name of the capture PCAP inside the capture directory.
pub const PCAP_FILE: &str = "frames.pcap";
/// File name of the JSONL frame log inside the capture directory.
pub const FRAME_LOG_FILE: &str = "frames.jsonl";

/// Default bound on a dumped IQ window, in samples (≈ 1 MiB of `.cf32`, and
/// comfortably more than a maximum-length 802.15.4 frame at 8 samples per
/// chip).
pub const DEFAULT_IQ_WINDOW: usize = 1 << 17;

/// Default capacity of the in-memory trace ring.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

#[cfg(feature = "enabled")]
mod live {
    use std::collections::VecDeque;
    use std::fs::File;
    use std::io::{self, BufWriter, Write};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::{SystemTime, UNIX_EPOCH};

    use wazabee_dsp::Iq;

    use super::{CaptureStats, IqCaptureMode};
    use crate::cf32::{write_cf32, IqSidecar};
    use crate::pcap::{PcapWriter, LINKTYPE_IEEE802_15_4_WITHFCS};
    use crate::trace::{DecodeTrace, FrameKind, RxFailure, SyncInfo};
    use crate::ENV_CAPTURE_DIR;

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    static STATE: Mutex<Option<State>> = Mutex::new(None);

    struct State {
        capture_dir: Option<PathBuf>,
        iq_mode: IqCaptureMode,
        iq_window: usize,
        ring_capacity: usize,
        pcap_linktype: u32,
        traces: VecDeque<DecodeTrace>,
        pcap: Option<PcapWriter>,
        frame_log: Option<BufWriter<File>>,
        stats: CaptureStats,
    }

    fn lock_state() -> std::sync::MutexGuard<'static, Option<State>> {
        STATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn now_us() -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }

    /// Builder for installing the global [`FlightRecorder`] configuration.
    #[derive(Debug, Clone)]
    pub struct FlightRecorderBuilder {
        capture_dir: Option<PathBuf>,
        iq_mode: IqCaptureMode,
        iq_window: usize,
        ring_capacity: usize,
        pcap_linktype: u32,
    }

    impl Default for FlightRecorderBuilder {
        fn default() -> Self {
            FlightRecorderBuilder {
                capture_dir: None,
                iq_mode: IqCaptureMode::OnFailure,
                iq_window: super::DEFAULT_IQ_WINDOW,
                ring_capacity: super::DEFAULT_RING_CAPACITY,
                pcap_linktype: LINKTYPE_IEEE802_15_4_WITHFCS,
            }
        }
    }

    impl FlightRecorderBuilder {
        /// Directory receiving PCAP, JSONL and `.cf32` artifacts. Without a
        /// directory the recorder keeps traces in memory only.
        #[must_use]
        pub fn capture_dir(mut self, dir: impl Into<PathBuf>) -> Self {
            self.capture_dir = Some(dir.into());
            self
        }

        /// When to dump IQ windows (default: on failure).
        #[must_use]
        pub fn iq_mode(mut self, mode: IqCaptureMode) -> Self {
            self.iq_mode = mode;
            self
        }

        /// Bound on each dumped IQ window, in samples.
        #[must_use]
        pub fn iq_window(mut self, samples: usize) -> Self {
            self.iq_window = samples;
            self
        }

        /// Capacity of the in-memory trace ring.
        #[must_use]
        pub fn ring_capacity(mut self, capacity: usize) -> Self {
            self.ring_capacity = capacity.max(1);
            self
        }

        /// PCAP link type: [`crate::pcap::LINKTYPE_IEEE802_15_4_WITHFCS`]
        /// (default) keeps the trailing FCS in each exported frame,
        /// [`crate::pcap::LINKTYPE_IEEE802_15_4_NOFCS`] strips it.
        #[must_use]
        pub fn pcap_linktype(mut self, linktype: u32) -> Self {
            self.pcap_linktype = linktype;
            self
        }

        /// Installs this configuration as the process-global recorder,
        /// replacing any previous one (open artifact files are flushed and
        /// closed first).
        ///
        /// # Errors
        ///
        /// Fails when the capture directory cannot be created.
        pub fn install(self) -> io::Result<()> {
            if let Some(dir) = &self.capture_dir {
                std::fs::create_dir_all(dir)?;
            }
            let mut state = lock_state();
            if let Some(old) = state.as_mut() {
                flush_locked(old).ok();
            }
            *state = Some(State {
                capture_dir: self.capture_dir,
                iq_mode: self.iq_mode,
                iq_window: self.iq_window,
                ring_capacity: self.ring_capacity,
                pcap_linktype: self.pcap_linktype,
                traces: VecDeque::new(),
                pcap: None,
                frame_log: None,
                stats: CaptureStats::default(),
            });
            ACTIVE.store(true, Ordering::Release);
            Ok(())
        }
    }

    /// Namespace handle for building the global recorder configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct FlightRecorder;

    impl FlightRecorder {
        /// Starts a configuration builder.
        #[must_use]
        pub fn builder() -> FlightRecorderBuilder {
            FlightRecorderBuilder::default()
        }
    }

    /// Installs a recorder from `WAZABEE_CAPTURE_DIR`, when set (IQ windows
    /// on failure, default window and ring). Returns whether a capture
    /// directory is now active.
    ///
    /// # Errors
    ///
    /// Fails when the directory named by the variable cannot be created.
    pub fn init_from_env() -> io::Result<bool> {
        match std::env::var_os(ENV_CAPTURE_DIR) {
            Some(dir) if !dir.is_empty() => {
                FlightRecorder::builder().capture_dir(dir).install()?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Whether a recorder configuration is installed.
    pub fn is_active() -> bool {
        ACTIVE.load(Ordering::Acquire)
    }

    /// The active capture directory, if any.
    pub fn capture_dir() -> Option<PathBuf> {
        lock_state().as_ref().and_then(|s| s.capture_dir.clone())
    }

    /// Snapshot of the recorder's output counters.
    pub fn stats() -> CaptureStats {
        lock_state().as_ref().map(|s| s.stats).unwrap_or_default()
    }

    /// Snapshot of the in-memory trace ring, oldest first.
    pub fn recent_traces() -> Vec<DecodeTrace> {
        lock_state()
            .as_ref()
            .map(|s| s.traces.iter().cloned().collect())
            .unwrap_or_default()
    }

    fn flush_locked(state: &mut State) -> io::Result<()> {
        if let Some(p) = state.pcap.as_mut() {
            p.flush()?;
        }
        if let Some(l) = state.frame_log.as_mut() {
            l.flush()?;
        }
        Ok(())
    }

    /// Flushes the PCAP and frame-log writers to disk.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush() -> io::Result<()> {
        match lock_state().as_mut() {
            Some(s) => flush_locked(s),
            None => Ok(()),
        }
    }

    /// Uninstalls the recorder (flushing artifact files first). Intended for
    /// test isolation.
    pub fn reset() {
        let mut state = lock_state();
        if let Some(s) = state.as_mut() {
            flush_locked(s).ok();
        }
        *state = None;
        ACTIVE.store(false, Ordering::Release);
    }

    struct Inner {
        trace: DecodeTrace,
        iq: Vec<Iq>,
        iq_total: usize,
        sample_rate: Option<f64>,
        center_mhz: Option<u32>,
        iq_mode: IqCaptureMode,
        iq_window: usize,
        capture_files: bool,
    }

    /// The per-RX-attempt hook: created by [`begin`], filled in by the
    /// decode stages, consumed by [`TraceHandle::fail`] or
    /// [`TraceHandle::deliver`]. Dropping an unfinished handle records the
    /// attempt as [`RxFailure::Abandoned`].
    #[derive(Default)]
    pub struct TraceHandle {
        inner: Option<Box<Inner>>,
    }

    impl std::fmt::Debug for TraceHandle {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match &self.inner {
                Some(i) => write!(f, "TraceHandle(id={})", i.trace.id),
                None => f.write_str("TraceHandle(inert)"),
            }
        }
    }

    /// Opens a trace for one RX attempt in `layer`. Inert (all methods
    /// no-ops) until a recorder is installed.
    pub fn begin(layer: &'static str) -> TraceHandle {
        if !is_active() {
            return TraceHandle { inner: None };
        }
        let Some(state) = &*lock_state() else {
            return TraceHandle { inner: None };
        };
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        TraceHandle {
            inner: Some(Box::new(Inner {
                trace: DecodeTrace::new(id, layer),
                iq: Vec::new(),
                iq_total: 0,
                sample_rate: None,
                center_mhz: None,
                iq_mode: state.iq_mode,
                iq_window: state.iq_window,
                capture_files: state.capture_dir.is_some(),
            })),
        }
    }

    impl TraceHandle {
        /// Whether this handle is recording (false before a recorder is
        /// installed — callers can skip computing expensive stage data).
        pub fn active(&self) -> bool {
            self.inner.is_some()
        }

        /// This attempt's trace id, when recording.
        pub fn id(&self) -> Option<u64> {
            self.inner.as_ref().map(|i| i.trace.id)
        }

        /// Taps the complex-baseband window under decode. The samples are
        /// copied (bounded by the configured window) only when an IQ dump
        /// can actually happen; otherwise only the metadata is kept.
        pub fn tap_iq(&mut self, samples: &[Iq], sample_rate: f64, center_mhz: Option<u32>) {
            let Some(inner) = self.inner.as_mut() else {
                return;
            };
            inner.sample_rate = Some(sample_rate);
            inner.center_mhz = center_mhz;
            inner.iq_total = samples.len();
            if inner.capture_files && inner.iq_mode != IqCaptureMode::Off {
                let keep = samples.len().min(inner.iq_window);
                inner.iq = samples[..keep].to_vec();
            }
        }

        /// Records the sync correlator's lock for this attempt.
        pub fn sync(
            &mut self,
            errors: usize,
            bit_index: usize,
            sample_offset: usize,
            pattern_len: usize,
        ) {
            if let Some(inner) = self.inner.as_mut() {
                inner.trace.sync = Some(SyncInfo {
                    errors,
                    bit_index,
                    sample_offset,
                    pattern_len,
                });
            }
        }

        /// Records the carrier-frequency-offset estimate, in Hz.
        pub fn cfo_hz(&mut self, cfo: f64) {
            if let Some(inner) = self.inner.as_mut() {
                inner.trace.cfo_hz = Some(cfo);
            }
        }

        /// Records the zero-based attempt index within a streaming receive
        /// window, keeping multi-attempt windows distinguishable.
        pub fn attempt(&mut self, index: u64) {
            if let Some(inner) = self.inner.as_mut() {
                inner.trace.attempt = Some(index);
            }
        }

        /// Links this attempt to the telemetry trace span that covers it
        /// (ignored for id 0 — "no span", e.g. telemetry compiled out), so
        /// the frame log's `span_id` joins a PCAP frame to its slice in the
        /// exported Chrome trace.
        pub fn link_span(&mut self, span_id: u64) {
            if span_id == 0 {
                return;
            }
            if let Some(inner) = self.inner.as_mut() {
                inner.trace.span_id = Some(span_id);
            }
        }

        /// Flags that the PHR carried a reserved length (≥ 128).
        pub fn phr_reserved(&mut self) {
            if let Some(inner) = self.inner.as_mut() {
                inner.trace.phr_reserved = true;
            }
        }

        /// Appends one despread symbol decision's Hamming distance.
        pub fn despread(&mut self, distance: usize) {
            if let Some(inner) = self.inner.as_mut() {
                inner
                    .trace
                    .despread_distances
                    .push(distance.min(u16::MAX as usize) as u16);
            }
        }

        /// Finishes the attempt as a typed failure.
        pub fn fail(mut self, reason: RxFailure) {
            self.finalize(Some(reason), None, None);
        }

        /// Finishes the attempt with a delivered frame. A bad checksum is
        /// classified per `kind` ([`RxFailure::FcsMismatch`] /
        /// [`RxFailure::CrcMismatch`]); 802.15.4 frames are also appended to
        /// the capture PCAP.
        pub fn deliver(mut self, frame: &[u8], checksum_ok: bool, kind: FrameKind) {
            let failure = (!checksum_ok).then(|| kind.checksum_failure());
            self.finalize(failure, Some((frame.to_vec(), kind)), Some(checksum_ok));
        }

        fn finalize(
            &mut self,
            failure: Option<RxFailure>,
            frame: Option<(Vec<u8>, FrameKind)>,
            checksum_ok: Option<bool>,
        ) {
            let Some(inner) = self.inner.take() else {
                return;
            };
            let Inner {
                mut trace,
                iq,
                iq_total,
                sample_rate,
                center_mhz,
                iq_mode,
                ..
            } = *inner;
            trace.failure = failure;
            trace.checksum_ok = checksum_ok;
            let kind = frame.as_ref().map(|(_, k)| *k);
            trace.frame = frame.map(|(bytes, _)| bytes);

            let mut state_guard = lock_state();
            let Some(state) = state_guard.as_mut() else {
                return;
            };

            // IQ window dump.
            let want_iq = match iq_mode {
                IqCaptureMode::Off => false,
                IqCaptureMode::OnFailure => trace.failure.is_some(),
                IqCaptureMode::Always => true,
            };
            if want_iq && !iq.is_empty() {
                if let Some(dir) = state.capture_dir.clone() {
                    let stem = format!("trace-{:08}", trace.id);
                    let cf32_name = format!("{stem}.cf32");
                    let sidecar = IqSidecar {
                        trace_id: trace.id,
                        layer: trace.layer.to_string(),
                        sample_rate: sample_rate.unwrap_or(0.0),
                        center_mhz,
                        trigger: trace
                            .failure
                            .map_or_else(|| "always".to_string(), |f| f.as_str().to_string()),
                        samples: iq.len(),
                        samples_total: iq_total,
                        cf32_file: cf32_name.clone(),
                    };
                    let ok = write_cf32(&dir.join(&cf32_name), &iq).is_ok()
                        && std::fs::write(dir.join(format!("{stem}.json")), sidecar.to_json())
                            .is_ok();
                    if ok {
                        trace.iq_file = Some(cf32_name);
                        state.stats.iq_dumps += 1;
                    }
                }
            }

            // PCAP export of delivered 802.15.4 frames.
            if kind == Some(FrameKind::Dot154) {
                if let (Some(dir), Some(bytes)) = (state.capture_dir.clone(), trace.frame.as_ref())
                {
                    let linktype = state.pcap_linktype;
                    if state.pcap.is_none() {
                        state.pcap = PcapWriter::create(&dir.join(super::PCAP_FILE), linktype).ok();
                    }
                    if let Some(pcap) = state.pcap.as_mut() {
                        // Under the NOFCS link type the trailing 2-byte FCS
                        // is stripped from the exported frame.
                        let export = if linktype == crate::pcap::LINKTYPE_IEEE802_15_4_NOFCS
                            && bytes.len() >= 2
                        {
                            &bytes[..bytes.len() - 2]
                        } else {
                            &bytes[..]
                        };
                        if let Ok(index) = pcap.write_packet(now_us(), export) {
                            trace.pcap_index = Some(index);
                            state.stats.pcap_frames += 1;
                        }
                    }
                }
            }

            // JSONL frame log.
            if let Some(dir) = state.capture_dir.clone() {
                if state.frame_log.is_none() {
                    state.frame_log = File::create(dir.join(super::FRAME_LOG_FILE))
                        .map(BufWriter::new)
                        .ok();
                }
                if let Some(log) = state.frame_log.as_mut() {
                    if writeln!(log, "{}", trace.to_json()).is_ok() {
                        state.stats.frames_logged += 1;
                    }
                }
            }

            // In-memory ring.
            while state.traces.len() >= state.ring_capacity {
                state.traces.pop_front();
            }
            state.traces.push_back(trace);
            state.stats.traces += 1;
        }
    }

    impl Drop for TraceHandle {
        fn drop(&mut self) {
            if self.inner.is_some() {
                self.finalize(Some(RxFailure::Abandoned), None, None);
            }
        }
    }
}

#[cfg(feature = "enabled")]
pub use live::{
    begin, capture_dir, flush, init_from_env, is_active, recent_traces, reset, stats,
    FlightRecorder, FlightRecorderBuilder, TraceHandle,
};

#[cfg(not(feature = "enabled"))]
mod noop {
    use std::io;
    use std::path::PathBuf;

    use wazabee_dsp::Iq;

    use super::{CaptureStats, IqCaptureMode};
    use crate::trace::{DecodeTrace, FrameKind, RxFailure};

    /// Namespace handle for building the global recorder configuration
    /// (no-op build).
    #[derive(Debug, Clone, Copy)]
    pub struct FlightRecorder;

    impl FlightRecorder {
        /// Starts a configuration builder (no-op build).
        #[must_use]
        pub fn builder() -> FlightRecorderBuilder {
            FlightRecorderBuilder
        }
    }

    /// Builder for the global recorder configuration (no-op build).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct FlightRecorderBuilder;

    impl FlightRecorderBuilder {
        /// No-op.
        #[must_use]
        pub fn capture_dir(self, _dir: impl Into<PathBuf>) -> Self {
            self
        }

        /// No-op.
        #[must_use]
        pub fn iq_mode(self, _mode: IqCaptureMode) -> Self {
            self
        }

        /// No-op.
        #[must_use]
        pub fn iq_window(self, _samples: usize) -> Self {
            self
        }

        /// No-op.
        #[must_use]
        pub fn ring_capacity(self, _capacity: usize) -> Self {
            self
        }

        /// No-op.
        #[must_use]
        pub fn pcap_linktype(self, _linktype: u32) -> Self {
            self
        }

        /// No-op.
        ///
        /// # Errors
        ///
        /// Never fails in the no-op build.
        pub fn install(self) -> io::Result<()> {
            Ok(())
        }
    }

    /// No-op: always reports no capture directory.
    ///
    /// # Errors
    ///
    /// Never fails in the no-op build.
    #[inline]
    pub fn init_from_env() -> io::Result<bool> {
        Ok(false)
    }

    /// No-op: always inactive.
    #[inline]
    pub fn is_active() -> bool {
        false
    }

    /// No-op: no capture directory.
    #[inline]
    pub fn capture_dir() -> Option<PathBuf> {
        None
    }

    /// No-op: zeroed counters.
    #[inline]
    pub fn stats() -> CaptureStats {
        CaptureStats::default()
    }

    /// No-op: no traces.
    #[inline]
    pub fn recent_traces() -> Vec<DecodeTrace> {
        Vec::new()
    }

    /// No-op.
    ///
    /// # Errors
    ///
    /// Never fails in the no-op build.
    #[inline]
    pub fn flush() -> io::Result<()> {
        Ok(())
    }

    /// No-op.
    #[inline]
    pub fn reset() {}

    /// Zero-sized inert trace handle (no-op build).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct TraceHandle;

    /// Returns an inert handle (no-op build).
    #[inline]
    pub fn begin(_layer: &'static str) -> TraceHandle {
        TraceHandle
    }

    impl TraceHandle {
        /// Always false in the no-op build.
        #[inline]
        pub fn active(&self) -> bool {
            false
        }

        /// Always `None` in the no-op build.
        #[inline]
        pub fn id(&self) -> Option<u64> {
            None
        }

        /// No-op.
        #[inline]
        pub fn tap_iq(&mut self, _samples: &[Iq], _sample_rate: f64, _center_mhz: Option<u32>) {}

        /// No-op.
        #[inline]
        pub fn sync(
            &mut self,
            _errors: usize,
            _bit_index: usize,
            _sample_offset: usize,
            _pattern_len: usize,
        ) {
        }

        /// No-op.
        #[inline]
        pub fn cfo_hz(&mut self, _cfo: f64) {}

        /// No-op.
        #[inline]
        pub fn attempt(&mut self, _index: u64) {}

        /// No-op.
        #[inline]
        pub fn link_span(&mut self, _span_id: u64) {}

        /// No-op.
        #[inline]
        pub fn phr_reserved(&mut self) {}

        /// No-op.
        #[inline]
        pub fn despread(&mut self, _distance: usize) {}

        /// No-op.
        #[inline]
        pub fn fail(self, _reason: RxFailure) {}

        /// No-op.
        #[inline]
        pub fn deliver(self, _frame: &[u8], _checksum_ok: bool, _kind: FrameKind) {}
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{
    begin, capture_dir, flush, init_from_env, is_active, recent_traces, reset, stats,
    FlightRecorder, FlightRecorderBuilder, TraceHandle,
};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::pcap::read_pcap;
    use crate::trace::{FrameKind, RxFailure};
    use std::path::PathBuf;

    /// Serializes tests that touch the global recorder.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wzb-rec-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn inert_until_installed() {
        let _l = test_lock();
        reset();
        assert!(!is_active());
        let mut tr = begin("test.rx");
        assert!(!tr.active());
        tr.despread(3);
        tr.fail(RxFailure::NoSync);
        assert!(recent_traces().is_empty());
    }

    #[test]
    fn memory_only_recorder_keeps_bounded_ring() {
        let _l = test_lock();
        reset();
        FlightRecorder::builder()
            .ring_capacity(3)
            .install()
            .unwrap();
        for k in 0..5 {
            let mut tr = begin("test.rx");
            assert!(tr.active());
            tr.despread(k);
            tr.fail(RxFailure::TruncatedFrame);
        }
        let traces = recent_traces();
        assert_eq!(traces.len(), 3, "ring should cap at 3");
        assert_eq!(traces[2].despread_distances, vec![4]);
        assert_eq!(stats().traces, 5);
        assert_eq!(stats().frames_logged, 0, "no dir, no files");
        reset();
    }

    #[test]
    fn capture_dir_produces_all_artifacts() {
        let _l = test_lock();
        reset();
        let dir = tmp_dir("art");
        FlightRecorder::builder()
            .capture_dir(&dir)
            .iq_mode(IqCaptureMode::OnFailure)
            .install()
            .unwrap();

        let samples = vec![wazabee_dsp::Iq::ONE; 64];

        // One delivered frame...
        let mut tr = begin("dot154.rx");
        tr.tap_iq(&samples, 16.0e6, Some(2420));
        tr.sync(0, 100, 2, 319);
        tr.deliver(&[0x41, 0x42, 0x99, 0x99], true, FrameKind::Dot154);

        // ...and one failure with an IQ window.
        let mut tr = begin("wazabee.rx");
        tr.tap_iq(&samples, 16.0e6, None);
        tr.fail(RxFailure::NoSync);

        flush().unwrap();
        let st = stats();
        assert_eq!(st.frames_logged, 2);
        assert_eq!(st.pcap_frames, 1);
        assert_eq!(st.iq_dumps, 1);

        let pcap = read_pcap(&dir.join(PCAP_FILE)).unwrap();
        assert_eq!(pcap.linktype, crate::pcap::LINKTYPE_IEEE802_15_4_WITHFCS);
        assert_eq!(pcap.packets.len(), 1);
        assert_eq!(pcap.packets[0].bytes, vec![0x41, 0x42, 0x99, 0x99]);

        let log = std::fs::read_to_string(dir.join(FRAME_LOG_FILE)).unwrap();
        assert_eq!(log.lines().count(), 2);
        assert!(log.contains("\"outcome\":\"ok\""), "{log}");
        assert!(log.contains("\"reason\":\"no_sync\""), "{log}");

        let failed = recent_traces()
            .into_iter()
            .find(|t| t.failure == Some(RxFailure::NoSync))
            .unwrap();
        let iq_file = failed.iq_file.clone().unwrap();
        let iq = crate::cf32::read_cf32(&dir.join(&iq_file)).unwrap();
        assert_eq!(iq.len(), 64);
        let sidecar = std::fs::read_to_string(dir.join(iq_file.replace(".cf32", ".json"))).unwrap();
        assert!(
            sidecar.contains(&format!("\"trace_id\":{}", failed.id)),
            "{sidecar}"
        );
        assert!(sidecar.contains("\"trigger\":\"no_sync\""), "{sidecar}");

        reset();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nofcs_linktype_strips_trailing_fcs() {
        let _l = test_lock();
        reset();
        let dir = tmp_dir("nofcs");
        FlightRecorder::builder()
            .capture_dir(&dir)
            .pcap_linktype(crate::pcap::LINKTYPE_IEEE802_15_4_NOFCS)
            .install()
            .unwrap();
        let tr = begin("dot154.rx");
        tr.deliver(&[1, 2, 3, 0xAA, 0xBB], true, FrameKind::Dot154);
        flush().unwrap();
        let pcap = read_pcap(&dir.join(PCAP_FILE)).unwrap();
        assert_eq!(pcap.linktype, crate::pcap::LINKTYPE_IEEE802_15_4_NOFCS);
        assert_eq!(pcap.packets[0].bytes, vec![1, 2, 3]);
        reset();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropped_handle_is_abandoned() {
        let _l = test_lock();
        reset();
        FlightRecorder::builder().install().unwrap();
        {
            let mut tr = begin("test.rx");
            tr.despread(1);
            // dropped without fail()/deliver()
        }
        let traces = recent_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].failure, Some(RxFailure::Abandoned));
        reset();
    }

    #[test]
    fn always_mode_dumps_iq_for_clean_frames() {
        let _l = test_lock();
        reset();
        let dir = tmp_dir("always");
        FlightRecorder::builder()
            .capture_dir(&dir)
            .iq_mode(IqCaptureMode::Always)
            .iq_window(16)
            .install()
            .unwrap();
        let mut tr = begin("dot154.rx");
        tr.tap_iq(&vec![wazabee_dsp::Iq::ONE; 100], 16.0e6, None);
        tr.deliver(&[5, 6], true, FrameKind::Dot154);
        flush().unwrap();
        assert_eq!(stats().iq_dumps, 1);
        let t = &recent_traces()[0];
        let iq = crate::cf32::read_cf32(&dir.join(t.iq_file.as_ref().unwrap())).unwrap();
        assert_eq!(iq.len(), 16, "window bound applies");
        let sidecar = std::fs::read_to_string(dir.join(format!("trace-{:08}.json", t.id))).unwrap();
        assert!(sidecar.contains("\"samples_total\":100"), "{sidecar}");
        assert!(sidecar.contains("\"trigger\":\"always\""), "{sidecar}");
        reset();
        std::fs::remove_dir_all(&dir).ok();
    }
}
