//! Per-frame decode provenance: the [`DecodeTrace`] record and the typed
//! [`RxFailure`] taxonomy.
//!
//! Every RX attempt through an instrumented demodulator produces one
//! [`DecodeTrace`]: which sync alignment fired (and how clean it was), the
//! estimated carrier-frequency offset, the Hamming distance of every
//! despread symbol decision, and how the attempt ended — a delivered frame
//! (with its checksum verdict) or a typed failure naming the stage that
//! killed it.

use std::fmt;
use std::fmt::Write as _;

/// Why an RX attempt failed, by pipeline stage.
///
/// The taxonomy mirrors the paper's RX chain (§IV-D): access-address /
/// preamble correlation, SFD validation, per-symbol despreading, then the
/// frame checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RxFailure {
    /// The sync pattern (access address / SHR image) never matched.
    NoSync,
    /// The correlator fired but what followed was not a frame (bad SFD).
    SyncFalsePositive,
    /// A despread symbol decision exceeded the configured Hamming-distance
    /// budget (see `WazaBeeRx::with_max_despread_distance`).
    DespreadDistanceExceeded,
    /// More zero-symbols followed the sync match than a standard 802.15.4
    /// preamble contains — the attempt was abandoned before the SFD.
    PreambleOverrun,
    /// The PHR announced a reserved frame length (≥ 128); the attempt was
    /// rejected instead of misparsing a masked length.
    PhrReserved,
    /// A BLE packet decoded to completion but its CRC-24 failed.
    CrcMismatch,
    /// An 802.15.4 frame decoded to completion but its FCS failed.
    FcsMismatch,
    /// The capture ended before the announced frame length completed.
    TruncatedFrame,
    /// The trace handle was dropped before the decoder reported an outcome.
    Abandoned,
}

impl RxFailure {
    /// Stable snake_case name, used in JSONL output and as the suffix of the
    /// per-reason telemetry counters (`*.rx.fail.<name>`).
    pub fn as_str(self) -> &'static str {
        match self {
            RxFailure::NoSync => "no_sync",
            RxFailure::SyncFalsePositive => "sync_false_positive",
            RxFailure::DespreadDistanceExceeded => "despread_distance",
            RxFailure::PreambleOverrun => "preamble_overrun",
            RxFailure::PhrReserved => "phr_reserved",
            RxFailure::CrcMismatch => "crc",
            RxFailure::FcsMismatch => "fcs",
            RxFailure::TruncatedFrame => "truncated",
            RxFailure::Abandoned => "abandoned",
        }
    }
}

impl fmt::Display for RxFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What kind of frame a decoder delivered — decides the checksum-failure
/// classification and whether the frame belongs in the 802.15.4 PCAP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// An 802.15.4 PSDU (FCS included) — exported to the PCAP.
    Dot154,
    /// A BLE PDU — logged to JSONL only.
    Ble,
}

impl FrameKind {
    /// The failure a bad checksum maps to for this frame kind.
    pub fn checksum_failure(self) -> RxFailure {
        match self {
            FrameKind::Dot154 => RxFailure::FcsMismatch,
            FrameKind::Ble => RxFailure::CrcMismatch,
        }
    }
}

/// How the sync correlator locked onto this attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncInfo {
    /// Bit errors inside the matched sync pattern.
    pub errors: usize,
    /// Bit index (in the demodulated stream) where the pattern started.
    pub bit_index: usize,
    /// Sample-phase offset the receiver locked onto.
    pub sample_offset: usize,
    /// Length of the sync pattern in bits.
    pub pattern_len: usize,
}

impl SyncInfo {
    /// Normalised correlation peak: `1.0` is a perfect pattern match, `0.0`
    /// means every bit mismatched.
    pub fn quality(&self) -> f64 {
        if self.pattern_len == 0 {
            return 0.0;
        }
        1.0 - self.errors as f64 / self.pattern_len as f64
    }
}

/// The full provenance record of one RX attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeTrace {
    /// Unique (process-wide, monotonically increasing) trace id.
    pub id: u64,
    /// Which decoder produced the trace (`"wazabee.rx"`, `"dot154.rx"`,
    /// `"ble.rx"`, …).
    pub layer: &'static str,
    /// Sync correlation result, when the correlator fired.
    pub sync: Option<SyncInfo>,
    /// Estimated carrier-frequency offset over the capture window, in Hz.
    pub cfo_hz: Option<f64>,
    /// Hamming distance of every despread symbol decision, in decode order.
    pub despread_distances: Vec<u16>,
    /// Frame bytes, when the decode ran to completion (even with a bad
    /// checksum — the attack delivers those too).
    pub frame: Option<Vec<u8>>,
    /// Checksum verdict of the delivered frame (`None` when none decoded).
    pub checksum_ok: Option<bool>,
    /// The stage that killed the attempt, or `None` for a clean decode.
    pub failure: Option<RxFailure>,
    /// Zero-based attempt index within a streaming receive window — keeps
    /// multi-attempt windows distinguishable (`None` for one-shot decoders).
    pub attempt: Option<u64>,
    /// Whether the PHR carried a reserved length (≥ 128) — set alongside a
    /// [`RxFailure::PhrReserved`] outcome.
    pub phr_reserved: bool,
    /// File name of the `.cf32` IQ window dumped for this attempt.
    pub iq_file: Option<String>,
    /// Index of the frame inside the capture PCAP, when exported.
    pub pcap_index: Option<u64>,
    /// Id of the telemetry trace span that covered this decode attempt
    /// (`wazabee-telemetry`'s causal ring), when the decoder linked one —
    /// joins a PCAP frame to its slice in the exported Chrome trace.
    pub span_id: Option<u64>,
}

impl DecodeTrace {
    /// A fresh, pending trace.
    pub fn new(id: u64, layer: &'static str) -> Self {
        DecodeTrace {
            id,
            layer,
            sync: None,
            cfo_hz: None,
            despread_distances: Vec::new(),
            frame: None,
            checksum_ok: None,
            failure: None,
            attempt: None,
            phr_reserved: false,
            iq_file: None,
            pcap_index: None,
            span_id: None,
        }
    }

    /// Whether the attempt delivered a frame with a valid checksum.
    pub fn ok(&self) -> bool {
        self.frame.is_some() && self.checksum_ok == Some(true)
    }

    /// Total chip/bit errors accumulated across all despread decisions.
    pub fn chip_errors(&self) -> u64 {
        self.despread_distances.iter().map(|&d| u64::from(d)).sum()
    }

    /// Worst single despread decision, in Hamming distance.
    pub fn max_despread_distance(&self) -> Option<u16> {
        self.despread_distances.iter().copied().max()
    }

    /// Renders the trace as one JSONL frame-log line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"type\":\"frame\",\"trace_id\":{},\"layer\":\"{}\",\"outcome\":\"{}\"",
            self.id,
            self.layer,
            if self.ok() { "ok" } else { "fail" }
        );
        match self.failure {
            Some(f) => {
                let _ = write!(out, ",\"reason\":\"{}\"", f.as_str());
            }
            None => out.push_str(",\"reason\":null"),
        }
        match self.checksum_ok {
            Some(v) => {
                let _ = write!(out, ",\"checksum_ok\":{v}");
            }
            None => out.push_str(",\"checksum_ok\":null"),
        }
        match &self.sync {
            Some(s) => {
                let _ = write!(
                    out,
                    ",\"sync\":{{\"errors\":{},\"bit_index\":{},\"sample_offset\":{},\
                     \"pattern_len\":{},\"quality\":{:.6}}}",
                    s.errors,
                    s.bit_index,
                    s.sample_offset,
                    s.pattern_len,
                    s.quality()
                );
            }
            None => out.push_str(",\"sync\":null"),
        }
        match self.cfo_hz {
            Some(v) if v.is_finite() => {
                let _ = write!(out, ",\"cfo_hz\":{v:.3}");
            }
            _ => out.push_str(",\"cfo_hz\":null"),
        }
        let _ = write!(
            out,
            ",\"despread_symbols\":{},\"chip_errors\":{},\"despread_max\":{}",
            self.despread_distances.len(),
            self.chip_errors(),
            self.max_despread_distance().unwrap_or(0)
        );
        out.push_str(",\"despread_distances\":[");
        for (k, d) in self.despread_distances.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "{d}");
        }
        out.push(']');
        match &self.frame {
            Some(bytes) => {
                let _ = write!(out, ",\"frame_len\":{},\"frame_hex\":\"", bytes.len());
                for b in bytes {
                    let _ = write!(out, "{b:02x}");
                }
                out.push('"');
            }
            None => out.push_str(",\"frame_len\":null,\"frame_hex\":null"),
        }
        match &self.iq_file {
            Some(f) => {
                let _ = write!(out, ",\"iq_file\":\"{f}\"");
            }
            None => out.push_str(",\"iq_file\":null"),
        }
        match self.pcap_index {
            Some(i) => {
                let _ = write!(out, ",\"pcap_index\":{i}");
            }
            None => out.push_str(",\"pcap_index\":null"),
        }
        match self.attempt {
            Some(n) => {
                let _ = write!(out, ",\"attempt\":{n}");
            }
            None => out.push_str(",\"attempt\":null"),
        }
        match self.span_id {
            Some(id) => {
                let _ = write!(out, ",\"span_id\":{id}");
            }
            None => out.push_str(",\"span_id\":null"),
        }
        let _ = write!(out, ",\"phr_reserved\":{}", self.phr_reserved);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_names_are_stable() {
        assert_eq!(RxFailure::NoSync.as_str(), "no_sync");
        assert_eq!(RxFailure::FcsMismatch.as_str(), "fcs");
        assert_eq!(RxFailure::TruncatedFrame.to_string(), "truncated");
        assert_eq!(RxFailure::PreambleOverrun.as_str(), "preamble_overrun");
        assert_eq!(RxFailure::PhrReserved.as_str(), "phr_reserved");
    }

    #[test]
    fn checksum_failure_maps_by_kind() {
        assert_eq!(FrameKind::Dot154.checksum_failure(), RxFailure::FcsMismatch);
        assert_eq!(FrameKind::Ble.checksum_failure(), RxFailure::CrcMismatch);
    }

    #[test]
    fn sync_quality_normalises() {
        let s = SyncInfo {
            errors: 8,
            bit_index: 0,
            sample_offset: 0,
            pattern_len: 32,
        };
        assert!((s.quality() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn json_line_has_all_fields() {
        let mut t = DecodeTrace::new(7, "wazabee.rx");
        t.sync = Some(SyncInfo {
            errors: 1,
            bit_index: 640,
            sample_offset: 3,
            pattern_len: 32,
        });
        t.despread_distances = vec![0, 2, 1];
        t.failure = Some(RxFailure::TruncatedFrame);
        t.attempt = Some(4);
        t.span_id = Some(42);
        let j = t.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"trace_id\":7"), "{j}");
        assert!(j.contains("\"outcome\":\"fail\""), "{j}");
        assert!(j.contains("\"reason\":\"truncated\""), "{j}");
        assert!(j.contains("\"chip_errors\":3"), "{j}");
        assert!(j.contains("\"despread_distances\":[0,2,1]"), "{j}");
        assert!(j.contains("\"attempt\":4"), "{j}");
        assert!(j.contains("\"span_id\":42"), "{j}");
        assert!(j.contains("\"phr_reserved\":false"), "{j}");
        assert_eq!(j.matches('"').count() % 2, 0, "{j}");
    }

    #[test]
    fn json_flags_reserved_phr() {
        let mut t = DecodeTrace::new(9, "wazabee.rx");
        t.failure = Some(RxFailure::PhrReserved);
        t.phr_reserved = true;
        let j = t.to_json();
        assert!(j.contains("\"reason\":\"phr_reserved\""), "{j}");
        assert!(j.contains("\"phr_reserved\":true"), "{j}");
        assert!(j.contains("\"attempt\":null"), "{j}");
        assert!(j.contains("\"span_id\":null"), "{j}");
    }

    #[test]
    fn json_ok_line_carries_frame_hex() {
        let mut t = DecodeTrace::new(1, "dot154.rx");
        t.frame = Some(vec![0xDE, 0xAD]);
        t.checksum_ok = Some(true);
        t.pcap_index = Some(0);
        let j = t.to_json();
        assert!(t.ok());
        assert!(j.contains("\"outcome\":\"ok\""), "{j}");
        assert!(j.contains("\"frame_hex\":\"dead\""), "{j}");
        assert!(j.contains("\"pcap_index\":0"), "{j}");
    }
}
