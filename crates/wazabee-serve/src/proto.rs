//! The serve-plane wire protocol: length-prefixed sample records.
//!
//! A client session is a byte stream of records, each
//! `[tag u8][len u32 LE][payload len bytes]`:
//!
//! | tag    | record                  | payload                              |
//! |--------|-------------------------|--------------------------------------|
//! | `0x01` | [`Record::Hello`]       | UTF-8 session name                   |
//! | `0x02` | cf32 samples            | interleaved `f32` LE I/Q pairs       |
//! | `0x03` | u8 samples              | offset-128 interleaved I/Q bytes     |
//! | `0x04` | [`Record::End`]         | empty                                |
//!
//! `Hello` is optional but, when present, must arrive before the first
//! sample record — it names the session's artifact directory and telemetry
//! label. `End` marks a clean end of stream; a bare EOF at a record boundary
//! is treated the same way, so `nc < capture.bin` works without a trailer.
//! Sample payloads map onto [`SampleFormat::Cf32`] / [`SampleFormat::U8Offset128`]
//! and must hold whole samples (cf32: multiple of 8 bytes; u8: multiple of 2).
//!
//! The same [`read_record`]/`write_*` helpers are shared by the server's
//! ingest threads, the `serve_throughput` bench clients and the integration
//! tests, so there is exactly one encoder and one decoder of this framing in
//! the tree.

use std::io::{self, Read, Write};

use wazabee_dsp::io::SampleFormat;

/// Record tag: UTF-8 session name, before any samples.
pub const TAG_HELLO: u8 = 0x01;
/// Record tag: interleaved little-endian `f32` I/Q samples.
pub const TAG_SAMPLES_CF32: u8 = 0x02;
/// Record tag: offset-128 interleaved `u8` I/Q samples (RTL-SDR style).
pub const TAG_SAMPLES_U8: u8 = 0x03;
/// Record tag: clean end of session, no payload.
pub const TAG_END: u8 = 0x04;

/// Hard upper bound on a record payload (4 MiB) — a corrupt or hostile
/// length prefix must not make the server allocate unbounded memory.
pub const MAX_RECORD_LEN: usize = 4 << 20;

/// One parsed protocol record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Session name announcement (must precede any samples to take effect).
    Hello(String),
    /// A batch of IQ samples in the given wire format, still encoded.
    Samples(SampleFormat, Vec<u8>),
    /// Clean end of the session.
    End,
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads one record off `r`.
///
/// Returns `Ok(None)` on a clean EOF *at a record boundary* (treated by the
/// server like [`Record::End`]). EOF inside a record, an unknown tag, an
/// oversized length prefix, a ragged sample payload or a non-UTF-8 hello all
/// surface as `InvalidData`/`UnexpectedEof` errors.
pub fn read_record(r: &mut impl Read) -> io::Result<Option<Record>> {
    let mut tag = [0u8; 1];
    // EOF before the tag byte is a clean end of stream.
    loop {
        match r.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len > MAX_RECORD_LEN {
        return Err(bad(format!(
            "record length {len} exceeds the {MAX_RECORD_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    match tag[0] {
        TAG_HELLO => {
            let name =
                String::from_utf8(payload).map_err(|_| bad("hello payload is not UTF-8".into()))?;
            Ok(Some(Record::Hello(name)))
        }
        TAG_SAMPLES_CF32 => {
            if !len.is_multiple_of(SampleFormat::Cf32.bytes_per_sample()) {
                return Err(bad(format!("cf32 payload of {len} bytes is ragged")));
            }
            Ok(Some(Record::Samples(SampleFormat::Cf32, payload)))
        }
        TAG_SAMPLES_U8 => {
            if !len.is_multiple_of(SampleFormat::U8Offset128.bytes_per_sample()) {
                return Err(bad(format!("u8 payload of {len} bytes is ragged")));
            }
            Ok(Some(Record::Samples(SampleFormat::U8Offset128, payload)))
        }
        TAG_END => Ok(Some(Record::End)),
        other => Err(bad(format!("unknown record tag {other:#04x}"))),
    }
}

fn write_framed(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_RECORD_LEN);
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Writes a [`Record::Hello`] naming the session.
pub fn write_hello(w: &mut impl Write, name: &str) -> io::Result<()> {
    write_framed(w, TAG_HELLO, name.as_bytes())
}

/// Writes one sample record: `payload` must already be encoded in `format`
/// (see [`SampleFormat::encode`]) and hold whole samples.
pub fn write_samples(w: &mut impl Write, format: SampleFormat, payload: &[u8]) -> io::Result<()> {
    debug_assert_eq!(payload.len() % format.bytes_per_sample(), 0);
    let tag = match format {
        SampleFormat::Cf32 => TAG_SAMPLES_CF32,
        SampleFormat::U8Offset128 => TAG_SAMPLES_U8,
    };
    write_framed(w, tag, payload)
}

/// Writes the clean end-of-session trailer.
pub fn write_end(w: &mut impl Write) -> io::Result<()> {
    write_framed(w, TAG_END, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_every_record_kind() {
        let mut buf = Vec::new();
        write_hello(&mut buf, "bench-07").unwrap();
        write_samples(&mut buf, SampleFormat::Cf32, &[0u8; 16]).unwrap();
        write_samples(&mut buf, SampleFormat::U8Offset128, &[128u8; 6]).unwrap();
        write_end(&mut buf).unwrap();

        let mut r = Cursor::new(buf);
        assert_eq!(
            read_record(&mut r).unwrap(),
            Some(Record::Hello("bench-07".into()))
        );
        assert_eq!(
            read_record(&mut r).unwrap(),
            Some(Record::Samples(SampleFormat::Cf32, vec![0u8; 16]))
        );
        assert_eq!(
            read_record(&mut r).unwrap(),
            Some(Record::Samples(SampleFormat::U8Offset128, vec![128u8; 6]))
        );
        assert_eq!(read_record(&mut r).unwrap(), Some(Record::End));
        // Clean EOF at a record boundary.
        assert_eq!(read_record(&mut r).unwrap(), None);
    }

    #[test]
    fn rejects_ragged_oversized_and_unknown() {
        // cf32 payload not a multiple of 8.
        let mut buf = Vec::new();
        write_framed(&mut buf, TAG_SAMPLES_CF32, &[0u8; 7]).unwrap();
        assert!(read_record(&mut Cursor::new(buf)).is_err());

        // u8 payload not a multiple of 2.
        let mut buf = Vec::new();
        write_framed(&mut buf, TAG_SAMPLES_U8, &[0u8; 3]).unwrap();
        assert!(read_record(&mut Cursor::new(buf)).is_err());

        // Unknown tag.
        let mut buf = Vec::new();
        write_framed(&mut buf, 0x7f, &[]).unwrap();
        assert!(read_record(&mut Cursor::new(buf)).is_err());

        // Hostile length prefix: rejected before any allocation of that size.
        let mut buf = vec![TAG_SAMPLES_CF32];
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_record(&mut Cursor::new(buf)).is_err());

        // EOF mid-record is an error, not a clean end.
        let mut buf = Vec::new();
        write_framed(&mut buf, TAG_SAMPLES_CF32, &[0u8; 16]).unwrap();
        buf.truncate(9);
        assert!(read_record(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn samples_round_trip_through_sample_format() {
        use wazabee_dsp::IqBuf;
        let mut iq = IqBuf::new();
        for k in 0..32 {
            iq.push((k as f32) / 64.0, -(k as f32) / 64.0);
        }
        let payload = SampleFormat::Cf32.encode(iq.as_slice());
        let mut buf = Vec::new();
        write_samples(&mut buf, SampleFormat::Cf32, &payload).unwrap();
        let Some(Record::Samples(fmt, got)) = read_record(&mut Cursor::new(buf)).unwrap() else {
            panic!("expected a sample record");
        };
        let mut back = IqBuf::new();
        assert_eq!(fmt.decode(&got, &mut back).unwrap(), 32);
        assert_eq!(back.i(), iq.i());
        assert_eq!(back.q(), iq.q());
    }
}
