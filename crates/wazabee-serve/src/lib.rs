//! `wazabee-serve`: the WazaBee decode plane as a long-running,
//! multi-tenant service.
//!
//! Everything below `wazabee` decodes one capture at a time inside one call
//! stack. This crate turns that pipeline into a *service*: many concurrent
//! IQ streams — TCP sockets, unix sockets, growing capture files — each
//! become a session, fanned across a fixed pool of decode workers that
//! recycle [`wazabee::stream::StreamingRx`] engines between tenants
//! (`flush` → `reset`, allocations retained).
//!
//! ```text
//!  TCP / unix accept ─┐                      ┌─ worker 0: WazaBeeRx + engine pool
//!  file tails ────────┼─ ingest threads ──▶  │  worker 1:   "       "
//!                     │  (wire protocol,     │  ...
//!                     └─  bounded queues)    └─ per-session pcap/jsonl/report
//! ```
//!
//! * **Wire protocol** ([`proto`]): length-prefixed records carrying a
//!   session name, cf32 or u8-offset-128 sample batches, and an end marker.
//! * **Backpressure** ([`session`]): one bounded chunk queue per session.
//!   Sockets block (TCP pushes back on the client); file tails drop and
//!   count (`chunks_dropped`), because a file cannot be slowed down.
//! * **Service** ([`server`]): [`Server::start`], then [`Server::bind_tcp`]
//!   / [`Server::bind_unix`] / [`Server::tail_file`];
//!   [`Server::shutdown`] drains every queue, flushes every recorder and
//!   returns one [`SessionReport`] per session.
//! * **Observability**: `serve.*` counters, gauges and histograms flow into
//!   the existing telemetry plane — and therefore into the live snapshot
//!   server — when the `telemetry` feature is on; per-session artifacts
//!   (`frames.pcap`, `frames.jsonl`, `report.json`) land under
//!   [`ServeConfig::output_dir`].
//!
//! # Example
//!
//! ```
//! use std::io::Write;
//! use wazabee_serve::{proto, ServeConfig, Server};
//! use wazabee_dsp::io::SampleFormat;
//!
//! let mut server = Server::start(ServeConfig {
//!     workers: 2,
//!     ..ServeConfig::default()
//! });
//! let addr = server.bind_tcp("127.0.0.1:0").unwrap();
//!
//! // A client session: name, samples, end.
//! let mut conn = std::net::TcpStream::connect(addr).unwrap();
//! proto::write_hello(&mut conn, "doc-example").unwrap();
//! proto::write_samples(&mut conn, SampleFormat::Cf32, &[0u8; 64]).unwrap();
//! proto::write_end(&mut conn).unwrap();
//! conn.flush().unwrap();
//! drop(conn);
//!
//! let summary = server.shutdown();
//! assert_eq!(summary.reports.len(), 1);
//! assert_eq!(summary.reports[0].chunks_in, 1);
//! ```

#![warn(missing_docs)]

pub mod proto;
pub mod server;
pub(crate) mod session;
pub(crate) mod tail;

pub use server::{ServeConfig, ServeSummary, Server};
pub use session::SessionReport;
