//! File-tail ingest: follow a growing capture file as a live session.
//!
//! A tailed file has nobody to push back on: where socket ingest blocks on a
//! full chunk queue (and TCP stalls the client), the tail keeps up with the
//! file and *drops* chunks the queue cannot take, counting every drop into
//! the session's statistics and the `serve.chunks.dropped` counter. Partial
//! samples at the current end of file (a writer mid-`write`) are carried as
//! a byte remainder into the next poll, so sample alignment survives any
//! interleaving of writer and reader.
//!
//! The tail follows growth until server shutdown — there is no in-band
//! `End`; a truncated file (length shrank) restarts the tail from offset 0,
//! the usual log-rotation contract.

use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use wazabee_dsp::io::SampleFormat;
use wazabee_dsp::IqBuf;

use crate::server::{open_session, sanitize_name, track_ingest, ServerState};

/// Bytes read per poll iteration.
const TAIL_READ_CHUNK: usize = 64 * 1024;

/// Spawns the tail thread for `path`; the session is named
/// `<id>-tail-<sanitized name>` and lives until server shutdown.
pub(crate) fn spawn_tail(
    state: &Arc<ServerState>,
    path: &Path,
    format: SampleFormat,
    name: &str,
) -> std::io::Result<()> {
    // Open eagerly so a missing file fails the call, not the thread.
    let file = std::fs::File::open(path)?;
    let session = open_session(state, String::new());
    {
        let mut n = session.name.lock().unwrap();
        *n = format!("{:04}-tail-{}", session.id, sanitize_name(name));
    }
    let st = Arc::clone(state);
    let poll = Duration::from_millis(state.cfg.tail_poll_ms.max(1));
    let handle = std::thread::Builder::new()
        .name(format!("wazabee-serve-tail-{:04}", session.id))
        .spawn(move || tail_loop(st, file, format, session, poll))
        .expect("spawn tail thread");
    track_ingest(state, handle);
    Ok(())
}

fn tail_loop(
    state: Arc<ServerState>,
    mut file: std::fs::File,
    format: SampleFormat,
    session: Arc<crate::session::Session>,
    poll: Duration,
) {
    let bps = format.bytes_per_sample();
    let mut offset = 0u64;
    let mut remainder: Vec<u8> = Vec::new();
    let mut buf = vec![0u8; TAIL_READ_CHUNK];
    loop {
        let shutting_down = state.shutdown.load(Ordering::SeqCst);
        // One final sweep after the flag flips, so bytes written before
        // shutdown are still decoded.
        let len = file.metadata().map(|m| m.len()).unwrap_or(offset);
        if len < offset {
            // Truncation (rotation): restart from the top.
            offset = 0;
            remainder.clear();
        }
        while offset < len {
            if file.seek(SeekFrom::Start(offset)).is_err() {
                break;
            }
            let want = buf.len().min((len - offset) as usize);
            let n = match file.read(&mut buf[..want]) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            offset += n as u64;
            remainder.extend_from_slice(&buf[..n]);
            let whole = remainder.len() - remainder.len() % bps;
            if whole == 0 {
                continue;
            }
            let mut samples = IqBuf::with_capacity(whole / bps);
            if format.decode(&remainder[..whole], &mut samples).is_err() {
                wazabee_telemetry::counter!("serve.proto.errors").inc();
                remainder.drain(..whole);
                continue;
            }
            remainder.drain(..whole);
            session.bytes_in.fetch_add(whole as u64, Ordering::Relaxed);
            wazabee_telemetry::counter!("serve.bytes_in").add(whole as u64);
            // Lossy push: a full queue costs a counted drop, never memory.
            let _ = session.push_chunk_lossy(samples);
        }
        if shutting_down {
            session.push_end();
            return;
        }
        std::thread::sleep(poll);
    }
}
