//! The serve plane itself: listeners, ingest threads, the decode worker
//! pool and graceful shutdown.
//!
//! One [`Server`] owns a fixed pool of decode workers. Every accepted
//! connection (TCP or unix) and every tailed file becomes a session,
//! assigned to a worker by `id % workers`; the session's ingest thread
//! parses protocol records, converts payloads to planar IQ and hands chunks
//! across the bounded [`crate::session::ChunkQueue`]. Each worker owns one
//! [`wazabee::WazaBeeRx`] and a free-list of flushed
//! [`wazabee::stream::StreamingRx`] engines: when a session ends, its engine
//! is `flush()`ed, `reset()` and recycled for the next session on that
//! worker — lane bit buffers, sample rails and scratch keep their capacity
//! across tenants.
//!
//! [`Server::shutdown`] drains rather than aborts: listeners stop accepting,
//! ingest threads run to their `End`, workers finish every queued chunk and
//! flush every recorder, and only then does the call return the collected
//! [`SessionReport`]s.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use wazabee::stream::StreamingRx;
use wazabee::WazaBeeRx;
use wazabee_ble::{BleModem, BlePhy};
use wazabee_dsp::io::SampleFormat;
use wazabee_dsp::IqBuf;
use wazabee_flightrec::pcap::{PcapWriter, LINKTYPE_IEEE802_15_4_WITHFCS};

use crate::proto::{self, Record};
use crate::session::{Session, SessionMsg, SessionReport, WorkerWake};
use crate::tail;

/// Messages a worker processes from one session before moving to the next —
/// the fairness quantum that stops one firehose session starving its
/// queue-mates on the same worker. Kept small: with many short sessions
/// multiplexed on one worker, a coarse quantum lets whichever session sits
/// first in the slot drain entirely while the last one waits whole passes,
/// and the per-pass bookkeeping (one lock + session-list clone) is dwarfed
/// by even a single 4096-sample chunk decode.
const WORKER_BATCH: usize = 2;

/// How long an idle worker parks before re-checking its queues anyway.
const WORKER_PARK: Duration = Duration::from_millis(5);

/// Accept-loop poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Socket read timeout, so ingest threads notice shutdown even when a
/// client goes silent mid-session.
const SOCKET_READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Configuration for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Decode worker threads (each owns one receive primitive and an engine
    /// free-list).
    pub workers: usize,
    /// Bounded chunk-queue capacity per session.
    pub queue_chunks: usize,
    /// Samples per symbol of the decode plane (8 everywhere in this tree).
    pub sps: usize,
    /// Where per-session artifact directories (`frames.pcap`,
    /// `frames.jsonl`, `report.json`) are written; `None` disables them.
    pub output_dir: Option<PathBuf>,
    /// File-tail poll interval, milliseconds.
    pub tail_poll_ms: u64,
    /// Artificial per-chunk decode delay — test instrumentation for
    /// exercising backpressure; zero in production.
    pub decode_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_chunks: 32,
            sps: 8,
            output_dir: None,
            tail_poll_ms: 20,
            decode_delay: Duration::ZERO,
        }
    }
}

/// One worker's shared slot: the sessions assigned to it and its wake bell.
#[derive(Debug, Default)]
pub(crate) struct WorkerSlot {
    pub(crate) sessions: Mutex<Vec<Arc<Session>>>,
    pub(crate) wake: Arc<WorkerWake>,
}

/// State shared by listeners, ingest threads, workers and the owner handle.
#[derive(Debug)]
pub(crate) struct ServerState {
    pub(crate) cfg: ServeConfig,
    /// Stops accept loops and ingest threads.
    pub(crate) shutdown: AtomicBool,
    /// Stops workers — set only after every session has drained.
    workers_stop: AtomicBool,
    next_id: AtomicU64,
    /// Open-session count, decremented by workers as reports commit.
    open: Mutex<usize>,
    drained: Condvar,
    reports: Mutex<Vec<SessionReport>>,
    pub(crate) workers: Vec<Arc<WorkerSlot>>,
    /// Ingest/tail thread handles, appended by accept loops and `tail_file`.
    ingest: Mutex<Vec<JoinHandle<()>>>,
}

/// A running multi-tenant decode service. See the module docs for the
/// architecture; see [`Server::shutdown`] for the drain contract.
#[derive(Debug)]
pub struct Server {
    state: Arc<ServerState>,
    worker_handles: Vec<JoinHandle<()>>,
    accept_handles: Vec<JoinHandle<()>>,
}

/// Everything [`Server::shutdown`] hands back: one report per session, in
/// session-id order.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Final statistics for every session the server carried.
    pub reports: Vec<SessionReport>,
}

impl ServeSummary {
    /// Total frames delivered across all sessions.
    pub fn total_frames(&self) -> u64 {
        self.reports.iter().map(|r| r.frames).sum()
    }
}

impl Server {
    /// Starts the worker pool. No listener exists yet — follow with
    /// [`Server::bind_tcp`], [`Server::bind_unix`] or [`Server::tail_file`].
    pub fn start(cfg: ServeConfig) -> Server {
        let workers = cfg.workers.max(1);
        let state = Arc::new(ServerState {
            cfg,
            shutdown: AtomicBool::new(false),
            workers_stop: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            open: Mutex::new(0),
            drained: Condvar::new(),
            reports: Mutex::new(Vec::new()),
            workers: (0..workers)
                .map(|_| Arc::new(WorkerSlot::default()))
                .collect(),
            ingest: Mutex::new(Vec::new()),
        });
        let worker_handles = (0..workers)
            .map(|w| {
                let st = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("wazabee-serve-worker-{w}"))
                    .spawn(move || decode_worker(st, w))
                    .expect("spawn decode worker")
            })
            .collect();
        Server {
            state,
            worker_handles,
            accept_handles: Vec::new(),
        }
    }

    /// Binds a TCP listener and starts its accept loop; returns the bound
    /// address (port 0 picks a free port).
    pub fn bind_tcp(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let listener = std::net::TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let state = Arc::clone(&self.state);
        let handle = std::thread::Builder::new()
            .name("wazabee-serve-accept-tcp".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_read_timeout(Some(SOCKET_READ_TIMEOUT));
                        spawn_socket_ingest(&state, stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if state.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => {
                        if state.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            })?;
        self.accept_handles.push(handle);
        Ok(bound)
    }

    /// Binds a unix-socket listener (replacing any stale socket file) and
    /// starts its accept loop.
    pub fn bind_unix(&mut self, path: &Path) -> io::Result<()> {
        use std::os::unix::net::UnixListener;
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let state = Arc::clone(&self.state);
        let handle = std::thread::Builder::new()
            .name("wazabee-serve-accept-unix".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_read_timeout(Some(SOCKET_READ_TIMEOUT));
                        spawn_socket_ingest(&state, stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if state.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => {
                        if state.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            })?;
        self.accept_handles.push(handle);
        Ok(())
    }

    /// Starts tailing `path` as one session in the given sample format;
    /// the tail follows file growth until shutdown. See [`crate::tail`].
    pub fn tail_file(&self, path: &Path, format: SampleFormat, name: &str) -> io::Result<()> {
        tail::spawn_tail(&self.state, path, format, name)
    }

    /// Sessions accepted and not yet drained to their final report.
    pub fn active_sessions(&self) -> usize {
        *self.state.open.lock().unwrap()
    }

    /// Drains and stops the service:
    ///
    /// 1. listeners stop accepting;
    /// 2. ingest threads run to end-of-stream (tails take one final poll)
    ///    and are joined;
    /// 3. the call blocks until every session's queue has been decoded dry
    ///    and its report committed (recorders flushed);
    /// 4. workers stop and are joined.
    ///
    /// Nothing enqueued before the call is lost.
    pub fn shutdown(self) -> ServeSummary {
        let Server {
            state,
            worker_handles,
            accept_handles,
        } = self;
        state.shutdown.store(true, Ordering::SeqCst);
        for h in accept_handles {
            let _ = h.join();
        }
        // Accept loops are gone: the ingest list is final now.
        let ingest: Vec<JoinHandle<()>> = state.ingest.lock().unwrap().drain(..).collect();
        for h in ingest {
            let _ = h.join();
        }
        // Every session has its End queued; wait for the workers to drain.
        {
            let mut open = state.open.lock().unwrap();
            while *open > 0 {
                open = state.drained.wait(open).unwrap();
            }
        }
        state.workers_stop.store(true, Ordering::SeqCst);
        for slot in &state.workers {
            slot.wake.ring();
        }
        for h in worker_handles {
            let _ = h.join();
        }
        let mut reports = state.reports.lock().unwrap().clone();
        reports.sort_by_key(|r| r.id);
        ServeSummary { reports }
    }
}

/// Restricts a session name to a filesystem- and telemetry-safe alphabet.
pub(crate) fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .take(64)
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out.push_str("session");
    }
    out
}

/// Registers a new session on the next worker slot and returns it.
pub(crate) fn open_session(state: &Arc<ServerState>, name: String) -> Arc<Session> {
    let id = state.next_id.fetch_add(1, Ordering::SeqCst);
    let slot = &state.workers[id as usize % state.workers.len()];
    let session = Arc::new(Session::new(
        id,
        name,
        state.cfg.queue_chunks,
        Arc::clone(&slot.wake),
    ));
    slot.sessions.lock().unwrap().push(Arc::clone(&session));
    {
        let mut open = state.open.lock().unwrap();
        *open += 1;
        wazabee_telemetry::labeled_gauge!("serve.sessions.active")
            .set(&[("plane", "serve")], *open as f64);
    }
    wazabee_telemetry::counter!("serve.sessions.opened").inc();
    slot.wake.ring();
    session
}

/// Registers an ingest/tail thread handle for shutdown to join.
pub(crate) fn track_ingest(state: &ServerState, handle: JoinHandle<()>) {
    state.ingest.lock().unwrap().push(handle);
}

/// A reader over a timeout-bearing socket that converts read timeouts into
/// retries — or, once shutdown is flagged, into EOF — so `read_exact` in the
/// record parser never observes a spurious `WouldBlock` mid-record.
struct ShutdownAwareReader<R> {
    inner: R,
    state: Arc<ServerState>,
}

impl<R: Read> Read for ShutdownAwareReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.state.shutdown.load(Ordering::SeqCst) {
                        return Ok(0);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }
}

fn spawn_socket_ingest<S: Read + Send + 'static>(state: &Arc<ServerState>, stream: S) {
    let st = Arc::clone(state);
    let session = open_session(state, String::new());
    {
        let mut name = session.name.lock().unwrap();
        *name = format!("session-{:04}", session.id);
    }
    let handle = std::thread::Builder::new()
        .name(format!("wazabee-serve-ingest-{:04}", session.id))
        .spawn(move || {
            let mut reader = ShutdownAwareReader {
                inner: stream,
                state: Arc::clone(&st),
            };
            socket_ingest_loop(&mut reader, &session);
        })
        .expect("spawn ingest thread");
    track_ingest(state, handle);
}

/// Parses records off one socket until `End`, EOF or a protocol error,
/// pushing decoded chunks with blocking backpressure.
fn socket_ingest_loop(reader: &mut impl Read, session: &Arc<Session>) {
    let mut renamed = false;
    let mut chunks = 0u64;
    loop {
        match proto::read_record(reader) {
            Ok(Some(Record::Hello(name))) => {
                // A rename only takes effect before the first samples, so
                // the worker's lazily opened artifacts see the final name.
                if !renamed && chunks == 0 {
                    *session.name.lock().unwrap() =
                        format!("{:04}-{}", session.id, sanitize_name(&name));
                    renamed = true;
                }
            }
            Ok(Some(Record::Samples(format, payload))) => {
                let mut samples = IqBuf::with_capacity(payload.len() / format.bytes_per_sample());
                if format.decode(&payload, &mut samples).is_err() {
                    wazabee_telemetry::counter!("serve.proto.errors").inc();
                    session.push_end();
                    return;
                }
                session
                    .bytes_in
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                wazabee_telemetry::counter!("serve.bytes_in").add(payload.len() as u64);
                chunks += 1;
                session.push_chunk_blocking(samples);
            }
            Ok(Some(Record::End)) | Ok(None) => {
                session.push_end();
                return;
            }
            Err(_) => {
                wazabee_telemetry::counter!("serve.proto.errors").inc();
                session.push_end();
                return;
            }
        }
    }
}

/// Per-session artifact sinks, opened lazily by the worker on the session's
/// first processed message (by which point a `Hello` rename is final).
struct Artifacts {
    dir: PathBuf,
    pcap: PcapWriter,
    jsonl: BufWriter<File>,
}

impl Artifacts {
    fn open(root: &Path, session: &Session) -> io::Result<Artifacts> {
        let name = session.name.lock().unwrap().clone();
        let dir = root.join(sanitize_name(&name));
        std::fs::create_dir_all(&dir)?;
        let pcap = PcapWriter::create(&dir.join("frames.pcap"), LINKTYPE_IEEE802_15_4_WITHFCS)?;
        let jsonl = BufWriter::new(File::create(dir.join("frames.jsonl"))?);
        Ok(Artifacts { dir, pcap, jsonl })
    }
}

/// One tenancy on a worker: the session, its (possibly recycled) decode
/// engine and its artifact sinks.
struct Run<'rx> {
    engine: StreamingRx<'rx, BleModem>,
    artifacts: Option<Artifacts>,
    artifacts_failed: bool,
}

/// The decode worker loop: round-robins its sessions with a fairness
/// quantum, recycles engines through `flush` → `reset`, and commits each
/// session's report when its `End` arrives.
fn decode_worker(state: Arc<ServerState>, widx: usize) {
    let slot = Arc::clone(&state.workers[widx]);
    let cfg = state.cfg.clone();
    let rx = WazaBeeRx::new(BleModem::new(BlePhy::Le2M, cfg.sps))
        .expect("serve worker: diverted BLE receive primitive");
    let mut runs: HashMap<u64, Run<'_>> = HashMap::new();
    let mut free: Vec<StreamingRx<'_, BleModem>> = Vec::new();
    let widx_label = widx.to_string();
    loop {
        let sessions: Vec<Arc<Session>> = slot.sessions.lock().unwrap().clone();
        let mut did_work = false;
        let mut depth_total = 0usize;
        for session in &sessions {
            let run = runs.entry(session.id).or_insert_with(|| Run {
                engine: free.pop().unwrap_or_else(|| rx.stream()),
                artifacts: None,
                artifacts_failed: false,
            });
            let mut finished = false;
            for _ in 0..WORKER_BATCH {
                let Some(msg) = session.queue.pop() else {
                    break;
                };
                did_work = true;
                if run.artifacts.is_none() && !run.artifacts_failed {
                    if let Some(root) = &cfg.output_dir {
                        match Artifacts::open(root, session) {
                            Ok(a) => run.artifacts = Some(a),
                            Err(_) => run.artifacts_failed = true,
                        }
                    } else {
                        run.artifacts_failed = true;
                    }
                }
                match msg {
                    SessionMsg::Chunk { samples, enqueued } => {
                        if !cfg.decode_delay.is_zero() {
                            std::thread::sleep(cfg.decode_delay);
                        }
                        let results = {
                            let _st = wazabee_telemetry::stage!("serve.decode");
                            run.engine.push_planar(samples.as_slice())
                        };
                        commit_results(session, run, &results);
                        let us = enqueued.elapsed().as_micros() as u64;
                        session.record_latency(us);
                        wazabee_telemetry::value_histogram!("serve.decode.latency_us", 0.0, 1.0e6)
                            .record(us as f64);
                    }
                    SessionMsg::End => {
                        let results = run.engine.flush();
                        commit_results(session, run, &results);
                        finished = true;
                        break;
                    }
                }
            }
            depth_total += session.queue.len();
            if finished {
                finish_session(&state, &slot, session, &mut runs, &mut free);
            }
        }
        wazabee_telemetry::labeled_gauge!("serve.queue.depth")
            .set(&[("worker", &widx_label)], depth_total as f64);
        if !did_work {
            if state.workers_stop.load(Ordering::SeqCst) {
                return;
            }
            slot.wake.park(WORKER_PARK);
        }
    }
}

/// Folds one batch of decode results into the session's counters and
/// artifact sinks.
fn commit_results(
    session: &Arc<Session>,
    run: &mut Run<'_>,
    results: &[Result<wazabee_dot154::modem::ReceivedPpdu, wazabee::WazaBeeError>],
) {
    for result in results {
        session.attempts.fetch_add(1, Ordering::Relaxed);
        let Ok(ppdu) = result else { continue };
        session.frames.fetch_add(1, Ordering::Relaxed);
        wazabee_telemetry::counter!("serve.frames").inc();
        let fcs_ok = ppdu.fcs_ok();
        if !fcs_ok {
            session.crc_fail.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(a) = &mut run.artifacts {
            let ts_us = session.started.elapsed().as_micros() as u64;
            let _ = a.pcap.write_packet(ts_us, &ppdu.psdu);
            let hex: String = ppdu.psdu.iter().map(|b| format!("{b:02x}")).collect();
            let _ = writeln!(
                a.jsonl,
                "{{\"ts_us\":{ts_us},\"len\":{},\"fcs_ok\":{fcs_ok},\
                 \"chip_errors\":{},\"shr_errors\":{},\"psdu\":\"{hex}\"}}",
                ppdu.psdu.len(),
                ppdu.chip_errors,
                ppdu.shr_errors,
            );
        }
    }
}

/// Commits a finished session: flushes artifacts, writes `report.json`,
/// publishes the report, releases the engine to the free-list and retires
/// the session from the worker slot.
fn finish_session<'rx>(
    state: &Arc<ServerState>,
    slot: &Arc<WorkerSlot>,
    session: &Arc<Session>,
    runs: &mut HashMap<u64, Run<'rx>>,
    free: &mut Vec<StreamingRx<'rx, BleModem>>,
) {
    let report = session.report();
    let labels: &[(&'static str, &str)] = &[("session", report.name.as_str())];
    wazabee_telemetry::labeled_counter!("serve.session.frames").add(labels, report.frames);
    if let Some(mut run) = runs.remove(&session.id) {
        if let Some(a) = &mut run.artifacts {
            let _ = a.pcap.flush();
            let _ = a.jsonl.flush();
            let _ = std::fs::write(a.dir.join("report.json"), report_json(&report));
        }
        run.engine.reset();
        free.push(run.engine);
    }
    slot.sessions.lock().unwrap().retain(|s| s.id != session.id);
    state.reports.lock().unwrap().push(report);
    session.done.store(true, Ordering::SeqCst);
    wazabee_telemetry::counter!("serve.sessions.closed").inc();
    let mut open = state.open.lock().unwrap();
    *open -= 1;
    wazabee_telemetry::labeled_gauge!("serve.sessions.active")
        .set(&[("plane", "serve")], *open as f64);
    state.drained.notify_all();
}

/// Hand-formatted JSON for a [`SessionReport`] (the vendored serde is a
/// no-op shim; every artifact in this tree is written by hand).
pub(crate) fn report_json(r: &SessionReport) -> String {
    format!(
        "{{\n  \"id\": {},\n  \"name\": \"{}\",\n  \"frames\": {},\n  \"attempts\": {},\n  \
         \"crc_fail\": {},\n  \"bytes_in\": {},\n  \"chunks_in\": {},\n  \
         \"chunks_dropped\": {},\n  \"queue_high_water\": {},\n  \
         \"latency_p50_us\": {},\n  \"latency_p99_us\": {},\n  \
         \"duration_s\": {:.6},\n  \"frames_per_sec\": {:.3}\n}}\n",
        r.id,
        r.name,
        r.frames,
        r.attempts,
        r.crc_fail,
        r.bytes_in,
        r.chunks_in,
        r.chunks_dropped,
        r.queue_high_water,
        r.latency_p50_us,
        r.latency_p99_us,
        r.duration_s,
        r.frames_per_sec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_name_keeps_safe_chars_only() {
        assert_eq!(sanitize_name("bench-07.cf32"), "bench-07.cf32");
        assert_eq!(sanitize_name("a b/c\\d"), "a_b_c_d");
        assert_eq!(sanitize_name(""), "session");
        assert_eq!(sanitize_name("x".repeat(100).as_str()).len(), 64);
    }

    #[test]
    fn report_json_is_parseable_shape() {
        let r = SessionReport {
            id: 3,
            name: "t".into(),
            frames: 4,
            attempts: 5,
            crc_fail: 0,
            bytes_in: 1024,
            chunks_in: 2,
            chunks_dropped: 1,
            queue_high_water: 2,
            latency_p50_us: 10,
            latency_p99_us: 20,
            finished: std::time::Instant::now(),
            duration_s: 0.5,
            frames_per_sec: 8.0,
        };
        let j = report_json(&r);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"frames\": 4"));
        assert!(j.contains("\"chunks_dropped\": 1"));
    }

    #[test]
    fn empty_server_starts_and_shuts_down_clean() {
        let server = Server::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        assert_eq!(server.active_sessions(), 0);
        let summary = server.shutdown();
        assert!(summary.reports.is_empty());
        assert_eq!(summary.total_frames(), 0);
    }
}
