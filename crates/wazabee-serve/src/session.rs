//! Per-session state: the bounded chunk queue between ingest and decode,
//! atomic ingest/decode statistics and the final [`SessionReport`].
//!
//! Every session — socket or file tail — owns one [`ChunkQueue`]. Ingest
//! threads produce [`SessionMsg`]s into it; exactly one decode worker
//! consumes them. The queue is the backpressure boundary: socket ingest
//! *blocks* on a full queue (TCP flow control then pushes back on the
//! client), while file tails — which have no one to push back on — drop the
//! chunk and count it, so a slow decode plane degrades a tail into a sampled
//! stream instead of unbounded memory growth.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use wazabee_dsp::IqBuf;

/// Upper bound on per-session latency samples retained for the report's
/// percentiles; recording stops past this (the histograms keep counting).
const MAX_LATENCY_SAMPLES: usize = 65_536;

/// One message from an ingest thread to the session's decode worker.
#[derive(Debug)]
pub(crate) enum SessionMsg {
    /// A decoded-from-the-wire planar IQ chunk, stamped at enqueue time so
    /// the worker can attribute queue wait to decode latency.
    Chunk {
        /// Planar samples ready for `StreamingRx::push_planar`.
        samples: IqBuf,
        /// When the chunk entered the queue.
        enqueued: Instant,
    },
    /// No more chunks will follow; flush and report.
    End,
}

/// Bounded MPSC queue of [`SessionMsg`]s with both blocking and lossy
/// producers. `End` bypasses the capacity check (it must never be droppable
/// or the session would never finish).
#[derive(Debug)]
pub(crate) struct ChunkQueue {
    inner: Mutex<VecDeque<SessionMsg>>,
    space: Condvar,
    cap: usize,
}

impl ChunkQueue {
    pub(crate) fn new(cap: usize) -> Self {
        ChunkQueue {
            inner: Mutex::new(VecDeque::new()),
            space: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks until the queue has room, then enqueues. The socket-ingest
    /// producer: a full queue stalls the reader, TCP stalls the client.
    pub(crate) fn push_blocking(&self, msg: SessionMsg) {
        let mut q = self.inner.lock().unwrap();
        while q.len() >= self.cap {
            q = self.space.wait(q).unwrap();
        }
        q.push_back(msg);
    }

    /// Enqueues if there is room; returns whether the message was accepted.
    /// The tail-ingest producer: a full queue costs a counted drop.
    pub(crate) fn try_push(&self, msg: SessionMsg) -> bool {
        let mut q = self.inner.lock().unwrap();
        if q.len() >= self.cap {
            return false;
        }
        q.push_back(msg);
        true
    }

    /// Enqueues unconditionally — reserved for `End`, which may overflow the
    /// bound by one rather than ever being lost.
    pub(crate) fn push_unbounded(&self, msg: SessionMsg) {
        self.inner.lock().unwrap().push_back(msg);
    }

    /// Dequeues the oldest message and frees a producer slot.
    pub(crate) fn pop(&self) -> Option<SessionMsg> {
        let mut q = self.inner.lock().unwrap();
        let msg = q.pop_front();
        if msg.is_some() {
            self.space.notify_one();
        }
        msg
    }

    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
}

/// Wake channel shared by one decode worker and every producer feeding its
/// sessions: producers ring it after enqueueing, the worker parks on it when
/// all its queues are empty.
#[derive(Debug, Default)]
pub(crate) struct WorkerWake {
    lock: Mutex<()>,
    bell: Condvar,
}

impl WorkerWake {
    pub(crate) fn ring(&self) {
        let _g = self.lock.lock().unwrap();
        self.bell.notify_all();
    }

    pub(crate) fn park(&self, timeout: Duration) {
        let g = self.lock.lock().unwrap();
        let _ = self.bell.wait_timeout(g, timeout).unwrap();
    }
}

/// One live ingest session and its running statistics. Shared between the
/// producing ingest thread and the consuming decode worker; everything the
/// two sides race on is atomic or behind its own lock.
#[derive(Debug)]
pub(crate) struct Session {
    pub(crate) id: u64,
    /// Display name; a `Hello` record may rename it before the first chunk.
    pub(crate) name: Mutex<String>,
    pub(crate) queue: ChunkQueue,
    /// The owning worker's wake bell.
    pub(crate) wake: Arc<WorkerWake>,
    pub(crate) started: Instant,
    /// When the first chunk was accepted — the start of *service* time.
    /// Sessions are stamped at accept, but a session can sit registered and
    /// idle (a client waiting at a start barrier, an accept delayed under
    /// load) long before bytes flow; throughput and fairness are measured
    /// over the window data was actually in flight.
    pub(crate) first_chunk: Mutex<Option<Instant>>,
    /// Payload bytes accepted off the wire.
    pub(crate) bytes_in: AtomicU64,
    /// Chunks enqueued for decode.
    pub(crate) chunks_in: AtomicU64,
    /// Chunks dropped by a lossy producer against a full queue.
    pub(crate) chunks_dropped: AtomicU64,
    /// Frames delivered by the decode engine (FCS-valid or not).
    pub(crate) frames: AtomicU64,
    /// Committed decode attempts (frames plus typed failures).
    pub(crate) attempts: AtomicU64,
    /// Delivered frames whose FCS did not validate.
    pub(crate) crc_fail: AtomicU64,
    /// Deepest queue occupancy observed at enqueue time.
    pub(crate) queue_high_water: AtomicU64,
    /// Per-chunk decode latencies (enqueue → decoded), microseconds.
    pub(crate) latencies_us: Mutex<Vec<u64>>,
    /// Guards the one allowed `End` push.
    end_pushed: AtomicBool,
    /// Set by the worker once the session's report has been committed.
    pub(crate) done: AtomicBool,
}

impl Session {
    pub(crate) fn new(id: u64, name: String, queue_cap: usize, wake: Arc<WorkerWake>) -> Self {
        Session {
            id,
            name: Mutex::new(name),
            queue: ChunkQueue::new(queue_cap),
            wake,
            started: Instant::now(),
            first_chunk: Mutex::new(None),
            bytes_in: AtomicU64::new(0),
            chunks_in: AtomicU64::new(0),
            chunks_dropped: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
            crc_fail: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            latencies_us: Mutex::new(Vec::new()),
            end_pushed: AtomicBool::new(false),
            done: AtomicBool::new(false),
        }
    }

    /// Blocking chunk enqueue (socket path). Updates the high-water mark and
    /// rings the worker.
    pub(crate) fn push_chunk_blocking(&self, samples: IqBuf) {
        self.queue.push_blocking(SessionMsg::Chunk {
            samples,
            enqueued: Instant::now(),
        });
        self.after_accepted_chunk();
    }

    /// Lossy chunk enqueue (tail path): returns whether the chunk was
    /// accepted; a rejection is counted as a drop.
    pub(crate) fn push_chunk_lossy(&self, samples: IqBuf) -> bool {
        let accepted = self.queue.try_push(SessionMsg::Chunk {
            samples,
            enqueued: Instant::now(),
        });
        if accepted {
            self.after_accepted_chunk();
        } else {
            self.chunks_dropped.fetch_add(1, Ordering::Relaxed);
            wazabee_telemetry::counter!("serve.chunks.dropped").inc();
        }
        accepted
    }

    fn after_accepted_chunk(&self) {
        self.first_chunk
            .lock()
            .unwrap()
            .get_or_insert_with(Instant::now);
        self.chunks_in.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue.len() as u64;
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
        self.wake.ring();
    }

    /// Marks end-of-stream exactly once, no matter how many exit paths race
    /// to do it (clean `End` record, EOF, protocol error, shutdown).
    pub(crate) fn push_end(&self) {
        if !self.end_pushed.swap(true, Ordering::SeqCst) {
            self.queue.push_unbounded(SessionMsg::End);
            self.wake.ring();
        }
    }

    /// Records one chunk's enqueue→decoded latency.
    pub(crate) fn record_latency(&self, us: u64) {
        let mut lat = self.latencies_us.lock().unwrap();
        if lat.len() < MAX_LATENCY_SAMPLES {
            lat.push(us);
        }
    }

    /// Freezes the running statistics into the session's final report.
    pub(crate) fn report(&self) -> SessionReport {
        let mut lat = self.latencies_us.lock().unwrap().clone();
        lat.sort_unstable();
        let pct = |p: f64| -> u64 {
            if lat.is_empty() {
                return 0;
            }
            let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
            lat[idx.min(lat.len() - 1)]
        };
        let duration_s = self
            .first_chunk
            .lock()
            .unwrap()
            .unwrap_or(self.started)
            .elapsed()
            .as_secs_f64();
        let frames = self.frames.load(Ordering::Relaxed);
        SessionReport {
            id: self.id,
            name: self.name.lock().unwrap().clone(),
            frames,
            attempts: self.attempts.load(Ordering::Relaxed),
            crc_fail: self.crc_fail.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            chunks_in: self.chunks_in.load(Ordering::Relaxed),
            chunks_dropped: self.chunks_dropped.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            latency_p50_us: pct(0.50),
            latency_p99_us: pct(0.99),
            finished: Instant::now(),
            duration_s,
            frames_per_sec: if duration_s > 0.0 {
                frames as f64 / duration_s
            } else {
                0.0
            },
        }
    }
}

/// Final per-session statistics, committed by the decode worker when the
/// session's `End` is processed and returned from `Server::shutdown`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Server-assigned session id (also the artifact directory prefix).
    pub id: u64,
    /// Session name (client `Hello`, tail label, or `session-<id>`).
    pub name: String,
    /// Frames delivered by the decode engine.
    pub frames: u64,
    /// Committed decode attempts (frames plus typed failures).
    pub attempts: u64,
    /// Delivered frames whose FCS did not validate.
    pub crc_fail: u64,
    /// Sample payload bytes accepted off the wire.
    pub bytes_in: u64,
    /// Chunks enqueued for decode.
    pub chunks_in: u64,
    /// Chunks a lossy producer dropped against a full queue.
    pub chunks_dropped: u64,
    /// Deepest queue occupancy observed.
    pub queue_high_water: u64,
    /// Median enqueue→decoded chunk latency, microseconds.
    pub latency_p50_us: u64,
    /// 99th-percentile enqueue→decoded chunk latency, microseconds.
    pub latency_p99_us: u64,
    /// Monotonic stamp taken as the report was committed. In-process
    /// callers (the throughput bench) race equal workloads released at a
    /// shared barrier and measure fairness as each session's time from that
    /// common release to `finished` — immune to per-session start scatter
    /// under load.
    pub finished: Instant,
    /// Wall-clock service time (first accepted chunk to final report),
    /// seconds.
    pub duration_s: f64,
    /// `frames / duration_s`.
    pub frames_per_sec: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn queue_bounds_and_pop_frees_space() {
        let q = ChunkQueue::new(2);
        assert!(q.try_push(SessionMsg::End));
        assert!(q.try_push(SessionMsg::End));
        assert!(!q.try_push(SessionMsg::End), "third push must be rejected");
        assert_eq!(q.len(), 2);
        assert!(q.pop().is_some());
        assert!(q.try_push(SessionMsg::End), "pop must free a slot");
    }

    #[test]
    fn blocking_push_waits_for_consumer() {
        let q = Arc::new(ChunkQueue::new(1));
        q.push_blocking(SessionMsg::End);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            // Blocks until the consumer below pops.
            q2.push_blocking(SessionMsg::End);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer must still be blocked");
        assert!(q.pop().is_some());
        producer.join().unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn end_is_pushed_exactly_once_and_overflows_the_bound() {
        let s = Session::new(7, "t".into(), 1, Arc::new(WorkerWake::default()));
        assert!(s.push_chunk_lossy(IqBuf::new()));
        s.push_end();
        s.push_end();
        s.push_end();
        // One chunk (at capacity) plus exactly one End past the bound.
        assert_eq!(s.queue.len(), 2);
    }

    #[test]
    fn lossy_push_counts_drops() {
        let s = Session::new(1, "t".into(), 1, Arc::new(WorkerWake::default()));
        assert!(s.push_chunk_lossy(IqBuf::new()));
        assert!(!s.push_chunk_lossy(IqBuf::new()));
        assert!(!s.push_chunk_lossy(IqBuf::new()));
        assert_eq!(s.chunks_dropped.load(Ordering::Relaxed), 2);
        assert_eq!(s.chunks_in.load(Ordering::Relaxed), 1);
        assert_eq!(s.queue_high_water.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn report_percentiles_over_recorded_latencies() {
        let s = Session::new(3, "lat".into(), 4, Arc::new(WorkerWake::default()));
        for us in [100u64, 200, 300, 400, 500, 600, 700, 800, 900, 1000] {
            s.record_latency(us);
        }
        let r = s.report();
        assert_eq!(r.latency_p50_us, 600);
        assert_eq!(r.latency_p99_us, 1000);
        assert_eq!(r.name, "lat");
    }
}
