//! WiFi-shaped interference model.
//!
//! The paper's testbed shared the air with WiFi channels 6 and 11, which is
//! visible in Table III as a reception dip on Zigbee channels 17/18 and
//! 21–23. We model a WiFi interferer as a bursty wideband noise source whose
//! power couples into a 2 MHz-wide victim channel proportionally to spectral
//! overlap.

use serde::{Deserialize, Serialize};

/// A 2.4 GHz WiFi (802.11b/g/n, 20 MHz) channel, 1–13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WifiChannel(u8);

impl WifiChannel {
    /// Creates a channel, rejecting numbers outside 1–13.
    pub fn new(number: u8) -> Option<Self> {
        (1..=13).contains(&number).then_some(WifiChannel(number))
    }

    /// The channel number.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Centre frequency in MHz: `2407 + 5·n`.
    pub fn center_mhz(self) -> u32 {
        2407 + 5 * u32::from(self.0)
    }

    /// Half-width of the occupied spectrum we model, in MHz (the outer edge
    /// of the interference skirt in [`WifiChannel::overlap_with`]).
    pub const HALF_WIDTH_MHZ: f64 = 9.5;

    /// Fraction (0..=1) of this channel's power that lands in a 2 MHz-wide
    /// victim channel centred at `victim_center_mhz`.
    ///
    /// The 20 MHz OFDM spectrum is approximated as flat over ±6 MHz with a
    /// linear skirt to ±9.5 MHz — wide enough to reproduce the paper's mild
    /// dip on Zigbee channels 16 and 21 (7 MHz from a WiFi centre) while
    /// leaving channels ≥ 10 MHz away untouched.
    pub fn overlap_with(self, victim_center_mhz: u32) -> f64 {
        let delta = (f64::from(self.center_mhz()) - f64::from(victim_center_mhz)).abs();
        let flat = 6.0;
        let edge = Self::HALF_WIDTH_MHZ;
        if delta <= flat {
            1.0
        } else if delta < edge {
            1.0 - (delta - flat) / (edge - flat)
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for WifiChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WiFi ch {} ({} MHz)", self.0, self.center_mhz())
    }
}

/// A bursty WiFi interferer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WifiInterferer {
    /// The WiFi channel this interferer occupies.
    pub channel: WifiChannel,
    /// In-band interference power (linear, relative to unit signal power)
    /// when fully overlapping the victim channel.
    pub power: f64,
    /// Probability that a given victim frame experiences a burst.
    pub burst_probability: f64,
    /// Fraction of the victim frame a burst covers (0..=1).
    pub burst_fraction: f64,
}

impl WifiInterferer {
    /// A calibrated model of the paper's office environment: enough to lose
    /// or corrupt a few percent of frames on overlapping channels.
    pub fn office(channel: WifiChannel) -> Self {
        WifiInterferer {
            channel,
            power: 1.8,
            burst_probability: 0.055,
            burst_fraction: 0.30,
        }
    }

    /// Effective in-band power on a victim channel (0 when disjoint).
    pub fn power_into(&self, victim_center_mhz: u32) -> f64 {
        self.power * self.channel.overlap_with(victim_center_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_frequencies() {
        assert_eq!(WifiChannel::new(1).unwrap().center_mhz(), 2412);
        assert_eq!(WifiChannel::new(6).unwrap().center_mhz(), 2437);
        assert_eq!(WifiChannel::new(11).unwrap().center_mhz(), 2462);
        assert!(WifiChannel::new(0).is_none());
        assert!(WifiChannel::new(14).is_none());
    }

    #[test]
    fn paper_dip_channels_overlap_wifi6() {
        // Zigbee 17 (2435) and 18 (2440) sit inside WiFi 6's spectrum.
        let w6 = WifiChannel::new(6).unwrap();
        assert!(w6.overlap_with(2435) > 0.9);
        assert!(w6.overlap_with(2440) > 0.9);
        // Zigbee 14 (2420), the paper's testbed channel, is clear of WiFi 6.
        assert_eq!(w6.overlap_with(2420), 0.0);
    }

    #[test]
    fn paper_dip_channels_overlap_wifi11() {
        let w11 = WifiChannel::new(11).unwrap();
        assert!(w11.overlap_with(2455) > 0.0); // Zigbee 21
        assert!(w11.overlap_with(2460) > 0.9); // Zigbee 22
        assert!(w11.overlap_with(2465) > 0.9); // Zigbee 23
        assert_eq!(w11.overlap_with(2450), 0.0); // Zigbee 20 clear
    }

    #[test]
    fn overlap_is_monotone_in_distance() {
        let w = WifiChannel::new(6).unwrap();
        let mut prev = 1.0;
        for victim in (2437..2455).step_by(2) {
            let o = w.overlap_with(victim);
            assert!(o <= prev + 1e-12, "overlap increased at {victim}");
            prev = o;
        }
    }

    #[test]
    fn interferer_power_scales_with_overlap() {
        let i = WifiInterferer::office(WifiChannel::new(6).unwrap());
        assert_eq!(i.power_into(2437), i.power);
        assert_eq!(i.power_into(2480), 0.0);
        assert!(i.power_into(2444) < i.power); // on the skirt
        assert!(i.power_into(2444) > 0.0);
    }
}
